"""Tests for experiment configuration (repro.experiments.config)."""

import pytest

from repro.experiments import (
    FIGURE2_LOADS,
    FIGURE2_REQUIREMENT,
    FIGURE3_BURSTS,
    FIGURE3_REQUIREMENT,
    TABLE1,
    TABLE2_NAMES,
    energy_setting,
)


class TestTable1:
    def test_three_applications(self):
        assert [a.name for a in TABLE1] == ["A1", "A2", "A3"]

    def test_varied_window_mix(self):
        # The paper: "the varied mix of short and long time windows".
        shortest = min(a.window_range[0] for a in TABLE1)
        longest = max(a.window_range[1] for a in TABLE1)
        assert longest / shortest >= 10.0

    def test_umax_ranges_positive(self):
        for a in TABLE1:
            lo, hi = a.umax_range
            assert 0.0 < lo <= hi

    def test_uam_parameters(self):
        for a in TABLE1:
            assert a.max_arrivals >= 1
            assert a.n_tasks >= 1


class TestTable2:
    def test_names(self):
        assert TABLE2_NAMES == ("E1", "E2", "E3")

    def test_e1_is_conventional(self):
        m = energy_setting("E1")
        assert (m.s3, m.s2, m.s1, m.s0) == (1.0, 0.0, 0.0, 0.0)

    def test_settings_scale_with_fmax(self):
        m1 = energy_setting("E3", 1000.0)
        m2 = energy_setting("E3", 500.0)
        assert m1.s0 == 8.0 * m2.s0  # cubic in f_max

    def test_case_insensitive(self):
        assert energy_setting("e2").name == "E2"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            energy_setting("E4")


class TestSweeps:
    def test_figure2_load_grid(self):
        assert FIGURE2_LOADS[0] == pytest.approx(0.2)
        assert FIGURE2_LOADS[-1] == pytest.approx(1.8)
        steps = [round(b - a, 6) for a, b in zip(FIGURE2_LOADS, FIGURE2_LOADS[1:])]
        assert all(s == pytest.approx(0.2) for s in steps)

    def test_requirements(self):
        assert FIGURE2_REQUIREMENT == (1.0, 0.96)
        assert FIGURE3_REQUIREMENT == (0.3, 0.9)

    def test_figure3_bursts(self):
        assert FIGURE3_BURSTS == (1, 2, 3)
