"""Degenerate-input behaviour of the chunk planner (satellite of the
multicore PR: the mp sweeps lean on auto-sizing with odd unit counts)."""

import pytest

from repro.experiments.parallel import auto_chunk_size


def test_zero_items_returns_a_valid_chunk_size():
    # Nothing to do, but callers still divide by the result.
    assert auto_chunk_size(0, 8) == 1
    assert auto_chunk_size(0, 1) == 1


def test_negative_items_rejected():
    with pytest.raises(ValueError):
        auto_chunk_size(-1, 4)
    with pytest.raises(ValueError):
        auto_chunk_size(-100, 1)


def test_serial_fuses_everything_into_one_chunk():
    assert auto_chunk_size(10, 1) == 10
    assert auto_chunk_size(1, 1) == 1


def test_nonpositive_workers_treated_as_serial():
    assert auto_chunk_size(10, 0) == 10
    assert auto_chunk_size(10, -3) == 10


def test_fewer_items_than_workers_yields_unit_chunks():
    # Every item becomes its own chunk so the pool can spread them.
    assert auto_chunk_size(3, 8) == 1
    assert auto_chunk_size(1, 64) == 1


def test_healthy_shapes_amortise_to_four_chunks_per_worker():
    size = auto_chunk_size(1000, 4)
    n_chunks = -(-1000 // size)
    assert 4 <= n_chunks <= 16
