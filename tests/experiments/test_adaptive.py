"""The adaptive-vs-static experiment (repro.experiments.adaptive).

Pins the ISSUE acceptance claim at a fixed seed: under demand drift the
adaptive arm accrues strictly more utility than static EUA* (or equal
utility at strictly lower energy).
"""

import numpy as np
import pytest

from repro.experiments.adaptive import (
    compare_adaptive,
    drifting_trace,
    uam_violating_trace,
)
from repro.runtime import RuntimeConfig


class TestDriftingTrace:
    def test_demands_scale_after_onset(self):
        base = drifting_trace(seed=11, horizon=1.0, drift_factor=1.0)
        drifted = drifting_trace(seed=11, horizon=1.0, drift_factor=2.0)
        onset = 0.3 * 1.0
        for a, b in zip(base, drifted):
            assert a.release == b.release
            if a.release >= onset:
                assert b.demand == pytest.approx(2.0 * a.demand)
            else:
                assert b.demand == a.demand

    def test_deterministic_per_seed(self):
        t1 = drifting_trace(seed=17, horizon=1.0)
        t2 = drifting_trace(seed=17, horizon=1.0)
        assert [(j.release, j.demand) for j in t1] == [(j.release, j.demand) for j in t2]

    def test_declared_moments_untouched(self):
        trace = drifting_trace(seed=11, horizon=1.0, drift_factor=3.0)
        base = drifting_trace(seed=11, horizon=1.0, drift_factor=1.0)
        assert [t.allocation for t in trace.taskset] == [
            t.allocation for t in base.taskset
        ]


class TestUAMViolatingTrace:
    def test_violates_every_task_envelope(self):
        trace = uam_violating_trace(seed=11, horizon=1.0, burst_factor=2)
        with pytest.raises(ValueError):
            trace.verify_uam()

    def test_burst_factor_multiplies_jobs(self):
        base = uam_violating_trace(seed=11, horizon=1.0, burst_factor=2)
        bigger = uam_violating_trace(seed=11, horizon=1.0, burst_factor=3)
        assert len(bigger) == 3 * len(base) // 2

    def test_burst_factor_validation(self):
        with pytest.raises(ValueError):
            uam_violating_trace(burst_factor=1)


class TestCompareAdaptive:
    def test_adaptive_beats_static_under_drift_fixed_seed(self):
        """The headline acceptance criterion, pinned at seed 11."""
        cmp = compare_adaptive(seed=11, load=0.9, horizon=1.0, drift_factor=2.0)
        assert cmp.runtime_summary["reallocations"] > 0  # adaptation engaged
        assert cmp.utility_gain > 0 or (
            cmp.utility_gain == 0 and cmp.energy_saving > 0
        )
        assert cmp.improves_frontier

    def test_static_arm_unaffected_by_adaptive_arm(self):
        c1 = compare_adaptive(seed=11, load=0.9, horizon=1.0)
        c2 = compare_adaptive(seed=11, load=0.9, horizon=1.0)
        assert c1.static.metrics.accrued_utility == c2.static.metrics.accrued_utility
        assert c1.adaptive.metrics.accrued_utility == c2.adaptive.metrics.accrued_utility

    def test_no_drift_means_no_gain_claim(self):
        """Without drift the runtime stays quiet and the arms agree."""
        cmp = compare_adaptive(seed=11, load=0.8, horizon=0.4, drift_factor=1.0)
        assert cmp.runtime_summary["reallocations"] == 0
        assert cmp.utility_gain == 0.0
        assert cmp.energy_saving == 0.0

    def test_rows_cover_both_arms(self):
        cmp = compare_adaptive(seed=11, load=0.9, horizon=1.0)
        rows = cmp.rows()
        assert [r["arm"] for r in rows] == ["static", "adaptive"]
        for row in rows:
            assert set(row) >= {"utility", "energy", "completed", "expired", "shed"}

    def test_cusum_detector_also_engages(self):
        cmp = compare_adaptive(
            seed=11, load=0.9, horizon=1.0,
            config=RuntimeConfig(drift_detector="cusum", drift_threshold=5.0),
        )
        assert cmp.runtime_summary["reallocations"] > 0
