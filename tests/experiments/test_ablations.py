"""Tests for the programmatic ablation drivers (repro.experiments.ablations)."""

import pytest

from repro.core import EUAStar
from repro.experiments import (
    ablate_dasa,
    ablate_dvs,
    ablate_dvs_method,
    ablate_fopt,
    run_policy_grid,
)
from repro.sched import EDFStatic


MINI = dict(seeds=(11,), horizon=1.0)


class TestPolicyGrid:
    def test_shared_workload_per_seed(self):
        out = run_policy_grid(
            [lambda: EUAStar(name="A"), lambda: EDFStatic(name="B")],
            load=0.6,
            seeds=(11, 13),
            horizon=1.0,
        )
        assert set(out) == {"A", "B"}
        assert len(out["A"]) == 2
        # Same released jobs within each seed.
        for ra, rb in zip(out["A"], out["B"]):
            assert sorted(j.key for j in ra.jobs) == sorted(j.key for j in rb.jobs)

    def test_parameters_forwarded(self):
        out = run_policy_grid(
            [lambda: EUAStar(name="A")],
            load=0.5,
            seeds=(11,),
            horizon=1.0,
            tuf_shape="linear",
            nu=0.3,
            rho=0.9,
            arrival_mode="poisson",
            burst_override=2,
        )
        result = out["A"][0]
        task = result.metrics.taskset[0]
        assert task.uam.max_arrivals == 2
        assert task.nu == 0.3


class TestDrivers:
    def test_ablate_dvs_rows(self):
        rows = ablate_dvs(loads=(0.5,), **MINI)
        assert len(rows) == 1
        assert rows[0]["energy_ratio"] < 1.0
        assert rows[0]["utility_dvs"] == pytest.approx(rows[0]["utility_fmax"], abs=0.02)

    def test_ablate_fopt_rows(self):
        rows = ablate_fopt(load=0.5, **MINI)
        by = {r["energy_setting"]: r for r in rows}
        assert set(by) == {"E1", "E2", "E3"}
        # E3 without the bound is worse than with it.
        assert by["E3"]["without_fopt"] > by["E3"]["with_fopt"]

    def test_ablate_dvs_method_rows(self):
        rows = ablate_dvs_method(load=0.8, bursts=(1,), **MINI)
        assert rows[0]["demand_energy"] >= rows[0]["lookahead_energy"] - 0.05

    def test_ablate_dasa_rows(self):
        rows = ablate_dasa(loads=(0.6,), **MINI)
        assert rows[0]["energy_ratio"] < 0.8
        assert rows[0]["eua_utility"] == pytest.approx(rows[0]["dasa_utility"], abs=0.02)
