"""Tests for the multicore frontier driver (repro.experiments.multicore)."""

import pytest

from repro.experiments import multicore_units, run_multicore


def test_units_deduplicate_the_m1_anchor():
    units = multicore_units(
        cores=(1, 2), modes=("partitioned", "global"), loads=(0.8,), seeds=(1,)
    )
    keys = [u.key for u in units]
    assert ("partitioned", 1, 0.8, 1) in keys
    assert ("global", 1, 0.8, 1) not in keys
    assert ("global", 2, 0.8, 1) in keys


def test_units_carry_the_m_dimension():
    units = multicore_units(cores=(4,), modes=("global",), loads=(0.8,), seeds=(1,))
    (unit,) = units
    assert unit.platform.cores == 4
    assert unit.platform.mp_mode == "global"
    assert unit.workload.cores == 4


def test_small_sweep_end_to_end():
    result = run_multicore(
        cores=(1, 2),
        modes=("partitioned", "global"),
        loads=(0.8,),
        seeds=(11,),
        horizon=0.2,
    )
    rows = result.rows()
    cells = {(r["mode"], r["cores"], r["scheduler"]): r for r in rows}
    assert len(rows) == 2 * 2 * 2  # modes x cores x schedulers

    # EDF is the in-cell normaliser: exactly 1.0 in its own cell.
    for r in rows:
        if r["scheduler"] == "EDF":
            assert r["norm_energy"] == pytest.approx(1.0)
            assert r["norm_utility"] == pytest.approx(1.0)

    # The m=1 column is mode-independent (the deduped anchor cell).
    assert (
        cells[("partitioned", 1, "EUA*")]["norm_energy"]
        == cells[("global", 1, "EUA*")]["norm_energy"]
    )

    # Partitioned runs never migrate.
    assert all(r["migrations"] == 0.0 for r in rows if r["mode"] == "partitioned")

    # The frontier accessor agrees with the flat rows.
    frontier = result.frontier("partitioned", 2, "energy", "EUA*")
    assert frontier == [(0.8, cells[("partitioned", 2, "EUA*")]["norm_energy"])]


def test_baseline_scheduler_required():
    with pytest.raises(ValueError):
        run_multicore(scheduler_names=("EUA*",))


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        run_multicore(modes=("clustered",), loads=(0.8,), seeds=(1,))
