"""Tests for sensitivity sweeps (repro.experiments.sensitivity)."""


from repro.experiments import (
    sweep_ladder_granularity,
    sweep_rho,
    sweep_taskset_size,
)

MINI = dict(seeds=(11,), horizon=1.0)


class TestSweepRho:
    def test_rows_and_monotone_energy(self):
        rows = sweep_rho(rhos=(0.5, 0.99), **MINI)
        assert [r["rho"] for r in rows] == [0.5, 0.99]
        # Stronger assurance never costs less energy.
        assert rows[1]["norm_energy"] >= rows[0]["norm_energy"] - 0.02

    def test_attainment_reported(self):
        rows = sweep_rho(rhos=(0.9,), **MINI)
        assert 0.0 <= rows[0]["min_attainment"] <= 1.0


class TestSweepSize:
    def test_task_counts(self):
        rows = sweep_taskset_size(multipliers=(1, 2), **MINI)
        assert rows[0]["n_tasks"] == 18
        assert rows[1]["n_tasks"] == 36

    def test_load_held_constant_keeps_utility(self):
        rows = sweep_taskset_size(multipliers=(1, 2), **MINI)
        for r in rows:
            assert r["utility"] >= 0.97


class TestSweepLadder:
    def test_finer_ladders_never_worse(self):
        rows = sweep_ladder_granularity(level_counts=(2, 7, 14), **MINI)
        energies = [r["norm_energy"] for r in rows]
        assert energies[1] <= energies[0] + 0.02
        assert energies[2] <= energies[1] + 0.02

    def test_powernow_row_present(self):
        rows = sweep_ladder_granularity(level_counts=(7,), **MINI)
        assert rows[0]["levels"] == 7
