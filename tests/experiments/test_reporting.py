"""Tests for reporting helpers (repro.experiments.reporting)."""

from repro.experiments import ascii_table, rows_to_csv, series_chart


class TestAsciiTable:
    def test_renders_rows(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}]
        out = ascii_table(rows, ["a", "b"])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "0.500" in out
        assert "0.250" in out

    def test_column_alignment(self):
        rows = [{"name": "short", "v": 1.0}, {"name": "a-much-longer-name", "v": 2.0}]
        out = ascii_table(rows, ["name", "v"])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_missing_cells_blank(self):
        out = ascii_table([{"a": 1}], ["a", "b"])
        assert "b" in out

    def test_empty(self):
        assert ascii_table([], ["a"]) == "(no rows)"


class TestSeriesChart:
    def test_bars_scale(self):
        out = series_chart({"s": [(0.2, 0.5), (0.4, 1.0)]}, width=10, y_max=1.0)
        lines = out.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_title(self):
        out = series_chart({"s": [(1, 1.0)]}, title="hello")
        assert out.startswith("hello")

    def test_auto_ymax(self):
        out = series_chart({"s": [(1, 2.0)]}, width=10)
        assert out.splitlines()[1].count("#") == 10

    def test_values_above_ymax_clamped(self):
        out = series_chart({"s": [(1, 5.0)]}, width=10, y_max=1.0)
        assert out.splitlines()[1].count("#") == 10


class TestCsv:
    def test_header_and_rows(self):
        out = rows_to_csv([{"a": 1, "b": 0.5}], ["a", "b"])
        lines = out.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,0.5"

    def test_float_formatting(self):
        out = rows_to_csv([{"x": 1 / 3}], ["x"])
        assert "0.333333" in out
