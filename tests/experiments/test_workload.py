"""Tests for workload synthesis (repro.experiments.workload)."""

import numpy as np
import pytest

from repro.arrivals import (
    BurstUAMArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
)
from repro.experiments import TABLE1, synthesize_taskset
from repro.tuf import LinearTUF, StepTUF


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestSynthesis:
    def test_task_count_matches_table1(self, rng):
        ts = synthesize_taskset(0.5, rng)
        assert len(ts) == sum(a.n_tasks for a in TABLE1)

    def test_exact_load_calibration(self, rng):
        for load in (0.2, 1.0, 1.8):
            ts = synthesize_taskset(load, np.random.default_rng(1))
            assert ts.load(1000.0) == pytest.approx(load)

    def test_step_shape(self, rng):
        ts = synthesize_taskset(0.5, rng, tuf_shape="step")
        assert all(isinstance(t.tuf, StepTUF) for t in ts)

    def test_linear_shape_with_paper_slope(self, rng):
        ts = synthesize_taskset(0.5, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        for t in ts:
            assert isinstance(t.tuf, LinearTUF)
            assert t.tuf.slope == pytest.approx(t.tuf.max_utility / t.uam.window)

    def test_unknown_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            synthesize_taskset(0.5, rng, tuf_shape="sine")

    def test_requirement_propagated(self, rng):
        ts = synthesize_taskset(0.5, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        assert all(t.nu == 0.3 and t.rho == 0.9 for t in ts)

    def test_variance_convention(self, rng):
        # Var(Y) = E(Y) in raw cycles == mean * 1e-6 in Mcycles^2 before
        # load scaling; the common k multiplies every task's var/mean
        # ratio identically (k * 1e-6), so the ratio is uniform and tiny.
        ts = synthesize_taskset(0.5, rng)
        ratios = [t.demand.variance / t.demand.mean for t in ts]
        assert max(ratios) == pytest.approx(min(ratios), rel=1e-9)
        assert ratios[0] < 1e-3  # negligible pad: c ~= E(Y)

    def test_windows_within_table1_ranges(self, rng):
        ts = synthesize_taskset(0.5, rng)
        for app in TABLE1:
            for t in ts:
                if t.name.startswith(app.name + "."):
                    assert app.window_range[0] <= t.uam.window <= app.window_range[1]


class TestArrivalModes:
    def test_periodic_mode(self, rng):
        ts = synthesize_taskset(0.5, rng, arrival_mode="periodic")
        assert all(isinstance(t.arrivals, PeriodicArrivals) for t in ts)
        assert all(t.uam.max_arrivals == 1 for t in ts)

    def test_burst_mode_uses_table_a(self, rng):
        ts = synthesize_taskset(0.5, rng, arrival_mode="burst")
        assert all(isinstance(t.arrivals, BurstUAMArrivals) for t in ts)
        a1 = [t for t in ts if t.name.startswith("A1.")]
        assert all(t.uam.max_arrivals == 5 for t in a1)

    def test_burst_override(self, rng):
        ts = synthesize_taskset(0.5, rng, arrival_mode="burst", burst_override=2)
        assert all(t.uam.max_arrivals == 2 for t in ts)

    def test_scattered_mode(self, rng):
        ts = synthesize_taskset(0.5, rng, arrival_mode="scattered", burst_override=3)
        assert all(isinstance(t.arrivals, ScatteredUAMArrivals) for t in ts)

    def test_poisson_mode(self, rng):
        ts = synthesize_taskset(0.5, rng, arrival_mode="poisson", burst_override=3)
        assert all(isinstance(t.arrivals, PoissonUAMArrivals) for t in ts)

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError):
            synthesize_taskset(0.5, rng, arrival_mode="chaotic")

    def test_same_seed_same_taskset(self):
        a = synthesize_taskset(0.5, np.random.default_rng(5))
        b = synthesize_taskset(0.5, np.random.default_rng(5))
        for ta, tb in zip(a, b):
            assert ta.uam.window == tb.uam.window
            assert ta.demand.mean == tb.demand.mean
