"""The documentation's code must run.

Executes every ```python``` block in docs/tutorial.md (in order, in one
shared namespace) and the README quickstart, with scaled-down horizons
so the suite stays fast.  Documentation that drifts from the API fails
here first.
"""

import contextlib
import io
import re
from pathlib import Path


ROOT = Path(__file__).resolve().parents[2]


def _python_blocks(path: Path):
    text = path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, re.S)


def _shrink(code: str) -> str:
    """Scale long horizons down for test speed (60 s -> 3 s)."""
    return code.replace("horizon=60.0", "horizon=3.0").replace("60.0,", "3.0,").replace(
        "(10.0, 30.0, 60.0)", "(1.0, 2.0, 3.0)"
    )


class TestTutorial:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "tutorial.md")
        assert len(blocks) >= 7
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "tutorial.md", "exec"), ns)
        out = sink.getvalue()
        assert "battery multiplier" in out
        assert "OK" in out  # the validator line


class TestObservability:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "observability.md")
        assert len(blocks) >= 6
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "observability.md", "exec"), ns)
        out = sink.getvalue()
        assert "frequency decisions" in out
        assert "fleet dispatches" in out
        assert "decide_freq" in out  # the profiler and summary sections
        assert "phase table" in out  # the span-tracing section
        assert "phase coverage" in out


class TestPerformance:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "performance.md")
        assert blocks, "performance doc must contain a runnable example"
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "performance.md", "exec"), ns)
        assert "[" in sink.getvalue()  # the printed per-load utility list


class TestRuntimeDoc:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "runtime.md")
        assert blocks, "runtime doc must contain a runnable example"
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "runtime.md", "exec"), ns)
        out = sink.getvalue()
        assert "reallocations:" in out
        # The drift scenario really adapts — the doc's claim is live.
        assert not out.strip().endswith("reallocations: 0")


class TestStatisticsDoc:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "statistics.md")
        assert len(blocks) >= 4
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "statistics.md", "exec"), ns)
        out = sink.getvalue()
        assert "verdict:" in out
        assert "stopped early: True" in out
        assert "warm simulated 0" in out
        assert "[0.902, 0.984]" in out  # the Wilson example straddles rho


class TestArrivalsDoc:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "arrivals.md")
        assert len(blocks) >= 5
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "arrivals.md", "exec"), ns)
        out = sink.getvalue()
        assert "workload shapes:" in out
        assert "compliant: True" in out            # thinning honours the spec
        assert "config round-trip bit-identical: True" in out
        assert "custom shape compliant: True" in out  # registration demo
        assert "threshold" in out                  # the phase-map example ran


class TestTestingDoc:
    def test_all_blocks_execute(self):
        blocks = _python_blocks(ROOT / "docs" / "testing.md")
        assert blocks, "testing doc must contain a runnable checker example"
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            for block in blocks:
                exec(compile(_shrink(block), "testing.md", "exec"), ns)
        assert "invariants clean" in sink.getvalue()


class TestReadme:
    def test_quickstart_block_executes(self):
        blocks = _python_blocks(ROOT / "README.md")
        assert blocks, "README must contain a python quickstart"
        ns = {}
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            exec(compile(_shrink(blocks[0].replace("horizon=10.0", "horizon=2.0")),
                         "README.md", "exec"), ns)
        assert "EDF" in sink.getvalue()
