"""Tests for the figure/theorem experiment drivers at miniature scale.

Full-scale sweeps live in benchmarks/; these tests keep the drivers
honest (structure, normalisation, bookkeeping) with tiny workloads.
"""

import pytest

from repro.experiments import (
    check_assurances,
    check_edf_equivalence,
    run_figure2,
    run_figure3,
)


@pytest.fixture(scope="module")
def fig2():
    return run_figure2("E1", loads=(0.4, 1.6), seeds=(11,), horizon=2.0)


@pytest.fixture(scope="module")
def fig3():
    return run_figure3(bursts=(1, 2), loads=(0.6,), seeds=(11,), horizon=2.0)


class TestFigure2Driver:
    def test_points_per_load(self, fig2):
        assert [p.load for p in fig2.points] == [0.4, 1.6]

    def test_baseline_normalised_to_one(self, fig2):
        for p in fig2.points:
            assert p.utility["EDF"].mean == pytest.approx(1.0)
            assert p.energy["EDF"].mean == pytest.approx(1.0)

    def test_all_schedulers_present(self, fig2):
        for p in fig2.points:
            assert set(p.utility) == {"EUA*", "LA-EDF", "LA-EDF-NA", "EDF"}

    def test_series_extraction(self, fig2):
        series = fig2.series("energy", "EUA*")
        assert [x for x, _ in series] == [0.4, 1.6]

    def test_rows_flat(self, fig2):
        rows = fig2.rows()
        assert len(rows) == 2 * 4
        assert {"energy_setting", "load", "scheduler", "norm_utility",
                "norm_energy"} <= set(rows[0])

    def test_requires_baseline(self):
        with pytest.raises(ValueError):
            run_figure2("E1", loads=(0.4,), seeds=(11,), horizon=1.0,
                        scheduler_names=("EUA*", "LA-EDF"))

    def test_underload_energy_saved(self, fig2):
        assert fig2.points[0].energy["EUA*"].mean < 0.7


class TestFigure3Driver:
    def test_structure(self, fig3):
        assert set(fig3.energy) == {1, 2}
        assert set(fig3.energy[1]) == {0.6}

    def test_normalised_to_nodvs(self, fig3):
        for a in (1, 2):
            assert 0.0 < fig3.energy[a][0.6].mean <= 1.05

    def test_rows(self, fig3):
        rows = fig3.rows()
        assert len(rows) == 2
        assert rows[0]["a"] == 1

    def test_series(self, fig3):
        assert fig3.series(2) == [(0.6, fig3.energy[2][0.6].mean)]


class TestTheoremDrivers:
    def test_edf_equivalence_underload(self):
        ev = check_edf_equivalence(load=0.5, seed=7, horizon=2.0)
        assert ev.underload
        assert ev.equal_utility
        assert ev.same_completion_order
        assert ev.all_critical_times_met
        assert ev.max_lateness_eua == pytest.approx(ev.max_lateness_edf)

    def test_assurances_step(self):
        out = check_assurances(load=0.5, seed=8, horizon=2.0, tuf_shape="step",
                               nu=1.0, rho=0.96)
        assert out["all_satisfied"]

    def test_assurances_linear_brh(self):
        out = check_assurances(load=0.5, seed=9, horizon=2.0, tuf_shape="linear",
                               nu=0.3, rho=0.9)
        assert out["brh_schedulable"]
        assert out["all_satisfied"]
