"""Tests for the utilization phase-transition study
(repro.experiments.threshold) and the per-replication assurance
Bernoulli it builds on (repro.stats.campaign)."""

import json

import pytest

from repro.experiments.threshold import (
    ArrivalShape,
    ThresholdConfig,
    ThresholdPoint,
    _coerce,
    _interpolate_crossing,
    _wilson_band,
    run_threshold,
    smoke_config,
    write_threshold_artifact,
)
from repro.stats.campaign import ReplicationSummary, _replication_success


# ----------------------------------------------------------------------
# ArrivalShape parsing
# ----------------------------------------------------------------------
class TestArrivalShape:
    def test_plain_name(self):
        shape = ArrivalShape.parse("poisson")
        assert shape.name == "poisson" and shape.params == ()

    def test_params_are_coerced(self):
        shape = ArrivalShape.parse("nhpp-diurnal:peak_frac=0.25,cycle_windows=4")
        assert dict(shape.params) == {"peak_frac": 0.25, "cycle_windows": 4}
        assert isinstance(dict(shape.params)["cycle_windows"], int)

    def test_bool_and_str_literals(self):
        assert _coerce("true") is True and _coerce("False") is False
        assert _coerce("wfd") == "wfd"
        assert _coerce("3") == 3 and _coerce("0.5") == 0.5

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival shape"):
            ArrivalShape.parse("no-such-shape")

    def test_trace_shapes_rejected(self):
        # Trace shapes need explicit times; they are not sweepable.
        with pytest.raises(ValueError):
            ArrivalShape("trace")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            ArrivalShape.parse("poisson:rate")

    def test_label_round_trips(self):
        shape = ArrivalShape.parse("flash-crowd:burst_factor=4")
        assert ArrivalShape.parse(shape.label) == shape

    def test_hashable_for_memoisation(self):
        assert len({ArrivalShape("poisson"), ArrivalShape("poisson")}) == 1


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestThresholdConfig:
    def test_coarse_loads_span_the_range(self):
        cfg = ThresholdConfig(load_lo=1.0, load_hi=3.0, coarse_points=5)
        assert cfg.coarse_loads == (1.0, 1.5, 2.0, 2.5, 3.0)

    def test_campaign_config_maps_shape_and_load(self):
        cfg = ThresholdConfig()
        shape = ArrivalShape.parse("poisson:rel_rate=1.5")
        campaign = cfg.campaign_config(shape, 2.0)
        assert campaign.load == 2.0
        assert campaign.arrival_mode == "poisson"
        assert campaign.arrival_params == (("rel_rate", 1.5),)
        assert campaign.schedulers == cfg.schedulers

    @pytest.mark.parametrize("kw", [
        {"schedulers": ()},
        {"shapes": ()},
        {"load_lo": 2.0, "load_hi": 1.0},
        {"coarse_points": 1},
        {"refine_iters": -1},
        {"p_level": 0.0},
        {"width_lo": 0.9, "width_hi": 0.1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            ThresholdConfig(**kw)

    def test_smoke_config_is_valid_and_small(self):
        cfg = smoke_config()
        assert cfg.schedulers == ("EUA*", "EDF")
        assert {s.name for s in cfg.shapes} == {"nhpp-diurnal", "flash-crowd"}
        assert cfg.coarse_points * cfg.n_replications <= 100


# ----------------------------------------------------------------------
# Characterisation helpers
# ----------------------------------------------------------------------
def _pts(pairs):
    return [
        ThresholdPoint(load=ld, successes=0, decided=0, probability=p,
                       ci_low=max(0.0, p - 0.2), ci_high=min(1.0, p + 0.2))
        for ld, p in pairs
    ]


class TestInterpolateCrossing:
    def test_linear_interpolation(self):
        points = _pts([(1.0, 1.0), (2.0, 0.0)])
        assert _interpolate_crossing(points, 0.5, 0.0, 3.0) == pytest.approx(1.5)

    def test_unequal_interpolation(self):
        points = _pts([(1.0, 0.8), (2.0, 0.2)])
        assert _interpolate_crossing(points, 0.5, 0.0, 3.0) == pytest.approx(1.5)
        assert _interpolate_crossing(points, 0.6, 0.0, 3.0) == pytest.approx(4.0 / 3.0)

    def test_clamps_to_lo_when_already_below(self):
        points = _pts([(1.0, 0.2), (2.0, 0.1)])
        assert _interpolate_crossing(points, 0.5, 0.5, 3.0) == 0.5

    def test_clamps_to_hi_when_never_crossing(self):
        points = _pts([(1.0, 1.0), (2.0, 0.9)])
        assert _interpolate_crossing(points, 0.5, 0.0, 3.0) == 3.0

    def test_empty_points_clamp_to_hi(self):
        assert _interpolate_crossing([], 0.5, 0.0, 3.0) == 3.0

    def test_flat_segment_at_level_returns_left_edge(self):
        points = _pts([(1.0, 0.5), (2.0, 0.4)])
        assert _interpolate_crossing(points, 0.5, 0.0, 3.0) == pytest.approx(1.0)


class TestWilsonBand:
    def test_band_brackets_the_uncertain_region(self):
        points = [
            ThresholdPoint(1.0, 10, 10, 1.0, 0.72, 1.0),
            ThresholdPoint(2.0, 5, 10, 0.5, 0.24, 0.76),
            ThresholdPoint(3.0, 0, 10, 0.0, 0.0, 0.28),
        ]
        assert _wilson_band(points, 0.5, 0.0, 4.0) == (1.0, 3.0)

    def test_defaults_to_sweep_edges_when_undecided(self):
        points = [ThresholdPoint(2.0, 5, 10, 0.5, 0.24, 0.76)]
        assert _wilson_band(points, 0.5, 0.0, 4.0) == (0.0, 4.0)

    def test_non_monotone_noise_widens_not_inverts(self):
        points = [
            ThresholdPoint(1.0, 0, 10, 0.0, 0.0, 0.28),   # confidently below
            ThresholdPoint(3.0, 10, 10, 1.0, 0.72, 1.0),  # confidently above
        ]
        lo, hi = _wilson_band(points, 0.5, 0.0, 4.0)
        assert lo <= hi


# ----------------------------------------------------------------------
# Replication-level Bernoulli (repro.stats.campaign)
# ----------------------------------------------------------------------
def _summary(assurance, requirements):
    return ReplicationSummary(
        seed=0, metrics={}, assurance=assurance, requirements=requirements,
    )


class TestReplicationSuccess:
    REQ = {"T0": [1.0, 0.9], "T1": [1.0, 0.9]}

    def test_all_tasks_attained(self):
        s = _summary({"EDF": {"T0": [9, 10], "T1": [10, 10]}}, self.REQ)
        assert _replication_success(s, "EDF") is True

    def test_one_task_missing_rho_fails(self):
        s = _summary({"EDF": {"T0": [8, 10], "T1": [10, 10]}}, self.REQ)
        assert _replication_success(s, "EDF") is False

    def test_exact_rho_boundary_counts_as_success(self):
        s = _summary({"EDF": {"T0": [9, 10]}}, {"T0": [1.0, 0.9]})
        assert _replication_success(s, "EDF") is True

    def test_censored_replication_is_none(self):
        s = _summary({"EDF": {"T0": [0, 0]}}, {"T0": [1.0, 0.9]})
        assert _replication_success(s, "EDF") is None

    def test_missing_scheduler_is_none(self):
        s = _summary({}, self.REQ)
        assert _replication_success(s, "EDF") is None


# ----------------------------------------------------------------------
# The driver, end to end (tiny but real)
# ----------------------------------------------------------------------
TINY = ThresholdConfig(
    schedulers=("EUA*", "EDF"),
    shapes=(ArrivalShape("poisson"),),
    load_lo=0.5,
    load_hi=3.5,
    coarse_points=4,
    refine_iters=1,
    n_replications=6,
    horizon=0.5,
)


class TestRunThreshold:
    def test_curves_cover_every_scheduler_shape_pair(self):
        result = run_threshold(TINY)
        assert {(c.scheduler, c.shape.name) for c in result.curves} == {
            ("EUA*", "poisson"), ("EDF", "poisson"),
        }
        assert result.curve("EUA*", "poisson").points

    def test_memoisation_shares_campaigns_across_schedulers(self):
        result = run_threshold(TINY)
        # 4 coarse points + at most refine_iters bisections per scheduler,
        # but both schedulers share evaluations at identical loads.
        assert result.n_campaigns <= TINY.coarse_points + 2 * TINY.refine_iters
        assert result.n_simulated == result.n_campaigns * TINY.n_replications

    def test_deterministic_across_runs(self):
        a, b = run_threshold(TINY), run_threshold(TINY)
        assert a.rows() == b.rows()
        assert [c.points for c in a.curves] == [c.points for c in b.curves]

    def test_threshold_lies_in_the_sweep_range(self):
        result = run_threshold(TINY)
        for c in result.curves:
            assert TINY.load_lo <= c.threshold <= TINY.load_hi
            assert TINY.load_lo <= c.ci_low <= c.ci_high <= TINY.load_hi
            assert c.width >= 0.0

    def test_probability_curve_starts_high(self):
        result = run_threshold(TINY)
        for c in result.curves:
            assert c.points[0].probability == 1.0

    def test_metrics_and_directions_agree(self):
        result = run_threshold(TINY)
        metrics, directions = result.metrics(), result.directions()
        assert set(metrics) == set(directions)
        for key in metrics:
            assert directions[key] == (
                "higher" if key.startswith("threshold[") else "lower"
            )

    def test_unknown_curve_raises(self):
        result = run_threshold(TINY)
        with pytest.raises(KeyError):
            result.curve("DASA", "poisson")


class TestArtifact:
    def test_schema_matches_the_gate(self, tmp_path):
        result = run_threshold(TINY)
        path = write_threshold_artifact(result, name="t_test",
                                        directory=str(tmp_path))
        payload = json.loads(path.read_text())
        assert path.name == "BENCH_t_test.json"
        assert payload["name"] == "t_test"
        assert set(payload) == {"name", "metrics", "directions", "meta"}
        assert payload["metrics"] and set(payload["metrics"]) == set(payload["directions"])
        for key in ("schedulers", "shapes", "n_replications", "base_seed",
                    "python", "platform", "cpu_count"):
            assert key in payload["meta"]

    def test_env_var_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ARTIFACTS", str(tmp_path / "art"))
        result = run_threshold(TINY)
        path = write_threshold_artifact(result, name="t_env")
        assert path.parent == tmp_path / "art"
        assert path.exists()


class TestRenderThreshold:
    def test_svg_has_one_series_per_curve(self):
        from repro.viz import render_threshold

        result = run_threshold(TINY)
        svg = render_threshold(result)
        assert svg.startswith("<svg")
        for c in result.curves:
            assert f"{c.scheduler} · {c.shape.name}" in svg
