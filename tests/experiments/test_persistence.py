"""Tests for result persistence (repro.experiments.persistence)."""

import pytest

from repro.experiments import (
    from_json,
    load_result,
    run_figure2,
    run_figure3,
    save_result,
    to_json,
)


@pytest.fixture(scope="module")
def fig2():
    return run_figure2("E1", loads=(0.5, 1.5), seeds=(11,), horizon=1.0)


@pytest.fixture(scope="module")
def fig3():
    return run_figure3(bursts=(1, 2), loads=(0.7,), seeds=(11,), horizon=1.0)


class TestRoundTrip:
    def test_figure2(self, fig2):
        back = from_json(to_json(fig2))
        assert back.energy_setting == fig2.energy_setting
        assert [p.load for p in back.points] == [p.load for p in fig2.points]
        for a, b in zip(fig2.points, back.points):
            for name in a.utility:
                assert b.utility[name].mean == a.utility[name].mean
                assert b.energy[name].half_width == a.energy[name].half_width

    def test_figure3(self, fig3):
        back = from_json(to_json(fig3))
        assert set(back.energy) == set(fig3.energy)
        assert back.series(1) == fig3.series(1)

    def test_file_round_trip(self, fig2, tmp_path):
        path = str(tmp_path / "fig2.json")
        save_result(fig2, path)
        back = load_result(path)
        assert back.rows() == fig2.rows()

    def test_rows_after_reload(self, fig3, tmp_path):
        path = str(tmp_path / "fig3.json")
        save_result(fig3, path)
        assert load_result(path).rows() == fig3.rows()


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            from_json('{"kind": "figure9"}')

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_json(object())

    def test_json_is_stable(self, fig2):
        assert to_json(fig2) == to_json(from_json(to_json(fig2)))
