"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure2_defaults(self):
        args = build_parser().parse_args(["figure2"])
        assert args.energy == "E1"

    def test_figure2_rejects_bad_energy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure2", "--energy", "E9"])

    def test_load_seed_overrides(self):
        args = build_parser().parse_args(
            ["figure2", "--loads", "0.4", "0.8", "--seeds", "1", "2"]
        )
        assert args.loads == [0.4, 0.8]
        assert args.seeds == [1, 2]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "A3" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out and "E(1000)" in out

    def test_schedulers(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "EUA*" in out

    def test_figure2_mini(self, capsys):
        rc = main(["figure2", "--loads", "0.4", "--seeds", "11", "--horizon", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EUA*" in out and "norm_energy" in out

    def test_figure3_mini(self, capsys):
        rc = main(["figure3", "--loads", "0.6", "--seeds", "11", "--horizon", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "norm_energy" in out

    def test_theorems(self, capsys):
        rc = main(["theorems", "--load", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out
        assert "True" in out


class TestNewCommands:
    def test_simulate(self, capsys):
        rc = main(["simulate", "--load", "1.2", "--horizon", "1.0",
                   "--schedulers", "EUA*", "EDF"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "norm_utility" in out and "EUA*" in out

    def test_simulate_unknown_scheduler(self):
        with pytest.raises(KeyError):
            main(["simulate", "--horizon", "0.5", "--schedulers", "bogus"])

    def test_bound(self, capsys):
        rc = main(["bound", "--load", "0.5", "--horizon", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "YDS" in out and "ratio" in out

    def test_ablate_dvs(self, capsys):
        rc = main(["ablate", "dvs", "--seeds", "11", "--horizon", "1.0"])
        assert rc == 0
        assert "energy_ratio" in capsys.readouterr().out

    def test_ablate_fopt(self, capsys):
        rc = main(["ablate", "fopt", "--seeds", "11", "--horizon", "1.0"])
        assert rc == 0
        assert "with_fopt" in capsys.readouterr().out

    def test_ablate_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "everything"])

    def test_figure3_svg_output(self, capsys, tmp_path):
        path = str(tmp_path / "f3.svg")
        rc = main(["figure3", "--loads", "0.6", "--seeds", "11",
                   "--horizon", "0.5", "--svg", path])
        assert rc == 0
        with open(path) as fh:
            assert fh.read().startswith("<svg")

    def test_figure2_svg_output(self, capsys, tmp_path):
        base = str(tmp_path / "f2.svg")
        rc = main(["figure2", "--loads", "0.6", "--seeds", "11",
                   "--horizon", "0.5", "--svg", base])
        assert rc == 0
        import os
        assert os.path.exists(str(tmp_path / "f2_utility.svg"))
        assert os.path.exists(str(tmp_path / "f2_energy.svg"))

    def test_validate_command(self, capsys):
        rc = main(["validate", "--load", "0.6", "--horizon", "0.5"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_sensitivity_ladder(self, capsys):
        rc = main(["sensitivity", "ladder", "--seeds", "11", "--horizon", "0.5"])
        assert rc == 0
        assert "levels" in capsys.readouterr().out

    def test_sensitivity_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sensitivity", "everything"])


class TestProfileAndSpans:
    """The time-attribution surface: profile subcommand + span flags."""

    def test_profile_prints_phase_report(self, capsys):
        rc = main(["profile", "--load", "0.8", "-n", "4",
                   "--horizon", "0.5", "--workers", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase table" in out
        assert "campaign.simulate" in out
        assert "wall-clock" in out
        assert "reps/s" in out

    def test_profile_jsonl_out_roundtrips(self, tmp_path, capsys):
        from repro.obs import phase_report_from_jsonl, phase_report_to_jsonl

        target = tmp_path / "profile.jsonl"
        rc = main(["profile", "--load", "0.8", "-n", "2",
                   "--horizon", "0.5", "--jsonl-out", str(target)])
        assert rc == 0
        text = target.read_text()
        report = phase_report_from_jsonl(text)
        assert phase_report_to_jsonl(report) == text
        assert report.phase_total("campaign.simulate") > 0.0

    def test_profile_dashboard_svg(self, tmp_path, capsys):
        import xml.etree.ElementTree as ET

        target = tmp_path / "profile.svg"
        rc = main(["profile", "--load", "0.8", "-n", "2",
                   "--horizon", "0.5", "--dashboard", str(target)])
        assert rc == 0
        root = ET.fromstring(target.read_text())
        assert root.tag.endswith("svg")

    def test_stats_spans_flag_appends_report(self, capsys):
        rc = main(["stats", "--load", "0.8", "-n", "2",
                   "--horizon", "0.5", "--rho", "0.5", "--spans"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign verdict:" in out
        assert "phase table" in out

    def test_stats_dashboard_implies_spans(self, tmp_path, capsys):
        target = tmp_path / "stats.svg"
        rc = main(["stats", "--load", "0.8", "-n", "2", "--horizon", "0.5",
                   "--rho", "0.5", "--dashboard", str(target)])
        assert rc == 0
        assert target.exists()

    def test_obs_spans_flag_appends_report(self, capsys):
        rc = main(["obs", "--load", "0.4", "--horizon", "0.5", "--spans"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "decide_freq" in out  # profiler summary still there
        assert "engine.run" in out   # plus the span phase table

    def test_obs_without_spans_unchanged(self, capsys):
        rc = main(["obs", "--load", "0.4", "--horizon", "0.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engine.run" not in out


class TestArrivalShapes:
    def test_arrivals_lists_the_registry(self, capsys):
        assert main(["arrivals"]) == 0
        out = capsys.readouterr().out
        for name in ("nhpp-diurnal", "flash-crowd", "pareto", "trace-loop"):
            assert name in out

    def test_arrivals_arg_parses_name_and_params(self):
        args = build_parser().parse_args(
            ["simulate", "--arrivals", "nhpp-diurnal:peak_frac=0.25"]
        )
        assert args.arrivals.name == "nhpp-diurnal"
        assert dict(args.arrivals.params) == {"peak_frac": 0.25}

    def test_arrivals_arg_rejects_unknown_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--arrivals", "nope"])

    def test_simulate_with_registry_shape(self, capsys):
        rc = main(["simulate", "--load", "0.6", "--horizon", "0.5",
                   "--arrivals", "flash-crowd", "--schedulers", "EDF"])
        assert rc == 0
        assert "EDF" in capsys.readouterr().out

    def test_check_with_registry_shape(self, capsys):
        rc = main(["check", "--load", "0.6", "--horizon", "0.5",
                   "--arrivals", "pareto:alpha=2.0"])
        assert rc == 0
        assert "all clean" in capsys.readouterr().out

    def test_stats_with_registry_shape(self, capsys):
        rc = main(["stats", "--load", "0.5", "--horizon", "0.5", "-n", "4",
                   "--arrivals", "nhpp-diurnal", "--rho", "0.5"])
        out = capsys.readouterr().out
        assert rc in (0, 1)  # verdict depends on the tiny sample
        assert "EUA*" in out

    def test_fuzz_registry_shapes_flag(self, capsys):
        rc = main(["fuzz", "--budget", "4", "--seed", "5", "--no-corpus",
                   "--registry-shapes"])
        assert rc == 0
        assert "4/4 scenarios" in capsys.readouterr().out


class TestThresholdCommand:
    TINY = ["threshold", "--schedulers", "EDF", "--shapes", "poisson",
            "--load-range", "0.5", "3.5", "--points", "3", "--refine", "1",
            "-n", "4", "--horizon", "0.5"]

    def test_tiny_sweep_prints_the_table(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "width" in out
        assert "EDF" in out and "poisson" in out

    def test_smoke_flag_parses(self):
        args = build_parser().parse_args(["threshold", "--smoke"])
        assert args.smoke and args.func is not None

    def test_svg_and_bench_outputs(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ARTIFACTS", str(tmp_path))
        svg = tmp_path / "phase.svg"
        rc = main(self.TINY + ["--svg", str(svg), "--bench",
                               "--bench-name", "t_cli"])
        assert rc == 0
        assert svg.read_text().startswith("<svg")
        assert (tmp_path / "BENCH_t_cli.json").exists()

    def test_verbose_logs_campaign_evaluations(self, capsys):
        assert main(self.TINY + ["--verbose"]) == 0
        assert "coarse sweep" in capsys.readouterr().out

    def test_rejects_bad_load_range(self):
        with pytest.raises(ValueError):
            main(self.TINY[:0] + ["threshold", "--load-range", "3.0", "1.0"])
