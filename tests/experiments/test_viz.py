"""Tests for the SVG renderer (repro.viz)."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments import run_figure2, run_figure3
from repro.viz import LineChart, render_figure2, render_figure3


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_xml(self):
        svg = LineChart("t", "x", "y").add_series("s", [(0, 0), (1, 1)]).to_svg()
        root = _parse(svg)
        assert root.tag.endswith("svg")

    def test_requires_series(self):
        with pytest.raises(ValueError):
            LineChart("t", "x", "y").to_svg()

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            LineChart("t", "x", "y").add_series("s", [])

    def test_title_and_labels_present(self):
        svg = LineChart("My Title", "load", "energy").add_series(
            "s", [(0, 0), (1, 1)]
        ).to_svg()
        assert "My Title" in svg
        assert "load" in svg
        assert "energy" in svg

    def test_legend_entries(self):
        chart = LineChart("t", "x", "y")
        chart.add_series("alpha", [(0, 1)])
        chart.add_series("beta", [(0, 2)])
        svg = chart.to_svg()
        assert "alpha" in svg and "beta" in svg

    def test_escapes_markup(self):
        svg = LineChart("<b>", "x", "y").add_series("<s>", [(0, 1)]).to_svg()
        _parse(svg)  # would raise on raw '<b>'
        assert "&lt;b&gt;" in svg

    def test_one_path_per_series(self):
        chart = LineChart("t", "x", "y")
        chart.add_series("a", [(0, 0), (1, 1)])
        chart.add_series("b", [(0, 1), (1, 0)])
        root = _parse(chart.to_svg())
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        assert len(paths) == 2

    def test_baseline_reference_line(self):
        svg = LineChart("t", "x", "y", baseline=1.0).add_series(
            "s", [(0, 0.5), (1, 1.5)]
        ).to_svg()
        assert "stroke-dasharray" in svg

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        LineChart("t", "x", "y").add_series("s", [(0, 1)]).save(str(path))
        assert path.read_text().startswith("<svg")

    def test_points_sorted_by_x(self):
        chart = LineChart("t", "x", "y")
        chart.add_series("s", [(2, 1), (0, 0), (1, 2)])
        assert chart._series[0][1] == [
            (0.0, 0.0, 0.0), (1.0, 2.0, 0.0), (2.0, 1.0, 0.0)
        ]

    def test_error_bars_rendered(self):
        chart = LineChart("t", "x", "y")
        chart.add_series("s", [(0, 1), (1, 2)], errors=[0.25, 0.0])
        root = _parse(chart.to_svg())
        lines = [e for e in root.iter() if e.tag.endswith("line")]
        # Only the point with a positive half-width grows a bar: one
        # vertical stem + two caps beyond the axis/legend strokes.
        bare = len(_parse(
            LineChart("t", "x", "y").add_series("s", [(0, 1), (1, 2)]).to_svg()
        ).findall(".//{http://www.w3.org/2000/svg}line"))
        assert len(lines) == bare + 3

    def test_error_bars_extend_y_range(self):
        chart = LineChart("t", "x", "y")
        chart.add_series("s", [(0, 1.0)], errors=[9.0])
        # The bar top (y=10) must fit inside the auto-scaled axis.
        x_lo, x_hi, y_lo, y_hi = chart._bounds()
        assert y_hi >= 10.0

    def test_error_length_mismatch_rejected(self):
        chart = LineChart("t", "x", "y")
        with pytest.raises(ValueError):
            chart.add_series("s", [(0, 1), (1, 2)], errors=[0.1])


class TestFigureRenderers:
    @pytest.fixture(scope="class")
    def fig2(self):
        return run_figure2("E1", loads=(0.4, 1.4), seeds=(11,), horizon=1.0)

    def test_render_figure2(self, fig2, tmp_path):
        path = tmp_path / "f2.svg"
        svg = render_figure2(fig2, "energy", str(path))
        _parse(svg)
        assert path.exists()
        assert "EUA*" in svg

    def test_render_figure2_rejects_bad_metric(self, fig2):
        with pytest.raises(ValueError):
            render_figure2(fig2, "latency")

    def test_render_figure3(self, tmp_path):
        fig3 = run_figure3(bursts=(1, 2), loads=(0.6,), seeds=(11,), horizon=1.0)
        svg = render_figure3(fig3, str(tmp_path / "f3.svg"))
        _parse(svg)
        assert "&lt;1,P&gt;" in svg or "<1,P>" in svg


class TestPhaseDashboard:
    """SVG time-attribution dashboard (repro.viz.render_phase_report)."""

    @pytest.fixture()
    def report(self):
        from repro.obs import Telemetry, build_phase_report

        telemetry = Telemetry()
        tr = telemetry.tracer
        with tr.span("campaign"):
            with tr.span("campaign.plan"):
                pass
            with tr.span("campaign.simulate"):
                pass
        telemetry.interval("pid-1", 0.0, 0.4)
        telemetry.interval("pid-2", 0.1, 0.3)
        telemetry.count("campaign.reps_simulated", 8)
        telemetry.count("campaign.cache_hits", 1)
        telemetry.count("campaign.cache_misses", 3)
        return build_phase_report(telemetry, wall_clock=0.5)

    def test_valid_xml_with_phases_and_lanes(self, report):
        from repro.viz import render_phase_report

        svg = render_phase_report(report)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        text = ET.tostring(root, encoding="unicode")
        assert "campaign.simulate" in text
        assert "pid-2" in text

    def test_header_carries_rates(self, report):
        from repro.viz import render_phase_report

        svg = render_phase_report(report)
        assert "cache hit rate" in svg
        assert "reps/s" in svg
        assert "wall-clock" in svg

    def test_save_to_path(self, report, tmp_path):
        from repro.viz import render_phase_report

        target = tmp_path / "dash.svg"
        svg = render_phase_report(report, path=target)
        assert target.read_text() == svg

    def test_empty_report_still_renders(self):
        from repro.obs import PhaseReport
        from repro.viz import render_phase_report

        svg = render_phase_report(PhaseReport())
        assert ET.fromstring(svg).tag.endswith("svg")

    def test_escapes_markup_in_phase_names(self):
        from repro.obs import SpanTracer, build_phase_report
        from repro.viz import render_phase_report

        tr = SpanTracer()
        with tr.span("<evil&phase>"):
            pass
        svg = render_phase_report(build_phase_report(tr))
        assert "<evil" not in svg
        assert "&evil" not in svg
        ET.fromstring(svg)  # must stay well-formed
