"""The process-pool sweep executor (repro.experiments.parallel).

The load-bearing property is **determinism under parallelism**: any
sweep at ``max_workers=4`` must be value-identical to the same sweep at
``max_workers=1`` — per-scheduler utility and energy, job statuses, and
the merged metrics registries.  Plus the plumbing: spec round-trips,
chunking, the serial fallback, and the lambda guard in the ablation
grid.
"""

import warnings

import numpy as np
import pytest

from repro.core import EUAStar
from repro.experiments import synthesize_taskset
from repro.experiments.parallel import (
    CompareUnit,
    PlatformSpec,
    SchedulerSpec,
    WorkloadSpec,
    default_chunksize,
    merged_metrics,
    run_sweep,
    run_units,
)
from repro.obs import metrics_to_jsonl
from repro.sched import DASA, EDFStatic, make_scheduler
from repro.sim import Platform, compare, materialize

WORKERS = 4


def _units(collect_metrics=False, loads=(0.5, 1.2), seeds=(11, 13)):
    specs = (
        SchedulerSpec.registry("EUA*"),
        SchedulerSpec.registry("EDF"),
        SchedulerSpec.of(EUAStar, name="noDVS", use_dvs=False),
    )
    return [
        CompareUnit(
            key=(load, seed),
            schedulers=specs,
            workload=WorkloadSpec(load=load, seed=seed, horizon=0.4),
            platform=PlatformSpec(energy="E1"),
            collect_metrics=collect_metrics,
        )
        for load in loads
        for seed in seeds
    ]


# ----------------------------------------------------------------------
# Determinism under parallelism
# ----------------------------------------------------------------------
def test_run_units_parallel_identical_to_serial():
    serial = run_units(_units(), max_workers=1)
    parallel = run_units(_units(), max_workers=WORKERS)
    assert [o.key for o in serial] == [o.key for o in parallel]
    for s, p in zip(serial, parallel):
        assert list(s.results) == list(p.results)  # scheduler order kept
        for name in s.results:
            assert s.results[name].energy == p.results[name].energy
            assert (
                s.results[name].metrics.accrued_utility
                == p.results[name].metrics.accrued_utility
            )
            assert [j.status for j in s.results[name].jobs] == [
                j.status for j in p.results[name].jobs
            ]


def test_merged_metrics_identical_across_worker_counts():
    serial = merged_metrics(run_units(_units(collect_metrics=True), max_workers=1))
    parallel = merged_metrics(
        run_units(_units(collect_metrics=True), max_workers=WORKERS)
    )
    assert set(serial) == set(parallel)
    for name in serial:
        assert metrics_to_jsonl(serial[name]) == metrics_to_jsonl(parallel[name])


def test_compare_workers_identical_to_serial():
    rng = np.random.default_rng(11)
    taskset = synthesize_taskset(0.9, rng)
    trace = materialize(taskset, 0.4, rng)
    schedulers = lambda: [make_scheduler("EUA*"), DASA(), EDFStatic()]  # noqa: E731
    one = compare(schedulers(), trace, platform=Platform(), workers=1)
    four = compare(schedulers(), trace, platform=Platform(), workers=WORKERS)
    assert list(one) == list(four)
    for name in one:
        assert one[name].energy == four[name].energy
        assert one[name].metrics.accrued_utility == four[name].metrics.accrued_utility
        assert [j.status for j in one[name].jobs] == [
            j.status for j in four[name].jobs
        ]


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
def test_scheduler_spec_registry_builds_fresh_instances():
    spec = SchedulerSpec.registry("EUA*")
    a, b = spec.build(), spec.build()
    assert a is not b
    assert a.name == "EUA*"
    assert spec.display_name == "EUA*"


def test_scheduler_spec_of_carries_kwargs():
    spec = SchedulerSpec.of(EUAStar, name="noDVS", use_dvs=False)
    sched = spec.build()
    assert sched.name == "noDVS"
    assert sched.use_dvs is False
    assert spec.display_name == "noDVS"


def test_scheduler_spec_empty_is_an_error():
    with pytest.raises(ValueError):
        SchedulerSpec().build()


def test_workload_spec_build_is_reproducible():
    spec = WorkloadSpec(load=0.8, seed=17, horizon=0.4)
    ts1, tr1 = spec.build()
    ts2, tr2 = spec.build()
    assert len(tr1) == len(tr2)
    assert [(r.task.name, r.release, r.demand) for r in tr1] == [
        (r.task.name, r.release, r.demand) for r in tr2
    ]
    assert [t.allocation for t in ts1] == [t.allocation for t in ts2]


def test_platform_spec_custom_ladder():
    platform = PlatformSpec(energy="E1", scale_levels=(360.0, 1000.0)).build()
    assert tuple(platform.scale.levels) == (360.0, 1000.0)


# ----------------------------------------------------------------------
# Pool mechanics
# ----------------------------------------------------------------------
def test_default_chunksize_bounds():
    assert default_chunksize(0, 4) == 1
    assert default_chunksize(3, 4) == 1
    assert default_chunksize(64, 4) == 4
    assert default_chunksize(1000, 8) >= 1


def test_run_sweep_serial_path_never_touches_pool(monkeypatch):
    import repro.experiments.parallel as par

    def boom(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("pool constructed on the serial path")

    monkeypatch.setattr(par, "ProcessPoolExecutor", boom)
    assert run_sweep(abs, [-1, 2, -3], max_workers=1) == [1, 2, 3]


def test_run_sweep_falls_back_to_serial_on_pool_failure(monkeypatch):
    import repro.experiments.parallel as par

    def broken_pool(*args, **kwargs):
        raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(par, "ProcessPoolExecutor", broken_pool)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out = run_sweep(abs, [-1, 2, -3], max_workers=4)
    assert out == [1, 2, 3]
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)


def test_run_sweep_preserves_input_order():
    # chunksize 1 maximises interleaving; order must still hold.
    items = list(range(20))
    assert run_sweep(str, items, max_workers=WORKERS, chunksize=1) == [
        str(i) for i in items
    ]


def test_policy_grid_rejects_lambdas_with_workers():
    from repro.experiments import run_policy_grid

    with pytest.raises(ValueError, match="SchedulerSpec"):
        run_policy_grid(
            [lambda: EUAStar()], load=0.5, seeds=(11,), horizon=0.2, workers=2
        )


def test_policy_grid_spec_path_matches_legacy_serial():
    from repro.experiments import run_policy_grid

    legacy = run_policy_grid(
        [lambda: EUAStar(name="EUA*"), lambda: EDFStatic(name="EDF")],
        load=0.8,
        seeds=(11, 13),
        horizon=0.4,
    )
    spec = run_policy_grid(
        [SchedulerSpec.of(EUAStar, name="EUA*"), SchedulerSpec.of(EDFStatic, name="EDF")],
        load=0.8,
        seeds=(11, 13),
        horizon=0.4,
    )
    assert list(legacy) == list(spec)
    for name in legacy:
        assert [r.energy for r in legacy[name]] == [r.energy for r in spec[name]]
        assert [r.metrics.accrued_utility for r in legacy[name]] == [
            r.metrics.accrued_utility for r in spec[name]
        ]
