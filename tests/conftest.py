"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand, NormalDemand
from repro.sim import Platform, Task, TaskSet
from repro.tuf import LinearTUF, StepTUF

# ----------------------------------------------------------------------
# Hypothesis profiles.  CI must be reproducible run-to-run: the "ci"
# profile derandomizes example generation (the same examples every run,
# derived from each test's source) and drops the per-example deadline,
# which only flags slow shared runners, not bugs.  Local runs keep the
# randomized "dev" profile so new examples are still being explored.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", settings.default)
settings.load_profile("ci" if os.environ.get("CI") else "dev")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def scale() -> FrequencyScale:
    return FrequencyScale.powernow_k6()


@pytest.fixture
def e1() -> EnergyModel:
    return EnergyModel.e1()


@pytest.fixture
def e3(scale) -> EnergyModel:
    return EnergyModel.e3(scale.f_max)


@pytest.fixture
def platform_e1(scale, e1) -> Platform:
    return Platform(scale, e1)


@pytest.fixture
def platform_e3(scale, e3) -> Platform:
    return Platform(scale, e3)


def make_periodic_task(
    name: str = "T",
    window: float = 0.1,
    umax: float = 10.0,
    mean: float = 20.0,
    nu: float = 1.0,
    rho: float = 0.96,
    deterministic: bool = False,
    tuf: str = "step",
) -> Task:
    """One periodic task with a step or linear TUF."""
    demand = DeterministicDemand(mean) if deterministic else NormalDemand(mean, mean * 1e-6)
    shape = (
        StepTUF(height=umax, deadline=window)
        if tuf == "step"
        else LinearTUF(max_utility=umax, termination=window)
    )
    return Task(
        name=name,
        tuf=shape,
        demand=demand,
        uam=UAMSpec(1, window),
        nu=nu,
        rho=rho,
    )


@pytest.fixture
def small_taskset() -> TaskSet:
    """Four non-harmonic periodic step-TUF tasks, ~load 0.6 at 1000 MHz."""
    tasks = [
        make_periodic_task("A", window=0.047, umax=60.0, mean=7.0),
        make_periodic_task("B", window=0.110, umax=35.0, mean=16.0),
        make_periodic_task("C", window=0.230, umax=20.0, mean=35.0),
        make_periodic_task("D", window=0.430, umax=10.0, mean=64.0),
    ]
    return TaskSet(tasks).scaled_to_load(0.6, 1000.0)


@pytest.fixture
def overload_taskset(small_taskset) -> TaskSet:
    return small_taskset.scaled_to_load(1.6, 1000.0)
