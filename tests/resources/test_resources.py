"""Tests for the shared-resource model, REUA, and the exclusion audit."""

import numpy as np
import pytest

from repro.arrivals import UAMSpec
from repro.core import EUAStar
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import DeterministicDemand
from repro.resources import (
    REUA,
    ResourceError,
    ResourceMap,
    audit_mutual_exclusion,
)
from repro.sim import Engine, Job, JobStatus, Task, TaskSet, WorkloadTrace
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.sim.workload import JobSpec
from repro.tuf import StepTUF


def _task(name, window=1.0, mean=100.0, umax=10.0):
    return Task(name, StepTUF(umax, window), DeterministicDemand(mean), UAMSpec(1, window))


def _view(tasks, jobs, time=0.0):
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=FrequencyScale.powernow_k6(),
        energy_model=EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window={},
    )


def _trace(task_jobs, horizon):
    specs = []
    taskset = TaskSet([t for t, _ in task_jobs])
    for task, jobs in task_jobs:
        for idx, (release, demand) in enumerate(jobs):
            specs.append(JobSpec(task, idx, release, demand))
    return WorkloadTrace(taskset, horizon, specs)


class TestResourceMap:
    def test_resources_of(self):
        rm = ResourceMap({"A": {"bus"}, "B": {"bus", "radio"}})
        assert rm.resources_of("A") == frozenset({"bus"})
        assert rm.resources_of("C") == frozenset()
        assert rm.all_resources == {"bus", "radio"}

    def test_rejects_empty_resource_name(self):
        with pytest.raises(ResourceError):
            ResourceMap({"A": {""}})

    def test_holder_is_started_job(self):
        a, b = _task("A"), _task("B")
        rm = ResourceMap({"A": {"bus"}, "B": {"bus"}})
        ja, jb = Job(a, 0, 0.0, 100.0), Job(b, 0, 0.0, 100.0)
        view = _view([a, b], [ja, jb])
        assert rm.holders(view) == {}
        ja.executed = 10.0
        assert rm.holders(view) == {"bus": ja}
        assert rm.blocker_of(jb, view) is ja
        assert rm.is_blocked(jb, view)
        assert not rm.is_blocked(ja, view)

    def test_no_blocking_across_disjoint_resources(self):
        a, b = _task("A"), _task("B")
        rm = ResourceMap({"A": {"bus"}, "B": {"radio"}})
        ja, jb = Job(a, 0, 0.0, 100.0), Job(b, 0, 0.0, 100.0)
        ja.executed = 10.0
        view = _view([a, b], [ja, jb])
        assert rm.blocker_of(jb, view) is None

    def test_blocked_jobs_listing(self):
        a, b = _task("A"), _task("B")
        rm = ResourceMap({"A": {"bus"}, "B": {"bus"}})
        ja, jb = Job(a, 0, 0.0, 100.0), Job(b, 0, 0.0, 100.0)
        ja.executed = 1.0
        view = _view([a, b], [ja, jb])
        assert rm.blocked_jobs(view) == [jb]


class TestREUADecisions:
    def test_dispatches_blocker_of_blocked_head(self):
        # urgent B shares a resource with already-started A: REUA must
        # run A (the blocker) even though B heads the schedule.
        a = _task("A", window=1.0, mean=200.0, umax=5.0)
        b = _task("B", window=0.4, mean=50.0, umax=50.0)
        rm = ResourceMap({"A": {"bus"}, "B": {"bus"}})
        sched = REUA(rm)
        sched.setup(TaskSet([a, b]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        ja, jb = Job(a, 0, 0.0, 200.0), Job(b, 0, 0.1, 50.0)
        ja.executed = 50.0
        d = sched.decide(_view([a, b], [ja, jb], time=0.1))
        assert d.job is ja
        assert sched.inherited_dispatches == 1

    def test_unblocked_head_runs_directly(self):
        a, b = _task("A"), _task("B", window=0.5)
        rm = ResourceMap({})
        sched = REUA(rm)
        sched.setup(TaskSet([a, b]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        ja, jb = Job(a, 0, 0.0, 100.0), Job(b, 0, 0.0, 100.0)
        d = sched.decide(_view([a, b], [ja, jb]))
        assert d.job is jb  # plain EDF-by-critical-time head

    def test_blocking_delay_counts_against_feasibility(self):
        # B alone is feasible, but waiting for A's remaining 300 Mc
        # pushes it past its termination: REUA must not admit B.
        a = _task("A", window=1.0, mean=400.0)
        b = _task("B", window=0.35, mean=50.0)
        rm = ResourceMap({"A": {"bus"}, "B": {"bus"}})
        sched = REUA(rm)
        sched.setup(TaskSet([a, b]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        ja, jb = Job(a, 0, 0.0, 400.0), Job(b, 0, 0.0, 50.0)
        ja.executed = 100.0  # 300 Mc remain -> B ready at 0.3, needs 0.05
        d = sched.decide(_view([a, b], [ja, jb], time=0.0))
        # Head is A's chain either way; B is not admitted to sigma and
        # crucially not aborted (it may refeasibilise if A finishes early).
        assert d.job is ja
        assert jb not in d.aborts


class TestEndToEndWithEngine:
    def _run(self, scheduler, task_jobs, horizon=2.0):
        trace = _trace(task_jobs, horizon)
        cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
        return Engine(trace, scheduler, cpu, record_trace=True).run()

    def test_reua_serialises_resource_holders(self):
        a = _task("A", window=1.0, mean=300.0)
        b = _task("B", window=1.2, mean=300.0)
        rm = ResourceMap({"A": {"bus"}, "B": {"bus"}})
        result = self._run(
            REUA(rm), [(a, [(0.0, 300.0)]), (b, [(0.1, 300.0)])]
        )
        assert audit_mutual_exclusion(result, rm) == []
        done = [j for j in result.jobs if j.status is JobStatus.COMPLETED]
        assert len(done) == 2

    def test_plain_eua_violates_exclusion(self):
        # Control experiment: resource-oblivious EUA* interleaves the
        # two holders and the audit catches it.
        a = _task("A", window=1.0, mean=300.0, umax=5.0)
        b = _task("B", window=0.6, mean=300.0, umax=50.0)
        rm = ResourceMap({"A": {"bus"}, "B": {"bus"}})
        result = self._run(
            EUAStar(), [(a, [(0.0, 300.0)]), (b, [(0.1, 300.0)])]
        )
        assert audit_mutual_exclusion(result, rm) != []

    def test_reua_random_workloads_stay_clean(self):
        rng = np.random.default_rng(91)
        tasks = [
            _task("A", window=0.31, mean=30.0, umax=20.0),
            _task("B", window=0.47, mean=40.0, umax=40.0),
            _task("C", window=0.61, mean=50.0, umax=10.0),
        ]
        rm = ResourceMap({"A": {"bus"}, "B": {"bus", "radio"}, "C": {"radio"}})
        jobs = []
        for task in tasks:
            releases = np.arange(0.0, 1.8, task.uam.window)
            jobs.append((task, [(float(r), task.demand.mean) for r in releases]))
        result = self._run(REUA(rm), jobs, horizon=2.5)
        assert audit_mutual_exclusion(result, rm) == []
        # Work still gets done despite the serialisation.
        assert result.metrics.completed >= result.metrics.released * 0.6

    def test_audit_requires_trace(self):
        a = _task("A")
        rm = ResourceMap({"A": {"bus"}})
        trace = _trace([(a, [(0.0, 100.0)])], 1.0)
        cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
        result = Engine(trace, REUA(rm), cpu, record_trace=False).run()
        with pytest.raises(ValueError):
            audit_mutual_exclusion(result, rm)
