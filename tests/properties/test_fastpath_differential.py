"""Differential properties: incremental hot paths vs naive references.

The fast paths introduced for sweep throughput — the suffix-refolding
:class:`~repro.core.IncrementalSchedule`, the memoized
``offlineComputing`` front-end, the precomputed per-ladder UER
denominator table, and the per-frequency energy-per-cycle cache — all
promise **bit-identical** results to their naive reference
implementations (kept importable under ``*_reference`` names).  Any
float that differs, even in the last ULP, is a bug: a drifted
comparison can flip a feasibility verdict and change the schedule.

All equality assertions here are exact (``==``), never approximate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import UAMSpec
from repro.core import (
    EUAStar,
    IncrementalSchedule,
    clear_offline_cache,
    insert_by_critical_time_reference,
    job_uer,
    job_uer_reference,
    offline_computing,
    offline_computing_reference,
    predicted_completions,
    schedule_feasible_reference,
    uer_optimal_frequency,
)
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import DeterministicDemand, NormalDemand
from repro.sim import Engine, Job, Task, TaskSet, materialize
from repro.tuf import LinearTUF, StepTUF


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def job_pools(draw):
    """A batch of candidate jobs plus a probe time — raw material for
    σ-construction differential runs."""
    n = draw(st.integers(min_value=2, max_value=12))
    now = draw(st.floats(min_value=0.0, max_value=0.3))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=0.4))
        window = draw(st.floats(min_value=0.02, max_value=0.8))
        mean = draw(st.floats(min_value=5.0, max_value=400.0))
        task = Task(
            f"T{i}",
            StepTUF(draw(st.floats(min_value=1.0, max_value=50.0)), window),
            DeterministicDemand(mean),
            UAMSpec(1, window),
        )
        jobs.append(Job(task, 0, release, mean))
    return jobs, now


@st.composite
def uam_scenarios(draw, tuf_shape="step"):
    """A synthesised UAM task set plus a materialisation seed."""
    n = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    load = draw(st.floats(min_value=0.3, max_value=1.9))
    tasks = []
    for i in range(n):
        window = draw(st.floats(min_value=0.05, max_value=0.7))
        umax = draw(st.floats(min_value=1.0, max_value=100.0))
        mean = window * 90.0
        if tuf_shape == "step":
            tuf, nu = StepTUF(umax, window), 1.0
        else:
            tuf, nu = LinearTUF(umax, window), 0.3
        tasks.append(
            Task(f"T{i}", tuf, NormalDemand(mean, mean * 0.1),
                 UAMSpec(1, window), nu=nu, rho=0.9)
        )
    return TaskSet(tasks).scaled_to_load(load, 1000.0), seed


def _run(taskset, seed, policy, horizon=1.2, energy=None):
    rng = np.random.default_rng(seed)
    trace = materialize(taskset, horizon, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), energy or EnergyModel.e1())
    return Engine(trace, policy, cpu, record_trace=True).run()


def _segments(result):
    return [(s.start, s.end, s.job_key, s.frequency) for s in result.trace.segments]


# ----------------------------------------------------------------------
# σ construction: IncrementalSchedule vs the naive copy-and-rewalk
# ----------------------------------------------------------------------
@given(job_pools())
@settings(max_examples=80, deadline=None)
def test_incremental_probes_match_reference(pool):
    """Every probe verdict, the final order, and every predicted
    completion float must be bit-identical to the reference path."""
    jobs, now = pool
    f_max = 1000.0
    inc = IncrementalSchedule(now, f_max)
    sigma = []
    for job in jobs:
        tentative = insert_by_critical_time_reference(sigma, job)
        ref_ok = schedule_feasible_reference(tentative, now, f_max)
        pos = inc.try_insert(job)
        assert (pos >= 0) == ref_ok
        if ref_ok:
            sigma = tentative
            assert sigma[pos] is job
        assert [j.key for j in inc] == [j.key for j in sigma]
        assert inc.completions() == predicted_completions(sigma, now, f_max)


@given(job_pools())
@settings(max_examples=40, deadline=None)
def test_incremental_probes_match_reference_ranked_order(pool):
    """Same identity when candidates arrive in UER order (the order
    EUA* actually probes in), including partially executed jobs."""
    jobs, now = pool
    f_max = 1000.0
    model = EnergyModel.e1()
    for i, job in enumerate(jobs):
        if i % 3 == 1:
            job.executed = 0.25 * job.task.allocation
    ranked = sorted(
        jobs, key=lambda j: job_uer(j, now, f_max, model), reverse=True
    )
    inc = IncrementalSchedule(now, f_max)
    sigma = []
    for job in ranked:
        tentative = insert_by_critical_time_reference(sigma, job)
        ref_ok = schedule_feasible_reference(tentative, now, f_max)
        assert (inc.try_insert(job) >= 0) == ref_ok
        if ref_ok:
            sigma = tentative
    assert [j.key for j in inc] == [j.key for j in sigma]
    assert inc.completions() == predicted_completions(sigma, now, f_max)


# ----------------------------------------------------------------------
# End to end: EUA* incremental arm vs reference arm
# ----------------------------------------------------------------------
@given(uam_scenarios())
@settings(max_examples=20, deadline=None)
def test_euastar_incremental_equals_reference_step(scenario):
    taskset, seed = scenario
    fast = _run(taskset, seed, EUAStar(incremental=True))
    slow = _run(taskset, seed, EUAStar(incremental=False))
    assert fast.metrics.accrued_utility == slow.metrics.accrued_utility
    assert fast.energy == slow.energy
    assert [j.status for j in fast.jobs] == [j.status for j in slow.jobs]
    assert _segments(fast) == _segments(slow)


@given(uam_scenarios(tuf_shape="linear"))
@settings(max_examples=15, deadline=None)
def test_euastar_incremental_equals_reference_linear_e3(scenario):
    """Linear TUFs + the fixed-power E3 model: the DVS decisions (and
    therefore segment frequencies) must also be identical."""
    taskset, seed = scenario
    e3 = EnergyModel.e3(1000.0)
    fast = _run(taskset, seed, EUAStar(incremental=True), energy=e3)
    slow = _run(taskset, seed, EUAStar(incremental=False), energy=e3)
    assert fast.metrics.accrued_utility == slow.metrics.accrued_utility
    assert fast.energy == slow.energy
    assert [j.status for j in fast.jobs] == [j.status for j in slow.jobs]
    assert _segments(fast) == _segments(slow)


# ----------------------------------------------------------------------
# offlineComputing memo and the shared UER denominator table
# ----------------------------------------------------------------------
@given(uam_scenarios())
@settings(max_examples=25, deadline=None)
def test_offline_computing_matches_reference(scenario):
    taskset, _ = scenario
    clear_offline_cache()
    scale = FrequencyScale.powernow_k6()
    model = EnergyModel.e1()
    ref = offline_computing_reference(taskset, scale, model)
    first = offline_computing(taskset, scale, model)   # cold: fills the memo
    second = offline_computing(taskset, scale, model)  # warm: cache hit
    assert first == ref
    assert second == ref
    assert first is not second  # callers own their dicts


@given(uam_scenarios())
@settings(max_examples=15, deadline=None)
def test_offline_cache_keyed_by_platform(scenario):
    """One task set probed under two energy models must not cross-feed."""
    taskset, _ = scenario
    clear_offline_cache()
    scale = FrequencyScale.powernow_k6()
    e1, e3 = EnergyModel.e1(), EnergyModel.e3(scale.f_max)
    assert offline_computing(taskset, scale, e1) == offline_computing_reference(
        taskset, scale, e1
    )
    assert offline_computing(taskset, scale, e3) == offline_computing_reference(
        taskset, scale, e3
    )
    # warm reads still segregated
    assert offline_computing(taskset, scale, e1) == offline_computing_reference(
        taskset, scale, e1
    )


@given(uam_scenarios())
@settings(max_examples=25, deadline=None)
def test_uer_optimal_frequency_epc_table_identical(scenario):
    """The precomputed {level: E(f)} table changes no f° choice."""
    taskset, _ = scenario
    scale = FrequencyScale.powernow_k6()
    for model in (
        EnergyModel.e1(),
        EnergyModel.e2(scale.f_max),
        EnergyModel.e3(scale.f_max),
    ):
        epc = {f: model.energy_per_cycle(f) for f in scale.levels}
        for task in taskset:
            assert uer_optimal_frequency(task, scale, model) == uer_optimal_frequency(
                task, scale, model, _epc=epc
            )


# ----------------------------------------------------------------------
# Energy-per-cycle memo and the online UER
# ----------------------------------------------------------------------
@given(st.floats(min_value=50.0, max_value=2000.0))
@settings(max_examples=60, deadline=None)
def test_energy_per_cycle_memo_bitwise(f):
    for fresh, warm in (
        (EnergyModel.e1(), EnergyModel.e1()),
        (EnergyModel.e2(1000.0), EnergyModel.e2(1000.0)),
        (EnergyModel.e3(1000.0), EnergyModel.e3(1000.0)),
    ):
        warm.energy_per_cycle(f)  # populate the cache
        assert warm.energy_per_cycle(f) == fresh.energy_per_cycle(f)


def test_energy_per_cycle_still_rejects_nonpositive():
    model = EnergyModel.e1()
    from repro.cpu import EnergyError

    with pytest.raises(EnergyError):
        model.energy_per_cycle(0.0)
    with pytest.raises(EnergyError):
        model.energy_per_cycle(-1.0)


@given(job_pools())
@settings(max_examples=40, deadline=None)
def test_job_uer_reference_alias_identical(pool):
    jobs, now = pool
    model = EnergyModel.e1()
    for job in jobs:
        for f in (360.0, 550.0, 1000.0):
            assert job_uer(job, now, f, model) == job_uer_reference(
                job, now, f, model
            )
