"""Property-based tests on the Chebyshev allocation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.demand import (
    GammaDemand,
    NormalDemand,
    UniformDemand,
    allocate_cycles,
    chebyshev_allocation,
    chebyshev_assurance,
    empirical_assurance,
)

means = st.floats(min_value=0.1, max_value=1e4)
variances = st.floats(min_value=0.0, max_value=1e6)
rhos = st.floats(min_value=0.0, max_value=0.995)


@given(means, variances, rhos)
@settings(max_examples=300)
def test_allocation_at_least_mean(mean, var, rho):
    assert chebyshev_allocation(mean, var, rho) >= mean


@given(means, variances, rhos, rhos)
@settings(max_examples=200)
def test_allocation_monotone_in_rho(mean, var, rho1, rho2):
    lo, hi = sorted((rho1, rho2))
    assert chebyshev_allocation(mean, var, lo) <= chebyshev_allocation(mean, var, hi)


@given(means, st.floats(min_value=1e-6, max_value=1e6), rhos)
@settings(max_examples=200)
def test_inverse_round_trip(mean, var, rho):
    c = chebyshev_allocation(mean, var, rho)
    if c - mean <= 0.0:
        # The pad underflowed against the mean (tiny var or rho=0):
        # the inverse legitimately reports no guarantee.
        assert chebyshev_assurance(mean, var, c) == 0.0
        return
    back = chebyshev_assurance(mean, var, c)
    assert abs(back - rho) < 1e-5 or back >= rho - 1e-5


@given(means, variances, rhos, st.floats(min_value=1.0, max_value=100.0))
@settings(max_examples=200)
def test_allocation_scales_linearly(mean, var, rho, k):
    """c(k·mean, k²·var) = k·c(mean, var) — the paper's load-scaling
    invariant that keeps ϱ calibration exact."""
    c1 = chebyshev_allocation(mean, var, rho)
    c2 = chebyshev_allocation(k * mean, k * k * var, rho)
    assert abs(c2 - k * c1) <= 1e-9 * max(1.0, abs(c2))


@given(
    st.sampled_from(["normal", "uniform", "gamma"]),
    st.floats(min_value=0.5, max_value=0.95),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_guarantee_distribution_free(family, rho, seed):
    """Pr[Y < c] >= rho holds empirically for any distribution."""
    rng = np.random.default_rng(seed)
    dist = {
        "normal": NormalDemand(100.0, 400.0),
        "uniform": UniformDemand(10.0, 50.0),
        "gamma": GammaDemand(3.0, 5.0),
    }[family]
    c = allocate_cycles(dist, rho)
    samples = dist.sample(rng, size=20_000)
    # Allow a small sampling tolerance below the target.
    assert empirical_assurance(samples, c) >= rho - 0.01
