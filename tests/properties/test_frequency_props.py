"""Property-based tests on frequency scales and energy models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import EnergyModel, FrequencyScale, energy_optimal_frequency

levels_strategy = st.lists(
    st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=10,
    unique=True,
)
demands = st.floats(min_value=-10.0, max_value=2e4, allow_nan=False)


@given(levels_strategy, demands)
@settings(max_examples=300)
def test_select_is_lowest_adequate_level(levels, demand):
    scale = FrequencyScale(levels)
    chosen = scale.select(demand)
    if chosen is None:
        assert demand > scale.f_max
        return
    assert chosen in scale.levels
    if demand > 0.0:
        assert chosen >= demand * (1.0 - 1e-9)
        # No lower adequate level exists.
        lower = [f for f in scale.levels if f < chosen]
        assert all(f < demand for f in lower)
    else:
        assert chosen == scale.f_min


@given(levels_strategy, demands)
@settings(max_examples=200)
def test_select_capped_never_none(levels, demand):
    scale = FrequencyScale(levels)
    chosen = scale.select_capped(demand)
    assert chosen in scale.levels
    assert chosen <= scale.f_max


@given(levels_strategy, demands)
@settings(max_examples=200)
def test_floor_le_at_least(levels, demand):
    scale = FrequencyScale(levels)
    if demand <= 0.0:
        return
    assert scale.floor(demand) <= scale.at_least(demand)


# Zero or a comfortably-normal positive coefficient (subnormal floats
# like 5e-324 underflow to 0 when multiplied by f, which is vacuous).
coeffs = st.one_of(st.just(0.0), st.floats(min_value=1e-9, max_value=10.0))


@given(coeffs, coeffs, coeffs, coeffs, st.floats(min_value=0.1, max_value=1e4))
@settings(max_examples=300)
def test_energy_positive_and_power_consistent(s3, s2, s1, s0, f):
    if s3 == s2 == s1 == s0 == 0.0:
        return
    m = EnergyModel(s3, s2, s1, s0)
    e = m.energy_per_cycle(f)
    assert e > 0.0
    assert m.power(f) == f * e
    assert m.energy_for(7.5, f) == 7.5 * e


@given(levels_strategy, coeffs, coeffs)
@settings(max_examples=200)
def test_energy_optimal_frequency_is_argmin(levels, s3, s0):
    if s3 == 0.0 and s0 == 0.0:
        return
    scale = FrequencyScale(levels)
    m = EnergyModel(s3=s3, s0=s0, s1=0.001)
    best = energy_optimal_frequency(m, scale)
    assert best in scale.levels
    assert all(
        m.energy_per_cycle(best) <= m.energy_per_cycle(f) + 1e-12
        for f in scale.levels
    )
