"""Property-based tests: REUA keeps mutual exclusion on random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import NormalDemand
from repro.resources import REUA, ResourceMap, audit_mutual_exclusion
from repro.sim import Engine, Task, TaskSet, materialize
from repro.tuf import StepTUF


@st.composite
def resource_scenarios(draw):
    n_tasks = draw(st.integers(min_value=2, max_value=4))
    n_resources = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    load = draw(st.floats(min_value=0.3, max_value=1.4))
    tasks = []
    requirements = {}
    for i in range(n_tasks):
        window = draw(st.floats(min_value=0.08, max_value=0.6))
        umax = draw(st.floats(min_value=1.0, max_value=50.0))
        mean = window * 80.0
        name = f"T{i}"
        tasks.append(
            Task(name, StepTUF(umax, window), NormalDemand(mean, mean * 1e-6),
                 UAMSpec(1, window))
        )
        # Each task needs a random subset of the resources.
        needs = {
            f"R{k}" for k in range(n_resources)
            if draw(st.booleans())
        }
        if needs:
            requirements[name] = needs
    taskset = TaskSet(tasks).scaled_to_load(load, 1000.0)
    return taskset, ResourceMap(requirements), seed


@given(resource_scenarios())
@settings(max_examples=30, deadline=None)
def test_reua_never_violates_exclusion(scenario):
    taskset, resources, seed = scenario
    rng = np.random.default_rng(seed)
    trace = materialize(taskset, 1.5, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    result = Engine(trace, REUA(resources), cpu, record_trace=True).run()
    assert audit_mutual_exclusion(result, resources) == []


@given(resource_scenarios())
@settings(max_examples=20, deadline=None)
def test_reua_conserves_engine_invariants(scenario):
    taskset, resources, seed = scenario
    rng = np.random.default_rng(seed)
    trace = materialize(taskset, 1.0, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    result = Engine(trace, REUA(resources), cpu, record_trace=True).run()
    executed = sum(j.executed for j in result.jobs)
    assert executed == pytest.approx(cpu.stats.cycles_executed, rel=1e-9, abs=1e-6)
    assert result.trace.is_contiguous()
