"""Property-based tests on TUFs."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuf import (
    ExponentialDecayTUF,
    LinearTUF,
    MultiStepTUF,
    PiecewiseLinearTUF,
    QuadraticDecayTUF,
    StepTUF,
)

finite_pos = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
                       allow_infinity=False)
nu_values = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def tufs(draw):
    kind = draw(st.sampled_from(["step", "linear", "quad", "exp", "pwl", "multistep"]))
    umax = draw(finite_pos)
    term = draw(finite_pos)
    if kind == "step":
        return StepTUF(umax, term)
    if kind == "linear":
        return LinearTUF(umax, term)
    if kind == "quad":
        return QuadraticDecayTUF(umax, term)
    if kind == "exp":
        tau = draw(finite_pos)
        return ExponentialDecayTUF(umax, tau, term)
    if kind == "pwl":
        n = draw(st.integers(min_value=1, max_value=5))
        raw = sorted(draw(st.lists(
            st.floats(min_value=1e-4, max_value=1.0), min_size=n, max_size=n,
            unique=True)))
        # Scaling by `term` can collapse distinct draws onto the same
        # float; keep only strictly increasing scaled times.
        times = []
        for t in raw:
            scaled = t * term
            if not times or scaled > times[-1]:
                times.append(scaled)
        utils = sorted(draw(st.lists(
            st.floats(min_value=0.0, max_value=umax * 0.99),
            min_size=len(times), max_size=len(times))), reverse=True)
        points = [(0.0, umax)] + list(zip(times, utils))
        return PiecewiseLinearTUF(points)
    # multistep
    n = draw(st.integers(min_value=1, max_value=4))
    raw = sorted(draw(st.lists(
        st.floats(min_value=1e-4, max_value=1.0), min_size=n, max_size=n,
        unique=True)))
    times = []
    for t in raw:
        scaled = t * term
        if (not times and scaled > 0.0) or (times and scaled > times[-1]):
            times.append(scaled)
    if not times:
        times = [term]
    utils = sorted(draw(st.lists(
        st.floats(min_value=1e-3, max_value=1e4),
        min_size=len(times), max_size=len(times), unique=True)), reverse=True)
    return MultiStepTUF(list(zip(times, utils)))


@given(tufs(), st.floats(min_value=-1.0, max_value=2.0))
@settings(max_examples=200)
def test_utility_bounded(tuf, frac):
    """0 <= U(t) <= U_max for every t (relative to termination)."""
    t = frac * tuf.termination
    u = tuf.utility(t)
    assert 0.0 <= u <= tuf.max_utility + 1e-9


@given(tufs())
@settings(max_examples=150)
def test_non_increasing(tuf):
    """Every shape satisfies the paper's non-increasing restriction."""
    assert tuf.is_non_increasing()


@given(tufs())
@settings(max_examples=150)
def test_zero_outside_window(tuf):
    assert tuf.utility(-1e-9 - 0.01 * tuf.termination) == 0.0
    assert tuf.utility(tuf.termination) == 0.0
    assert tuf.utility(tuf.termination * 1.5) == 0.0


@given(tufs(), nu_values)
@settings(max_examples=300)
def test_critical_time_soundness(tuf, nu):
    """D = critical_time(nu) satisfies U(D - eps) >= nu * U_max and lies
    within [0, termination]."""
    if isinstance(tuf, StepTUF):
        nu = 1.0 if nu > 0.5 else 0.0
    if isinstance(tuf, MultiStepTUF):
        # nu below the lowest plateau ratio may be unattainable exactly;
        # restrict to attainable levels.
        nu = 0.0 if nu < tuf._us[-1] / tuf.max_utility else nu
    try:
        d = tuf.critical_time(nu)
    except Exception:
        return  # unattainable nu for this shape: allowed to raise
    assert 0.0 <= d <= tuf.termination + 1e-9
    if nu > 0.0 and d > 0.0:
        eps = min(d * 1e-6, tuf.termination * 1e-9)
        u = tuf.utility(d - eps)
        assert u >= nu * tuf.max_utility - max(1e-6, 1e-6 * tuf.max_utility)


@given(tufs())
@settings(max_examples=100)
def test_critical_time_monotone_in_nu(tuf):
    """Higher required utility fraction => earlier critical time."""
    if isinstance(tuf, (StepTUF, MultiStepTUF)):
        return
    nus = [0.1, 0.4, 0.7, 0.95]
    ds = [tuf.critical_time(nu) for nu in nus]
    for a, b in zip(ds, ds[1:]):
        assert b <= a + 1e-9
