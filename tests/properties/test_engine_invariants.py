"""Property-based invariants of the simulation engine.

Random workloads under random policies must conserve cycles and energy,
never run time backwards, and keep every job's lifecycle consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import BurstUAMArrivals, UAMSpec
from repro.core import EUAStar
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import NormalDemand
from repro.sched import CCEDF, LAEDF, EDFStatic, StaticEDF
from repro.sim import Engine, JobStatus, Task, TaskSet, materialize
from repro.tuf import LinearTUF, StepTUF


@st.composite
def scenarios(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    load = draw(st.floats(min_value=0.2, max_value=2.0))
    policy = draw(st.sampled_from(["EUA", "EDF", "LA", "LA-NA", "CC", "STATIC"]))
    shape = draw(st.sampled_from(["step", "linear"]))
    tasks = []
    for i in range(n_tasks):
        window = draw(st.floats(min_value=0.05, max_value=0.8))
        umax = draw(st.floats(min_value=1.0, max_value=100.0))
        a = draw(st.integers(min_value=1, max_value=3))
        spec = UAMSpec(a, window)
        mean = window * 100.0 / a
        tuf = StepTUF(umax, window) if shape == "step" else LinearTUF(umax, window)
        tasks.append(
            Task(
                f"T{i}",
                tuf,
                NormalDemand(mean, mean * 1e-6),
                spec,
                arrivals=BurstUAMArrivals(spec),
                nu=1.0 if shape == "step" else 0.3,
                rho=0.9,
            )
        )
    taskset = TaskSet(tasks).scaled_to_load(load, 1000.0)
    return taskset, seed, policy


def _make_policy(name):
    return {
        "EUA": lambda: EUAStar(),
        "EDF": lambda: EDFStatic(),
        "LA": lambda: LAEDF(),
        "LA-NA": lambda: LAEDF(abort_expired=False),
        "CC": lambda: CCEDF(),
        "STATIC": lambda: StaticEDF(),
    }[name]()


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_engine_conservation_invariants(scenario):
    taskset, seed, policy = scenario
    rng = np.random.default_rng(seed)
    trace = materialize(taskset, 1.5, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    result = Engine(trace, _make_policy(policy), cpu, record_trace=True).run()

    # --- cycle conservation -------------------------------------------
    executed_jobs = sum(j.executed for j in result.jobs)
    assert executed_jobs == pytest.approx(cpu.stats.cycles_executed, rel=1e-9, abs=1e-6)
    assert result.trace.executed_cycles() == pytest.approx(executed_jobs, rel=1e-9, abs=1e-6)

    # --- energy equals sum over segments ------------------------------
    model = EnergyModel.e1()
    seg_energy = sum(
        s.cycles * model.energy_per_cycle(s.frequency)
        for s in result.trace.busy_segments()
    )
    assert seg_energy == pytest.approx(cpu.stats.energy, rel=1e-9, abs=1e-6)

    # --- timeline tiles the horizon ------------------------------------
    assert result.trace.is_contiguous()
    assert cpu.stats.total_time == pytest.approx(trace.horizon, rel=1e-9, abs=1e-9)

    # --- per-job lifecycle consistency ---------------------------------
    for job in result.jobs:
        assert job.executed <= job.demand + 1e-6
        if job.status is JobStatus.COMPLETED:
            assert job.completion_time is not None
            assert job.completion_time >= job.release
            assert job.remaining_demand <= 1e-6
            assert job.accrued_utility == pytest.approx(
                job.utility_at(job.completion_time), abs=1e-9
            )
        elif job.status in (JobStatus.ABORTED, JobStatus.EXPIRED):
            assert job.accrued_utility == 0.0
            assert job.abort_time is not None
        else:  # pending at horizon
            assert job.accrued_utility == 0.0

    # --- utility accounting --------------------------------------------
    assert result.metrics.accrued_utility <= result.metrics.max_possible_utility + 1e-9
    assert (
        result.metrics.completed
        + result.metrics.aborted
        + result.metrics.expired
        + result.metrics.unfinished
        == len(result.jobs)
    )


@given(scenarios())
@settings(max_examples=25, deadline=None)
def test_same_trace_same_result(scenario):
    """Determinism: identical inputs produce identical outcomes."""
    taskset, seed, policy = scenario
    results = []
    for _ in range(2):
        rng = np.random.default_rng(seed)
        trace = materialize(taskset, 1.0, rng)
        cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
        results.append(Engine(trace, _make_policy(policy), cpu).run())
    a, b = results
    assert a.metrics.accrued_utility == b.metrics.accrued_utility
    assert a.energy == b.energy
    assert [j.status for j in a.jobs] == [j.status for j in b.jobs]
