"""Property-based tests for the YDS lower bound."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import YDSJob, yds_energy, yds_schedule
from repro.cpu import EnergyModel


@st.composite
def job_sets(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    jobs = []
    for _ in range(n):
        release = draw(st.floats(min_value=0.0, max_value=5.0))
        length = draw(st.floats(min_value=0.1, max_value=5.0))
        cycles = draw(st.floats(min_value=1.0, max_value=500.0))
        jobs.append(YDSJob(release, release + length, cycles))
    return jobs


@given(job_sets())
@settings(max_examples=100, deadline=None)
def test_cycles_conserved(jobs):
    sched = yds_schedule(jobs)
    total = sum(j.cycles for j in jobs)
    assert sched.total_cycles == pytest.approx(total, rel=1e-6)


@given(job_sets())
@settings(max_examples=100, deadline=None)
def test_peak_speed_covers_densest_interval(jobs):
    """The schedule's peak speed equals the maximum interval intensity
    over all (release, deadline) endpoint pairs — the EDF feasibility
    bound, which any feasible speed profile must reach."""
    sched = yds_schedule(jobs)
    starts = {j.release for j in jobs}
    ends = {j.deadline for j in jobs}
    required = 0.0
    for a in starts:
        for b in ends:
            if b <= a:
                continue
            work = sum(j.cycles for j in jobs if j.release >= a and j.deadline <= b)
            if work > 0.0:
                required = max(required, work / (b - a))
    assert sched.peak_frequency == pytest.approx(required, rel=1e-9)


@given(job_sets())
@settings(max_examples=60, deadline=None)
def test_flat_single_speed_never_beats_yds(jobs):
    """Running everything at the single constant feasible speed (the
    peak intensity) costs at least the YDS energy under convex E1."""
    model = EnergyModel.e1()
    sched = yds_schedule(jobs)
    flat_speed = sched.peak_frequency
    total_cycles = sum(j.cycles for j in jobs)
    flat_energy = model.energy_for(total_cycles, flat_speed)
    assert yds_energy(jobs, model) <= flat_energy * (1.0 + 1e-9)


@given(job_sets(), st.floats(min_value=1.1, max_value=4.0))
@settings(max_examples=60, deadline=None)
def test_scaling_cycles_scales_energy_superlinearly(jobs, k):
    """Under E1 (quadratic energy per cycle), multiplying all demands by
    k multiplies optimal energy by k^3 (speed and cycles both scale)."""
    model = EnergyModel.e1()
    base = yds_energy(jobs, model)
    scaled = yds_energy(
        [YDSJob(j.release, j.deadline, j.cycles * k) for j in jobs], model
    )
    assert scaled == pytest.approx(base * k**3, rel=1e-6)


def test_matches_bruteforce_two_jobs():
    """Exhaustive check on a 2-job instance: YDS finds the minimum over
    all work splits across the distinguishable intervals."""
    model = EnergyModel.e1()
    # J1: [0, 1] 100 cycles; J2: [0, 2] 60 cycles.
    jobs = [YDSJob(0.0, 1.0, 100.0), YDSJob(0.0, 2.0, 60.0)]
    optimal = yds_energy(jobs, model)

    best = float("inf")
    # Split J2's work: x cycles in [0, 1], rest in [1, 2]; each interval
    # runs at constant speed (optimal by convexity).
    for x in [i / 200.0 * 60.0 for i in range(201)]:
        s1 = 100.0 + x  # cycles in [0,1] over 1 s
        s2 = 60.0 - x  # cycles in [1,2] over 1 s
        energy = model.energy_for(s1, max(s1, 1e-9))
        if s2 > 0:
            energy += model.energy_for(s2, s2)
        best = min(best, energy)
    assert optimal == pytest.approx(best, rel=1e-3)
