"""m=1 anchoring oracle: the multicore engines must be *bit-identical*
to the uniprocessor engine at one core.

Partitioned mode literally runs the uniprocessor ``Engine`` on the
single core; global mode mirrors ``Engine._run_loop`` operation for
operation, so at m=1 its float stream must coincide exactly.  The
comparison covers the full structured event log (modulo the mp-only
``core`` field) and the energy/utility aggregates with ``==`` — any
tolerance here would let the engines drift apart silently.
"""

import json

import numpy as np
import pytest

from repro.experiments import synthesize_taskset
from repro.mp import MulticorePlatform, simulate_mp
from repro.obs import Observer, events_to_jsonl
from repro.sched import make_scheduler
from repro.sim import Platform, materialize, simulate

LOADS = (0.8, 1.6)
SCHEDULERS = ("EUA*", "EDF", "DASA")


def _trace(load, seed=11, horizon=0.3):
    rng = np.random.default_rng(seed)
    return materialize(synthesize_taskset(load, rng), horizon, rng)


def _log_without_core(observer):
    events = [json.loads(line) for line in events_to_jsonl(observer.events).splitlines()]
    for event in events:
        event.get("fields", {}).pop("core", None)
    return events


@pytest.mark.parametrize("mode", ["partitioned", "global"])
@pytest.mark.parametrize("load", LOADS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_m1_bit_identical_to_uniprocessor(mode, load, scheduler):
    trace = _trace(load)
    obs_uni = Observer(events=True, metrics=False)
    uni = simulate(trace, make_scheduler(scheduler), Platform(), observer=obs_uni)

    obs_mp = Observer(events=True, metrics=False)
    platform = MulticorePlatform.from_platform(Platform(), cores=1)
    mp = simulate_mp(trace, scheduler, platform, mode=mode, observer=obs_mp)

    # Exact float equality — no tolerances.
    assert mp.processor_stats.total_energy == uni.processor_stats.total_energy
    assert mp.processor_stats.busy_time == uni.processor_stats.busy_time
    assert sum(j.accrued_utility for j in mp.jobs) == sum(
        j.accrued_utility for j in uni.jobs
    )
    assert mp.migrations == 0

    uni_events = _log_without_core(obs_uni)
    mp_events = _log_without_core(obs_mp)
    assert len(mp_events) == len(uni_events)
    assert mp_events == uni_events


@pytest.mark.parametrize("mode", ["partitioned", "global"])
def test_m1_aggregates_match_on_metrics(mode):
    trace = _trace(1.2)
    uni = simulate(trace, make_scheduler("EUA*"), Platform())
    platform = MulticorePlatform.from_platform(Platform(), cores=1)
    mp = simulate_mp(trace, "EUA*", platform, mode=mode)
    assert mp.metrics.summary() == uni.metrics.summary()


@pytest.mark.parametrize("mode", ["partitioned", "global"])
@pytest.mark.parametrize("cores", [2, 4])
def test_multicore_runs_pass_invariants(mode, cores):
    trace = _trace(0.8 * cores)
    platform = MulticorePlatform.from_platform(Platform(), cores=cores)
    result = simulate_mp(
        trace, "EUA*", platform, mode=mode, check=True, record_trace=True
    )
    assert result.cores == cores
    if mode == "partitioned":
        assert result.migrations == 0
