"""Differential properties between policies.

On a uniprocessor with a single energy model, EUA*'s UER at ``f_m`` is
utility density divided by the constant ``E(f_m)`` — so EUA* with DVS
disabled must produce *exactly* the schedule DASA produces at ``f_m``
(same dispatches, same aborts, same utility, same energy).  Any
divergence means one of the two policies drifted from Algorithm 1's
shared skeleton.

Similarly, on step-TUF workloads EDF's utility can never exceed
EUA*-noDVS's during underloads (both complete everything), and EUA*'s
accrued utility is invariant to uniform scaling of all TUF heights.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import UAMSpec
from repro.core import EUAStar
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import NormalDemand
from repro.sched import DASA, EDFStatic
from repro.sim import Engine, Task, TaskSet, materialize
from repro.tuf import ScaledTUF, StepTUF


@st.composite
def step_scenarios(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    load = draw(st.floats(min_value=0.3, max_value=1.9))
    tasks = []
    for i in range(n):
        window = draw(st.floats(min_value=0.05, max_value=0.7))
        umax = draw(st.floats(min_value=1.0, max_value=100.0))
        mean = window * 90.0
        tasks.append(
            Task(f"T{i}", StepTUF(umax, window), NormalDemand(mean, mean * 1e-6),
                 UAMSpec(1, window))
        )
    return TaskSet(tasks).scaled_to_load(load, 1000.0), seed


def _run(taskset, seed, policy, horizon=1.2):
    rng = np.random.default_rng(seed)
    trace = materialize(taskset, horizon, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    return Engine(trace, policy, cpu, record_trace=True).run()


@given(step_scenarios())
@settings(max_examples=30, deadline=None)
def test_eua_nodvs_equals_dasa(scenario):
    taskset, seed = scenario
    eua = _run(taskset, seed, EUAStar(use_dvs=False))
    dasa = _run(taskset, seed, DASA())
    assert eua.metrics.accrued_utility == pytest.approx(dasa.metrics.accrued_utility)
    assert eua.energy == pytest.approx(dasa.energy)
    assert [j.status for j in eua.jobs] == [j.status for j in dasa.jobs]
    assert eua.trace.job_order() == dasa.trace.job_order()


@given(step_scenarios())
@settings(max_examples=25, deadline=None)
def test_eua_never_below_edf_utility(scenario):
    """Utility accrual dominates urgency-only dispatch on step TUFs
    (equal at underload by Theorem 2, superior at overload)."""
    taskset, seed = scenario
    eua = _run(taskset, seed, EUAStar(use_dvs=False))
    edf = _run(taskset, seed, EDFStatic())
    assert eua.metrics.accrued_utility >= edf.metrics.accrued_utility - 1e-6


@given(step_scenarios(), st.floats(min_value=0.5, max_value=20.0))
@settings(max_examples=20, deadline=None)
def test_uniform_utility_scaling_invariance(scenario, factor):
    """Multiplying every TUF by the same constant scales accrued
    utility by exactly that constant and changes no decision."""
    taskset, seed = scenario
    scaled_tasks = TaskSet(
        Task(t.name, ScaledTUF(t.tuf, factor), t.demand, t.uam, nu=t.nu, rho=t.rho)
        for t in taskset
    )
    base = _run(taskset, seed, EUAStar())
    scaled = _run(scaled_tasks, seed, EUAStar())
    assert scaled.metrics.accrued_utility == pytest.approx(
        factor * base.metrics.accrued_utility, rel=1e-9
    )
    assert scaled.energy == pytest.approx(base.energy, rel=1e-9)
    assert [j.status for j in scaled.jobs] == [j.status for j in base.jobs]
