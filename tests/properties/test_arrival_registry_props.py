"""Property-based tests on the arrival registry.

Three contracts hold for *every* spec-constructible shape, whatever
parameters the strategies draw:

* **Compliance** — ``generate_checked`` output satisfies the declared
  ``⟨a, P⟩`` envelope (the assurances' precondition).
* **Seed determinism** — the same seed reproduces the stream bit for
  bit (the campaign/cache identity precondition).
* **Config round-trip** — ``to_config`` → JSON → ``generator_from_config``
  rebuilds a generator with a bit-identical stream.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    UAMSpec,
    create_arrival_generator,
    generator_config,
    generator_from_config,
    is_uam_compliant,
    workload_shape_names,
)

shape_names = st.sampled_from(sorted(workload_shape_names()))
specs = st.builds(
    UAMSpec,
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(shape_names, specs, seeds)
@settings(max_examples=150, deadline=None)
def test_every_workload_shape_is_compliant(name, spec, seed):
    gen = create_arrival_generator(name, spec=spec)
    times = gen.generate_checked(3.0, np.random.default_rng(seed))
    assert is_uam_compliant(times, gen.spec)
    assert times == sorted(times)
    assert all(t >= 0.0 for t in times)


@given(shape_names, specs, seeds)
@settings(max_examples=100, deadline=None)
def test_every_workload_shape_is_seed_deterministic(name, spec, seed):
    gen = create_arrival_generator(name, spec=spec)
    a = gen.generate(3.0, np.random.default_rng(seed))
    b = gen.generate(3.0, np.random.default_rng(seed))
    assert a == b


@given(shape_names, specs, seeds)
@settings(max_examples=100, deadline=None)
def test_config_json_round_trip_preserves_streams(name, spec, seed):
    gen = create_arrival_generator(name, spec=spec)
    payload = json.dumps(generator_config(gen))
    rebuilt = generator_from_config(json.loads(payload))
    assert rebuilt.to_config() == gen.to_config()
    assert rebuilt.generate(3.0, np.random.default_rng(seed)) == \
        gen.generate(3.0, np.random.default_rng(seed))


@given(specs, seeds, st.floats(min_value=0.5, max_value=4.0))
@settings(max_examples=60, deadline=None)
def test_trace_loop_round_trip_and_compliance(spec, seed, horizon):
    rng = np.random.default_rng(seed)
    cycle = 1.0
    base = sorted(float(t) for t in rng.uniform(0.0, cycle, size=5))
    gen = create_arrival_generator("trace-loop", times=base, cycle=cycle)
    times = gen.generate_checked(horizon)
    assert is_uam_compliant(times, gen.spec)
    rebuilt = generator_from_config(json.loads(json.dumps(generator_config(gen))))
    assert rebuilt.generate(horizon) == times
