"""Property-based tests on the UAM model and generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    BurstUAMArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    UAMSpec,
    UAMTracker,
    is_uam_compliant,
    max_count_in_any_window,
    thin_to_uam,
)

specs = st.builds(
    UAMSpec,
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
)
time_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=0,
    max_size=60,
).map(sorted)


@given(time_lists, specs)
@settings(max_examples=200)
def test_compliance_iff_window_count(times, spec):
    """is_uam_compliant agrees with the sliding-window max count."""
    compliant = is_uam_compliant(times, spec)
    count = max_count_in_any_window(times, spec.window)
    assert compliant == (count <= spec.max_arrivals)


@given(time_lists, specs)
@settings(max_examples=200)
def test_thinning_yields_compliance(times, spec):
    kept = thin_to_uam(times, spec)
    assert is_uam_compliant(kept, spec)
    assert set(kept) <= set(times)
    assert kept == sorted(kept)


@given(time_lists, specs)
@settings(max_examples=150)
def test_thinning_idempotent(times, spec):
    once = thin_to_uam(times, spec)
    assert thin_to_uam(once, spec) == once


@given(time_lists, specs)
@settings(max_examples=150)
def test_tracker_matches_thinning(times, spec):
    """Online admission keeps exactly the greedy thinned subsequence."""
    tracker = UAMTracker(spec)
    admitted = [t for t in times if tracker.admit(t)]
    assert admitted == thin_to_uam(times, spec)


@given(
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.05, max_value=2.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_generators_respect_their_specs(a, window, seed):
    """Every generator's output complies with its declared envelope."""
    rng = np.random.default_rng(seed)
    spec = UAMSpec(a, window)
    horizon = 20.0 * window
    for gen in (
        BurstUAMArrivals(spec),
        BurstUAMArrivals(spec, randomize=True),
        ScatteredUAMArrivals(spec),
        PoissonUAMArrivals(spec, rate=2.0 * a / window),
    ):
        times = gen.generate(horizon, rng)
        assert is_uam_compliant(times, gen.spec), type(gen).__name__
        assert all(0.0 <= t < horizon for t in times)


@given(
    st.floats(min_value=0.05, max_value=2.0),
    st.floats(min_value=0.0, max_value=50.0),
)
@settings(max_examples=100)
def test_periodic_subsumed_by_uam(period, horizon):
    """The periodic model is the UAM special case <1, P>."""
    times = PeriodicArrivals(period).generate(horizon)
    assert is_uam_compliant(times, UAMSpec(1, period))
    # And by any looser envelope.
    assert is_uam_compliant(times, UAMSpec(2, period))
    assert is_uam_compliant(times, UAMSpec(1, period * 0.5))
