"""Property tests: the structured event log agrees with the ground truth.

The engine's :class:`~repro.sim.trace.Trace` is the audited source of
truth (the validator and the conservation tests run on it).  The obs
layer is a *second* recording of the same run, so on random workloads
the two must agree — and attaching an observer must not change the
schedule itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import UAMSpec
from repro.core import EUAStar
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import NormalDemand
from repro.obs import EventKind, Observer
from repro.sched import DASA, EDFStatic
from repro.sim import Engine, Task, TaskSet, TraceEventKind, materialize
from repro.tuf import StepTUF


def _make_scheduler(name):
    return {"EUA*": EUAStar, "DASA": DASA, "EDF": EDFStatic}[name]()


@st.composite
def scenarios(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    load = draw(st.floats(min_value=0.3, max_value=1.6))
    scheduler = draw(st.sampled_from(["EUA*", "DASA", "EDF"]))
    tasks = []
    for i in range(n_tasks):
        window = draw(st.floats(min_value=0.08, max_value=0.6))
        umax = draw(st.floats(min_value=1.0, max_value=50.0))
        mean = window * 80.0
        tasks.append(
            Task(f"T{i}", StepTUF(umax, window), NormalDemand(mean, mean * 1e-6),
                 UAMSpec(1, window))
        )
    taskset = TaskSet(tasks).scaled_to_load(load, 1000.0)
    return taskset, seed, scheduler


def _run(taskset, seed, scheduler_name, observer):
    rng = np.random.default_rng(seed)
    workload = materialize(taskset, 1.5, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    engine = Engine(workload, _make_scheduler(scheduler_name), cpu,
                    record_trace=True, observer=observer)
    return workload, engine.run()


@given(scenarios())
@settings(max_examples=25, deadline=None)
def test_event_log_time_ordered_and_trace_consistent(scenario):
    taskset, seed, scheduler_name = scenario
    obs = Observer(events=True, metrics=True)
    workload, result = _run(taskset, seed, scheduler_name, obs)
    trace = result.trace
    log = obs.events

    # 1. The log is chronological (sequence numbers break ties).
    assert log.is_time_ordered()

    # 2. Lifecycle events mirror the engine trace one-for-one.
    for obs_kind, trace_kind in (
        (EventKind.RELEASE, TraceEventKind.RELEASE),
        (EventKind.COMPLETE, TraceEventKind.COMPLETE),
        (EventKind.ABORT, TraceEventKind.ABORT),
        (EventKind.EXPIRE, TraceEventKind.EXPIRE),
    ):
        got = [(e.time, e.job) for e in log.of_kind(obs_kind)]
        want = [(e.time, e.job_key) for e in trace.events_of(trace_kind)]
        assert got == want, obs_kind

    # 3. Every released job produced a RELEASE event.
    assert len(log.of_kind(EventKind.RELEASE)) == len(workload)

    # 4. Dispatches only name jobs that actually executed.
    executed = {s.job_key for s in trace.busy_segments()}
    assert {e.job for e in log.of_kind(EventKind.DISPATCH)} <= executed | set()

    # 5. Residency counters tile the same timeline as Trace.segments.
    residency = obs.metrics.family("cpu_residency_seconds")
    busy = sum(c.value for (name, labels), c in residency.items()
               if ("state", "busy") in labels)
    idle = sum(c.value for (name, labels), c in residency.items()
               if ("state", "idle") in labels)
    assert busy == pytest.approx(trace.busy_time(), rel=1e-9, abs=1e-9)
    assert idle == pytest.approx(trace.idle_time(), rel=1e-9, abs=1e-9)

    # 6. Outcome counters agree with the paper metrics.
    m = result.metrics
    assert obs.metrics.counter_value("jobs_released", task=None) == 0.0  # labelled only
    released = sum(c.value for c in obs.metrics.family("jobs_released").values())
    completed = sum(c.value for c in obs.metrics.family("jobs_completed").values())
    assert released == m.released
    assert completed == m.completed


@given(scenarios())
@settings(max_examples=10, deadline=None)
def test_observer_does_not_perturb_the_schedule(scenario):
    """Zero-cost also means zero *behavioural* effect: the observed run
    and the bare run produce identical outcomes."""
    taskset, seed, scheduler_name = scenario
    _, bare = _run(taskset, seed, scheduler_name, observer=None)
    _, seen = _run(taskset, seed, scheduler_name,
                   observer=Observer(events=True, metrics=True, profiling=True))
    assert seen.metrics.normalized_utility == bare.metrics.normalized_utility
    assert seen.energy == bare.energy
    assert seen.trace == bare.trace
