"""Chunked campaign dispatch ≡ per-replication dispatch, bit for bit.

:func:`~repro.stats.run_campaign` ships *chunks* of seeds to each pool
task and pre-folds the pooled assurance counts worker-side;
:func:`~repro.stats.run_campaign_reference` is the retained oracle that
pickles one full :class:`~repro.stats.ReplicationSpec` per replication
and re-pools every summary at each stop check.  Chunking is an
execution detail, never an identity: every folded aggregate float,
every verdict, every count, and every cache key must be **bit
identical** across the two drivers at any ``workers`` / ``chunk_size``
setting — including when chunk boundaries straddle an early-stop
rule's ``check_every`` batches.

All equality assertions are exact (``==``), never approximate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import auto_chunk_size, run_chunked
from repro.stats import (
    CampaignConfig,
    EarlyStopRule,
    run_campaign,
    run_campaign_reference,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore:.*falling back to serial.*"
)

SCHEDULER_POOL = ("EUA*", "DASA", "EDF", "EUA*-demand")


# ----------------------------------------------------------------------
# Observable identity of a campaign result
# ----------------------------------------------------------------------
def fingerprint(result):
    """Every observable the two drivers must agree on, floats exact."""
    schedulers = {}
    for name, stats in result.schedulers.items():
        schedulers[name] = {
            "metrics": {
                k: (s.mean, s.std, s.n, s.half_width)
                for k, s in stats.metrics.items()
            },
            "assurance": [
                (a.task, a.nu, a.rho, a.decided, a.satisfied,
                 a.attainment, a.ci_low, a.ci_high, a.verdict)
                for a in stats.assurance
            ],
            "verdict": stats.verdict,
        }
    return {
        "n_planned": result.n_planned,
        "n_completed": result.n_completed,
        "n_simulated": result.n_simulated,
        "n_cached": result.n_cached,
        "stopped_early": result.stopped_early,
        "verdict": result.verdict,
        "schedulers": schedulers,
    }


@st.composite
def campaign_configs(draw, with_rule=False):
    n = draw(st.integers(min_value=1, max_value=7))
    kwargs = dict(
        load=draw(st.sampled_from([0.5, 0.8, 1.2])),
        horizon=draw(st.sampled_from([0.3, 0.5])),
        schedulers=tuple(
            draw(st.lists(st.sampled_from(SCHEDULER_POOL), min_size=1,
                          max_size=2, unique=True))
        ),
        n_replications=n,
        base_seed=draw(st.integers(min_value=0, max_value=500)),
        arrival_mode=draw(st.sampled_from(["periodic", "burst"])),
    )
    if with_rule:
        kwargs["early_stop"] = EarlyStopRule(
            min_replications=draw(st.integers(min_value=1, max_value=4)),
            confidence=draw(st.sampled_from([0.8, 0.9])),
            check_every=draw(st.integers(min_value=1, max_value=4)),
        )
    return CampaignConfig(**kwargs)


# ----------------------------------------------------------------------
# The headline property: chunked ≡ reference at any grain
# ----------------------------------------------------------------------
@given(
    config=campaign_configs(),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    workers=st.sampled_from([1, 2]),
)
@settings(max_examples=15, deadline=None)
def test_chunked_campaign_equals_reference(config, chunk_size, workers):
    chunked = run_campaign(config, workers=workers, chunk_size=chunk_size)
    reference = run_campaign_reference(config, workers=1)
    assert fingerprint(chunked) == fingerprint(reference)


@given(
    config=campaign_configs(with_rule=True),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    workers=st.sampled_from([1, 2]),
)
@settings(max_examples=15, deadline=None)
def test_chunked_early_stop_equals_reference(config, chunk_size, workers):
    """Chunk boundaries × ``check_every`` batch boundaries: the stop
    decision (made from worker-folded partial pools) must fire on the
    same batch as the oracle's re-pool-everything pass — same
    ``stopped_early``, same ``n_completed``, same aggregates."""
    chunked = run_campaign(config, workers=workers, chunk_size=chunk_size)
    reference = run_campaign_reference(config, workers=1)
    assert fingerprint(chunked) == fingerprint(reference)


def test_chunk_grain_sweep_is_pointwise_identical():
    """Every chunk grain, side by side on one config — any drift
    pinpoints the grain that broke."""
    config = CampaignConfig(load=0.8, horizon=0.5, schedulers=("EUA*",),
                            n_replications=6, base_seed=11)
    baseline = fingerprint(run_campaign_reference(config))
    for chunk_size in (None, 1, 2, 3, 4, 6, 50):
        got = fingerprint(run_campaign(config, chunk_size=chunk_size))
        assert got == baseline, f"chunk_size={chunk_size} diverged"


def test_chunk_size_validation():
    config = CampaignConfig(load=0.8, horizon=0.3, schedulers=("EUA*",),
                            n_replications=2, base_seed=3)
    with pytest.raises(ValueError):
        run_campaign(config, chunk_size=0)
    with pytest.raises(ValueError):
        run_chunked(lambda shared, chunk: (list(chunk), {}),
                    [1, 2], shared=None, chunk_size=-1)


# ----------------------------------------------------------------------
# The chunk planner itself
# ----------------------------------------------------------------------
@given(
    n_items=st.integers(min_value=0, max_value=10_000),
    max_workers=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_auto_chunk_size_covers_and_balances(n_items, max_workers):
    size = auto_chunk_size(n_items, max_workers)
    assert size >= 1
    if n_items > 0:
        n_chunks = -(-n_items // size)
        # Ceiling division must cover everything…
        assert n_chunks * size >= n_items
        if max_workers > 1:
            # …and the pool stays busy: at least one chunk per worker
            # whenever there is enough work, never more than ~4 per
            # worker (the amortisation target).
            assert n_chunks <= 4 * max_workers
            if n_items >= 4 * max_workers:
                assert n_chunks >= max_workers
        else:
            assert size == n_items  # serial: one fused chunk


@given(
    items=st.lists(st.integers(min_value=-100, max_value=100), min_size=0,
                   max_size=40),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
)
@settings(max_examples=100, deadline=None)
def test_run_chunked_preserves_item_order(items, chunk_size):
    """Concatenating per-chunk outputs in arrival order rebuilds the
    plain ``map`` — the property campaign folding leans on."""
    outcomes = run_chunked(
        lambda shared, chunk: [shared * x for x in chunk],
        items, shared=3, max_workers=1, chunk_size=chunk_size,
    )
    flattened = [v for value in outcomes for v in value]
    assert flattened == [3 * x for x in items]
