"""Tests for statistics helpers (repro.analysis.stats)."""

import pytest

from repro.analysis import (
    SummaryStat,
    normalize_energy,
    normalize_utility,
    normalized_series,
    summarize,
)
from repro.arrivals import UAMSpec
from repro.cpu import ProcessorStats
from repro.demand import DeterministicDemand
from repro.sim import Job, JobStatus, Metrics, Task, TaskSet
from repro.sim.engine import SimulationResult
from repro.tuf import StepTUF


def _result(utility: float, energy: float):
    task = Task("T", StepTUF(10.0, 1.0), DeterministicDemand(5.0), UAMSpec(1, 1.0))
    ts = TaskSet([task])
    job = Job(task, 0, 0.0, 5.0)
    job.status = JobStatus.COMPLETED
    job.completion_time = 0.5
    job.accrued_utility = utility
    stats = ProcessorStats(energy=energy)
    metrics = Metrics(ts, [job], stats, horizon=1.0)
    return SimulationResult("x", metrics, stats, [job], 1.0)


class TestSummarize:
    def test_mean_std(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.n == 3

    def test_half_width(self):
        s = summarize([1.0, 2.0, 3.0], z=2.0)
        assert s.half_width == pytest.approx(2.0 / 3**0.5)
        assert s.low == pytest.approx(s.mean - s.half_width)
        assert s.high == pytest.approx(s.mean + s.half_width)

    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.half_width == 0.0

    def test_format(self):
        assert "±" in f"{summarize([1.0, 2.0])}"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestNormalisation:
    def test_energy_ratio(self):
        assert normalize_energy(_result(1.0, 50.0), _result(1.0, 100.0)) == 0.5

    def test_energy_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_energy(_result(1.0, 50.0), _result(1.0, 0.0))

    def test_utility_ratio(self):
        assert normalize_utility(_result(8.0, 1.0), _result(10.0, 1.0)) == 0.8

    def test_utility_can_exceed_one(self):
        # Overloads: EUA* can beat the EDF baseline.
        assert normalize_utility(_result(10.0, 1.0), _result(8.0, 1.0)) == 1.25

    def test_collapsed_baseline_falls_back(self):
        r = normalize_utility(_result(5.0, 1.0), _result(0.0, 1.0))
        assert r == pytest.approx(0.5)  # raw normalised utility (5/10)


class TestNormalizedSeries:
    def test_aggregates_over_seeds(self):
        runs = [
            {"X": _result(5.0, 50.0), "BASE": _result(10.0, 100.0)},
            {"X": _result(6.0, 60.0), "BASE": _result(10.0, 100.0)},
        ]
        util = normalized_series(runs, "BASE", "utility")
        energy = normalized_series(runs, "BASE", "energy")
        assert util["X"].mean == pytest.approx(0.55)
        assert energy["X"].mean == pytest.approx(0.55)
        assert util["BASE"].mean == pytest.approx(1.0)

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            normalized_series([{}], "BASE", "latency")
