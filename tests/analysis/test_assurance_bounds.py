"""Boundary behaviour of the binomial confidence machinery: the Wilson
interval's guaranteed ``[0, 1]`` bracket and the quantile's domain."""

import math

import pytest

from repro.analysis import normal_quantile, wilson_interval, wilson_lower_bound


def _assert_bracket(low, high):
    assert 0.0 <= low <= high <= 1.0


class TestWilsonBoundaries:
    def test_zero_successes(self):
        low, high = wilson_interval(0, 10)
        _assert_bracket(low, high)
        assert low == 0.0
        assert high < 1.0

    def test_all_successes(self):
        low, high = wilson_interval(10, 10)
        _assert_bracket(low, high)
        assert high == pytest.approx(1.0, abs=1e-12)
        assert low > 0.0

    def test_single_trial_both_outcomes(self):
        for successes in (0, 1):
            low, high = wilson_interval(successes, 1)
            _assert_bracket(low, high)
        # One trial decides almost nothing: the interval stays wide.
        low, high = wilson_interval(1, 1)
        assert high - low > 0.5

    def test_confidence_toward_one_widens_to_unit_interval(self):
        prev_width = 0.0
        for confidence in (0.9, 0.99, 0.999, 1.0 - 1e-9):
            low, high = wilson_interval(7, 10, confidence)
            _assert_bracket(low, high)
            width = high - low
            assert width >= prev_width
            prev_width = width
        # Extreme confidence drives the interval toward [0, 1] without
        # ever escaping it (the documented guaranteed bracket).
        assert low < 0.2 and high > 0.95

    def test_interval_contains_point_estimate(self):
        for successes, trials in ((0, 5), (3, 5), (5, 5), (1, 1)):
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high

    def test_lower_bound_is_the_one_sided_analogue(self):
        bound = wilson_lower_bound(8, 10, 0.95)
        assert 0.0 <= bound <= 0.8

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=1.0)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=0.0)
        with pytest.raises(ValueError):
            wilson_lower_bound(1, 0)


class TestNormalQuantile:
    def test_domain_is_open_unit_interval(self):
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                normal_quantile(p)

    def test_median_is_zero(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_antisymmetric(self):
        for p in (0.6, 0.9, 0.975, 0.999):
            assert normal_quantile(p) == pytest.approx(-normal_quantile(1.0 - p))

    def test_known_z_scores(self):
        # Winitzki's erfinv approximation is ~1e-4 absolute.
        assert normal_quantile(0.975) == pytest.approx(1.95996, abs=5e-3)
        assert normal_quantile(0.95) == pytest.approx(1.64485, abs=5e-3)

    def test_extreme_confidence_stays_finite(self):
        z = normal_quantile(1.0 - 1e-12)
        assert math.isfinite(z)
        assert z > 6.0
