"""Tests for schedulability conditions (repro.analysis.schedulability)."""

import pytest

from repro.analysis import (
    brh_demand,
    brh_schedulable,
    edf_utilization,
    is_underload_regime,
    liu_layland_schedulable,
)
from repro.arrivals import UAMSpec
from repro.demand import DeterministicDemand
from repro.sim import Task, TaskSet
from repro.tuf import LinearTUF, StepTUF


def _ts(*means, window=1.0, tuf="step", nu=1.0):
    tasks = []
    for i, mean in enumerate(means):
        shape = StepTUF(5.0, window) if tuf == "step" else LinearTUF(5.0, window)
        tasks.append(
            Task(f"T{i}", shape, DeterministicDemand(mean), UAMSpec(1, window), nu=nu)
        )
    return TaskSet(tasks)


class TestUtilization:
    def test_definition(self):
        ts = _ts(300.0, 200.0)
        assert edf_utilization(ts, 1000.0) == pytest.approx(0.5)

    def test_matches_taskset_load(self):
        ts = _ts(123.0, 456.0)
        assert edf_utilization(ts, 1000.0) == pytest.approx(ts.load(1000.0))

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            edf_utilization(_ts(1.0), 0.0)


class TestLiuLayland:
    def test_under_bound(self):
        assert liu_layland_schedulable(_ts(500.0, 499.0), 1000.0)

    def test_exactly_at_bound(self):
        assert liu_layland_schedulable(_ts(500.0, 500.0), 1000.0)

    def test_over_bound(self):
        assert not liu_layland_schedulable(_ts(600.0, 500.0), 1000.0)

    def test_underload_regime_alias(self):
        assert is_underload_regime(_ts(400.0), 1000.0)
        assert not is_underload_regime(_ts(1100.0), 1000.0)


class TestBRH:
    def test_demand_accumulates(self):
        ts = _ts(100.0, window=1.0)
        assert brh_demand(ts, 0.5) == 0.0
        assert brh_demand(ts, 1.0) == pytest.approx(100.0)
        assert brh_demand(ts, 2.0) == pytest.approx(200.0)

    def test_schedulable_when_under(self):
        assert brh_schedulable(_ts(400.0, 300.0), 1000.0)

    def test_unschedulable_when_over(self):
        assert not brh_schedulable(_ts(700.0, 500.0), 1000.0)

    def test_linear_tuf_critical_times(self):
        # Theorem 6 case: D = 0.6 < P = 1.0: demand concentrates and the
        # required frequency exceeds the utilisation-based one.
        ts = _ts(600.0, window=1.0, tuf="linear", nu=0.4)
        # Utilisation view: 600/0.6 = 1000 exactly.
        assert liu_layland_schedulable(ts, 1000.0)
        assert brh_schedulable(ts, 1000.0)
        assert not brh_schedulable(ts, 900.0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            brh_schedulable(_ts(1.0), -1.0)
