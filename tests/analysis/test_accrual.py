"""Tests for accrual curves (repro.analysis.accrual)."""

import numpy as np
import pytest

from repro.analysis import (
    StepCurve,
    energy_spend_curve,
    utility_accrual_curve,
    utility_per_joule_curve,
)
from repro.core import EUAStar
from repro.experiments import energy_setting, synthesize_taskset
from repro.sim import Platform, materialize, simulate


class TestStepCurve:
    def test_at(self):
        c = StepCurve((1.0, 2.0), (5.0, 8.0))
        assert c.at(0.5) == 0.0
        assert c.at(1.0) == 5.0
        assert c.at(1.5) == 5.0
        assert c.at(3.0) == 8.0

    def test_final(self):
        assert StepCurve((1.0,), (5.0,)).final == 5.0
        assert StepCurve((), ()).final == 0.0

    def test_sampled(self):
        c = StepCurve((1.0,), (5.0,))
        assert c.sampled([0.0, 1.0, 2.0]) == [0.0, 5.0, 5.0]

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            StepCurve((1.0,), (1.0, 2.0))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            StepCurve((2.0, 1.0), (1.0, 2.0))


@pytest.fixture(scope="module")
def traced_run():
    rng = np.random.default_rng(101)
    ts = synthesize_taskset(0.7, rng)
    trace = materialize(ts, 2.0, rng)
    platform = Platform(energy_model=energy_setting("E1"))
    return simulate(trace, EUAStar(), platform=platform, record_trace=True), platform


class TestRunCurves:
    def test_utility_curve_reaches_total(self, traced_run):
        result, _ = traced_run
        curve = utility_accrual_curve(result)
        assert curve.final == pytest.approx(result.metrics.accrued_utility)

    def test_utility_curve_monotone(self, traced_run):
        result, _ = traced_run
        curve = utility_accrual_curve(result)
        assert all(a <= b for a, b in zip(curve.values, curve.values[1:]))

    def test_energy_curve_reaches_busy_energy(self, traced_run):
        result, platform = traced_run
        curve = energy_spend_curve(result, platform.energy_model)
        assert curve.final == pytest.approx(result.processor_stats.energy, rel=1e-9)

    def test_energy_curve_requires_trace(self, traced_run):
        result, platform = traced_run
        import dataclasses

        bare = dataclasses.replace(result, trace=None)
        with pytest.raises(ValueError):
            energy_spend_curve(bare, platform.energy_model)

    def test_utility_per_joule_samples(self, traced_run):
        result, platform = traced_run
        samples = utility_per_joule_curve(result, platform.energy_model, samples=16)
        assert len(samples) == 16
        assert samples[-1][0] == pytest.approx(result.horizon)
        final_ratio = samples[-1][1]
        assert final_ratio == pytest.approx(
            result.metrics.accrued_utility / result.processor_stats.energy, rel=0.02
        )
