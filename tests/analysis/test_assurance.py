"""Tests for assurance verification (repro.analysis.assurance)."""

import pytest

from repro.analysis import (
    task_assurance,
    verify_assurances,
    wilson_lower_bound,
)
from repro.arrivals import UAMSpec
from repro.cpu import ProcessorStats
from repro.demand import DeterministicDemand
from repro.sim import Job, JobStatus, Metrics, Task, TaskSet
from repro.sim.engine import SimulationResult
from repro.tuf import StepTUF


def _result(satisfied: int, failed: int, pending: int = 0):
    task = Task("T", StepTUF(10.0, 1.0), DeterministicDemand(5.0), UAMSpec(1, 1.0),
                nu=1.0, rho=0.9)
    ts = TaskSet([task])
    jobs = []
    idx = 0
    for _ in range(satisfied):
        j = Job(task, idx, float(idx), 5.0)
        j.status = JobStatus.COMPLETED
        j.completion_time = float(idx) + 0.5
        j.accrued_utility = 10.0
        jobs.append(j)
        idx += 1
    for _ in range(failed):
        j = Job(task, idx, float(idx), 5.0)
        j.status = JobStatus.EXPIRED
        j.abort_time = float(idx) + 1.0
        jobs.append(j)
        idx += 1
    for _ in range(pending):
        jobs.append(Job(task, idx, float(idx), 5.0))
        idx += 1
    metrics = Metrics(ts, jobs, ProcessorStats(), horizon=float(idx + 1))
    return (
        SimulationResult("test", metrics, ProcessorStats(), jobs, float(idx + 1)),
        ts,
    )


class TestWilsonBound:
    def test_below_point_estimate(self):
        assert wilson_lower_bound(90, 100) < 0.9

    def test_tightens_with_samples(self):
        lb_small = wilson_lower_bound(9, 10)
        lb_large = wilson_lower_bound(900, 1000)
        assert lb_large > lb_small

    def test_all_failures(self):
        assert wilson_lower_bound(0, 50) == pytest.approx(0.0, abs=0.1)

    def test_bounds_in_unit_interval(self):
        for k in (0, 1, 5, 10):
            lb = wilson_lower_bound(k, 10)
            assert 0.0 <= lb <= 1.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            wilson_lower_bound(0, 0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            wilson_lower_bound(5, 10, confidence=1.0)


class TestTaskAssurance:
    def test_attainment(self):
        result, ts = _result(satisfied=9, failed=1)
        rep = task_assurance(result, ts[0])
        assert rep.jobs_decided == 10
        assert rep.attainment == pytest.approx(0.9)

    def test_pending_jobs_censored(self):
        result, ts = _result(satisfied=5, failed=0, pending=3)
        rep = task_assurance(result, ts[0])
        assert rep.jobs_decided == 5
        assert rep.attainment == 1.0

    def test_satisfied_point_vs_confidence(self):
        result, ts = _result(satisfied=9, failed=1)
        rep = task_assurance(result, ts[0])
        assert rep.satisfied_point  # 0.9 >= rho = 0.9
        assert not rep.satisfied_with_confidence  # Wilson LB < 0.9

    def test_confidence_claim_with_many_jobs(self):
        result, ts = _result(satisfied=500, failed=2)
        rep = task_assurance(result, ts[0])
        assert rep.satisfied_with_confidence

    def test_no_jobs_vacuous(self):
        result, ts = _result(satisfied=0, failed=0)
        rep = task_assurance(result, ts[0])
        assert rep.attainment == 1.0
        assert rep.jobs_decided == 0


class TestVerifyAssurances:
    def test_per_task_reports(self):
        result, ts = _result(satisfied=10, failed=0)
        reports = verify_assurances(result, ts)
        assert set(reports) == {"T"}
        assert reports["T"].satisfied_point
