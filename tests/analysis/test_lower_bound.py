"""Tests for the YDS clairvoyant energy lower bound."""

import numpy as np
import pytest

from repro.analysis import YDSJob, jobs_from_trace, yds_energy, yds_schedule
from repro.core import EUAStar
from repro.cpu import EnergyModel
from repro.experiments import synthesize_taskset
from repro.sim import Platform, materialize, simulate


class TestYDSJob:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            YDSJob(1.0, 1.0, 5.0)

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            YDSJob(0.0, 1.0, 0.0)


class TestSchedule:
    def test_single_job_runs_at_exact_intensity(self):
        sched = yds_schedule([YDSJob(0.0, 2.0, 100.0)])
        assert len(sched.pieces) == 1
        a, b, s = sched.pieces[0]
        assert (a, b) == (0.0, 2.0)
        assert s == pytest.approx(50.0)

    def test_total_cycles_conserved(self):
        jobs = [YDSJob(0.0, 1.0, 100.0), YDSJob(0.5, 2.0, 60.0), YDSJob(1.0, 3.0, 30.0)]
        sched = yds_schedule(jobs)
        assert sched.total_cycles == pytest.approx(190.0)

    def test_textbook_example(self):
        # Two jobs sharing [0, 1], one relaxed job until 2: critical
        # interval is [0, 1] at 150 MHz; the rest runs at 40 over the
        # collapsed remainder.
        jobs = [
            YDSJob(0.0, 1.0, 100.0),
            YDSJob(0.0, 1.0, 50.0),
            YDSJob(0.0, 2.0, 40.0),
        ]
        sched = yds_schedule(jobs)
        speeds = sorted(s for _, _, s in sched.pieces)
        assert speeds == [pytest.approx(40.0), pytest.approx(150.0)]

    def test_peak_frequency(self):
        jobs = [YDSJob(0.0, 1.0, 120.0), YDSJob(2.0, 3.0, 30.0)]
        assert yds_schedule(jobs).peak_frequency == pytest.approx(120.0)

    def test_energy_convexity_prefers_flat(self):
        # Splitting the same work unevenly must cost more than YDS.
        model = EnergyModel.e1()
        jobs = [YDSJob(0.0, 2.0, 200.0)]
        optimal = yds_energy(jobs, model)
        uneven = model.energy_for(150.0, 150.0) + model.energy_for(50.0, 50.0)
        assert optimal <= uneven


class TestLowerBoundProperty:
    def test_no_simulated_policy_beats_yds(self):
        """The clairvoyant bound lower-bounds every policy that meets
        the same critical times (here: EUA* at underload, which meets
        all of them)."""
        rng = np.random.default_rng(55)
        ts = synthesize_taskset(0.6, rng, tuf_shape="step", nu=1.0, rho=0.96)
        trace = materialize(ts, 2.0, rng)
        model = EnergyModel.e1()
        result = simulate(trace, EUAStar(), platform=Platform(energy_model=model))
        bound = yds_energy(jobs_from_trace(trace), model)
        assert result.energy >= bound * (1.0 - 1e-9)
        # And the bound is not vacuous: within ~20x (ladder + online).
        assert result.energy <= 20.0 * bound

    def test_budget_based_bound_dominates_true_demand_bound(self):
        rng = np.random.default_rng(56)
        ts = synthesize_taskset(0.6, rng, tuf_shape="step", nu=1.0, rho=0.96)
        trace = materialize(ts, 1.0, rng)
        model = EnergyModel.e1()
        with_budgets = yds_energy(jobs_from_trace(trace, use_budgets=True), model)
        with_true = yds_energy(jobs_from_trace(trace), model)
        assert with_budgets >= with_true * (1.0 - 1e-9)

    def test_termination_deadlines_cheaper_than_critical(self):
        rng = np.random.default_rng(57)
        ts = synthesize_taskset(0.6, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        trace = materialize(ts, 1.0, rng)
        model = EnergyModel.e1()
        by_critical = yds_energy(jobs_from_trace(trace, deadline="critical"), model)
        by_term = yds_energy(jobs_from_trace(trace, deadline="termination"), model)
        assert by_term <= by_critical * (1.0 + 1e-9)

    def test_unknown_deadline_kind(self):
        rng = np.random.default_rng(58)
        ts = synthesize_taskset(0.5, rng)
        trace = materialize(ts, 0.5, rng)
        with pytest.raises(ValueError):
            jobs_from_trace(trace, deadline="soft")
