"""Tests for lateness analysis (repro.analysis.lateness)."""

import math

import numpy as np
import pytest

from repro.analysis import lateness_stats, max_lateness, per_task_lateness
from repro.arrivals import UAMSpec
from repro.cpu import ProcessorStats
from repro.demand import DeterministicDemand
from repro.sim import Job, JobStatus, Metrics, Task, TaskSet
from repro.sim.engine import SimulationResult
from repro.tuf import StepTUF


def _result():
    a = Task("A", StepTUF(5.0, 1.0), DeterministicDemand(5.0), UAMSpec(1, 1.0))
    b = Task("B", StepTUF(5.0, 2.0), DeterministicDemand(5.0), UAMSpec(1, 2.0),
             abortable=False)
    ts = TaskSet([a, b])
    jobs = []
    j = Job(a, 0, 0.0, 5.0)  # early by 0.4
    j.status = JobStatus.COMPLETED
    j.completion_time = 0.6
    jobs.append(j)
    j = Job(a, 1, 1.0, 5.0)  # early by 0.1
    j.status = JobStatus.COMPLETED
    j.completion_time = 1.9
    jobs.append(j)
    j = Job(b, 0, 0.0, 5.0)  # tardy by 0.5 (non-abortable, ran long)
    j.status = JobStatus.COMPLETED
    j.completion_time = 2.5
    jobs.append(j)
    jobs.append(Job(b, 1, 2.0, 5.0))  # pending: excluded
    metrics = Metrics(ts, jobs, ProcessorStats(), horizon=4.0)
    return SimulationResult("x", metrics, ProcessorStats(), jobs, 4.0), ts


class TestLatenessStats:
    def test_run_level(self):
        result, _ = _result()
        s = lateness_stats(result)
        assert s.count == 3
        assert s.max_lateness == pytest.approx(0.5)
        assert s.max_tardiness == pytest.approx(0.5)
        assert s.tardy_fraction == pytest.approx(1 / 3)
        assert s.mean_sojourn == pytest.approx((0.6 + 0.9 + 2.5) / 3)
        assert s.max_sojourn == pytest.approx(2.5)
        assert not s.all_on_time

    def test_per_task(self):
        result, ts = _result()
        stats = per_task_lateness(result, ts)
        assert stats["A"].all_on_time
        assert stats["A"].max_lateness == pytest.approx(-0.1)
        assert stats["B"].max_tardiness == pytest.approx(0.5)

    def test_max_lateness_helper(self):
        result, _ = _result()
        assert max_lateness(result) == pytest.approx(0.5)

    def test_empty_scope(self):
        result, ts = _result()
        empty = lateness_stats(result, Task("Z", StepTUF(1.0, 1.0),
                                            DeterministicDemand(1.0), UAMSpec(1, 1.0)))
        assert empty.count == 0
        assert empty.max_lateness == -math.inf
