"""Tests for Theorem 1 feasibility analysis (repro.analysis.feasibility)."""

import pytest

from repro.analysis import (
    demand_bound_satisfied,
    feasible_at,
    min_feasible_frequency,
    taskset_min_frequency,
    uam_cycle_demand,
)
from repro.arrivals import BurstUAMArrivals, UAMSpec
from repro.demand import DeterministicDemand
from repro.sim import Task, TaskSet
from repro.tuf import LinearTUF, StepTUF


def _task(name="T", window=1.0, mean=100.0, a=1, nu=1.0, tuf="step"):
    spec = UAMSpec(a, window)
    shape = StepTUF(5.0, window) if tuf == "step" else LinearTUF(5.0, window)
    return Task(
        name,
        shape,
        DeterministicDemand(mean),
        spec,
        arrivals=None if a == 1 else BurstUAMArrivals(spec),
        nu=nu,
    )


class TestCycleDemand:
    def test_zero_before_critical_time(self):
        task = _task(window=1.0)
        assert uam_cycle_demand(task, 0.99) == 0.0

    def test_one_window_at_critical_time(self):
        task = _task(window=1.0, mean=100.0)
        assert uam_cycle_demand(task, 1.0) == pytest.approx(100.0)

    def test_staircase(self):
        task = _task(window=1.0, mean=100.0)
        assert uam_cycle_demand(task, 1.5) == pytest.approx(100.0)
        assert uam_cycle_demand(task, 2.0) == pytest.approx(200.0)
        assert uam_cycle_demand(task, 3.0) == pytest.approx(300.0)

    def test_burst_multiplies(self):
        task = _task(window=1.0, mean=100.0, a=3)
        assert uam_cycle_demand(task, 1.0) == pytest.approx(300.0)

    def test_linear_tuf_critical_time_offset(self):
        task = _task(window=1.0, tuf="linear", nu=0.4)  # D = 0.6
        assert uam_cycle_demand(task, 0.5) == 0.0
        assert uam_cycle_demand(task, 0.6) == pytest.approx(100.0)
        assert uam_cycle_demand(task, 1.6) == pytest.approx(200.0)

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            uam_cycle_demand(_task(), -1.0)


class TestTheorem1:
    def test_single_task_bound(self):
        task = _task(window=1.0, mean=100.0, a=2)
        assert min_feasible_frequency(task) == pytest.approx(200.0)

    def test_matches_task_property(self):
        task = _task(a=3)
        assert min_feasible_frequency(task) == task.min_feasible_frequency

    def test_taskset_sum(self):
        ts = TaskSet([_task("A", mean=100.0), _task("B", mean=50.0)])
        assert taskset_min_frequency(ts) == pytest.approx(150.0)

    def test_feasible_at(self):
        ts = TaskSet([_task("A", mean=100.0), _task("B", mean=50.0)])
        assert feasible_at(ts, 150.0)
        assert not feasible_at(ts, 149.0)

    def test_theorem1_agrees_with_demand_bound(self):
        # The closed form C/D is exactly the binding point of the full
        # processor-demand criterion.
        ts = TaskSet([
            _task("A", window=0.5, mean=30.0, a=2),
            _task("B", window=1.3, mean=100.0),
        ])
        f_star = taskset_min_frequency(ts)
        assert demand_bound_satisfied(ts, f_star)
        assert not demand_bound_satisfied(ts, f_star * 0.9)

    def test_demand_bound_with_explicit_points(self):
        ts = TaskSet([_task("A", window=1.0, mean=100.0)])
        assert demand_bound_satisfied(ts, 100.0, check_points=[1.0, 2.0, 5.0])
        assert not demand_bound_satisfied(ts, 99.0, check_points=[1.0])
