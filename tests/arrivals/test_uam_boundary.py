"""Sliding-window boundary semantics of the UAM checks.

The half-open window convention makes one instant load-bearing: an
arrival exactly at the trailing edge ``t = t_anchor + P`` opens a *new*
window and never counts against the old one.  These tests pin that edge
(and the float-accumulation tolerance around it) for every consumer of
:func:`repro.arrivals.uam.effective_window`, and property-test the
online/offline check agreement with Hypothesis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (
    UAMSpec,
    UAMTracker,
    effective_window,
    first_violation,
    is_uam_compliant,
    max_count_in_any_window,
    next_admissible_time,
    thin_to_uam,
)

specs = st.builds(
    UAMSpec,
    max_arrivals=st.integers(min_value=1, max_value=5),
    window=st.floats(min_value=1e-3, max_value=100.0,
                     allow_nan=False, allow_infinity=False),
)

arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0,
              allow_nan=False, allow_infinity=False),
    max_size=60,
).map(sorted)


class TestTrailingEdge:
    def test_arrival_exactly_at_t_prev_plus_p_is_compliant(self):
        spec = UAMSpec(1, 1.0)
        assert is_uam_compliant([0.0, 1.0, 2.0, 3.0], spec)

    def test_arrival_strictly_inside_window_violates(self):
        spec = UAMSpec(1, 1.0)
        assert first_violation([0.0, 0.999999], spec) == 1

    def test_trailing_edge_for_a_greater_than_one(self):
        spec = UAMSpec(2, 1.0)
        # Third arrival exactly at t_1 + P: legal (the window is half-open).
        assert is_uam_compliant([0.0, 0.5, 1.0], spec)
        # Third arrival a hair before t_1 + P: the window still holds 2.
        assert not is_uam_compliant([0.0, 0.5, 1.0 - 1e-6], spec)

    def test_window_count_at_edges(self):
        # [t, t+P) half-open: the arrival at P is outside the window at 0.
        assert max_count_in_any_window([0.0, 1.0], 1.0) == 1
        assert max_count_in_any_window([0.0, 1.0 - 1e-6], 1.0) == 2

    def test_float_accumulation_undershoot_is_tolerated(self):
        # k * 0.1 accumulated in floats undershoots exact multiples by a
        # few ulps; the relative tolerance must absorb that.
        times, t = [], 0.0
        for _ in range(50):
            times.append(t)
            t += 0.1
        assert is_uam_compliant(times, UAMSpec(1, 0.1))

    def test_effective_window_shrinks_relatively(self):
        for window in (1e-3, 1.0, 1e6):
            assert 0.0 < window - effective_window(window) < 1e-6 * max(1.0, window)


class TestNextAdmissibleTime:
    def test_free_window_admits_now(self):
        spec = UAMSpec(2, 1.0)
        assert next_admissible_time([], spec, 5.0) == 5.0
        assert next_admissible_time([4.9], spec, 5.0) == 5.0

    def test_full_window_waits_for_anchor_plus_p(self):
        spec = UAMSpec(2, 1.0)
        assert next_admissible_time([4.5, 4.9], spec, 5.0) == 5.5

    def test_exactly_at_edge_admits_now(self):
        spec = UAMSpec(1, 1.0)
        assert next_admissible_time([4.0], spec, 5.0) == 5.0

    @given(arrival_lists, specs, st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=300)
    def test_admitting_at_returned_instant_is_compliant(self, times, spec, t):
        kept = thin_to_uam(times, spec)
        recent = [x for x in kept if x <= t]
        if recent and t < recent[-1]:
            return  # next_admissible_time requires t at or after the last arrival
        grant = next_admissible_time(recent, spec, t)
        assert grant >= t
        assert is_uam_compliant(recent + [grant], spec)

    @given(arrival_lists, specs, st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=200)
    def test_grant_is_earliest(self, times, spec, t):
        """Nothing strictly between t and the grant is compliant."""
        recent = thin_to_uam(times, spec)
        if recent and t < recent[-1]:
            return
        grant = next_admissible_time(recent, spec, t)
        if grant > t:
            probe = (t + grant) / 2.0
            if probe < grant - 1e-9 * max(1.0, abs(grant)):
                assert not is_uam_compliant(recent + [probe], spec)


class TestThinningBoundary:
    """Edge cases of the greedy admitter every registry shape funnels
    its raw stream through."""

    def test_empty_stream_stays_empty(self):
        assert thin_to_uam([], UAMSpec(3, 1.0)) == []

    def test_single_arrival_passes(self):
        assert thin_to_uam([0.7], UAMSpec(1, 1.0)) == [0.7]

    def test_compliant_stream_passes_through_identically(self):
        times = [0.0, 0.4, 1.0, 1.4, 2.0, 2.4]
        assert thin_to_uam(times, UAMSpec(2, 1.0)) == times

    def test_exact_a_P_edge_is_admitted(self):
        # The a+1'th arrival exactly P after the anchor opens a fresh
        # half-open window — it must be kept, not dropped.
        spec = UAMSpec(2, 1.0)
        assert thin_to_uam([0.0, 0.5, 1.0], spec) == [0.0, 0.5, 1.0]

    def test_hair_inside_the_edge_is_dropped(self):
        spec = UAMSpec(2, 1.0)
        kept = thin_to_uam([0.0, 0.5, 1.0 - 1e-6], spec)
        assert kept == [0.0, 0.5]

    def test_saturating_burst_keeps_first_a(self):
        spec = UAMSpec(3, 1.0)
        times = [0.0] * 5  # simultaneous burst of 5 into an a=3 budget
        assert thin_to_uam(times, spec) == [0.0, 0.0, 0.0]

    def test_drop_frees_no_budget(self):
        # A dropped arrival must not count against later admissions:
        # after dropping 0.9 (window [0, 1) already holds a=1's worth),
        # the arrival at exactly 1.0 is admissible.
        spec = UAMSpec(1, 1.0)
        assert thin_to_uam([0.0, 0.9, 1.0], spec) == [0.0, 1.0]

    def test_float_accumulation_at_the_edge_is_tolerated(self):
        # k * 0.1 undershoots exact multiples by ulps; the effective
        # window slack must keep the periodic stream untouched.
        times, t = [], 0.0
        for _ in range(50):
            times.append(t)
            t += 0.1
        assert thin_to_uam(times, UAMSpec(1, 0.1)) == times


class TestOnlineOfflineAgreement:
    @given(arrival_lists, specs)
    @settings(max_examples=300)
    def test_thinning_matches_greedy_tracker(self, times, spec):
        """thin_to_uam's keep rule IS the tracker's admit rule."""
        tracker = UAMTracker(spec)
        admitted = [t for t in times if tracker.admit(t)]
        assert admitted == thin_to_uam(times, spec)

    @given(arrival_lists, specs)
    @settings(max_examples=300)
    def test_thinned_sequences_are_compliant(self, times, spec):
        kept = thin_to_uam(times, spec)
        assert is_uam_compliant(kept, spec)
        assert max_count_in_any_window(kept, spec.window) <= spec.max_arrivals

    @given(arrival_lists, specs)
    @settings(max_examples=300)
    def test_compliant_sequences_pass_untouched(self, times, spec):
        kept = thin_to_uam(times, spec)
        assert thin_to_uam(kept, spec) == kept
