"""Tests for the arrival registry (repro.arrivals.registry).

The load-bearing contracts: legacy workload modes construct
byte-identical generators to the pre-registry hard-coded calls (golden
traces depend on it), and ``to_config`` round-trips through JSON to a
generator with a bit-identical stream (campaign/cache identity depends
on it).
"""

import json

import numpy as np
import pytest

from repro.arrivals import (
    BurstUAMArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    UAMError,
    UAMSpec,
    arrival_generator_names,
    create_arrival_generator,
    generator_config,
    generator_from_config,
    is_uam_compliant,
    register_arrival_generator,
    workload_shape_names,
)


SPEC = UAMSpec(3, 0.1)


class TestListing:
    def test_all_shapes_registered(self):
        names = arrival_generator_names()
        for expected in ("periodic", "jittered", "sporadic", "burst",
                         "scattered", "poisson", "mmpp", "nhpp-diurnal",
                         "flash-crowd", "pareto", "trace", "trace-loop"):
            assert expected in names

    def test_listing_is_sorted(self):
        assert arrival_generator_names() == sorted(arrival_generator_names())

    def test_trace_shapes_are_not_workload_shapes(self):
        shapes = workload_shape_names()
        assert "trace" not in shapes and "trace-loop" not in shapes
        assert set(shapes) < set(arrival_generator_names())

    def test_legacy_modes_are_workload_shapes(self):
        shapes = workload_shape_names()
        for mode in ("periodic", "burst", "scattered", "poisson"):
            assert mode in shapes


class TestCreate:
    def test_unknown_name_raises(self):
        with pytest.raises(UAMError, match="unknown arrival generator"):
            create_arrival_generator("no-such-shape", spec=SPEC)

    def test_spec_and_scalars_conflict(self):
        with pytest.raises(UAMError, match="not both"):
            create_arrival_generator("burst", spec=SPEC, a=3, window=0.1)

    def test_scalar_pair_builds_spec(self):
        gen = create_arrival_generator("burst", a=3, window=0.1)
        assert gen.spec == SPEC

    def test_spec_required_shapes_reject_none(self):
        with pytest.raises(UAMError, match="needs a UAM spec"):
            create_arrival_generator("burst")

    def test_trace_requires_times(self):
        with pytest.raises(UAMError, match="times"):
            create_arrival_generator("trace")

    def test_trace_loop_requires_times_and_cycle(self):
        with pytest.raises(UAMError):
            create_arrival_generator("trace-loop", times=[0.0, 0.1])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_arrival_generator("periodic", lambda spec: None)

    def test_pareto_default_scale_needs_alpha_above_one(self):
        with pytest.raises(UAMError, match="alpha > 1"):
            create_arrival_generator("pareto", spec=SPEC, alpha=0.9)


class TestLegacyEquivalence:
    """The spec-relative factories reproduce the synthesiser's historical
    hard-coded constructor calls bit for bit."""

    def _stream(self, gen, seed=123, horizon=2.0):
        return gen.generate(horizon, np.random.default_rng(seed))

    def test_periodic(self):
        assert self._stream(create_arrival_generator("periodic", spec=UAMSpec(1, 0.1))) \
            == self._stream(PeriodicArrivals(0.1))

    def test_burst(self):
        assert self._stream(create_arrival_generator("burst", spec=SPEC)) \
            == self._stream(BurstUAMArrivals(SPEC))

    def test_scattered(self):
        assert self._stream(create_arrival_generator("scattered", spec=SPEC)) \
            == self._stream(ScatteredUAMArrivals(SPEC))

    def test_poisson_rate_matches_historical_expression(self):
        gen = create_arrival_generator("poisson", spec=SPEC)
        legacy = PoissonUAMArrivals(SPEC, rate=2.0 * SPEC.max_arrivals / SPEC.window)
        assert gen.rate == legacy.rate  # exact, not approx: golden traces pin it
        assert self._stream(gen) == self._stream(legacy)


class TestConfigRoundTrip:
    @pytest.mark.parametrize("name", [
        "periodic", "jittered", "sporadic", "burst", "scattered",
        "poisson", "mmpp", "nhpp-diurnal", "flash-crowd", "pareto",
    ])
    def test_json_round_trip_is_bit_identical(self, name):
        gen = create_arrival_generator(name, spec=SPEC)
        config = generator_config(gen)
        assert config["name"] == name
        rebuilt = generator_from_config(json.loads(json.dumps(config)))
        a = gen.generate(3.0, np.random.default_rng(99))
        b = rebuilt.generate(3.0, np.random.default_rng(99))
        assert a == b
        assert rebuilt.to_config() == config

    def test_trace_round_trip(self):
        gen = create_arrival_generator("trace", times=[0.0, 0.25, 0.5])
        rebuilt = generator_from_config(json.loads(json.dumps(generator_config(gen))))
        assert rebuilt.generate(1.0) == gen.generate(1.0)

    def test_trace_loop_round_trip(self):
        gen = create_arrival_generator("trace-loop", times=[0.0, 0.3], cycle=1.0)
        rebuilt = generator_from_config(json.loads(json.dumps(generator_config(gen))))
        assert rebuilt.generate(3.5) == gen.generate(3.5)

    def test_config_requires_name(self):
        with pytest.raises(UAMError, match="name"):
            generator_from_config({"a": 3, "window": 0.1})

    def test_param_override_reaches_generator(self):
        gen = create_arrival_generator("nhpp-diurnal", spec=SPEC, peak_frac=0.25)
        assert gen.peak_frac == 0.25


class TestCompliance:
    @pytest.mark.parametrize("name", sorted(set(workload_shape_names())))
    def test_every_workload_shape_generates_compliant_streams(self, name):
        gen = create_arrival_generator(name, spec=SPEC)
        times = gen.generate_checked(4.0, np.random.default_rng(5))
        assert is_uam_compliant(times, gen.spec)
