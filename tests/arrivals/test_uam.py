"""Tests for the UAM model (repro.arrivals.uam)."""

import pytest

from repro.arrivals import (
    UAMError,
    UAMSpec,
    UAMTracker,
    first_violation,
    is_uam_compliant,
    max_count_in_any_window,
    thin_to_uam,
)


class TestUAMSpec:
    def test_basic_fields(self):
        spec = UAMSpec(3, 0.5)
        assert spec.max_arrivals == 3
        assert spec.window == 0.5

    def test_peak_rate(self):
        assert UAMSpec(4, 2.0).peak_rate == pytest.approx(2.0)

    def test_periodic_equivalent(self):
        assert UAMSpec(1, 1.0).is_periodic_equivalent
        assert not UAMSpec(2, 1.0).is_periodic_equivalent

    def test_scaled(self):
        spec = UAMSpec(2, 1.0).scaled(3.0)
        assert spec.window == 3.0
        assert spec.max_arrivals == 2

    def test_rejects_zero_arrivals(self):
        with pytest.raises(UAMError):
            UAMSpec(0, 1.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(UAMError):
            UAMSpec(1, 0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            UAMSpec(1, 1.0).window = 2.0


class TestMaxCountInWindow:
    def test_empty(self):
        assert max_count_in_any_window([], 1.0) == 0

    def test_single(self):
        assert max_count_in_any_window([0.5], 1.0) == 1

    def test_simultaneous(self):
        assert max_count_in_any_window([1.0, 1.0, 1.0], 0.1) == 3

    def test_spread(self):
        assert max_count_in_any_window([0.0, 1.0, 2.0], 1.0) == 1

    def test_boundary_exactly_window_apart(self):
        # Half-open windows: arrivals exactly P apart never share one.
        assert max_count_in_any_window([0.0, 1.0], 1.0) == 1

    def test_cluster(self):
        assert max_count_in_any_window([0.0, 0.1, 0.2, 5.0], 0.25) == 3

    def test_rejects_unsorted(self):
        with pytest.raises(UAMError):
            max_count_in_any_window([1.0, 0.5], 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(UAMError):
            max_count_in_any_window([0.0], 0.0)

    def test_float_accumulation_tolerance(self):
        # k * 0.1 accumulates ulp noise; gaps a hair under the window
        # still count as compliant.
        times = [k * 0.1 for k in range(100)]
        assert max_count_in_any_window(times, 0.1) == 1


class TestCompliance:
    def test_periodic_complies_with_own_spec(self):
        times = [k * 0.5 for k in range(20)]
        assert is_uam_compliant(times, UAMSpec(1, 0.5))

    def test_periodic_violates_tighter_spec(self):
        times = [k * 0.5 for k in range(20)]
        assert not is_uam_compliant(times, UAMSpec(1, 0.6))

    def test_burst_exactly_a(self):
        times = [0.0, 0.0, 1.0, 1.0]
        assert is_uam_compliant(times, UAMSpec(2, 1.0))

    def test_burst_over_a(self):
        times = [0.0, 0.0, 0.0]
        assert not is_uam_compliant(times, UAMSpec(2, 1.0))

    def test_first_violation_index(self):
        times = [0.0, 0.1, 0.2]
        assert first_violation(times, UAMSpec(2, 1.0)) == 2

    def test_first_violation_none(self):
        assert first_violation([0.0, 2.0], UAMSpec(1, 1.0)) is None

    def test_empty_compliant(self):
        assert is_uam_compliant([], UAMSpec(1, 1.0))


class TestThinning:
    def test_no_drop_when_compliant(self):
        times = [0.0, 1.0, 2.0]
        assert thin_to_uam(times, UAMSpec(1, 1.0)) == times

    def test_drops_overflow(self):
        times = [0.0, 0.1, 0.2, 0.3]
        kept = thin_to_uam(times, UAMSpec(2, 1.0))
        assert kept == [0.0, 0.1]

    def test_result_is_compliant(self):
        times = [0.0, 0.05, 0.1, 0.5, 0.6, 0.7, 1.2, 1.3]
        spec = UAMSpec(2, 0.5)
        assert is_uam_compliant(thin_to_uam(times, spec), spec)

    def test_keeps_earliest(self):
        kept = thin_to_uam([0.0, 0.4, 1.0], UAMSpec(1, 1.0))
        assert kept == [0.0, 1.0]


class TestTracker:
    def test_admits_within_budget(self):
        tr = UAMTracker(UAMSpec(2, 1.0))
        assert tr.admit(0.0)
        assert tr.admit(0.5)
        assert not tr.admit(0.9)

    def test_budget_replenishes(self):
        tr = UAMTracker(UAMSpec(1, 1.0))
        assert tr.admit(0.0)
        assert not tr.admit(0.5)
        assert tr.admit(1.0)

    def test_would_admit_is_pure(self):
        tr = UAMTracker(UAMSpec(1, 1.0))
        assert tr.would_admit(0.0)
        assert tr.would_admit(0.0)  # not recorded
        assert tr.arrivals_in_current_window == 0

    def test_remaining_budget(self):
        tr = UAMTracker(UAMSpec(3, 1.0))
        tr.admit(0.0)
        assert tr.remaining_budget(0.5) == 2
        assert tr.remaining_budget(1.5) == 3

    def test_rejects_out_of_order(self):
        tr = UAMTracker(UAMSpec(1, 1.0))
        tr.admit(1.0)
        with pytest.raises(UAMError):
            tr.would_admit(0.5)

    def test_simultaneous_arrivals(self):
        tr = UAMTracker(UAMSpec(3, 1.0))
        assert [tr.admit(0.0) for _ in range(4)] == [True, True, True, False]
