"""Tests for the internet-scale arrival shapes (NHPP diurnal, flash
crowd, Pareto heavy tails, looped traces) and the unseeded-rng warning.

Every shape declares a UAM envelope and funnels its raw stream through
``thin_to_uam`` — compliance is the contract the schedulers' assurances
rest on, so it is asserted for each shape alongside the shape-specific
semantics (diurnal intensity, burst segments, tail behaviour, tiling).
"""

import math
import warnings

import numpy as np
import pytest

from repro.arrivals import (
    FlashCrowdArrivals,
    LoopedTraceArrivals,
    NHPPArrivals,
    ParetoArrivals,
    UAMError,
    UAMSpec,
    UnseededRNGWarning,
    is_uam_compliant,
)


SPEC = UAMSpec(3, 0.1)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestNHPPDiurnal:
    def _gen(self, **kw):
        defaults = dict(base_rate=10.0, peak_rate=120.0, cycle=0.8)
        defaults.update(kw)
        return NHPPArrivals(SPEC, **defaults)

    def test_compliance(self, rng):
        times = self._gen().generate_checked(5.0, rng)
        assert is_uam_compliant(times, SPEC)

    def test_deterministic_under_seed(self):
        a = self._gen().generate(5.0, np.random.default_rng(3))
        b = self._gen().generate(5.0, np.random.default_rng(3))
        assert a == b

    def test_rate_peaks_at_peak_frac(self):
        gen = self._gen(peak_frac=0.25)
        assert gen.rate(0.25 * gen.cycle) == pytest.approx(gen.peak_rate)
        # Diametrically opposite point sits near the base rate.
        trough = gen.rate((0.25 + 0.5) * gen.cycle)
        assert trough < gen.base_rate + 0.01 * (gen.peak_rate - gen.base_rate)

    def test_rate_is_cycle_periodic(self):
        gen = self._gen()
        for t in (0.0, 0.123, 0.456):
            assert gen.rate(t) == pytest.approx(gen.rate(t + gen.cycle))

    def test_peak_concentrates_arrivals(self):
        # With a sharp peak and near-zero base, arrivals cluster around
        # the crest of each cycle.
        gen = NHPPArrivals(UAMSpec(50, 0.01), base_rate=0.0, peak_rate=200.0,
                           cycle=1.0, peak_frac=0.5, peak_width=0.05)
        times = gen.generate(20.0, np.random.default_rng(11))
        assert times, "expected arrivals at the diurnal crests"
        assert all(abs((t % 1.0) - 0.5) < 0.3 for t in times)

    def test_rejects_base_above_peak(self):
        with pytest.raises(UAMError):
            NHPPArrivals(SPEC, base_rate=10.0, peak_rate=5.0, cycle=1.0)

    def test_rejects_bad_cycle(self):
        with pytest.raises(UAMError):
            NHPPArrivals(SPEC, base_rate=1.0, peak_rate=2.0, cycle=0.0)


class TestFlashCrowd:
    def _gen(self, **kw):
        defaults = dict(base_rate=5.0, burst_factor=8.0,
                        burst_duration=0.1, mean_time_between=0.5)
        defaults.update(kw)
        return FlashCrowdArrivals(SPEC, **defaults)

    def test_compliance(self, rng):
        times = self._gen().generate_checked(5.0, rng)
        assert is_uam_compliant(times, SPEC)

    def test_deterministic_under_seed(self):
        a = self._gen().generate(5.0, np.random.default_rng(3))
        b = self._gen().generate(5.0, np.random.default_rng(3))
        assert a == b

    def test_bursts_raise_arrival_count(self):
        # Burstier configuration admits at least as many jobs into a
        # generous envelope as the pure baseline.
        loose = UAMSpec(1000, 1e-6)
        quiet = FlashCrowdArrivals(loose, base_rate=5.0, burst_factor=1.0,
                                   burst_duration=0.5, mean_time_between=0.5)
        crowd = FlashCrowdArrivals(loose, base_rate=5.0, burst_factor=20.0,
                                   burst_duration=0.5, mean_time_between=0.5)
        n_quiet = len(quiet.generate(50.0, np.random.default_rng(1)))
        n_crowd = len(crowd.generate(50.0, np.random.default_rng(1)))
        assert n_crowd > n_quiet

    def test_rejects_sub_one_burst_factor(self):
        with pytest.raises(UAMError):
            self._gen(burst_factor=0.5)


class TestPareto:
    def test_compliance(self, rng):
        gen = ParetoArrivals(SPEC, alpha=1.5, x_min=0.01)
        assert is_uam_compliant(gen.generate_checked(5.0, rng), SPEC)

    def test_gaps_respect_x_min(self):
        gen = ParetoArrivals(UAMSpec(1000, 1e-9), alpha=1.5, x_min=0.05)
        times = gen.generate(50.0, np.random.default_rng(2))
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= 0.05

    def test_mean_gap_tracks_alpha(self):
        # E[gap] = x_min * alpha / (alpha - 1); alpha=3 -> 1.5 * x_min.
        gen = ParetoArrivals(UAMSpec(10**6, 1e-9), alpha=3.0, x_min=0.01)
        times = gen.generate(1000.0, np.random.default_rng(4))
        mean_gap = times[-1] / len(times)
        assert math.isclose(mean_gap, 0.015, rel_tol=0.1)

    def test_rejects_bad_params(self):
        with pytest.raises(UAMError):
            ParetoArrivals(SPEC, alpha=0.0)
        with pytest.raises(UAMError):
            ParetoArrivals(SPEC, x_min=0.0)


class TestLoopedTrace:
    def test_tiles_the_base_trace(self):
        gen = LoopedTraceArrivals([0.0, 0.3], cycle=1.0, spec=UAMSpec(2, 0.3))
        assert gen.generate(2.5) == [0.0, 0.3, 1.0, 1.3, 2.0, 2.3]

    def test_partial_last_cycle_is_clipped(self):
        gen = LoopedTraceArrivals([0.0, 0.6], cycle=1.0, spec=UAMSpec(2, 0.4))
        assert gen.generate(1.5) == [0.0, 0.6, 1.0]

    def test_empty_trace_and_zero_horizon(self):
        assert LoopedTraceArrivals([], cycle=1.0).generate(5.0) == []
        gen = LoopedTraceArrivals([0.1], cycle=1.0)
        assert gen.generate(0.0) == []

    def test_inferred_spec_covers_the_wraparound_seam(self):
        # Tail at 0.9 meets the next copy's head at 1.0: the inferred
        # window must make the tiled stream self-compliant.
        gen = LoopedTraceArrivals([0.0, 0.9], cycle=1.0)
        times = gen.generate(4.0)
        assert is_uam_compliant(times, gen.spec)

    def test_rejects_times_outside_cycle(self):
        with pytest.raises(UAMError):
            LoopedTraceArrivals([0.0, 1.0], cycle=1.0)
        with pytest.raises(UAMError):
            LoopedTraceArrivals([-0.1], cycle=1.0)

    def test_rejects_bad_cycle(self):
        with pytest.raises(UAMError):
            LoopedTraceArrivals([0.0], cycle=0.0)


class TestUnseededRNGWarning:
    def test_stochastic_generate_without_rng_warns(self):
        gen = ParetoArrivals(SPEC, alpha=1.5, x_min=0.01)
        with pytest.warns(UnseededRNGWarning):
            gen.generate(1.0)

    def test_seeded_generate_does_not_warn(self):
        gen = ParetoArrivals(SPEC, alpha=1.5, x_min=0.01)
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnseededRNGWarning)
            gen.generate(1.0, np.random.default_rng(0))

    def test_warning_attributes_to_caller_from_generate(self):
        # The warning must name *this* file, not generators.py.
        gen = ParetoArrivals(SPEC, alpha=1.5, x_min=0.01)
        with pytest.warns(UnseededRNGWarning) as record:
            gen.generate(1.0)
        assert record[0].filename == __file__

    def test_warning_attributes_to_caller_from_generate_checked(self):
        # generate_checked adds an in-package frame on top of generate;
        # the dynamic stacklevel must skip it too.
        gen = ParetoArrivals(SPEC, alpha=1.5, x_min=0.01)
        with pytest.warns(UnseededRNGWarning) as record:
            gen.generate_checked(1.0)
        assert record[0].filename == __file__

    def test_warning_attributes_to_caller_via_registry(self):
        # Generators built through the registry warn at the same
        # external frame as directly constructed ones.
        from repro.arrivals import create_arrival_generator

        gen = create_arrival_generator(
            "pareto", a=SPEC.max_arrivals, window=SPEC.window,
            alpha=1.5, x_min=0.01,
        )
        with pytest.warns(UnseededRNGWarning) as record:
            gen.generate_checked(1.0)
        assert record[0].filename == __file__

    def test_materialize_without_rng_warns(self):
        from repro.demand import NormalDemand
        from repro.sim.task import Task, TaskSet
        from repro.sim.workload import materialize
        from repro.tuf import StepTUF

        task = Task("T0", StepTUF(10.0, 0.1), NormalDemand(1.0, 0.01),
                    UAMSpec(1, 0.1))
        with pytest.warns(UnseededRNGWarning):
            materialize(TaskSet([task]), 0.5)

    def test_materialize_with_rng_does_not_warn(self):
        from repro.demand import NormalDemand
        from repro.sim.task import Task, TaskSet
        from repro.sim.workload import materialize
        from repro.tuf import StepTUF

        task = Task("T0", StepTUF(10.0, 0.1), NormalDemand(1.0, 0.01),
                    UAMSpec(1, 0.1))
        with warnings.catch_warnings():
            warnings.simplefilter("error", UnseededRNGWarning)
            materialize(TaskSet([task]), 0.5, np.random.default_rng(0))
