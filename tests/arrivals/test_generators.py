"""Tests for arrival generators (repro.arrivals.generators)."""

import numpy as np
import pytest

from repro.arrivals import (
    BurstUAMArrivals,
    JitteredPeriodicArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    SporadicArrivals,
    TraceArrivals,
    UAMError,
    UAMSpec,
    is_uam_compliant,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestPeriodic:
    def test_count(self):
        assert len(PeriodicArrivals(0.5).generate(10.0)) == 20

    def test_times(self):
        assert PeriodicArrivals(1.0).generate(3.5) == [0.0, 1.0, 2.0, 3.0]

    def test_phase(self):
        assert PeriodicArrivals(1.0, phase=0.25).generate(2.0) == [0.25, 1.25]

    def test_spec_is_uam_1P(self):
        gen = PeriodicArrivals(0.5)
        assert gen.spec == UAMSpec(1, 0.5)

    def test_compliance(self, rng):
        gen = PeriodicArrivals(0.3)
        gen.generate_checked(5.0, rng)

    def test_empty_when_horizon_before_phase(self):
        assert PeriodicArrivals(1.0, phase=5.0).generate(4.0) == []

    def test_rejects_bad_period(self):
        with pytest.raises(UAMError):
            PeriodicArrivals(0.0)


class TestJitteredPeriodic:
    def test_compliance(self, rng):
        gen = JitteredPeriodicArrivals(1.0, jitter=0.3)
        times = gen.generate_checked(50.0, rng)
        assert is_uam_compliant(times, UAMSpec(1, 0.7))

    def test_spec_tightened_by_jitter(self):
        gen = JitteredPeriodicArrivals(1.0, jitter=0.3)
        assert gen.spec.window == pytest.approx(0.7)

    def test_zero_jitter_is_periodic(self, rng):
        gen = JitteredPeriodicArrivals(1.0, jitter=0.0)
        assert gen.generate(3.0, rng) == [0.0, 1.0, 2.0]

    def test_rejects_jitter_ge_period(self):
        with pytest.raises(UAMError):
            JitteredPeriodicArrivals(1.0, jitter=1.0)


class TestSporadic:
    def test_min_separation_holds(self, rng):
        gen = SporadicArrivals(min_interarrival=0.2, mean_interarrival=0.4)
        times = gen.generate_checked(50.0, rng)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= 0.2 - 1e-12

    def test_mean_rate_roughly_matches(self, rng):
        gen = SporadicArrivals(min_interarrival=0.1, mean_interarrival=0.5)
        times = gen.generate(1000.0, rng)
        mean_gap = (times[-1] - times[0]) / (len(times) - 1)
        assert mean_gap == pytest.approx(0.5, rel=0.15)

    def test_rejects_mean_below_min(self):
        with pytest.raises(UAMError):
            SporadicArrivals(0.5, 0.4)


class TestBurst:
    def test_full_bursts(self, rng):
        gen = BurstUAMArrivals(UAMSpec(3, 1.0))
        times = gen.generate(2.5, rng)
        assert times == [0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_compliance(self, rng):
        gen = BurstUAMArrivals(UAMSpec(4, 0.25))
        gen.generate_checked(10.0, rng)

    def test_randomized_sizes_bounded(self, rng):
        gen = BurstUAMArrivals(UAMSpec(3, 1.0), randomize=True)
        times = gen.generate(100.0, rng)
        from collections import Counter

        sizes = Counter(times).values()
        assert max(sizes) <= 3 and min(sizes) >= 1

    def test_phase(self, rng):
        gen = BurstUAMArrivals(UAMSpec(2, 1.0), phase=0.5)
        assert gen.generate(1.6, rng) == [0.5, 0.5, 1.5, 1.5]


class TestScattered:
    def test_compliance(self, rng):
        gen = ScatteredUAMArrivals(UAMSpec(3, 0.2))
        gen.generate_checked(20.0, rng)

    def test_not_synchronised(self, rng):
        times = ScatteredUAMArrivals(UAMSpec(3, 1.0)).generate(50.0, rng)
        # Offsets within windows vary (not all at window starts).
        offsets = {round(t % 1.0, 6) for t in times}
        assert len(offsets) > 10

    def test_rejects_bad_spread(self):
        with pytest.raises(UAMError):
            ScatteredUAMArrivals(UAMSpec(1, 1.0), spread=0.0)


class TestPoissonUAM:
    def test_compliance(self, rng):
        gen = PoissonUAMArrivals(UAMSpec(2, 0.5), rate=10.0)
        gen.generate_checked(20.0, rng)

    def test_rate_bounded_by_envelope(self, rng):
        gen = PoissonUAMArrivals(UAMSpec(2, 0.5), rate=100.0)
        times = gen.generate(100.0, rng)
        # Cannot exceed a/P = 4 arrivals per second on average.
        assert len(times) <= 4 * 100.0 + 2

    def test_low_rate_barely_thinned(self, rng):
        spec = UAMSpec(5, 1.0)
        gen = PoissonUAMArrivals(spec, rate=0.5)
        times = gen.generate(2000.0, rng)
        assert len(times) == pytest.approx(1000, rel=0.15)

    def test_rejects_bad_rate(self):
        with pytest.raises(UAMError):
            PoissonUAMArrivals(UAMSpec(1, 1.0), rate=0.0)


class TestTrace:
    def test_replay(self):
        gen = TraceArrivals([0.5, 1.5, 2.5])
        assert gen.generate(2.0) == [0.5, 1.5]

    def test_inferred_spec_admits_trace(self):
        times = [0.0, 0.0, 0.7, 1.4, 1.4]
        gen = TraceArrivals(times)
        assert is_uam_compliant(times, gen.spec)

    def test_explicit_spec_checked(self):
        with pytest.raises(UAMError):
            TraceArrivals([0.0, 0.1], spec=UAMSpec(1, 1.0))

    def test_explicit_spec_accepted(self):
        gen = TraceArrivals([0.0, 1.0], spec=UAMSpec(1, 1.0))
        assert gen.spec.max_arrivals == 1

    def test_rejects_negative_times(self):
        with pytest.raises(UAMError):
            TraceArrivals([-1.0, 0.0])

    def test_sorts_input(self):
        assert TraceArrivals([2.0, 0.5]).generate(10.0) == [0.5, 2.0]


class TestGenerateChecked:
    def test_catches_lying_generator(self, rng):
        class Liar(PeriodicArrivals):
            def generate(self, horizon, rng=None):
                return [0.0, 0.0]  # violates <1, P>

        with pytest.raises(UAMError):
            Liar(1.0).generate_checked(1.0, rng)


class TestMMPP:
    def test_compliance(self, rng):
        from repro.arrivals import MMPPUAMArrivals

        gen = MMPPUAMArrivals(UAMSpec(3, 0.2), burst_rate=60.0,
                              mean_burst_duration=0.5, mean_quiet_duration=0.5)
        gen.generate_checked(20.0, rng)

    def test_quiet_state_produces_gaps(self, rng):
        from repro.arrivals import MMPPUAMArrivals

        gen = MMPPUAMArrivals(UAMSpec(5, 0.1), burst_rate=200.0, quiet_rate=0.0,
                              mean_burst_duration=0.2, mean_quiet_duration=1.0)
        times = gen.generate(60.0, rng)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # On/off structure: some long silences well beyond the window.
        assert max(gaps) > 0.5

    def test_burstier_than_poisson(self, rng):
        from repro.arrivals import MMPPUAMArrivals, PoissonUAMArrivals
        import numpy as np

        spec = UAMSpec(5, 0.1)
        mmpp = MMPPUAMArrivals(spec, burst_rate=100.0, quiet_rate=2.0,
                               mean_burst_duration=0.3, mean_quiet_duration=0.7)
        pois = PoissonUAMArrivals(spec, rate=31.4)  # similar mean rate
        t_m = mmpp.generate(200.0, np.random.default_rng(1))
        t_p = pois.generate(200.0, np.random.default_rng(1))

        def cv_of_counts(times, bin_width=0.5):
            counts, _ = np.histogram(times, bins=np.arange(0.0, 200.0, bin_width))
            return np.std(counts) / max(np.mean(counts), 1e-9)

        assert cv_of_counts(t_m) > cv_of_counts(t_p)

    def test_rejects_bad_rates(self):
        from repro.arrivals import MMPPUAMArrivals

        with pytest.raises(UAMError):
            MMPPUAMArrivals(UAMSpec(1, 1.0), burst_rate=0.0)
        with pytest.raises(UAMError):
            MMPPUAMArrivals(UAMSpec(1, 1.0), burst_rate=1.0, quiet_rate=-1.0)
        with pytest.raises(UAMError):
            MMPPUAMArrivals(UAMSpec(1, 1.0), burst_rate=1.0, mean_burst_duration=0.0)
