"""Tests for demand distributions (repro.demand.distributions)."""

import numpy as np
import pytest

from repro.demand import (
    DemandError,
    DeterministicDemand,
    EmpiricalDemand,
    ExponentialDemand,
    GammaDemand,
    NormalDemand,
    UniformDemand,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


ALL_DISTS = [
    DeterministicDemand(5.0),
    NormalDemand(50.0, 50.0),
    UniformDemand(2.0, 8.0),
    ExponentialDemand(3.0, offset=1.0),
    GammaDemand(4.0, 2.0),
    EmpiricalDemand([1.0, 2.0, 3.0, 4.0]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_moments_positive(self, dist):
        assert dist.mean > 0.0
        assert dist.variance >= 0.0

    def test_scalar_sample(self, dist, rng):
        y = dist.sample(rng)
        assert isinstance(y, float)
        assert y > 0.0

    def test_vector_sample(self, dist, rng):
        ys = dist.sample(rng, size=100)
        assert ys.shape == (100,)
        assert np.all(ys > 0.0)

    def test_empirical_moments_match_declared(self, dist, rng):
        ys = dist.sample(rng, size=40_000)
        assert np.mean(ys) == pytest.approx(dist.mean, rel=0.05)
        if dist.variance > 0.0:
            assert np.var(ys) == pytest.approx(dist.variance, rel=0.1)

    def test_scaled_moments(self, dist, rng):
        k = 2.5
        scaled = dist.scaled(k)
        assert scaled.mean == pytest.approx(k * dist.mean, rel=1e-9)
        assert scaled.variance == pytest.approx(k * k * dist.variance, rel=1e-9)

    def test_scaled_rejects_bad_factor(self, dist):
        with pytest.raises(DemandError):
            dist.scaled(0.0)

    def test_std_consistent(self, dist):
        assert dist.std == pytest.approx(dist.variance**0.5)


class TestDeterministic:
    def test_constant(self, rng):
        d = DeterministicDemand(3.0)
        assert d.sample(rng) == 3.0
        assert np.all(d.sample(rng, size=5) == 3.0)

    def test_zero_variance(self):
        assert DeterministicDemand(3.0).variance == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(DemandError):
            DeterministicDemand(0.0)


class TestNormal:
    def test_paper_default_variance_equals_mean(self):
        assert NormalDemand(10.0).variance == 10.0

    def test_clipping_keeps_samples_positive(self, rng):
        # Mean 1 with std 10: plenty of negative raw draws.
        d = NormalDemand(1.0, 100.0)
        assert np.all(d.sample(rng, size=1000) > 0.0)

    def test_scaling_matches_paper_k_k2(self):
        d = NormalDemand(10.0, 10.0).scaled(3.0)
        assert d.mean == 30.0
        assert d.variance == 90.0

    def test_rejects_negative_variance(self):
        with pytest.raises(DemandError):
            NormalDemand(1.0, -1.0)


class TestUniform:
    def test_bounds(self, rng):
        d = UniformDemand(2.0, 8.0)
        ys = d.sample(rng, size=1000)
        assert ys.min() >= 2.0 and ys.max() <= 8.0

    def test_moments(self):
        d = UniformDemand(2.0, 8.0)
        assert d.mean == 5.0
        assert d.variance == pytest.approx(3.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(DemandError):
            UniformDemand(8.0, 2.0)


class TestExponential:
    def test_offset_floor(self, rng):
        d = ExponentialDemand(1.0, offset=2.0)
        assert np.all(d.sample(rng, size=1000) >= 2.0)

    def test_moments(self):
        d = ExponentialDemand(3.0, offset=1.0)
        assert d.mean == 4.0
        assert d.variance == 9.0


class TestGamma:
    def test_moments(self):
        d = GammaDemand(4.0, 2.0)
        assert d.mean == 8.0
        assert d.variance == 16.0

    def test_scaled_preserves_shape(self):
        d = GammaDemand(4.0, 2.0).scaled(3.0)
        assert d.shape == 4.0
        assert d.scale == 6.0


class TestEmpirical:
    def test_samples_from_observations(self, rng):
        d = EmpiricalDemand([1.0, 2.0, 3.0])
        assert set(np.unique(d.sample(rng, size=500))) <= {1.0, 2.0, 3.0}

    def test_population_variance(self):
        d = EmpiricalDemand([1.0, 3.0])
        assert d.mean == 2.0
        assert d.variance == 1.0

    def test_rejects_nonpositive_observations(self):
        with pytest.raises(DemandError):
            EmpiricalDemand([1.0, 0.0])

    def test_rejects_too_few(self):
        with pytest.raises(DemandError):
            EmpiricalDemand([1.0])

    def test_observations_copy(self):
        d = EmpiricalDemand([1.0, 2.0])
        obs = d.observations
        obs[0] = 99.0
        assert d.mean == 1.5
