"""Tests for demand profiling (repro.demand.estimator)."""

import numpy as np
import pytest

from repro.demand import DemandError, DemandProfiler, WelfordEstimator


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.normal(10.0, 2.0, size=500)
        est = WelfordEstimator()
        est.update_many(data)
        assert est.mean == pytest.approx(np.mean(data))
        assert est.variance == pytest.approx(np.var(data))
        assert est.sample_variance == pytest.approx(np.var(data, ddof=1))

    def test_count(self):
        est = WelfordEstimator()
        est.update_many([1.0, 2.0, 3.0])
        assert est.count == 3

    def test_single_observation(self):
        est = WelfordEstimator()
        est.update(5.0)
        assert est.mean == 5.0
        assert est.variance == 0.0

    def test_empty_raises(self):
        with pytest.raises(DemandError):
            WelfordEstimator().mean

    def test_sample_variance_needs_two(self):
        est = WelfordEstimator()
        est.update(1.0)
        with pytest.raises(DemandError):
            est.sample_variance

    def test_rejects_nonfinite(self):
        with pytest.raises(DemandError):
            WelfordEstimator().update(float("nan"))

    def test_merge_equals_concat(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=100), rng.normal(size=57) + 3.0
        ea, eb = WelfordEstimator(), WelfordEstimator()
        ea.update_many(a)
        eb.update_many(b)
        ea.merge(eb)
        data = np.concatenate([a, b])
        assert ea.count == 157
        assert ea.mean == pytest.approx(np.mean(data))
        assert ea.variance == pytest.approx(np.var(data))

    def test_merge_into_empty(self):
        ea, eb = WelfordEstimator(), WelfordEstimator()
        eb.update_many([1.0, 2.0])
        ea.merge(eb)
        assert ea.mean == 1.5

    def test_merge_empty_is_noop(self):
        ea = WelfordEstimator()
        ea.update(1.0)
        ea.merge(WelfordEstimator())
        assert ea.count == 1


class TestSmallSampleContract:
    """The frozen small-sample contract (see the WelfordEstimator
    docstring) — the adaptive runtime branches on exactly these
    behaviours, so they are pinned individually."""

    def test_mean_n0_raises_demand_error(self):
        with pytest.raises(DemandError):
            WelfordEstimator().mean

    def test_variance_n0_raises_demand_error(self):
        with pytest.raises(DemandError):
            WelfordEstimator().variance

    def test_variance_n1_is_exactly_zero(self):
        for value in (5.0, -3.25, 1e-12, 1e12):
            est = WelfordEstimator()
            est.update(value)
            assert est.variance == 0.0  # exact, not approx

    def test_sample_variance_n0_and_n1_raise(self):
        est = WelfordEstimator()
        with pytest.raises(DemandError):
            est.sample_variance
        est.update(1.0)
        with pytest.raises(DemandError):
            est.sample_variance
        est.update(2.0)
        assert est.sample_variance == pytest.approx(0.5)

    def test_never_zero_division_or_nan(self):
        """The contract errors are typed DemandErrors, never arithmetic
        accidents leaking out of the update recurrences."""
        est = WelfordEstimator()
        for exc_prop in ("mean", "variance", "sample_variance"):
            with pytest.raises(DemandError):
                getattr(est, exc_prop)

    def test_deterministic_across_identical_streams(self):
        a, b = WelfordEstimator(), WelfordEstimator()
        stream = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        a.update_many(stream)
        b.update_many(stream)
        assert (a.count, a.mean, a.variance, a.sample_variance) == (
            b.count, b.mean, b.variance, b.sample_variance
        )


class TestProfiler:
    def test_records_per_task(self):
        p = DemandProfiler()
        p.record("A", 1.0)
        p.record("A", 3.0)
        p.record("B", 5.0)
        assert p.count("A") == 2
        assert p.mean("A") == 2.0
        assert p.mean("B") == 5.0

    def test_tasks_listing(self):
        p = DemandProfiler()
        p.record("x", 1.0)
        assert p.tasks() == ["x"]

    def test_variance(self):
        p = DemandProfiler()
        p.record("A", 1.0)
        p.record("A", 3.0)
        assert p.variance("A") == 1.0

    def test_empirical_distribution_freeze(self):
        p = DemandProfiler()
        p.record("A", 1.0)
        p.record("A", 3.0)
        dist = p.empirical_distribution("A")
        assert dist.mean == 2.0

    def test_unknown_task_raises(self):
        with pytest.raises(DemandError):
            DemandProfiler().mean("nope")

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(DemandError):
            DemandProfiler().record("A", 0.0)

    def test_count_unknown_is_zero(self):
        assert DemandProfiler().count("nope") == 0

    def test_observations_copy(self):
        p = DemandProfiler()
        p.record("A", 1.0)
        obs = p.observations("A")
        obs.append(99.0)
        assert p.count("A") == 1
