"""Tests for the Chebyshev allocation (repro.demand.allocation)."""

import math

import numpy as np
import pytest

from repro.demand import (
    DemandError,
    NormalDemand,
    allocate_cycles,
    chebyshev_allocation,
    chebyshev_assurance,
    empirical_assurance,
)


class TestAllocation:
    def test_paper_closed_form(self):
        # c = E + sqrt(rho Var / (1 - rho))
        c = chebyshev_allocation(10.0, 4.0, 0.96)
        assert c == pytest.approx(10.0 + math.sqrt(0.96 * 4.0 / 0.04))

    def test_deterministic_demand_needs_only_mean(self):
        assert chebyshev_allocation(10.0, 0.0, 0.99) == 10.0

    def test_rho_zero_needs_only_mean(self):
        assert chebyshev_allocation(10.0, 5.0, 0.0) == 10.0

    def test_monotone_in_rho(self):
        allocs = [chebyshev_allocation(10.0, 4.0, r) for r in (0.5, 0.9, 0.96, 0.99)]
        assert all(a < b for a, b in zip(allocs, allocs[1:]))

    def test_monotone_in_variance(self):
        a = chebyshev_allocation(10.0, 1.0, 0.9)
        b = chebyshev_allocation(10.0, 9.0, 0.9)
        assert b > a

    def test_rejects_rho_one(self):
        with pytest.raises(DemandError):
            chebyshev_allocation(10.0, 4.0, 1.0)

    def test_rejects_negative_rho(self):
        with pytest.raises(DemandError):
            chebyshev_allocation(10.0, 4.0, -0.1)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(DemandError):
            chebyshev_allocation(0.0, 4.0, 0.9)

    def test_rejects_negative_variance(self):
        with pytest.raises(DemandError):
            chebyshev_allocation(10.0, -1.0, 0.9)


class TestInverse:
    def test_round_trip(self):
        for rho in (0.1, 0.5, 0.9, 0.96):
            c = chebyshev_allocation(10.0, 4.0, rho)
            assert chebyshev_assurance(10.0, 4.0, c) == pytest.approx(rho)

    def test_below_mean_gives_zero(self):
        assert chebyshev_assurance(10.0, 4.0, 9.0) == 0.0

    def test_deterministic_above_mean_gives_one(self):
        assert chebyshev_assurance(10.0, 0.0, 10.5) == 1.0

    def test_monotone_in_cycles(self):
        vals = [chebyshev_assurance(10.0, 4.0, c) for c in (11.0, 14.0, 20.0)]
        assert all(a < b for a, b in zip(vals, vals[1:]))


class TestDistributionWrapper:
    def test_allocate_cycles_uses_declared_moments(self):
        dist = NormalDemand(10.0, 4.0)
        assert allocate_cycles(dist, 0.9) == pytest.approx(
            chebyshev_allocation(10.0, 4.0, 0.9)
        )


class TestGuaranteeHolds:
    """Cantelli is distribution-free: the realised exceedance must be
    bounded by 1 - rho for every distribution family."""

    @pytest.mark.parametrize("rho", [0.5, 0.9, 0.96])
    def test_normal(self, rho):
        rng = np.random.default_rng(1)
        dist = NormalDemand(50.0, 100.0)
        c = allocate_cycles(dist, rho)
        ys = dist.sample(rng, size=50_000)
        assert empirical_assurance(ys, c) >= rho

    @pytest.mark.parametrize("rho", [0.5, 0.9])
    def test_heavy_tailed(self, rho):
        from repro.demand import ExponentialDemand

        rng = np.random.default_rng(2)
        dist = ExponentialDemand(10.0, offset=1.0)
        c = allocate_cycles(dist, rho)
        ys = dist.sample(rng, size=50_000)
        assert empirical_assurance(ys, c) >= rho


class TestEmpiricalAssurance:
    def test_counts_strictly_below(self):
        assert empirical_assurance([1.0, 2.0, 3.0], 3.0) == pytest.approx(2 / 3)

    def test_rejects_empty(self):
        with pytest.raises(DemandError):
            empirical_assurance([], 1.0)
