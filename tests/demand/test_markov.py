"""Tests for Markov-modulated demand (repro.demand.markov)."""

import numpy as np
import pytest

from repro.demand import (
    DemandError,
    DeterministicDemand,
    MarkovModulatedDemand,
    NormalDemand,
)


def _two_mode(p_stay=0.9, lo=10.0, hi=50.0):
    return MarkovModulatedDemand(
        [[p_stay, 1.0 - p_stay], [1.0 - p_stay, p_stay]],
        [DeterministicDemand(lo), DeterministicDemand(hi)],
    )


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(DemandError):
            MarkovModulatedDemand([[1.0, 0.0]], [DeterministicDemand(1.0)])

    def test_rejects_mode_count_mismatch(self):
        with pytest.raises(DemandError):
            MarkovModulatedDemand([[1.0]], [DeterministicDemand(1.0),
                                            DeterministicDemand(2.0)])

    def test_rejects_non_stochastic_rows(self):
        with pytest.raises(DemandError):
            MarkovModulatedDemand([[0.5, 0.4], [0.5, 0.5]],
                                  [DeterministicDemand(1.0), DeterministicDemand(2.0)])

    def test_rejects_negative_probability(self):
        with pytest.raises(DemandError):
            MarkovModulatedDemand([[1.5, -0.5], [0.5, 0.5]],
                                  [DeterministicDemand(1.0), DeterministicDemand(2.0)])


class TestMoments:
    def test_symmetric_stationary(self):
        d = _two_mode()
        assert d.stationary_distribution == pytest.approx([0.5, 0.5])
        assert d.mean == pytest.approx(30.0)

    def test_asymmetric_stationary(self):
        d = MarkovModulatedDemand(
            [[0.9, 0.1], [0.3, 0.7]],
            [DeterministicDemand(10.0), DeterministicDemand(50.0)],
        )
        # pi solves pi P = pi: pi = (0.75, 0.25).
        assert d.stationary_distribution == pytest.approx([0.75, 0.25])
        assert d.mean == pytest.approx(0.75 * 10 + 0.25 * 50)

    def test_total_variance(self):
        d = _two_mode()
        # Deterministic modes: variance is purely between-mode.
        assert d.variance == pytest.approx(0.5 * 400.0 + 0.5 * 400.0)

    def test_with_mode_variance(self):
        d = MarkovModulatedDemand(
            [[0.5, 0.5], [0.5, 0.5]],
            [NormalDemand(10.0, 4.0), NormalDemand(10.0, 16.0)],
        )
        assert d.mean == pytest.approx(10.0)
        assert d.variance == pytest.approx(10.0)  # within only; means equal

    def test_empirical_moments_match(self):
        rng = np.random.default_rng(71)
        d = _two_mode(p_stay=0.7)
        ys = d.sample(rng, size=40_000)
        assert np.mean(ys) == pytest.approx(d.mean, rel=0.03)
        assert np.var(ys) == pytest.approx(d.variance, rel=0.1)


class TestDynamics:
    def test_sticky_chain_correlates_samples(self):
        rng = np.random.default_rng(72)
        sticky = _two_mode(p_stay=0.98)
        ys = sticky.sample(rng, size=5_000)
        # Lag-1 autocorrelation is high for a sticky chain.
        r = np.corrcoef(ys[:-1], ys[1:])[0, 1]
        assert r > 0.8

    def test_memoryless_chain_uncorrelated(self):
        rng = np.random.default_rng(73)
        iid = _two_mode(p_stay=0.5)
        ys = iid.sample(rng, size=5_000)
        r = np.corrcoef(ys[:-1], ys[1:])[0, 1]
        assert abs(r) < 0.05

    def test_reset_forgets_state(self):
        rng = np.random.default_rng(74)
        d = _two_mode()
        d.sample(rng)
        assert d.current_mode is not None
        d.reset()
        assert d.current_mode is None

    def test_scaled_preserves_chain_shape(self):
        d = _two_mode().scaled(2.0)
        assert d.mean == pytest.approx(60.0)
        assert d.variance == pytest.approx(4.0 * 800.0 / 2.0)  # k^2 * var
        assert d.stationary_distribution == pytest.approx([0.5, 0.5])

    def test_chebyshev_allocation_applies(self):
        from repro.demand import chebyshev_allocation

        d = _two_mode()
        c = chebyshev_allocation(d.mean, d.variance, 0.9)
        rng = np.random.default_rng(75)
        ys = d.sample(rng, size=30_000)
        assert np.mean(ys < c) >= 0.9  # Cantelli holds marginally
