"""The multicore invariant suite must pass on real runs and fire on
tampered ones — each MP invariant is exercised by mutating a genuine
result in exactly one way."""

import numpy as np
import pytest

from repro.check import InvariantViolation, check_mp_result
from repro.experiments import synthesize_taskset
from repro.mp import MulticorePlatform, simulate_mp
from repro.sim import Platform, materialize


def _result(mode="partitioned", cores=2, load=1.6, seed=11, horizon=0.3):
    rng = np.random.default_rng(seed)
    trace = materialize(synthesize_taskset(load * cores, rng), horizon, rng)
    platform = MulticorePlatform.from_platform(Platform(), cores=cores)
    return simulate_mp(trace, "EUA*", platform, mode=mode, record_trace=True)


@pytest.fixture(scope="module")
def partitioned():
    return _result("partitioned")


@pytest.fixture(scope="module")
def global_run():
    return _result("global")


def _violation(result):
    with pytest.raises(InvariantViolation) as info:
        check_mp_result(result)
    return info.value.invariant


def test_clean_runs_pass(partitioned, global_run):
    check_mp_result(partitioned)
    check_mp_result(global_run)


def test_mp1_dual_execution_detected(partitioned):
    import copy

    result = copy.copy(partitioned)
    result.core_segments = [list(s) for s in partitioned.core_segments]
    # Replay a core-0 busy slot on core 1 at the same instant.
    busy = next(
        seg for seg in result.core_segments[0] if seg[2] is not None
    )
    result.core_segments[1] = result.core_segments[1] + [busy]
    assert _violation(result) == "MP1-dual-execution"


def test_mp2_nonzero_migrations_in_partitioned_mode(partitioned):
    import copy

    result = copy.copy(partitioned)
    result.core_segments = None  # isolate the migration-count facet
    result.migrations = 3
    assert _violation(result) == "MP2-partition-respected"


def test_mp2_segment_off_assigned_core(partitioned):
    import copy

    result = copy.copy(partitioned)
    result.core_segments = [list(s) for s in partitioned.core_segments]
    # Move one busy slot to the other core at a time when that core is
    # idle in the frozen record (horizon end), so MP1 stays silent and
    # the partition check itself has to catch it.
    start, end, job_key, freq = next(
        seg for seg in result.core_segments[0] if seg[2] is not None
    )
    h = result.horizon
    result.core_segments[0].remove((start, end, job_key, freq))
    result.core_segments[1] = result.core_segments[1] + [(h, h + (end - start), job_key, freq)]
    assert _violation(result) == "MP2-partition-respected"


def test_mp3_migration_counter_mismatch(global_run):
    import copy

    result = copy.copy(global_run)
    result.migrations = result.migrations + 1
    assert _violation(result) == "MP3-migration-count"


def test_mp4_energy_leak_detected(partitioned):
    import copy

    result = copy.copy(partitioned)
    result.core_segments = None
    result.uncore_energy = result.uncore_energy + 1.0
    assert _violation(result) == "MP4-energy-conservation"


def test_mp5_lost_job_detected(partitioned):
    import copy

    result = copy.copy(partitioned)
    result.core_segments = None
    result.jobs = list(partitioned.jobs)[:-1]
    assert _violation(result) == "MP5-job-conservation"
