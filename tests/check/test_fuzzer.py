"""Fuzzer smoke pass, determinism, corpus round-trip, and shrinking."""

from pathlib import Path

from repro.check import load_case, run_fuzz, save_case, shrink_workload
from repro.check.corpus import case_from_trace
from repro.check.fuzzer import (
    Scenario,
    build_workload,
    generate_scenarios,
    run_scaling_oracle,
    scale_workload,
)
from repro.sim.workload import WorkloadTrace


def test_bounded_budget_smoke_pass():
    """The CI smoke contract: a small budget finds nothing on clean code."""
    report = run_fuzz(budget=6, seed=5, corpus_dir=None)
    assert report.scenarios_run == 6
    assert report.ok, [f.message for f in report.findings]


def test_scenario_generation_is_deterministic():
    assert generate_scenarios(12, 42) == generate_scenarios(12, 42)
    assert generate_scenarios(12, 42) != generate_scenarios(12, 43)


def test_workload_build_is_deterministic():
    scenario = generate_scenarios(3, 9)[1]
    a, _ = build_workload(scenario)
    b, _ = build_workload(scenario)
    key = lambda tr: [(j.task.name, j.index, j.release, j.demand) for j in tr]  # noqa: E731
    assert key(a) == key(b)
    assert a.horizon == b.horizon


def test_strata_cover_the_adversarial_corners():
    scenarios = generate_scenarios(20, 0)
    assert any(s.arrival_mode == "periodic" and s.tuf_shape == "step" for s in scenarios)
    assert any(s.arrival_mode == "burst" for s in scenarios)
    assert any(s.target_load > 0.9 for s in scenarios)


def test_registry_lane_rotates_over_every_shape():
    from repro.arrivals import workload_shape_names

    shapes = workload_shape_names()
    scenarios = generate_scenarios(2 * len(shapes), 7, shapes=shapes)
    assert {s.arrival_mode for s in scenarios} == set(shapes)
    # The default lane's draw sequence must be untouched by the new
    # parameter (corpus seeds stay replayable).
    assert generate_scenarios(12, 42, shapes=None) == generate_scenarios(12, 42)


def test_registry_shapes_build_and_pass_the_zoo():
    """A small registry-lane budget on clean code finds nothing — the
    internet shapes' UAM-thinned streams satisfy every oracle."""
    report = run_fuzz(budget=6, seed=3, corpus_dir=None,
                      shapes=["nhpp-diurnal", "flash-crowd", "pareto", "mmpp"])
    assert report.scenarios_run == 6
    assert report.ok, [f.message for f in report.findings]


def test_registry_lane_workload_build_is_deterministic():
    scenario = generate_scenarios(3, 9, shapes=["pareto", "flash-crowd"])[1]
    a, _ = build_workload(scenario)
    b, _ = build_workload(scenario)
    key = lambda tr: [(j.task.name, j.index, j.release, j.demand) for j in tr]  # noqa: E731
    assert key(a) == key(b)


def test_corpus_round_trip(tmp_path):
    scenario = generate_scenarios(2, 21)[0]
    trace, platform = build_workload(scenario)
    case = case_from_trace(trace, platform, oracle="invariant",
                           scheduler="EUA*", invariant="sigma_head", note="round trip")
    path = save_case(case, tmp_path / "case.json")
    loaded = load_case(path)
    assert loaded == case
    rebuilt, re_platform = loaded.build()
    assert [(j.task.name, j.index, j.release, j.demand) for j in rebuilt] == [
        (j.task.name, j.index, j.release, j.demand) for j in trace
    ]
    assert rebuilt.horizon == trace.horizon
    assert list(re_platform.scale.levels) == list(platform.scale.levels)
    for orig, back in zip(trace.taskset, rebuilt.taskset):
        assert back.allocation == orig.allocation  # exact float round trip
        assert back.critical_time == orig.critical_time


def test_shrink_reduces_to_the_culprit_job():
    scenario = Scenario(seed=77, n_tasks=4, target_load=0.8, horizon=0.8,
                        platform="powernow", energy="E1", arrival_mode="periodic",
                        tuf_shape="step", nu=1.0)
    trace, _ = build_workload(scenario)
    assert len(trace.jobs) > 4
    marked = trace.jobs[len(trace.jobs) // 2]

    def predicate(candidate: WorkloadTrace) -> bool:
        return any(
            j.task is marked.task and j.index == marked.index for j in candidate
        )

    shrunk = shrink_workload(trace, predicate)
    assert len(shrunk.jobs) == 1
    assert shrunk.jobs[0].index == marked.index
    assert len(list(shrunk.taskset)) == 1
    assert shrunk.horizon <= marked.release + marked.task.tuf.termination + 1e-6


def test_time_scaling_is_exact_for_lambda_two():
    scenario = generate_scenarios(2, 33)[1]
    trace, platform = build_workload(scenario)
    scaled = scale_workload(trace, 2.0)
    for base_task, scaled_task in zip(trace.taskset, scaled.taskset):
        # Chebyshev allocation and bisected critical time scale bit-exactly.
        assert scaled_task.allocation == 2.0 * base_task.allocation
        assert scaled_task.critical_time == 2.0 * base_task.critical_time
    assert run_scaling_oracle(trace, platform) is None


def test_fuzz_writes_minimized_corpus_for_findings(tmp_path, monkeypatch):
    """Force a failure via a seeded mutation and check the corpus file."""
    from repro.check.mutations import flipped_uer_order

    with flipped_uer_order():
        report = run_fuzz(budget=4, seed=3, corpus_dir=tmp_path, max_shrink_evals=40)
    assert not report.ok
    paths = [Path(f.corpus_path) for f in report.findings if f.corpus_path]
    assert paths and all(p.exists() for p in paths)
    case = load_case(paths[0])
    assert case.oracle in ("invariant", "scaling", "dominance", "exception")
