"""The checker is observe-only: attached, every golden workload runs
clean and produces the bit-identical event log; detached, the engine
takes the exact same code path it always did."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "golden"))
from _harness import CASES, golden_path, parse_jsonl, record_events_jsonl  # noqa: E402

from repro.check import InvariantChecker  # noqa: E402


@pytest.mark.parametrize("label", sorted(CASES))
def test_golden_log_bit_identical_with_checker(label):
    checker = InvariantChecker(mode="collect")
    with_checker = record_events_jsonl(label, checker=checker)
    assert checker.violations == [], [str(v) for v in checker.violations]
    expected = golden_path(label).read_text()
    assert parse_jsonl(with_checker) == parse_jsonl(expected)
    assert with_checker == expected  # byte-identical, not just equivalent


@pytest.mark.parametrize("label", sorted(CASES))
def test_golden_workloads_clean_in_raise_mode(label):
    """Raise mode never fires on a correct scheduler."""
    record_events_jsonl(label, checker=InvariantChecker(mode="raise"))
