"""Mutation testing: each seeded bug must be caught within a bounded
fuzz budget and shrink to a corpus repro (ISSUE 4 acceptance criteria).

Replay semantics differ per mutation and the assertions are honest
about it: the UER-flip and floor mutations are *code* bugs, so their
corpus workloads replay clean on unmutated code; the UAM mutation is a
*workload producer* bug, so its corpus file preserves a genuinely
envelope-violating release stream and keeps failing on clean code —
exactly what a saved repro of bad input data should do.
"""

from pathlib import Path

from repro.check import load_case, replay_case, run_fuzz
from repro.check.mutations import (
    flipped_uer_order,
    missnapped_floor,
    uam_window_off_by_one,
)

BUDGET = 8
SEED = 3


def _fuzz_under(mutation, tmp_path):
    with mutation():
        report = run_fuzz(budget=BUDGET, seed=SEED, corpus_dir=tmp_path,
                          max_shrink_evals=60)
    return report


def test_flipped_uer_order_is_caught(tmp_path):
    report = _fuzz_under(flipped_uer_order, tmp_path)
    signatures = {(f.oracle, f.invariant) for f in report.findings}
    assert ("invariant", "sigma_head") in signatures
    paths = [Path(f.corpus_path) for f in report.findings
             if f.corpus_path and f.invariant == "sigma_head"]
    assert paths
    case = load_case(paths[0])
    # Still failing under the mutation, clean without it (a code bug).
    with flipped_uer_order():
        assert replay_case(case).still_failing
    assert not replay_case(case).still_failing


def test_uam_window_off_by_one_is_caught(tmp_path):
    report = _fuzz_under(uam_window_off_by_one, tmp_path)
    signatures = {(f.oracle, f.invariant) for f in report.findings}
    assert ("invariant", "uam_envelope") in signatures
    paths = [Path(f.corpus_path) for f in report.findings
             if f.corpus_path and f.invariant == "uam_envelope"]
    assert paths
    case = load_case(paths[0])
    # The corpus preserves the violating stream itself: it fails with
    # and without the mutation (the generator, not the checker, is bad).
    with uam_window_off_by_one():
        assert replay_case(case).still_failing
    assert replay_case(case).still_failing


def test_missnapped_floor_is_caught(tmp_path):
    report = _fuzz_under(missnapped_floor, tmp_path)
    signatures = {(f.oracle, f.invariant) for f in report.findings}
    assert ("invariant", "frequency_sufficient") in signatures
    paths = [Path(f.corpus_path) for f in report.findings
             if f.corpus_path and f.invariant == "frequency_sufficient"]
    assert paths
    case = load_case(paths[0])
    with missnapped_floor():
        assert replay_case(case).still_failing
    assert not replay_case(case).still_failing


def test_mutations_restore_the_originals():
    """Context exit restores production behaviour (no cross-test bleed)."""
    report = run_fuzz(budget=4, seed=SEED, corpus_dir=None)
    assert report.ok, [f.message for f in report.findings]
