"""Unit tests for the invariant checker (`repro.check.invariants`).

Each test plants one specific defect — a corrupt decision, a
UAM-violating release stream, doctored accounting — and asserts the
checker raises (or collects) a violation with the right catalogue key.
"""

import numpy as np
import pytest

from repro.check import InvariantChecker, InvariantViolation
from repro.core.eua import EUAStar
from repro.core.offline import TaskParams
from repro.demand import DeterministicDemand
from repro.obs import Observer
from repro.sched import make_scheduler
from repro.sim import Platform, materialize, simulate
from repro.sim.job import Job
from repro.sim.scheduler import Decision, Scheduler
from repro.sim.task import Task, TaskSet
from repro.sim.workload import JobSpec, WorkloadTrace
from repro.arrivals import UAMSpec
from repro.tuf import StepTUF


def _simple_trace(n_jobs: int = 3, window: float = 0.1) -> WorkloadTrace:
    """One periodic task, well under load, explicit job specs."""
    task = Task("T0", StepTUF(10.0, window), DeterministicDemand(20.0), UAMSpec(1, window))
    jobs = [JobSpec(task, k, k * window, 20.0) for k in range(n_jobs)]
    return WorkloadTrace(TaskSet([task]), (n_jobs + 1) * window, jobs)


class _Corrupting(Scheduler):
    """Delegates to EDF but corrupts the returned decision."""

    abort_expired = True

    def __init__(self, corrupt):
        self.name = "corrupt"
        self._inner = make_scheduler("EDF")
        self._corrupt = corrupt

    def setup(self, taskset, scale, energy_model):
        self._inner.setup(taskset, scale, energy_model)

    def decide(self, view):
        return self._corrupt(self._inner.decide(view), view)


def _run_corrupted(corrupt, mode="raise"):
    checker = InvariantChecker(mode=mode)
    simulate(_simple_trace(), _Corrupting(corrupt), Platform(), checker=checker)
    return checker


# ----------------------------------------------------------------------
def test_clean_run_has_no_violations():
    checker = _run_corrupted(lambda d, v: d)
    assert checker.ok
    assert checker.violations == []


def test_off_ladder_frequency_raises():
    def corrupt(decision, view):
        if decision.job is None:
            return decision
        return Decision(job=decision.job, frequency=123.456, aborts=decision.aborts)

    with pytest.raises(InvariantViolation) as exc:
        _run_corrupted(corrupt)
    assert exc.value.invariant == "frequency_in_scale"


def test_dispatching_non_ready_job_raises():
    def corrupt(decision, view):
        if decision.job is None:
            return decision
        ghost = Job(decision.job.task, 999, view.time, 5.0)
        return Decision(job=ghost, frequency=decision.frequency, aborts=decision.aborts)

    with pytest.raises(InvariantViolation) as exc:
        _run_corrupted(corrupt)
    assert exc.value.invariant == "dispatch_ready"


def test_aborting_the_dispatched_job_raises():
    def corrupt(decision, view):
        if decision.job is None:
            return decision
        return Decision(
            job=decision.job, frequency=decision.frequency, aborts=(decision.job,)
        )

    with pytest.raises(InvariantViolation) as exc:
        _run_corrupted(corrupt)
    assert exc.value.invariant == "abort_valid"


class _SwapHead(EUAStar):
    """Dispatches some ready job other than the σ head when one exists."""

    def decide(self, view):
        decision = super().decide(view)
        others = [
            j for j in view.ready
            if j is not decision.job and not j.is_finished and j not in decision.aborts
        ]
        if decision.job is not None and others:
            return Decision(job=others[0], frequency=decision.frequency,
                            aborts=decision.aborts)
        return decision


def _two_task_trace() -> WorkloadTrace:
    t0 = Task("T0", StepTUF(10.0, 0.2), DeterministicDemand(30.0), UAMSpec(1, 0.2))
    t1 = Task("T1", StepTUF(5.0, 0.3), DeterministicDemand(30.0), UAMSpec(1, 0.3))
    jobs = [JobSpec(t0, 0, 0.0, 30.0), JobSpec(t1, 0, 0.0, 30.0)]
    return WorkloadTrace(TaskSet([t0, t1]), 0.4, jobs)


def test_collect_mode_completes_and_accumulates():
    checker = InvariantChecker(mode="collect")
    result = simulate(_two_task_trace(), _SwapHead(name="EUA*-swap"), Platform(),
                      checker=checker)
    assert not checker.ok
    assert "sigma_head" in {v.invariant for v in checker.violations}
    assert len(result.jobs) == 2  # the run completed despite violations


def test_violations_emit_observer_events():
    trace = _simple_trace()
    task = next(iter(trace.taskset))
    # Two releases inside one <1, P> window: an envelope violation.
    bad = WorkloadTrace(
        trace.taskset,
        trace.horizon,
        [JobSpec(task, 0, 0.0, 20.0), JobSpec(task, 1, 0.03, 20.0)],
    )
    checker = InvariantChecker(mode="collect")
    observer = Observer(events=True, metrics=True)
    simulate(bad, make_scheduler("EDF"), Platform(), observer=observer, checker=checker)
    assert [v.invariant for v in checker.violations] == ["uam_envelope"]
    emitted = [e for e in observer.events if e.kind.value == "invariant_violation"]
    assert len(emitted) == 1
    assert emitted[0].fields["invariant"] == "uam_envelope"
    assert emitted[0].source == "check"


def test_uam_envelope_raise_mode():
    trace = _simple_trace()
    task = next(iter(trace.taskset))
    bad = WorkloadTrace(
        trace.taskset,
        trace.horizon,
        [JobSpec(task, 0, 0.0, 20.0), JobSpec(task, 1, 0.05, 20.0)],
    )
    with pytest.raises(InvariantViolation) as exc:
        simulate(bad, make_scheduler("EDF"), Platform(),
                 checker=InvariantChecker(mode="raise"))
    assert exc.value.invariant == "uam_envelope"


def test_trailing_edge_release_is_compliant():
    """An arrival exactly one window after the last opens a new window."""
    trace = _simple_trace()
    task = next(iter(trace.taskset))
    window = task.uam.window
    ok = WorkloadTrace(
        trace.taskset,
        trace.horizon,
        [JobSpec(task, 0, 0.0, 20.0), JobSpec(task, 1, window, 20.0)],
    )
    checker = InvariantChecker(mode="raise")
    simulate(ok, make_scheduler("EDF"), Platform(), checker=checker)
    assert checker.ok


# ----------------------------------------------------------------------
class _CorruptParams(EUAStar):
    """EUA* whose offlineComputing output is silently inflated."""

    def setup(self, taskset, scale, energy_model):
        super().setup(taskset, scale, energy_model)
        self._params = {
            name: TaskParams(p.allocation * 1.5, p.critical_time, p.optimal_frequency)
            for name, p in self._params.items()
        }


def test_offline_params_cross_check():
    checker = InvariantChecker(mode="collect")
    simulate(_simple_trace(), _CorruptParams(name="EUA*-corrupt"), Platform(),
             checker=checker)
    assert "offline_params" in {v.invariant for v in checker.violations}


def test_eua_star_runs_clean_under_checker():
    checker = InvariantChecker(mode="raise")
    simulate(_simple_trace(), make_scheduler("EUA*"), Platform(), checker=checker)
    assert checker.ok


# ----------------------------------------------------------------------
def test_direct_utility_accrual_check():
    trace = _simple_trace()
    task = next(iter(trace.taskset))
    checker = InvariantChecker(mode="collect")
    checker.bind(trace.taskset, Platform().processor(), make_scheduler("EDF"), None)
    job = Job(task, 0, 0.0, 20.0)
    job.accrued_utility = 42.0  # step TUF max is 10
    checker.on_completion(job, 0.05)
    assert {v.invariant for v in checker.violations} == {"utility_accrual"}


def test_energy_conservation_flags_doctored_stats():
    trace = _simple_trace()
    checker = InvariantChecker(mode="collect")
    result = simulate(trace, make_scheduler("EUA*"), Platform(), checker=checker)
    assert checker.ok
    result.processor_stats.energy += 1.0
    checker.on_result(result)
    assert "energy_conservation" in {v.invariant for v in checker.violations}


def test_metrics_consistency_flags_doctored_utility():
    trace = _simple_trace()
    checker = InvariantChecker(mode="collect")
    result = simulate(trace, make_scheduler("EUA*"), Platform(), checker=checker)
    result.jobs[0].accrued_utility += 5.0
    checker.on_result(result)
    assert "metrics_consistency" in {v.invariant for v in checker.violations}


# ----------------------------------------------------------------------
def test_edf_equivalence_active_on_periodic_step_underload():
    """The Theorem-2 invariant arms itself only under its preconditions."""
    trace = _simple_trace()
    checker = InvariantChecker(mode="raise")
    simulate(trace, make_scheduler("EUA*-demand"), Platform(), checker=checker)
    assert checker._edf_equiv_active
    assert checker.ok

    checker = InvariantChecker(mode="raise")
    simulate(trace, make_scheduler("EUA*"), Platform(), checker=checker)
    assert not checker._edf_equiv_active  # lookahead is statistical only


def test_checker_is_rebindable():
    """bind() resets state so one checker audits one run at a time."""
    trace = _simple_trace()
    checker = InvariantChecker(mode="collect")
    for _ in range(2):
        simulate(trace, make_scheduler("EUA*"), Platform(), checker=checker)
        assert checker.ok


def test_randomized_workload_runs_clean():
    from repro.experiments.workload import synthesize_taskset

    rng = np.random.default_rng(17)
    taskset = synthesize_taskset(1.2, rng, arrival_mode="burst")
    trace = materialize(taskset, 0.5, np.random.default_rng(18))
    for label in ("EUA*", "DASA", "EDF"):
        checker = InvariantChecker(mode="raise")
        simulate(trace, make_scheduler(label), Platform(), checker=checker)
        assert checker.ok
