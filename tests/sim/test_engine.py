"""Tests for the discrete-event engine (repro.sim.engine)."""

import numpy as np
import pytest

from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import DemandProfiler, DeterministicDemand
from repro.sched import Decision, EDFStatic, Scheduler
from repro.sim import (
    Engine,
    JobStatus,
    SimulationError,
    Task,
    TaskSet,
    WorkloadTrace,
    simulate,
)
from repro.sim.workload import JobSpec
from repro.tuf import StepTUF


def _platform_processor(levels=(500.0, 1000.0)):
    return Processor(FrequencyScale(levels), EnergyModel.e1())


def _task(name="T", window=1.0, umax=10.0, mean=100.0, abortable=True):
    return Task(
        name,
        StepTUF(umax, window),
        DeterministicDemand(mean),
        UAMSpec(1, window),
        abortable=abortable,
    )


def _trace(task_jobs, horizon):
    """task_jobs: list of (task, [(release, demand), ...])."""
    specs = []
    taskset = TaskSet([t for t, _ in task_jobs])
    for task, jobs in task_jobs:
        for idx, (release, demand) in enumerate(jobs):
            specs.append(JobSpec(task, idx, release, demand))
    return WorkloadTrace(taskset, horizon, specs)


class TestBasicExecution:
    def test_single_job_completes(self):
        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        (job,) = result.jobs
        assert job.status is JobStatus.COMPLETED
        assert job.completion_time == pytest.approx(0.1)  # 100 Mc @ 1000 MHz
        assert job.accrued_utility == 10.0

    def test_energy_accounting(self):
        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        assert result.energy == pytest.approx(100.0 * 1000.0**2)

    def test_sequential_jobs(self):
        task = _task(window=0.5, mean=100.0)
        trace = _trace([(task, [(0.0, 100.0), (0.5, 100.0)])], horizon=1.0)
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        assert [j.completion_time for j in result.jobs] == [
            pytest.approx(0.1),
            pytest.approx(0.6),
        ]

    def test_idle_between_jobs(self):
        task = _task(window=0.5, mean=100.0)
        trace = _trace([(task, [(0.0, 100.0), (0.5, 100.0)])], horizon=1.0)
        engine = Engine(trace, EDFStatic(), _platform_processor())
        result = engine.run()
        assert result.processor_stats.idle_time == pytest.approx(0.8)
        assert result.processor_stats.busy_time == pytest.approx(0.2)

    def test_edf_preemption(self):
        # Long low-urgency job released first, short urgent one at 0.1.
        long_task = _task("L", window=2.0, mean=1000.0)
        short_task = _task("S", window=0.3, mean=100.0)
        trace = _trace(
            [(long_task, [(0.0, 1000.0)]), (short_task, [(0.1, 100.0)])],
            horizon=2.0,
        )
        result = Engine(
            trace, EDFStatic(), _platform_processor(), record_trace=True
        ).run()
        by_key = {j.key: j for j in result.jobs}
        assert by_key["S:0"].completion_time == pytest.approx(0.2)
        assert by_key["L:0"].completion_time == pytest.approx(1.1)
        assert result.trace.preemption_count() == 1

    def test_utility_zero_when_completing_late_na(self):
        # Non-abortable policy: job finishes past its termination, 0 utility.
        task = _task(window=0.05, mean=100.0)  # needs 0.1 s at f_max
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(
            trace, EDFStatic(abort_expired=False), _platform_processor()
        ).run()
        (job,) = result.jobs
        assert job.status is JobStatus.COMPLETED
        assert job.accrued_utility == 0.0


class TestExpiry:
    def test_expired_job_aborted(self):
        task = _task(window=0.05, mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        (job,) = result.jobs
        assert job.status is JobStatus.EXPIRED
        assert job.abort_time == pytest.approx(0.05)
        assert job.accrued_utility == 0.0

    def test_expiry_frees_cpu_for_next_job(self):
        doomed = _task("D", window=0.05, mean=100.0)
        ok = _task("K", window=1.0, mean=100.0)
        trace = _trace(
            [(doomed, [(0.0, 100.0)]), (ok, [(0.0, 100.0)])], horizon=1.0
        )
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        by_key = {j.key: j for j in result.jobs}
        # EDF runs the doomed job (earlier deadline) until it expires at
        # 0.05, then the other completes at 0.05 + remaining.
        assert by_key["D:0"].status is JobStatus.EXPIRED
        assert by_key["K:0"].status is JobStatus.COMPLETED
        assert by_key["K:0"].completion_time == pytest.approx(0.15)

    def test_non_abortable_task_never_auto_expires(self):
        task = _task(window=0.05, mean=100.0, abortable=False)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        (job,) = result.jobs
        assert job.status is JobStatus.COMPLETED
        assert job.accrued_utility == 0.0


class TestSchedulerContract:
    def test_scheduler_abort_applied(self):
        class AbortAll(Scheduler):
            name = "abort-all"

            def decide(self, view):
                return Decision(job=None, frequency=view.scale.f_max,
                                aborts=tuple(view.ready))

        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, AbortAll(), _platform_processor()).run()
        assert result.jobs[0].status is JobStatus.ABORTED

    def test_selecting_foreign_job_rejected(self):
        class Rogue(Scheduler):
            name = "rogue"

            def decide(self, view):
                from repro.sim import Job

                ghost = Job(view.taskset[0], 99, view.time, 1.0)
                return Decision(job=ghost, frequency=view.scale.f_max)

        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        with pytest.raises(SimulationError):
            Engine(trace, Rogue(), _platform_processor()).run()

    def test_on_completion_called(self):
        seen = []

        class Watcher(EDFStatic):
            def on_completion(self, job, time):
                seen.append((job.key, time))

        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        Engine(trace, Watcher(), _platform_processor()).run()
        assert seen == [("T:0", pytest.approx(0.1))]

    def test_idle_scheduler_leaves_jobs_unfinished(self):
        class Lazy(Scheduler):
            name = "lazy"
            abort_expired = False

            def decide(self, view):
                return Decision(job=None, frequency=view.scale.f_max)

        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, Lazy(), _platform_processor()).run()
        assert result.jobs[0].status is JobStatus.PENDING
        assert result.metrics.unfinished == 1


class TestFrequencySemantics:
    def test_runs_at_decided_frequency(self):
        class SlowEDF(EDFStatic):
            def decide(self, view):
                d = super().decide(view)
                return Decision(job=d.job, frequency=500.0)

        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, SlowEDF(), _platform_processor()).run()
        assert result.jobs[0].completion_time == pytest.approx(0.2)
        assert result.energy == pytest.approx(100.0 * 500.0**2)

    def test_frequency_change_mid_job(self):
        # Switch from 500 to 1000 when the second job arrives.
        class Adaptive(EDFStatic):
            def decide(self, view):
                d = super().decide(view)
                f = 1000.0 if len(view.ready) > 1 else 500.0
                return Decision(job=d.job, frequency=f)

        t1 = _task("A", window=2.0, mean=1000.0)
        t2 = _task("B", window=2.0, mean=1.0)
        trace = _trace(
            [(t1, [(0.0, 1000.0)]), (t2, [(0.5, 1.0)])], horizon=3.0
        )
        result = Engine(trace, Adaptive(), _platform_processor()).run()
        by_key = {j.key: j for j in result.jobs}
        # A (earlier absolute deadline) runs 0.5 s at 500 MHz (250 Mc);
        # B's arrival raises the frequency to 1000, still running A:
        # remaining 750 Mc complete at 0.5 + 0.75 = 1.25.  Then B alone
        # drops back to 500 MHz: 1 Mc in 0.002 s.
        assert by_key["A:0"].completion_time == pytest.approx(1.25)
        assert by_key["B:0"].completion_time == pytest.approx(1.252)


class TestFreqTraceEvents:
    """FREQ trace events must mark actual level changes, not dispatches."""

    def test_no_freq_event_without_a_switch(self):
        # Two jobs, both dispatched at the ladder's resident f_max: the
        # frequency never changes, so the trace must carry no FREQ
        # events (the old guard emitted one per dispatch).
        task = _task(window=0.5, mean=100.0)
        trace = _trace([(task, [(0.0, 100.0), (0.5, 100.0)])], horizon=1.0)
        result = Engine(
            trace, EDFStatic(), _platform_processor(), record_trace=True
        ).run()
        from repro.sim.trace import TraceEventKind

        freq_events = [
            e for e in result.trace.events if e.kind is TraceEventKind.FREQ
        ]
        assert freq_events == []
        assert result.processor_stats.switch_count == 0

    def test_freq_events_match_switch_count_and_changes(self):
        # A policy that alternates levels per dispatch: every FREQ event
        # must carry a value different from the previous one, and the
        # event count must equal the processor's switch counter.
        class Alternating(EDFStatic):
            def decide(self, view):
                d = super().decide(view)
                f = 500.0 if int(view.time * 2) % 2 == 0 else 1000.0
                return Decision(job=d.job, frequency=f)

        task = _task(window=0.5, mean=100.0)
        trace = _trace(
            [(task, [(0.0, 100.0), (0.5, 100.0), (1.0, 100.0)])], horizon=2.0
        )
        cpu = _platform_processor()
        result = Engine(trace, Alternating(), cpu, record_trace=True).run()
        from repro.sim.trace import TraceEventKind

        freq_events = [
            e for e in result.trace.events if e.kind is TraceEventKind.FREQ
        ]
        assert len(freq_events) == cpu.stats.switch_count > 0
        previous = 1000.0  # ladder resident level at t=0
        for event in freq_events:
            assert event.value != previous
            previous = event.value


class TestHorizonAndProfiler:
    def test_unfinished_at_horizon(self):
        task = _task(window=3.0, mean=2000.0)
        trace = WorkloadTrace(
            TaskSet([task]), 1.0, [JobSpec(task, 0, 0.0, 2000.0)]
        )
        result = Engine(trace, EDFStatic(), _platform_processor()).run()
        assert result.jobs[0].status is JobStatus.PENDING
        assert result.jobs[0].executed == pytest.approx(1000.0)

    def test_profiler_records_actual_cycles(self):
        profiler = DemandProfiler()
        task = _task(window=0.5, mean=100.0)
        trace = _trace([(task, [(0.0, 100.0), (0.5, 100.0)])], horizon=1.0)
        Engine(trace, EDFStatic(), _platform_processor(), profiler=profiler).run()
        assert profiler.count("T") == 2
        assert profiler.mean("T") == pytest.approx(100.0)


class TestSimulateWrapper:
    def test_simulate_from_taskset(self, platform_e1, small_taskset):
        result = simulate(small_taskset, EDFStatic(), platform_e1, horizon=2.0, seed=3)
        assert result.metrics.completed > 0
        assert result.scheduler_name == "EDF"

    def test_simulate_requires_horizon_for_taskset(self, platform_e1, small_taskset):
        with pytest.raises(ValueError):
            simulate(small_taskset, EDFStatic(), platform_e1)


class TestSwitchOverheads:
    def test_switch_time_delays_completion(self):
        cpu = Processor(
            FrequencyScale((500.0, 1000.0)), EnergyModel.e1(), switch_time=0.01
        )
        task = _task(mean=100.0)

        class SlowFirst(EDFStatic):
            def decide(self, view):
                d = super().decide(view)
                return Decision(job=d.job, frequency=500.0)

        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, SlowFirst(), cpu).run()
        # One switch (1000 -> 500) costs 0.01 s before execution begins.
        assert result.jobs[0].completion_time == pytest.approx(0.01 + 0.2)
        assert cpu.stats.switch_count == 1

    def test_switch_energy_charged(self):
        cpu = Processor(
            FrequencyScale((500.0, 1000.0)), EnergyModel.e1(), switch_energy=123.0
        )

        class SlowFirst(EDFStatic):
            def decide(self, view):
                d = super().decide(view)
                return Decision(job=d.job, frequency=500.0)

        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, SlowFirst(), cpu).run()
        assert result.processor_stats.switch_energy == pytest.approx(123.0)
        assert result.energy == pytest.approx(100.0 * 500.0**2 + 123.0)

    def test_idle_power_charged_through_result(self):
        cpu = Processor(FrequencyScale((1000.0,)), EnergyModel.e1(), idle_power=7.0)
        task = _task(mean=100.0)
        trace = _trace([(task, [(0.0, 100.0)])], horizon=1.0)
        result = Engine(trace, EDFStatic(), cpu).run()
        # 0.1 s busy, 0.9 s idle at 7 units/s.
        assert result.processor_stats.idle_energy == pytest.approx(6.3)
        assert result.energy == pytest.approx(100.0 * 1000.0**2 + 6.3)
