"""Tests for the runner module (repro.sim.runner) and package entry."""

import subprocess
import sys

import numpy as np

from repro.cpu import EnergyModel, FrequencyScale
from repro.sched import EDFStatic
from repro.sim import Platform, compare, materialize, simulate


class TestPlatform:
    def test_defaults(self):
        p = Platform()
        assert p.scale.f_max == 1000.0
        assert p.energy_model.name == "E1"

    def test_powernow_factory(self):
        p = Platform.powernow_k6(EnergyModel.e3(1000.0))
        assert p.scale.levels == FrequencyScale.powernow_k6().levels
        assert p.energy_model.name == "E3"

    def test_processor_is_fresh_each_time(self):
        p = Platform()
        a, b = p.processor(), p.processor()
        a.run(1.0)
        assert b.stats.cycles_executed == 0.0

    def test_processor_carries_overheads(self):
        p = Platform(idle_power=3.0, switch_time=1e-4, switch_energy=2.0)
        cpu = p.processor()
        assert cpu.idle_power == 3.0
        assert cpu.switch_time == 1e-4
        assert cpu.switch_energy == 2.0


class TestEntryPoints:
    def test_sched_base_reexport(self):
        # The documented import path must stay importable.
        from repro.sched.base import Decision, Scheduler, SchedulerView

        assert Scheduler is not None and Decision is not None
        assert SchedulerView is not None

    def test_python_dash_m_repro(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "schedulers"],
            capture_output=True, text=True, timeout=120,
        )
        assert out.returncode == 0
        assert "EUA*" in out.stdout

    def test_version(self):
        import repro

        assert repro.__version__


class TestCompareRNGFlow:
    def test_rng_argument(self, platform_e1, small_taskset):
        rng = np.random.default_rng(5)
        r1 = simulate(small_taskset, EDFStatic(), platform_e1, horizon=1.0, rng=rng)
        assert r1.metrics.released > 0

    def test_compare_seed_reproducible(self, platform_e1, small_taskset):
        a = compare([EDFStatic()], small_taskset, platform_e1, horizon=1.0, seed=9)
        b = compare([EDFStatic()], small_taskset, platform_e1, horizon=1.0, seed=9)
        assert a["EDF"].metrics.accrued_utility == b["EDF"].metrics.accrued_utility
