"""Tests for the post-hoc result validator (repro.sim.validation)."""

import numpy as np
import pytest

from repro.core import EUAStar
from repro.cpu import EnergyModel
from repro.sched import EDFStatic, LAEDF
from repro.sim import materialize, simulate, validate_result
from repro.sim.trace import Segment


class TestCleanRuns:
    @pytest.mark.parametrize("policy", [EUAStar, EDFStatic, LAEDF])
    def test_underload_runs_validate(self, policy, platform_e1, small_taskset):
        trace = materialize(small_taskset, 2.0, np.random.default_rng(61))
        result = simulate(trace, policy(), platform_e1, record_trace=True)
        report = validate_result(result, platform_e1.energy_model)
        assert report.ok, str(report)
        assert report.checks_run > 50

    def test_overload_run_validates(self, platform_e1, overload_taskset):
        trace = materialize(overload_taskset, 2.0, np.random.default_rng(62))
        result = simulate(trace, EUAStar(), platform_e1, record_trace=True)
        report = validate_result(result, platform_e1.energy_model)
        assert report.ok, str(report)

    def test_e3_energy_validates(self, platform_e3, small_taskset):
        trace = materialize(small_taskset, 2.0, np.random.default_rng(63))
        result = simulate(trace, EUAStar(), platform_e3, record_trace=True)
        report = validate_result(result, platform_e3.energy_model)
        assert report.ok, str(report)


class TestDetection:
    def _valid_result(self, platform, taskset):
        trace = materialize(taskset, 1.0, np.random.default_rng(64))
        return simulate(trace, EDFStatic(), platform, record_trace=True)

    def test_missing_trace_flagged(self, platform_e1, small_taskset):
        trace = materialize(small_taskset, 1.0, np.random.default_rng(65))
        result = simulate(trace, EDFStatic(), platform_e1, record_trace=False)
        report = validate_result(result, platform_e1.energy_model)
        assert not report.ok

    def test_tampered_utility_detected(self, platform_e1, small_taskset):
        result = self._valid_result(platform_e1, small_taskset)
        done = next(j for j in result.jobs if j.completion_time is not None)
        done.accrued_utility += 1.0
        report = validate_result(result, platform_e1.energy_model)
        assert not report.ok

    def test_tampered_cycles_detected(self, platform_e1, small_taskset):
        result = self._valid_result(platform_e1, small_taskset)
        result.jobs[0].executed += 5.0
        report = validate_result(result, platform_e1.energy_model)
        assert not report.ok

    def test_timeline_gap_detected(self, platform_e1, small_taskset):
        result = self._valid_result(platform_e1, small_taskset)
        del result.trace.segments[1]
        report = validate_result(result, platform_e1.energy_model)
        assert not report.ok

    def test_wrong_energy_model_detected(self, platform_e1, small_taskset):
        # Note: E1 and E3 coincide exactly at f_max (both f_max^2 per
        # cycle), so use a model that differs there.
        result = self._valid_result(platform_e1, small_taskset)
        report = validate_result(result, EnergyModel.cpu_only(2.0))
        assert not report.ok

    def test_pre_release_execution_detected(self, platform_e1, small_taskset):
        result = self._valid_result(platform_e1, small_taskset)
        late_job = max(result.jobs, key=lambda j: j.release)
        # Forge a segment executing the job before its release, and move
        # the corresponding cycles out of an existing segment so cycle
        # conservation still holds.
        seg = next(s for s in result.trace.busy_segments() if s.job_key == late_job.key)
        idx = result.trace.segments.index(seg)
        result.trace.segments[idx] = Segment(seg.start, seg.end, None, seg.frequency)
        result.trace.segments.insert(
            0, Segment(late_job.release - 0.5, late_job.release - 0.5 + seg.duration,
                       late_job.key, seg.frequency)
        )
        report = validate_result(result, platform_e1.energy_model)
        assert not report.ok
