"""Tests for Task/TaskSet (repro.sim.task)."""


import pytest

from repro.arrivals import BurstUAMArrivals, PeriodicArrivals, UAMSpec
from repro.demand import DeterministicDemand, NormalDemand, chebyshev_allocation
from repro.sim import Task, TaskModelError, TaskSet
from repro.tuf import LinearTUF, StepTUF


def _task(**kw):
    defaults = dict(
        name="T",
        tuf=StepTUF(10.0, 0.1),
        demand=NormalDemand(20.0, 20.0),
        uam=UAMSpec(1, 0.1),
        nu=1.0,
        rho=0.96,
    )
    defaults.update(kw)
    return Task(**defaults)


class TestDerivedParameters:
    def test_allocation_is_chebyshev(self):
        t = _task()
        assert t.allocation == pytest.approx(chebyshev_allocation(20.0, 20.0, 0.96))

    def test_allocation_cached(self):
        t = _task()
        assert t.allocation is not None
        assert t._allocation == t.allocation

    def test_critical_time_step(self):
        assert _task().critical_time == 0.1

    def test_critical_time_linear(self):
        t = _task(tuf=LinearTUF(10.0, 0.1), nu=0.3)
        assert t.critical_time == pytest.approx(0.07)

    def test_window_cycles(self):
        t = _task(
            uam=UAMSpec(3, 0.1),
            arrivals=BurstUAMArrivals(UAMSpec(3, 0.1)),
        )
        assert t.window_cycles == pytest.approx(3 * t.allocation)

    def test_theorem1_frequency(self):
        t = _task(demand=DeterministicDemand(50.0))
        assert t.min_feasible_frequency == pytest.approx(50.0 / 0.1)

    def test_utilization(self):
        t = _task(demand=DeterministicDemand(50.0))
        assert t.utilization(1000.0) == pytest.approx(0.5)

    def test_utilization_rejects_bad_frequency(self):
        with pytest.raises(TaskModelError):
            _task().utilization(0.0)


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(TaskModelError):
            _task(name="")

    def test_rejects_bad_nu(self):
        with pytest.raises(TaskModelError):
            _task(nu=1.5)

    def test_rejects_bad_rho(self):
        with pytest.raises(TaskModelError):
            _task(rho=1.0)

    def test_step_tuf_fractional_nu_rejected(self):
        with pytest.raises(TaskModelError):
            _task(nu=0.5)

    def test_linear_tuf_fractional_nu_ok(self):
        _task(tuf=LinearTUF(10.0, 0.1), nu=0.5)

    def test_default_arrivals_need_a_equal_1(self):
        with pytest.raises(TaskModelError):
            _task(uam=UAMSpec(2, 0.1))

    def test_generator_outside_envelope_rejected(self):
        with pytest.raises(TaskModelError):
            _task(arrivals=PeriodicArrivals(0.05))  # <1, .05> not in <1, .1>

    def test_generator_with_larger_window_accepted(self):
        _task(arrivals=PeriodicArrivals(0.2))

    def test_implied_spec_accepted(self):
        # <1, P/2> implies <2, P>.
        _task(
            uam=UAMSpec(2, 0.1),
            arrivals=PeriodicArrivals(0.05),
        )

    def test_validate_paper_model_checks_window(self):
        t = _task(tuf=StepTUF(10.0, 0.2))  # termination != window
        with pytest.raises(TaskModelError):
            t.validate_paper_model()

    def test_validate_paper_model_passes(self):
        _task().validate_paper_model()


class TestScaling:
    def test_scaled_demand_linear_in_k(self):
        t = _task()
        t2 = t.scaled_demand(2.0)
        assert t2.allocation == pytest.approx(2.0 * t.allocation)
        assert t2.demand.mean == pytest.approx(2.0 * t.demand.mean)
        assert t2.demand.variance == pytest.approx(4.0 * t.demand.variance)

    def test_scaled_keeps_identity_fields(self):
        t = _task()
        t2 = t.scaled_demand(2.0)
        assert t2.name == t.name
        assert t2.tuf is t.tuf
        assert t2.uam == t.uam

    def test_with_requirement(self):
        t = _task(tuf=LinearTUF(10.0, 0.1), nu=0.3, rho=0.9)
        t2 = t.with_requirement(0.5, 0.95)
        assert t2.nu == 0.5
        assert t2.rho == 0.95
        assert t2.critical_time < t.critical_time  # higher nu, earlier D


class TestTaskSet:
    def _set(self):
        return TaskSet([
            _task(name="A", demand=DeterministicDemand(30.0)),
            _task(name="B", demand=DeterministicDemand(20.0)),
        ])

    def test_len_iter_getitem(self):
        ts = self._set()
        assert len(ts) == 2
        assert [t.name for t in ts] == ["A", "B"]
        assert ts[1].name == "B"

    def test_by_name(self):
        assert self._set().by_name("B").name == "B"
        with pytest.raises(KeyError):
            self._set().by_name("C")

    def test_load_definition(self):
        # rho = (1/f_m) sum C_i / D_i
        ts = self._set()
        assert ts.load(1000.0) == pytest.approx((300.0 + 200.0) / 1000.0)

    def test_scaled_to_load_exact(self):
        ts = self._set().scaled_to_load(1.25, 1000.0)
        assert ts.load(1000.0) == pytest.approx(1.25)

    def test_scaled_preserves_proportions(self):
        ts = self._set().scaled_to_load(1.0, 1000.0)
        a, b = ts.by_name("A"), ts.by_name("B")
        assert a.allocation / b.allocation == pytest.approx(1.5)

    def test_rejects_duplicate_names(self):
        with pytest.raises(TaskModelError):
            TaskSet([_task(name="A"), _task(name="A")])

    def test_rejects_empty(self):
        with pytest.raises(TaskModelError):
            TaskSet([])

    def test_rejects_bad_target_load(self):
        with pytest.raises(TaskModelError):
            self._set().scaled_to_load(0.0, 1000.0)
