"""Tests for execution traces (repro.sim.trace)."""

import pytest

from repro.sim import Trace, TraceEventKind
from repro.sim.trace import Segment


class TestSegments:
    def test_add_and_query(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_segment(1.0, 1.5, None, 500.0)
        assert tr.busy_time() == pytest.approx(1.0)
        assert tr.idle_time() == pytest.approx(0.5)
        assert tr.executed_cycles() == pytest.approx(500.0)
        assert tr.executed_cycles("A:0") == pytest.approx(500.0)

    def test_zero_length_ignored(self):
        tr = Trace()
        tr.add_segment(1.0, 1.0, "A:0", 500.0)
        assert tr.segments == []

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            Trace().add_segment(1.0, 0.5, "A:0", 500.0)

    def test_coalesces_contiguous_same_state(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_segment(1.0, 2.0, "A:0", 500.0)
        assert len(tr.segments) == 1
        assert tr.segments[0].duration == pytest.approx(2.0)

    def test_no_coalesce_on_frequency_change(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_segment(1.0, 2.0, "A:0", 1000.0)
        assert len(tr.segments) == 2

    def test_segment_cycles(self):
        seg = Segment(0.0, 2.0, "A:0", 360.0)
        assert seg.cycles == pytest.approx(720.0)
        assert Segment(0.0, 2.0, None, 360.0).cycles == 0.0

    def test_is_contiguous(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_segment(1.0, 2.0, None, 500.0)
        assert tr.is_contiguous()
        tr.add_segment(3.0, 4.0, "B:0", 500.0)
        assert not tr.is_contiguous()


class TestEventsAndOrder:
    def test_job_order(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_segment(1.0, 2.0, "B:0", 500.0)
        tr.add_segment(2.0, 3.0, "A:0", 500.0)
        assert tr.job_order() == ["A:0", "B:0"]

    def test_events_of(self):
        tr = Trace()
        tr.add_event(0.0, TraceEventKind.RELEASE, "A:0")
        tr.add_event(1.0, TraceEventKind.COMPLETE, "A:0", value=5.0)
        assert len(tr.events_of(TraceEventKind.RELEASE)) == 1
        assert tr.events_of(TraceEventKind.COMPLETE)[0].value == 5.0

    def test_preemption_count(self):
        tr = Trace()
        # A runs, is preempted by B (no completion event at the switch),
        # then resumes and completes.
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_segment(1.0, 2.0, "B:0", 500.0)
        tr.add_event(2.0, TraceEventKind.COMPLETE, "B:0")
        tr.add_segment(2.0, 3.0, "A:0", 500.0)
        tr.add_event(3.0, TraceEventKind.COMPLETE, "A:0")
        assert tr.preemption_count() == 1

    def test_completion_switch_not_a_preemption(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_event(1.0, TraceEventKind.COMPLETE, "A:0")
        tr.add_segment(1.0, 2.0, "B:0", 500.0)
        assert tr.preemption_count() == 0

    def test_abort_switch_not_a_preemption(self):
        tr = Trace()
        tr.add_segment(0.0, 1.0, "A:0", 500.0)
        tr.add_event(1.0, TraceEventKind.ABORT, "A:0")
        tr.add_segment(1.0, 2.0, "B:0", 500.0)
        assert tr.preemption_count() == 0
