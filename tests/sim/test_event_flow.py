"""Tests that the engine reports the paper's scheduling events
(arrival / completion / expiry) to the scheduler correctly."""

import pytest

from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import DeterministicDemand
from repro.sched import EDFStatic
from repro.sim import Engine, Task, TaskSet, WorkloadTrace
from repro.sim.scheduler import SchedulingEvent
from repro.sim.workload import JobSpec
from repro.tuf import StepTUF


class Recorder(EDFStatic):
    """EDF that records the triggering event of every invocation."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.events = []

    def decide(self, view):
        self.events.append((round(view.time, 6), view.event))
        return super().decide(view)


def _run(task_jobs, horizon, scheduler):
    specs = []
    taskset = TaskSet([t for t, _ in task_jobs])
    for task, jobs in task_jobs:
        for idx, (release, demand) in enumerate(jobs):
            specs.append(JobSpec(task, idx, release, demand))
    trace = WorkloadTrace(taskset, horizon, specs)
    cpu = Processor(FrequencyScale((1000.0,)), EnergyModel.e1())
    Engine(trace, scheduler, cpu).run()
    return scheduler.events


def _task(name="T", window=1.0, mean=100.0, abortable=True):
    return Task(name, StepTUF(10.0, window), DeterministicDemand(mean),
                UAMSpec(1, window), abortable=abortable)


class TestEventKinds:
    def test_arrival_then_completion(self):
        events = _run([(_task(mean=100.0), [(0.0, 100.0)])], 1.0, Recorder())
        kinds = [k for _, k in events]
        assert kinds[0] is SchedulingEvent.ARRIVAL
        assert SchedulingEvent.COMPLETION in kinds

    def test_expiry_event_reported(self):
        # Job cannot finish: at its termination the engine raises the
        # exception and re-invokes the scheduler with EXPIRY.
        task = _task(window=0.05, mean=100.0)
        events = _run([(task, [(0.0, 100.0)])], 1.0, Recorder())
        assert (0.05, SchedulingEvent.EXPIRY) in events

    def test_no_expiry_for_na_policy(self):
        task = _task(window=0.05, mean=100.0)
        events = _run([(task, [(0.0, 100.0)])], 1.0,
                      Recorder(abort_expired=False))
        assert all(k is not SchedulingEvent.EXPIRY for _, k in events)

    def test_each_arrival_triggers_invocation(self):
        task = _task(window=0.25, mean=10.0)
        releases = [(k * 0.25, 10.0) for k in range(4)]
        events = _run([(task, releases)], 1.0, Recorder())
        arrival_times = [t for t, k in events if k is SchedulingEvent.ARRIVAL]
        assert arrival_times == [0.0, 0.25, 0.5, 0.75]

    def test_completion_times_match(self):
        task = _task(window=0.5, mean=100.0)
        events = _run([(task, [(0.0, 100.0), (0.5, 100.0)])], 1.0, Recorder())
        completions = [t for t, k in events if k is SchedulingEvent.COMPLETION]
        assert completions == [pytest.approx(0.1), pytest.approx(0.6)]

    def test_simultaneous_arrivals_single_invocation(self):
        a = _task("A", window=1.0, mean=10.0)
        b = _task("B", window=1.0, mean=10.0)
        rec = Recorder()
        events = _run([(a, [(0.0, 10.0)]), (b, [(0.0, 10.0)])], 1.0, rec)
        arrivals = [t for t, k in events if k is SchedulingEvent.ARRIVAL]
        # Both releases happen at t=0 but the scheduler runs once for
        # the batch (events are coalesced per decision point).
        assert arrivals == [0.0]
