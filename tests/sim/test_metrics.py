"""Tests for Metrics (repro.sim.metrics)."""

import pytest

from repro.arrivals import UAMSpec
from repro.cpu import ProcessorStats
from repro.demand import DeterministicDemand
from repro.sim import Job, JobStatus, Metrics, Task, TaskSet
from repro.tuf import StepTUF


def _taskset():
    return TaskSet(
        [
            Task("A", StepTUF(10.0, 1.0), DeterministicDemand(5.0), UAMSpec(1, 1.0),
                 nu=1.0, rho=0.9),
            Task("B", StepTUF(4.0, 2.0), DeterministicDemand(5.0), UAMSpec(1, 2.0),
                 nu=1.0, rho=0.9),
        ]
    )


def _jobs(taskset):
    a, b = taskset.by_name("A"), taskset.by_name("B")
    jobs = []
    # Two completed A jobs (one on time, one at zero utility), one
    # expired A job, one completed B, one pending B.
    j = Job(a, 0, 0.0, 5.0)
    j.status = JobStatus.COMPLETED
    j.completion_time = 0.5
    j.accrued_utility = 10.0
    jobs.append(j)
    j = Job(a, 1, 1.0, 5.0)
    j.status = JobStatus.COMPLETED
    j.completion_time = 2.5  # past termination -> zero utility
    j.accrued_utility = 0.0
    jobs.append(j)
    j = Job(a, 2, 2.0, 5.0)
    j.status = JobStatus.EXPIRED
    j.abort_time = 3.0
    jobs.append(j)
    j = Job(b, 0, 0.0, 5.0)
    j.status = JobStatus.COMPLETED
    j.completion_time = 1.0
    j.accrued_utility = 4.0
    jobs.append(j)
    jobs.append(Job(b, 1, 2.0, 5.0))  # pending
    return jobs


@pytest.fixture
def metrics():
    ts = _taskset()
    stats = ProcessorStats(energy=100.0, cycles_executed=20.0, busy_time=2.0,
                           idle_time=1.0)
    return Metrics(ts, _jobs(ts), stats, horizon=3.0)


class TestAggregates:
    def test_accrued_utility(self, metrics):
        assert metrics.accrued_utility == pytest.approx(14.0)

    def test_max_possible_utility(self, metrics):
        assert metrics.max_possible_utility == pytest.approx(3 * 10.0 + 2 * 4.0)

    def test_normalized_utility(self, metrics):
        assert metrics.normalized_utility == pytest.approx(14.0 / 38.0)

    def test_counts(self, metrics):
        assert metrics.released == 5
        assert metrics.completed == 3
        assert metrics.expired == 1
        assert metrics.aborted == 0
        assert metrics.unfinished == 1

    def test_energy_from_processor(self, metrics):
        assert metrics.energy == 100.0

    def test_utility_per_energy(self, metrics):
        assert metrics.utility_per_energy == pytest.approx(0.14)

    def test_summary_keys(self, metrics):
        s = metrics.summary()
        assert s["completed"] == 3.0
        assert s["normalized_utility"] == pytest.approx(14.0 / 38.0)


class TestPerTask:
    def test_task_a_breakdown(self, metrics):
        tm = metrics.per_task["A"]
        assert tm.released == 3
        assert tm.completed == 2
        assert tm.expired == 1
        assert tm.met_requirement == 1  # only the on-time completion
        assert tm.met_critical_time == 1

    def test_task_a_assurance(self, metrics):
        tm = metrics.per_task["A"]
        # 1 satisfied / 3 decided.
        assert tm.assurance_attainment == pytest.approx(1 / 3)

    def test_task_b_excludes_pending(self, metrics):
        tm = metrics.per_task["B"]
        assert tm.unfinished == 1
        assert tm.assurance_attainment == pytest.approx(1.0)  # 1/1 decided

    def test_normalized_utility_per_task(self, metrics):
        assert metrics.per_task["A"].normalized_utility == pytest.approx(10.0 / 30.0)

    def test_assurance_satisfied(self, metrics):
        ts = metrics.taskset
        assert not metrics.assurance_satisfied(ts.by_name("A"))  # 0.33 < 0.9
        assert metrics.assurance_satisfied(ts.by_name("B"))
        assert not metrics.all_assurances_satisfied()

    def test_empty_task_defaults(self):
        ts = _taskset()
        m = Metrics(ts, [], ProcessorStats(), horizon=1.0)
        tm = m.per_task["A"]
        assert tm.assurance_attainment == 1.0
        assert tm.normalized_utility == 0.0
        assert m.normalized_utility == 0.0
        assert m.utility_per_energy == 0.0
