"""Tests for workload materialisation (repro.sim.workload)."""

import numpy as np
import pytest

from repro.arrivals import UAMSpec
from repro.demand import DeterministicDemand
from repro.sim import Task, TaskSet, WorkloadTrace, materialize
from repro.sim.workload import JobSpec
from repro.tuf import StepTUF


def _taskset():
    return TaskSet(
        [
            Task("A", StepTUF(5.0, 0.2), DeterministicDemand(10.0), UAMSpec(1, 0.2)),
            Task("B", StepTUF(3.0, 0.5), DeterministicDemand(30.0), UAMSpec(1, 0.5)),
        ]
    )


class TestMaterialize:
    def test_job_counts_periodic(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        a_jobs = [j for j in trace if j.task.name == "A"]
        b_jobs = [j for j in trace if j.task.name == "B"]
        # Boundary jobs whose window outlives the horizon are dropped
        # (none here: every window fits the 2.0 s horizon exactly).
        assert len(a_jobs) == 10  # releases 0.0 .. 1.8, 1.8+0.2 <= 2.0
        assert len(b_jobs) == 4  # releases 0.0 .. 1.5

    def test_boundary_jobs_dropped_vs_included(self, rng):
        # Horizon 1.9: B's release at 1.5 has termination 2.0 > 1.9.
        censored = materialize(_taskset(), 1.9, rng)
        full = materialize(_taskset(), 1.9, rng, include_boundary=True)
        b_censored = [j for j in censored if j.task.name == "B"]
        b_full = [j for j in full if j.task.name == "B"]
        assert len(b_censored) == 3
        assert len(b_full) == 4

    def test_sorted_by_release(self, rng):
        trace = materialize(_taskset(), 5.0, rng)
        releases = [j.release for j in trace]
        assert releases == sorted(releases)

    def test_deterministic_demands(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        for j in trace:
            assert j.demand == {"A": 10.0, "B": 30.0}[j.task.name]

    def test_reproducible_with_same_seed(self):
        t1 = materialize(_taskset(), 2.0, np.random.default_rng(5))
        t2 = materialize(_taskset(), 2.0, np.random.default_rng(5))
        assert [(j.task.name, j.release, j.demand) for j in t1] == [
            (j.task.name, j.release, j.demand) for j in t2
        ]

    def test_uam_verified(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        trace.verify_uam()  # must not raise


class TestTraceQueries:
    def test_total_demand(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        assert trace.total_demand == pytest.approx(10 * 10.0 + 4 * 30.0)

    def test_max_possible_utility(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        assert trace.max_possible_utility == pytest.approx(10 * 5.0 + 4 * 3.0)

    def test_demand_rate(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        assert trace.demand_rate() == pytest.approx(trace.total_demand / 2.0)

    def test_jobs_of(self, rng):
        ts = _taskset()
        trace = materialize(ts, 2.0, rng)
        assert len(trace.jobs_of(ts.by_name("B"))) == 4

    def test_len_iter(self, rng):
        trace = materialize(_taskset(), 2.0, rng)
        assert len(trace) == len(list(trace)) == 14


class TestTraceValidation:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            WorkloadTrace(_taskset(), 0.0, [])

    def test_verify_uam_catches_violation(self):
        ts = _taskset()
        task = ts.by_name("A")
        specs = [
            JobSpec(task, 0, 0.0, 1.0),
            JobSpec(task, 1, 0.05, 1.0),  # violates <1, 0.2>
        ]
        trace = WorkloadTrace(ts, 1.0, specs)
        with pytest.raises(ValueError):
            trace.verify_uam()
