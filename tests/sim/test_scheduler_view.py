"""Tests for SchedulerView (repro.sim.scheduler)."""

import pytest

from repro.arrivals import BurstUAMArrivals, UAMSpec
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.sim import Job, Task, TaskSet
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.tuf import StepTUF


def _task(name="T", window=1.0, mean=10.0, a=1):
    spec = UAMSpec(a, window)
    return Task(
        name,
        StepTUF(5.0, window),
        DeterministicDemand(mean),
        spec,
        arrivals=None if a == 1 else BurstUAMArrivals(spec),
    )


def _view(tasks, jobs, time=0.0, arrivals=None):
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=FrequencyScale.powernow_k6(),
        energy_model=EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window=arrivals or {},
    )


class TestPendingQueries:
    def test_pending_of_sorted_by_critical_time(self):
        task = _task(window=1.0)
        j_late = Job(task, 1, 0.5, 10.0)
        j_early = Job(task, 0, 0.0, 10.0)
        view = _view([task], [j_late, j_early])
        assert view.pending_of(task) == [j_early, j_late]

    def test_head_job(self):
        task = _task()
        j0, j1 = Job(task, 0, 0.0, 10.0), Job(task, 1, 0.9, 10.0)
        view = _view([task], [j1, j0])
        assert view.head_job_of(task) is j0

    def test_head_job_none(self):
        task = _task()
        assert _view([task], []).head_job_of(task) is None

    def test_pending_filters_other_tasks(self):
        a, b = _task("A"), _task("B")
        ja, jb = Job(a, 0, 0.0, 10.0), Job(b, 0, 0.0, 10.0)
        view = _view([a, b], [ja, jb])
        assert view.pending_of(a) == [ja]


class TestArrivalTracking:
    def test_counts(self):
        task = _task(a=3)
        view = _view([task], [], time=1.0, arrivals={"T": [0.5, 0.9]})
        assert view.arrivals_in_window(task) == 2
        assert view.recent_arrival_times(task) == [0.5, 0.9]

    def test_next_admissible_under_budget(self):
        task = _task(a=3)
        view = _view([task], [], time=1.0, arrivals={"T": [0.5]})
        assert view.next_admissible_arrival(task) == 1.0  # can arrive now

    def test_next_admissible_budget_exhausted(self):
        task = _task(a=2, window=1.0)
        view = _view([task], [], time=1.0, arrivals={"T": [0.4, 0.8]})
        assert view.next_admissible_arrival(task) == pytest.approx(1.4)

    def test_unknown_task_zero_arrivals(self):
        task = _task()
        view = _view([task], [])
        assert view.arrivals_in_window(task) == 0


class TestRemainingWindowCycles:
    def test_periodic_pending_job(self):
        task = _task(a=1, mean=10.0)
        job = Job(task, 0, 0.0, 10.0)
        view = _view([task], [job], arrivals={"T": [0.0]})
        # One pending job, window arrival seen: just its budget.
        assert view.remaining_window_cycles(task) == pytest.approx(task.allocation)

    def test_periodic_idle_no_hedge(self):
        task = _task(a=1)
        view = _view([task], [], time=0.5, arrivals={"T": [0.0]})
        # The window's single arrival was seen: nothing can arrive.
        assert view.remaining_window_cycles(task) == 0.0

    def test_bursty_hedges_unseen_arrivals(self):
        task = _task(a=3, mean=10.0)
        job = Job(task, 0, 0.0, 10.0)
        view = _view([task], [job], arrivals={"T": [0.0]})
        # 1 pending + 2 unseen potential arrivals.
        c = task.allocation
        assert view.remaining_window_cycles(task) == pytest.approx(3 * c)

    def test_capped_at_window_total(self):
        task = _task(a=2, mean=10.0)
        jobs = [Job(task, k, 0.0, 10.0) for k in range(4)]  # leftovers
        view = _view([task], jobs, arrivals={"T": []})
        assert view.remaining_window_cycles(task) == pytest.approx(
            2 * task.allocation
        )

    def test_partial_execution_reduces_head(self):
        task = _task(a=1, mean=10.0)
        job = Job(task, 0, 0.0, 10.0)
        job.executed = 4.0
        view = _view([task], [job], arrivals={"T": [0.0]})
        assert view.remaining_window_cycles(task) == pytest.approx(
            task.allocation - 4.0
        )


class TestEarliestCriticalTime:
    def test_pending_head(self):
        task = _task(window=1.0)
        job = Job(task, 0, 0.25, 10.0)
        view = _view([task], [job], time=0.5)
        assert view.earliest_critical_time(task) == pytest.approx(1.25)

    def test_idle_assumes_fresh_window(self):
        task = _task(window=1.0)
        view = _view([task], [], time=0.5)
        assert view.earliest_critical_time(task) == pytest.approx(1.5)


class TestWithout:
    def test_removes_jobs(self):
        task = _task()
        j0, j1 = Job(task, 0, 0.0, 10.0), Job(task, 1, 0.5, 10.0)
        view = _view([task], [j0, j1])
        filtered = view.without([j0])
        assert filtered.ready == [j1]
        assert view.ready == [j0, j1]  # original untouched

    def test_preserves_metadata(self):
        task = _task()
        view = _view([task], [], time=2.0, arrivals={"T": [1.5]})
        filtered = view.without([])
        assert filtered.time == 2.0
        assert filtered.arrivals_in_window(task) == 1


class TestReadySnapshotContract:
    """A retained view must stay membership-stable across the engine's
    abort pass (the view snapshots the live ready list at construction;
    see ``Engine._build_view``)."""

    def test_retained_view_stable_across_abort_pass(self):
        from repro.cpu import Processor
        from repro.sched import Decision, Scheduler
        from repro.sim import Engine, JobStatus, WorkloadTrace
        from repro.sim.workload import JobSpec

        class AbortTail(Scheduler):
            """Runs the earliest-critical-time job, aborts every other
            pending job — and retains each decision's view."""

            name = "abort-tail"

            def __init__(self):
                self.snapshots = []

            def decide(self, view):
                order = sorted(
                    view.ready, key=lambda j: (j.critical_time, j.index)
                )
                head = order[0] if order else None
                aborts = tuple(order[1:])
                self.snapshots.append((list(view.ready), aborts, view))
                return Decision(
                    job=head, frequency=view.scale.f_max, aborts=aborts
                )

        task = _task(window=1.0, mean=100.0)
        trace = WorkloadTrace(
            TaskSet([task]),
            2.0,
            [JobSpec(task, i, 0.0, 100.0) for i in range(3)],
        )
        scheduler = AbortTail()
        cpu = Processor(FrequencyScale((1000.0,)), EnergyModel.e1())
        result = Engine(trace, scheduler, cpu).run()

        aborted = [j for j in result.jobs if j.status is JobStatus.ABORTED]
        assert aborted, "scenario must exercise the abort pass"
        saw_abort_pass = False
        for members, aborts, view in scheduler.snapshots:
            # The engine removed `aborts` from its live list right after
            # decide() returned; the retained view must still show the
            # decision-time membership, aborted jobs included.
            assert view.ready == members
            for job in aborts:
                assert job in view.ready
                saw_abort_pass = True
        assert saw_abort_pass

    def test_view_does_not_alias_caller_list(self):
        task = _task()
        jobs = [Job(task, 0, 0.0, 10.0), Job(task, 1, 0.5, 10.0)]
        view = _view([task], jobs)
        jobs.pop()
        assert len(view.ready) == 2
