"""Clock abstraction tests: semantics of each clock, the engine's
wall-clock driver seam, and sim-clock byte-identity to the golden
traces (the PR 10 "don't perturb the simulator" guarantee)."""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import synthesize_taskset
from repro.obs import Observer, events_to_jsonl
from repro.sched import make_scheduler
from repro.sim import (
    Clock,
    FakeClock,
    Platform,
    SimClock,
    WallClock,
    materialize,
    simulate,
)
from repro.sim.clock import as_clock

GOLDEN = Path(__file__).resolve().parent.parent / "golden" / "eua_star.jsonl"

SEED = 11
LOAD = 0.8
HORIZON = 0.4


def _fixed_trace():
    rng = np.random.default_rng(SEED)
    taskset = synthesize_taskset(LOAD, rng)
    return materialize(taskset, HORIZON, rng)


# ----------------------------------------------------------------------
# Clock semantics
# ----------------------------------------------------------------------
class TestSimClock:
    def test_jumps_to_requested_instant(self):
        clk = SimClock()
        assert clk.virtual
        assert clk.now() == 0.0
        clk.wait_until(1.5)
        assert clk.now() == 1.5

    def test_never_moves_backwards(self):
        clk = SimClock()
        clk.wait_until(2.0)
        clk.wait_until(1.0)
        assert clk.now() == 2.0

    def test_zero_drift_by_construction(self):
        clk = SimClock()
        for t in (0.1, 0.2, 0.7):
            assert clk.wait_until(t) == 0.0
        assert clk.drift.waits == 3
        assert clk.drift.punctual == 3
        assert clk.drift.total_lag == 0.0


class TestWallClock:
    def test_rate_scales_now(self):
        clk = WallClock(rate=100.0)
        clk.start()
        time.sleep(0.01)
        # 10ms wall => ~1s clock time at rate 100.
        assert 0.5 < clk.now() < 10.0

    def test_wall_remaining_divides_by_rate(self):
        clk = WallClock(rate=10.0)
        clk.start()
        target = clk.now() + 1.0  # 1 clock-second => 0.1 wall seconds
        assert clk.wall_remaining(target) == pytest.approx(0.1, abs=0.02)

    def test_wait_until_blocks_and_records_drift(self):
        clk = WallClock(rate=1.0)
        clk.start()
        lag = clk.wait_until(clk.now() + 0.01)
        assert lag >= 0.0
        assert clk.drift.waits == 1
        assert clk.drift.last_lag == lag

    def test_past_instant_returns_immediately(self):
        clk = WallClock()
        clk.start()
        lag = clk.wait_until(-1.0)
        assert lag >= 1.0  # already past by at least a second

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            WallClock(rate=0.0)

    def test_unstarted_now_is_zero(self):
        assert WallClock().now() == 0.0

    def test_start_is_idempotent(self):
        clk = WallClock()
        clk.start()
        anchor = clk._anchor
        time.sleep(0.002)
        clk.start()
        assert clk._anchor == anchor


class TestFakeClock:
    def test_records_wait_sequence(self):
        clk = FakeClock()
        clk.wait_until(0.1)
        clk.wait_until(0.3)
        assert clk.waits == [0.1, 0.3]
        assert clk.now() == 0.3

    def test_scripted_lags_advance_now(self):
        clk = FakeClock(lags=[0.05])
        lag = clk.wait_until(1.0)
        assert lag == pytest.approx(0.05)
        assert clk.now() == pytest.approx(1.05)
        # Script exhausted: punctual afterwards.
        assert clk.wait_until(2.0) == 0.0

    def test_drift_aggregates_scripted_lags(self):
        clk = FakeClock(lags=[0.01, 0.02])
        clk.wait_until(1.0)
        clk.wait_until(2.0)
        assert clk.drift.waits == 2
        assert clk.drift.max_lag == pytest.approx(0.02)
        assert clk.drift.mean_lag == pytest.approx(0.015)


class TestAsClock:
    def test_none_stays_none(self):
        assert as_clock(None) is None

    def test_instance_passes_through(self):
        clk = FakeClock()
        assert as_clock(clk) is clk

    def test_sim_and_wall_names(self):
        assert isinstance(as_clock("sim"), SimClock)
        assert isinstance(as_clock("wall"), WallClock)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown clock"):
            as_clock("lamport")

    def test_clock_is_abstract(self):
        with pytest.raises(TypeError):
            Clock()


# ----------------------------------------------------------------------
# Engine wall-clock driver (FakeClock harness)
# ----------------------------------------------------------------------
class TestEngineRealtimeDriver:
    def test_waits_cover_events_in_order(self):
        """A non-virtual clock is waited on for every event instant, in
        nondecreasing order — arrivals and the TUF termination timers."""
        trace = _fixed_trace()
        clk = FakeClock()
        result = simulate(trace, make_scheduler("EUA*"), Platform(), clock=clk)
        assert clk.waits, "engine never consulted the wall clock"
        assert clk.waits == sorted(clk.waits)
        assert clk.waits[-1] <= HORIZON + 1e-9
        # Every arrival inside the horizon is an event the driver
        # waited for (deadline timers and completions interleave).
        # Releases at t=0 are drained at clock start, before any wait.
        arrivals = [j.release for j in trace.jobs if 0.0 < j.release < HORIZON]
        for t in arrivals:
            assert any(abs(w - t) < 1e-12 for w in clk.waits)
        assert result.jobs, "workload should produce jobs"

    def test_deadline_timer_instants_are_waited_on(self):
        """Expired jobs are aborted at their termination instant, and
        that instant appears in the wait sequence (the deadline timer
        fired rather than being processed retroactively)."""
        trace = _fixed_trace()
        clk = FakeClock()
        result = simulate(trace, make_scheduler("EUA*"), Platform(), clock=clk)
        expired = [j for j in result.jobs if j.status.name == "EXPIRED"]
        waits = clk.waits
        for job in expired:
            assert any(abs(w - job.abort_time) < 1e-9 for w in waits), (
                f"no deadline-timer wait at t={job.abort_time} for {job.key}"
            )

    def test_drift_has_one_record_per_wait(self):
        clk = FakeClock()
        simulate(_fixed_trace(), make_scheduler("EUA*"), Platform(), clock=clk)
        assert clk.drift.waits == len(clk.waits)
        assert clk.drift.punctual == len(clk.waits)

    def test_scripted_lag_lands_in_drift_not_results(self):
        """Injected lateness is accounted in drift; the *logical* result
        (event sequence) is unchanged because the engine applies the
        same simulated state change after the wait."""
        trace = _fixed_trace()
        punctual, late = Observer(events=True), Observer(events=True)
        simulate(trace, make_scheduler("EUA*"), Platform(),
                 observer=punctual, clock=FakeClock())
        lagged = FakeClock(lags=[1e-4] * 5)
        simulate(trace, make_scheduler("EUA*"), Platform(),
                 observer=late, clock=lagged)
        assert lagged.drift.total_lag == pytest.approx(5e-4)
        assert events_to_jsonl(punctual.events) == events_to_jsonl(late.events)


# ----------------------------------------------------------------------
# Sim-clock byte-identity (the golden-trace pin)
# ----------------------------------------------------------------------
class TestSimClockIdentity:
    @pytest.mark.parametrize("clock", [None, "sim", SimClock()],
                             ids=["none", "name", "instance"])
    def test_golden_trace_identical(self, clock):
        """`clock=None`, `clock="sim"` and an explicit SimClock replay
        the frozen EUA* workload byte-identically to the golden log."""
        observer = Observer(events=True, metrics=False)
        simulate(_fixed_trace(), make_scheduler("EUA*"), Platform(),
                 observer=observer, clock=clock)
        replay = events_to_jsonl(observer.events)
        golden = GOLDEN.read_text()
        assert [json.loads(x) for x in replay.splitlines()] == [
            json.loads(x) for x in golden.splitlines()
        ]
        assert replay == golden  # byte-identical, not just equivalent

    def test_sim_clock_tracks_engine_time(self):
        clk = SimClock()
        simulate(_fixed_trace(), make_scheduler("EUA*"), Platform(), clock=clk)
        # A virtual clock is never waited on by the engine.
        assert clk.drift.waits == 0
        assert clk.now() == 0.0
