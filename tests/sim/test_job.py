"""Tests for Job (repro.sim.job)."""

import pytest

from repro.arrivals import UAMSpec
from repro.demand import DeterministicDemand
from repro.sim import Job, JobStatus, Task
from repro.tuf import LinearTUF, StepTUF


def _job(release=1.0, demand=10.0, tuf=None, nu=1.0):
    task = Task(
        name="T",
        tuf=tuf if tuf is not None else StepTUF(8.0, 0.5),
        demand=DeterministicDemand(12.0),
        uam=UAMSpec(1, 0.5),
        nu=nu,
        rho=0.9,
    )
    return Job(task, index=0, release=release, demand=demand)


class TestAbsoluteConstraints:
    def test_termination(self):
        assert _job(release=1.0).termination == pytest.approx(1.5)

    def test_critical_time_step(self):
        assert _job(release=1.0).critical_time == pytest.approx(1.5)

    def test_critical_time_linear(self):
        j = _job(release=1.0, tuf=LinearTUF(8.0, 0.5), nu=0.5)
        assert j.critical_time == pytest.approx(1.25)

    def test_utility_at_absolute_time(self):
        j = _job(release=1.0)
        assert j.utility_at(1.2) == 8.0
        assert j.utility_at(1.5) == 0.0
        assert j.utility_at(0.9) == 0.0

    def test_max_utility(self):
        assert _job().max_utility == 8.0


class TestBudgetView:
    def test_allocated_equals_task_allocation(self):
        j = _job()
        assert j.allocated == j.task.allocation == 12.0

    def test_remaining_budget_decreases(self):
        j = _job()
        j.executed = 5.0
        assert j.remaining_budget == pytest.approx(7.0)

    def test_remaining_budget_floors_at_zero_on_overrun(self):
        j = _job(demand=20.0)  # demand exceeds the 12-cycle budget
        j.executed = 15.0
        assert j.remaining_budget == 0.0
        assert j.remaining_demand == pytest.approx(5.0)


class TestLifecycle:
    def test_initial_state(self):
        j = _job()
        assert j.status is JobStatus.PENDING
        assert not j.is_finished
        assert j.completion_time is None
        assert j.sojourn_time is None

    def test_met_statistical_requirement(self):
        j = _job()
        j.accrued_utility = 8.0
        assert j.met_statistical_requirement
        j.accrued_utility = 7.9
        assert not j.met_statistical_requirement

    def test_met_requirement_partial_nu(self):
        j = _job(tuf=LinearTUF(8.0, 0.5), nu=0.5)
        j.accrued_utility = 4.0
        assert j.met_statistical_requirement

    def test_sojourn_time(self):
        j = _job(release=1.0)
        j.completion_time = 1.3
        assert j.sojourn_time == pytest.approx(0.3)

    def test_key(self):
        assert _job().key == "T:0"


class TestValidation:
    def test_rejects_negative_release(self):
        with pytest.raises(ValueError):
            _job(release=-1.0)

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            _job(demand=0.0)
