"""Tests for the global multicore engine (repro.mp.engine.GlobalEngine)."""

import numpy as np
import pytest

from repro.check import check_mp_result
from repro.experiments import synthesize_taskset
from repro.mp import GlobalEngine, MulticorePlatform, simulate_global, simulate_mp
from repro.sched import make_scheduler
from repro.sim import Platform, materialize
from repro.sim.engine import SimulationError


def _trace(load=1.6, seed=11, horizon=0.3, cores=2):
    rng = np.random.default_rng(seed)
    return materialize(synthesize_taskset(load * cores, rng), horizon, rng)


@pytest.fixture
def platform2():
    return MulticorePlatform.from_platform(Platform(), cores=2)


def test_basic_m2_run(platform2):
    result = simulate_mp(_trace(), "EUA*", platform2, mode="global", check=True)
    assert result.mode == "global"
    assert result.cores == 2
    assert result.migrations >= 0
    assert len(result.per_core_stats) == 2
    assert result.jobs


def test_invariants_hold_across_core_counts():
    for m in (1, 2, 4):
        platform = MulticorePlatform.from_platform(Platform(), cores=m)
        result = simulate_mp(
            _trace(cores=m), "EUA*", platform, mode="global", check=True
        )
        assert len(result.per_core_stats) == m


def test_single_core_never_migrates():
    platform = MulticorePlatform.from_platform(Platform(), cores=1)
    result = simulate_global(_trace(cores=1), "EUA*", platform)
    assert result.migrations == 0


def test_migration_counter_matches_segments(platform2):
    result = simulate_global(_trace(), "EUA*", platform2)
    # check_mp_result reconstructs migrations from the segment record
    # (MP3) and raises on any mismatch with the engine's counter.
    check_mp_result(result)


def test_completions_land_within_horizon(platform2):
    from repro.sim.job import JobStatus

    result = simulate_mp(_trace(), "EUA*", platform2, mode="global")
    completed = [j for j in result.jobs if j.status is JobStatus.COMPLETED]
    assert completed
    for job in completed:
        assert job.completion_time <= result.horizon + 1e-9


def test_switch_time_rejected(platform2):
    stalling = Platform(switch_time=1e-4)
    platform = MulticorePlatform.from_platform(stalling, cores=2)
    with pytest.raises(SimulationError):
        GlobalEngine(_trace(), make_scheduler("EUA*"), platform)


def test_switch_energy_still_allowed():
    base = Platform(switch_energy=10.0)
    platform = MulticorePlatform.from_platform(base, cores=2)
    result = simulate_global(_trace(), "EUA*", platform)
    assert result.energy > 0.0


def test_global_dvs_scales_below_fmax_at_nominal_load():
    """The PR 10 headline fix: per-core residual decideFreq views.

    Pre-fix, the shared m-scaled selection view drove decideFreq, whose
    aggregate demand exceeded one core's f_max at any nominal load —
    global EUA* energy degenerated to exactly the EDF@f_max normaliser.
    With per-core views it must scale frequency (strictly less energy)
    without giving up utility.
    """
    m = 4
    platform = MulticorePlatform.from_platform(Platform(), cores=m)
    trace = _trace(load=0.8, cores=m, horizon=0.4)
    eua = simulate_mp(trace, "EUA*", platform, mode="global", check=True)
    edf = simulate_mp(trace, "EDF", platform, mode="global")
    assert eua.energy < edf.energy  # not f_max-pinned any more
    assert eua.normalized_utility >= edf.normalized_utility - 1e-9


def test_global_overload_still_runs_at_fmax():
    """At 1.6 per-core load there is no slack to reclaim: every core
    must keep running at f_max (line 9's overload cap), so EUA* energy
    equals the EDF@f_max normaliser bit-for-bit."""
    m = 2
    platform = MulticorePlatform.from_platform(Platform(), cores=m)
    trace = _trace(load=1.6, cores=m)
    eua = simulate_mp(trace, "EUA*", platform, mode="global")
    edf = simulate_mp(trace, "EDF", platform, mode="global")
    assert eua.energy == edf.energy


def test_global_freq_decisions_are_per_core(platform2):
    """Frequency decisions come from decide_frequency over per-core
    views: every FREQ_DECISION event is core-stamped, and at nominal
    load at least one lands below f_max."""
    from repro.obs import EventKind, Observer

    obs = Observer(events=True, metrics=False)
    simulate_global(_trace(load=0.8), "EUA*", platform2, observer=obs)
    decisions = obs.events.of_kind(EventKind.FREQ_DECISION)
    assert decisions
    assert all("core" in e.fields for e in decisions)
    f_max = Platform().scale.f_max
    assert any(e.fields["frequency"] < f_max for e in decisions)


def test_events_carry_core_field(platform2):
    from repro.obs import EventKind, Observer

    obs = Observer(events=True, metrics=False)
    simulate_global(_trace(), "EUA*", platform2, observer=obs)
    dispatches = obs.events.of_kind(EventKind.DISPATCH)
    assert dispatches
    assert all("core" in e.fields for e in dispatches)
    cores = {e.fields["core"] for e in dispatches}
    assert cores <= {0, 1}
    assert 0 in cores
