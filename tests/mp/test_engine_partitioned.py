"""Tests for the partitioned multicore engine (repro.mp.engine)."""

import numpy as np
import pytest

from repro.check import check_mp_result
from repro.experiments import synthesize_taskset
from repro.mp import MulticorePlatform, simulate_mp, simulate_partitioned
from repro.sched import make_scheduler
from repro.sim import Platform, materialize, simulate


def _trace(load=1.6, seed=11, horizon=0.3):
    rng = np.random.default_rng(seed)
    return materialize(synthesize_taskset(load, rng), horizon, rng)


@pytest.fixture
def platform2():
    return MulticorePlatform.from_platform(Platform(), cores=2)


def test_basic_m2_run(platform2):
    result = simulate_mp(
        _trace(), "EUA*", platform2, mode="partitioned", check=True, record_trace=True
    )
    assert result.mode == "partitioned"
    assert result.cores == 2
    assert result.scheduler_name == "EUA*"
    assert result.migrations == 0
    assert len(result.per_core_stats) == 2
    assert result.jobs


def test_energy_is_per_core_sum(platform2):
    result = simulate_partitioned(_trace(), "EUA*", platform2)
    assert result.uncore_energy == 0.0
    assert result.energy == pytest.approx(
        sum(s.total_energy for s in result.per_core_stats), rel=1e-12
    )


def test_jobs_match_uniprocessor_population(platform2):
    trace = _trace()
    uni = simulate(trace, make_scheduler("EUA*"), Platform())
    mp = simulate_partitioned(trace, "EUA*", platform2)
    assert sorted(j.key for j in mp.jobs) == sorted(j.key for j in uni.jobs)


def test_uncore_energy_charged_for_active_cores():
    platform = MulticorePlatform.from_platform(Platform(), cores=2, active_power=5.0)
    trace = _trace(horizon=0.3)
    result = simulate_partitioned(trace, "EUA*", platform)
    assert result.uncore_energy == pytest.approx(5.0 * 2 * trace.horizon)
    per_core = sum(s.total_energy for s in result.per_core_stats)
    assert result.energy == pytest.approx(per_core + result.uncore_energy)


def test_empty_cores_idle_for_the_horizon(small_taskset, rng):
    # 4 tasks on 8 cores leaves at least 4 empty cores idling.
    trace = materialize(small_taskset, 0.3, rng)
    platform = MulticorePlatform.from_platform(Platform(), cores=8)
    result = simulate_partitioned(trace, "EUA*", platform, record_trace=True)
    assert len(result.per_core_stats) == 8
    empty = [i for i, sub in enumerate(result.per_core_results) if sub is None]
    assert len(empty) >= 4
    for core in empty:
        assert result.core_segments[core] == [(0.0, 0.3, None, platform.scale.f_max)]
    check_mp_result(result)


def test_partition_respected(platform2):
    result = simulate_partitioned(_trace(), "EUA*", platform2, record_trace=True)
    core_of = result.core_of_task
    for core, sub in enumerate(result.per_core_results):
        if sub is None:
            continue
        for job in sub.jobs:
            assert core_of[job.task.name] == core


def test_auto_cores_powers_down_spare_cores(small_taskset, rng):
    # Load 0.6 on 4 cores: the config search finds a feasible active set
    # and the engine only instantiates that many processors.
    trace = materialize(small_taskset, 0.3, rng)
    platform = MulticorePlatform.from_platform(Platform(), cores=4)
    result = simulate_partitioned(trace, "EUA*", platform, auto_cores=True)
    assert result.configuration is not None
    assert result.configuration.feasible
    assert len(result.per_core_stats) == result.configuration.cores
    assert result.configuration.cores <= 4


def test_scheduler_instance_rejected_across_cores(platform2):
    # A stateful scheduler instance cannot be shared between cores; the
    # single-shot factory fails loudly on the second core.
    with pytest.raises(ValueError):
        simulate_partitioned(_trace(), make_scheduler("EUA*"), platform2)


def test_shared_checker_audits_every_core(platform2):
    from repro.check import InvariantChecker

    checker = InvariantChecker(mode="collect")
    simulate_partitioned(_trace(), "EUA*", platform2, checker=checker)
    assert checker.violations == []


def test_checker_rejected_in_global_mode(platform2):
    from repro.check import InvariantChecker
    from repro.sim.engine import SimulationError

    with pytest.raises(SimulationError):
        simulate_mp(
            _trace(), "EUA*", platform2, mode="global",
            checker=InvariantChecker(mode="collect"),
        )


def test_unknown_mode_rejected(platform2):
    with pytest.raises(ValueError):
        simulate_mp(_trace(), "EUA*", platform2, mode="clustered")
