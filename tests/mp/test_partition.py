"""Tests for the UER-density-aware partitioner (repro.mp.partition)."""

import numpy as np
import pytest

from repro.experiments import synthesize_taskset
from repro.mp import PARTITION_STRATEGIES, partition_taskset
from repro.sim.task import TaskModelError


@pytest.fixture
def taskset():
    return synthesize_taskset(1.6, np.random.default_rng(7))


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_every_task_placed_exactly_once(taskset, strategy):
    part = partition_taskset(taskset, 4, strategy, f_max=1000.0)
    placed = sorted(i for indices in part.assignment for i in indices)
    assert placed == list(range(len(taskset)))


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_partition_is_deterministic(taskset, strategy):
    a = partition_taskset(taskset, 4, strategy, f_max=1000.0)
    b = partition_taskset(taskset, 4, strategy, f_max=1000.0)
    assert a.assignment == b.assignment
    assert a.loads == b.loads


def test_single_core_gets_everything(taskset):
    part = partition_taskset(taskset, 1, "wfd", f_max=1000.0)
    assert part.assignment == (tuple(range(len(taskset))),)


def test_loads_are_per_core_density_sums(taskset):
    part = partition_taskset(taskset, 2, "wfd", f_max=1000.0)
    for core, indices in enumerate(part.assignment):
        expected = sum(taskset[i].min_feasible_frequency for i in indices)
        assert part.loads[core] == pytest.approx(expected)


def test_wfd_balances_loads(taskset):
    """Worst-fit decreasing keeps per-core loads within one max-density
    task of each other (the classic WFD balance bound)."""
    part = partition_taskset(taskset, 4, "wfd", f_max=1000.0)
    max_density = max(t.min_feasible_frequency for t in taskset)
    assert max(part.loads) - min(part.loads) <= max_density + 1e-9


def test_ffd_concentrates_on_low_cores(taskset):
    """First-fit decreasing under a generous capacity fills low-index
    cores first, leaving the high-index ones for power-down."""
    total = sum(t.min_feasible_frequency for t in taskset)
    part = partition_taskset(taskset, 8, "ffd", f_max=2.0 * total)
    assert part.assignment[0] == tuple(range(len(taskset)))
    assert all(not indices for indices in part.assignment[1:])


def test_sub_taskset_preserves_original_order(taskset):
    part = partition_taskset(taskset, 2, "wfd", f_max=1000.0)
    core_of = part.core_of(taskset)
    for core in range(2):
        sub = part.sub_taskset(taskset, core)
        expected = [t.name for t in taskset if core_of[t.name] == core]
        assert [t.name for t in sub] == expected


def test_core_of_covers_all_tasks(taskset):
    part = partition_taskset(taskset, 3, "wfd", f_max=1000.0)
    core_of = part.core_of(taskset)
    assert sorted(core_of) == sorted(t.name for t in taskset)
    assert all(0 <= core < 3 for core in core_of.values())


def test_overload_still_places_every_task(taskset):
    """With f_max far below the demand, FFD falls back to least-loaded
    placement instead of dropping tasks — overload is handled online."""
    part = partition_taskset(taskset, 2, "ffd", f_max=1.0)
    placed = sorted(i for indices in part.assignment for i in indices)
    assert placed == list(range(len(taskset)))


def test_invalid_inputs_rejected(taskset):
    with pytest.raises(TaskModelError):
        partition_taskset(taskset, 0)
    with pytest.raises(TaskModelError):
        partition_taskset(taskset, 2, strategy="best-fit")
