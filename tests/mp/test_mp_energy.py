"""Tests for the core-count-aware platform power model and the
minimum-energy (frequency, active-cores) configuration search."""

import pytest

from repro.cpu import (
    EnergyModel,
    FrequencyScale,
    MulticorePowerModel,
    min_energy_configuration,
)
from repro.cpu.energy import EnergyError

# PowerNow! K6 ladder: 360, 550, 640, 730, 820, 910, 1000 MHz.
SCALE = FrequencyScale.powernow_k6()
E1 = MulticorePowerModel.martin(EnergyModel.e1())


class TestPlatformPower:
    def test_zero_cores_draw_nothing(self):
        assert E1.platform_power(500.0, 0) == 0.0

    def test_power_scales_linearly_in_cores(self):
        one = E1.platform_power(500.0, 1)
        assert E1.platform_power(500.0, 3) == pytest.approx(3.0 * one)

    def test_uncore_term_charged_per_active_core(self):
        model = MulticorePowerModel.martin(EnergyModel.e1(), active_power=7.5)
        base = E1.platform_power(500.0, 2)
        assert model.platform_power(500.0, 2) == pytest.approx(base + 2 * 7.5)

    def test_eapss_is_cubic_per_core(self):
        model = MulticorePowerModel.eapss()
        assert model.platform_power(200.0, 2) == pytest.approx(2 * 200.0**3)

    def test_negative_cores_rejected(self):
        with pytest.raises(EnergyError):
            E1.platform_power(500.0, -1)

    def test_bad_active_power_rejected(self):
        with pytest.raises(EnergyError):
            MulticorePowerModel.martin(EnergyModel.e1(), active_power=-1.0)
        with pytest.raises(EnergyError):
            MulticorePowerModel.martin(EnergyModel.e1(), active_power=float("nan"))


class TestMinEnergyConfiguration:
    def test_single_light_task_runs_one_slow_core(self):
        config = min_energy_configuration(E1, SCALE, 2, [300.0])
        assert config.feasible
        assert config.cores == 1
        assert config.frequency == 360.0

    def test_splitting_beats_one_fast_core_under_cubic_power(self):
        # One core needs f >= 600 (P ~ 640^3); two cores run at 360 each
        # (P ~ 2*360^3), cheaper under the convex per-core model.
        config = min_energy_configuration(E1, SCALE, 2, [300.0, 300.0])
        assert config.feasible
        assert config.cores == 2
        assert config.frequency == 360.0
        assert config.power == pytest.approx(E1.platform_power(360.0, 2))

    def test_demand_above_fmax_forces_more_cores(self):
        # 600+600 cannot fit one 1000 MHz core; two cores at 640 can.
        config = min_energy_configuration(E1, SCALE, 4, [600.0, 600.0])
        assert config.feasible
        assert config.cores == 2
        assert config.frequency == 640.0

    def test_uncore_power_penalises_wide_configurations(self):
        # A large per-active-core uncore share flips the tradeoff back
        # toward fewer, faster cores.
        expensive = MulticorePowerModel.martin(EnergyModel.e1(), active_power=1e9)
        config = min_energy_configuration(expensive, SCALE, 4, [300.0, 300.0])
        assert config.feasible
        assert config.cores == 1

    def test_overload_falls_back_to_full_power(self):
        config = min_energy_configuration(E1, SCALE, 2, [901.0, 901.0, 901.0])
        assert not config.feasible
        assert config.cores == 2
        assert config.frequency == SCALE.f_max
        assert config.power == pytest.approx(E1.platform_power(SCALE.f_max, 2))

    def test_empty_taskset_idles_one_slow_core(self):
        config = min_energy_configuration(E1, SCALE, 8, [])
        assert config.feasible
        assert config.cores == 1
        assert config.frequency == 360.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(EnergyError):
            min_energy_configuration(E1, SCALE, 0, [100.0])
        with pytest.raises(EnergyError):
            min_energy_configuration(E1, SCALE, 2, [-5.0])
        with pytest.raises(EnergyError):
            min_energy_configuration(E1, SCALE, 2, [float("inf")])
