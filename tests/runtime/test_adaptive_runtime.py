"""Integration tests for the adaptive runtime wired into the engine.

Covers the ISSUE acceptance criteria: the disabled runtime is a
bit-identical no-op on a compliant workload, shed keeps every accepted
stream inside its envelope, defer preserves order, every violation
round-trips through JSONL, and ``finalize()`` restores allocations.
"""

import numpy as np
import pytest

from repro.core import EUAStar
from repro.experiments.adaptive import drifting_trace, uam_violating_trace
from repro.experiments.workload import synthesize_taskset
from repro.arrivals import is_uam_compliant
from repro.obs import EventKind, Observer, events_from_jsonl, events_to_jsonl
from repro.runtime import AdaptiveRuntime, RuntimeConfig
from repro.sim import JobStatus, Platform, materialize, simulate

PLATFORM = Platform.powernow_k6()


def compliant_trace(seed=11, load=0.8, horizon=0.4):
    rng = np.random.default_rng(seed)
    ts = synthesize_taskset(load, rng, f_max=PLATFORM.scale.f_max)
    return materialize(ts, horizon, rng)


def release_times_by_task(log):
    out = {}
    for e in log.of_kind(EventKind.RELEASE):
        task = e.job.rsplit(":", 1)[0]
        out.setdefault(task, []).append(e.fields["release"])
    return out


class TestNoOpEquivalence:
    def test_disabled_runtime_is_bit_identical(self):
        """ISSUE criterion: adaptation disabled + compliant workload →
        the attached runtime changes nothing, down to the event log."""
        trace = compliant_trace()
        obs_plain, obs_rt = Observer(), Observer()
        plain = simulate(trace, EUAStar(), PLATFORM, observer=obs_plain)
        rt = AdaptiveRuntime(RuntimeConfig(adapt=False, admission=False))
        with_rt = simulate(trace, EUAStar(), PLATFORM, observer=obs_rt, runtime=rt)

        assert obs_plain.events == obs_rt.events  # full structured log
        assert plain.metrics.accrued_utility == with_rt.metrics.accrued_utility
        assert plain.metrics.energy == with_rt.metrics.energy
        assert [j.status for j in plain.jobs] == [j.status for j in with_rt.jobs]
        assert [j.executed for j in plain.jobs] == [j.executed for j in with_rt.jobs]
        assert rt.summary()["uam_violations"] == 0

    def test_full_runtime_is_silent_on_compliant_in_model_workload(self):
        """Even with every layer armed, a workload that honours its
        declared parameters triggers nothing (short horizon keeps the
        detectors below threshold)."""
        trace = compliant_trace()
        obs_plain, obs_rt = Observer(), Observer()
        plain = simulate(trace, EUAStar(), PLATFORM, observer=obs_plain)
        rt = AdaptiveRuntime(RuntimeConfig())
        with_rt = simulate(trace, EUAStar(), PLATFORM, observer=obs_rt, runtime=rt)
        assert rt.summary()["reallocations"] == 0
        assert rt.summary()["shed_jobs"] == 0
        assert obs_plain.events == obs_rt.events
        assert plain.metrics.energy == with_rt.metrics.energy


class TestShedPolicy:
    def test_accepted_releases_stay_inside_envelope(self):
        """Shed invariant, end to end: the RELEASE stream the scheduler
        actually sees never exceeds a_i arrivals per P_i window."""
        trace = uam_violating_trace(seed=11, load=0.9, horizon=1.0, burst_factor=3)
        obs = Observer()
        rt = AdaptiveRuntime(RuntimeConfig(policy="shed", adapt=False, admission=False))
        result = simulate(trace, EUAStar(), PLATFORM, observer=obs, runtime=rt)

        assert rt.summary()["uam_violations"] > 0
        for task in trace.taskset:
            released = release_times_by_task(obs.events).get(task.name, [])
            assert is_uam_compliant(released, task.uam)
        # Shed jobs are visible in the metrics, not silently vanished.
        assert result.metrics.shed == rt.summary()["shed_jobs"] > 0

    def test_shed_jobs_never_execute(self):
        trace = uam_violating_trace(seed=11, load=0.9, horizon=1.0, burst_factor=3)
        rt = AdaptiveRuntime(RuntimeConfig(policy="shed", adapt=False, admission=False))
        result = simulate(trace, EUAStar(), PLATFORM, runtime=rt)
        for job in result.jobs:
            if job.status is JobStatus.SHED:
                assert job.executed == 0.0


class TestDeferPolicy:
    def test_deferred_releases_preserve_order_and_compliance(self):
        trace = uam_violating_trace(seed=11, load=0.9, horizon=1.0, burst_factor=2)
        obs = Observer()
        rt = AdaptiveRuntime(RuntimeConfig(policy="defer", adapt=False, admission=False))
        simulate(trace, EUAStar(), PLATFORM, observer=obs, runtime=rt)

        assert rt.summary()["deferred_jobs"] > 0
        by_task = release_times_by_task(obs.events)
        for task in trace.taskset:
            released = by_task.get(task.name, [])
            # Compliance after deferral...
            assert is_uam_compliant(released, task.uam)
        # ...and FIFO order within each task: the engine's release stream
        # carries job indices in arrival order even through the heap.
        for e_prev, e_next in zip(obs.events.of_kind(EventKind.RELEASE),
                                  obs.events.of_kind(EventKind.RELEASE)[1:]):
            assert e_prev.time <= e_next.time

    def test_defer_emits_violation_with_grant(self):
        trace = uam_violating_trace(seed=11, load=0.9, horizon=1.0, burst_factor=2)
        obs = Observer()
        rt = AdaptiveRuntime(RuntimeConfig(policy="defer", adapt=False, admission=False))
        simulate(trace, EUAStar(), PLATFORM, observer=obs, runtime=rt)
        violations = obs.events.of_kind(EventKind.UAM_VIOLATION)
        assert violations
        for e in violations:
            assert e.fields["policy"] == "defer"
            assert e.fields["deferred_to"] is not None


class TestEventRoundTrip:
    def test_every_violation_emits_event_that_round_trips_jsonl(self):
        trace = uam_violating_trace(seed=11, load=0.9, horizon=1.0, burst_factor=3)
        obs = Observer()
        rt = AdaptiveRuntime(RuntimeConfig(policy="admit-and-flag", adapt=False,
                                           admission=True))
        simulate(trace, EUAStar(), PLATFORM, observer=obs, runtime=rt)

        violations = obs.events.of_kind(EventKind.UAM_VIOLATION)
        assert len(violations) == rt.summary()["uam_violations"] > 0
        admissions = obs.events.of_kind(EventKind.ADMISSION_DECISION)
        assert admissions  # flagged overload forces rejections/evictions

        restored = events_from_jsonl(events_to_jsonl(obs.events))
        assert restored == obs.events
        assert [e.kind for e in restored.of_kind(EventKind.UAM_VIOLATION)] == \
               [e.kind for e in violations]

    def test_drift_and_reallocation_round_trip(self):
        trace = drifting_trace(seed=11, load=0.9, horizon=1.0)
        obs = Observer()
        rt = AdaptiveRuntime(RuntimeConfig(admission=False))
        simulate(trace, EUAStar(), PLATFORM, observer=obs, runtime=rt)
        drifts = obs.events.of_kind(EventKind.DRIFT_DETECTED)
        reallocs = obs.events.of_kind(EventKind.REALLOCATION)
        assert len(drifts) == len(reallocs) == rt.summary()["reallocations"] > 0
        for e in reallocs:
            assert e.fields["new_allocation"] > 0.0
        assert events_from_jsonl(events_to_jsonl(obs.events)) == obs.events


class TestAllocationRestore:
    def test_finalize_restores_original_allocations(self):
        trace = drifting_trace(seed=11, load=0.9, horizon=1.0)
        before = {t.name: t.allocation for t in trace.taskset}
        rt = AdaptiveRuntime(RuntimeConfig(admission=False))
        simulate(trace, EUAStar(), PLATFORM, runtime=rt)
        assert rt.summary()["reallocations"] > 0  # it really did mutate
        after = {t.name: t.allocation for t in trace.taskset}
        assert before == after

    def test_restore_even_when_run_raises(self):
        trace = drifting_trace(seed=11, load=0.9, horizon=1.0)
        before = {t.name: t.allocation for t in trace.taskset}

        class Boom(RuntimeError):
            pass

        class ExplodingScheduler(EUAStar):
            def __init__(self):
                super().__init__(name="boom")
                self.decisions = 0

            def decide(self, view):
                self.decisions += 1
                if self.decisions > 40:
                    raise Boom()
                return super().decide(view)

        rt = AdaptiveRuntime(RuntimeConfig(admission=False, min_samples=2,
                                           drift_threshold=1.0))
        with pytest.raises(Boom):
            simulate(trace, ExplodingScheduler(), PLATFORM, runtime=rt)
        after = {t.name: t.allocation for t in trace.taskset}
        assert before == after

    def test_back_to_back_arms_agree_regardless_of_order(self):
        """finalize() means a static arm run after the adaptive arm sees
        the same task set as one run before it."""
        trace = drifting_trace(seed=11, load=0.9, horizon=1.0)
        static_first = simulate(trace, EUAStar(), PLATFORM)
        rt = AdaptiveRuntime(RuntimeConfig())
        simulate(trace, EUAStar(), PLATFORM, runtime=rt)
        static_second = simulate(trace, EUAStar(), PLATFORM)
        assert static_first.metrics.accrued_utility == static_second.metrics.accrued_utility
        assert static_first.metrics.energy == static_second.metrics.energy
