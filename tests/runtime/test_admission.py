"""Unit tests for the overload admission controller (repro.runtime.admission)."""

import pytest

from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.runtime.admission import AdmissionController
from repro.sim import Job, Task
from repro.tuf import StepTUF

SCALE = FrequencyScale.powernow_k6()
MODEL = EnergyModel.e1()
F_MAX = SCALE.f_max


def make_job(name, height, busy_seconds, release=0.0, deadline=1.0, index=0):
    """A job whose Chebyshev budget takes ``busy_seconds`` at f_max."""
    task = Task(
        name,
        StepTUF(height=height, deadline=deadline),
        DeterministicDemand(busy_seconds * F_MAX),
        UAMSpec(1, deadline),
    )
    return Job(task, index, release, busy_seconds * F_MAX)


class TestAdmit:
    def test_feasible_job_admitted_silently(self):
        ctl = AdmissionController()
        verdict = ctl.evaluate(make_job("a", 10.0, 0.3), 0.0, [], F_MAX, MODEL)
        assert verdict.admit and not verdict.evictions
        assert not verdict.disturbs
        assert ctl.admitted == 1 and ctl.rejected == 0

    def test_feasible_alongside_ready_set(self):
        ctl = AdmissionController()
        ready = [make_job("a", 10.0, 0.3), make_job("b", 10.0, 0.3, index=1)]
        verdict = ctl.evaluate(make_job("c", 10.0, 0.3), 0.0, ready, F_MAX, MODEL)
        assert verdict.admit and not verdict.evictions


class TestReject:
    def test_individually_infeasible(self):
        ctl = AdmissionController()
        # Needs 1.5s at f_max but terminates at 1.0.
        verdict = ctl.evaluate(make_job("a", 10.0, 1.5), 0.0, [], F_MAX, MODEL)
        assert not verdict.admit
        assert verdict.reason == "individually-infeasible"
        assert verdict.disturbs

    def test_lowest_uer_incoming_rejected_without_disturbing_ready(self):
        ctl = AdmissionController()
        ready = [make_job("hi1", 100.0, 0.4), make_job("hi2", 100.0, 0.4, index=1)]
        verdict = ctl.evaluate(make_job("lo", 1.0, 0.4), 0.0, ready, F_MAX, MODEL)
        assert not verdict.admit
        assert verdict.reason == "lowest-uer"
        assert verdict.evictions == ()
        assert ctl.evicted == 0


class TestEvict:
    def test_low_uer_ready_job_evicted_for_high_uer_arrival(self):
        ctl = AdmissionController()
        low = make_job("lo", 1.0, 0.4)
        high = make_job("hi", 100.0, 0.4)
        ready = [low, high]
        verdict = ctl.evaluate(make_job("hi2", 100.0, 0.4, index=1), 0.0, ready, F_MAX, MODEL)
        assert verdict.admit
        assert verdict.evictions == (low,)
        assert verdict.reason == "evicted-lower-uer"
        assert ctl.evicted == 1

    def test_evicts_only_as_much_as_needed(self):
        ctl = AdmissionController()
        ready = [
            make_job("lo1", 1.0, 0.3),
            make_job("lo2", 2.0, 0.3, index=1),
            make_job("hi", 100.0, 0.3, index=2),
        ]
        # One eviction (0.3s) is enough to fit the 0.3s arrival.
        verdict = ctl.evaluate(make_job("hi2", 100.0, 0.3, index=3), 0.0, ready, F_MAX, MODEL)
        assert verdict.admit
        assert len(verdict.evictions) == 1
        assert verdict.evictions[0].task.name == "lo1"  # lowest UER first


class TestHeadroom:
    def test_headroom_tightens_admission(self):
        # 0.9s of work fits a 1.0 deadline at f_max but not at f_max/1.2.
        job = make_job("a", 10.0, 0.9)
        assert AdmissionController(1.0).evaluate(job, 0.0, [], F_MAX, MODEL).admit
        assert not AdmissionController(1.2).evaluate(job, 0.0, [], F_MAX, MODEL).admit

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            AdmissionController(0.5)
