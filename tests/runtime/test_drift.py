"""Unit tests for the drift detectors (repro.runtime.drift)."""

import pytest

from repro.demand.distributions import DemandError
from repro.runtime.drift import CUSUMDrift, ZScoreDrift, make_drift_detector


class TestZScoreDrift:
    def test_fires_on_level_shift(self):
        det = ZScoreDrift(10.0, 1.0, threshold=3.0, min_samples=4)
        fired = [det.observe(15.0) for _ in range(6)]
        # |15-10|*sqrt(n)/1 = 5*sqrt(n) > 3 immediately, but min_samples
        # gates the first three observations.
        assert fired == [False, False, False, True, True, True]

    def test_silent_on_baseline_stream(self):
        det = ZScoreDrift(10.0, 2.0, threshold=4.0, min_samples=4)
        for value in (9.0, 11.0, 10.0, 10.5, 9.5, 10.0, 10.2, 9.8):
            assert not det.observe(value)

    def test_never_fires_before_min_samples(self):
        det = ZScoreDrift(10.0, 1.0, threshold=0.5, min_samples=100)
        assert not any(det.observe(50.0) for _ in range(99))
        assert det.observe(50.0)

    def test_rebaseline_resets_window_and_evidence(self):
        det = ZScoreDrift(10.0, 1.0, threshold=3.0, min_samples=2)
        det.observe(20.0)
        assert det.observe(20.0)
        det.rebaseline(20.0, 1.0)
        assert det.count == 0
        assert not det.observe(20.0)
        assert not det.observe(20.0)

    def test_zero_variance_baseline_uses_std_floor(self):
        det = ZScoreDrift(10.0, 0.0, threshold=4.0, min_samples=1)
        # Any deviation from a declared-deterministic demand standardises
        # huge thanks to the relative floor — no ZeroDivisionError.
        assert det.observe(10.001)

    def test_variance_ratio_gate(self):
        det = ZScoreDrift(10.0, 1.0, threshold=100.0, min_samples=2, variance_ratio=4.0)
        # Mean preserved, spread exploded: z stays tiny, ratio fires.
        det.observe(4.0)
        assert det.observe(16.0)

    def test_statistic_zero_before_observations(self):
        assert ZScoreDrift(10.0, 1.0).statistic == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"threshold": -1.0},
        {"variance_ratio": -0.5},
        {"variance_ratio": 1.0},
        {"min_samples": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DemandError):
            ZScoreDrift(10.0, 1.0, **kwargs)

    def test_invalid_baseline(self):
        det = ZScoreDrift(10.0, 1.0)
        with pytest.raises(DemandError):
            det.rebaseline(float("nan"), 1.0)
        with pytest.raises(DemandError):
            det.rebaseline(10.0, -1.0)


class TestCUSUMDrift:
    def test_accumulates_small_sustained_drift(self):
        # 1.5 sigma sustained: each step adds 1.0 to S+; h=5 -> fires at
        # the 6th observation.  A windowed z-test with threshold 100
        # would never see this.
        det = CUSUMDrift(10.0, 1.0, k=0.5, h=5.0, min_samples=2)
        fired = [det.observe(11.5) for _ in range(8)]
        assert fired.index(True) == 5

    def test_two_sided(self):
        det = CUSUMDrift(10.0, 1.0, k=0.5, h=3.0, min_samples=2)
        assert any(det.observe(8.5) for _ in range(6))

    def test_slack_absorbs_in_model_noise(self):
        det = CUSUMDrift(10.0, 1.0, k=0.5, h=5.0, min_samples=2)
        for value in (10.3, 9.7, 10.4, 9.6, 10.2, 9.8, 10.1, 9.9):
            assert not det.observe(value)

    def test_rebaseline_clears_sums(self):
        det = CUSUMDrift(10.0, 1.0, k=0.5, h=2.0, min_samples=2)
        det.observe(14.0)
        assert det.observe(14.0)
        det.rebaseline(14.0, 1.0)
        assert det.statistic == 0.0
        assert not det.observe(14.0)

    @pytest.mark.parametrize("kwargs", [{"k": -0.1}, {"h": 0.0}])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(DemandError):
            CUSUMDrift(10.0, 1.0, **kwargs)


class TestWindowMoments:
    def test_single_observation_variance_is_zero(self):
        det = ZScoreDrift(10.0, 1.0)
        det.observe(12.0)
        assert det.window_mean == 12.0
        assert det.window_variance == 0.0

    def test_multi_observation_uses_sample_variance(self):
        det = ZScoreDrift(10.0, 1.0, threshold=1e9)
        for value in (8.0, 12.0):
            det.observe(value)
        assert det.window_mean == pytest.approx(10.0)
        assert det.window_variance == pytest.approx(8.0)  # unbiased: 2*4/1


class TestFactory:
    def test_builds_each_kind(self):
        z = make_drift_detector("zscore", 10.0, 1.0, threshold=3.5, min_samples=5)
        assert isinstance(z, ZScoreDrift)
        assert z.threshold == 3.5 and z.min_samples == 5
        c = make_drift_detector("cusum", 10.0, 1.0, threshold=6.0, cusum_k=0.25)
        assert isinstance(c, CUSUMDrift)
        assert c.h == 6.0 and c.k == 0.25

    def test_unknown_kind(self):
        with pytest.raises(DemandError):
            make_drift_detector("ewma", 10.0, 1.0)
