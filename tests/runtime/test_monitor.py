"""Unit tests for the UAM compliance monitor (repro.runtime.monitor)."""

import numpy as np
import pytest

from repro.arrivals import BurstUAMArrivals, UAMError, UAMSpec, is_uam_compliant
from repro.demand import DeterministicDemand
from repro.runtime.monitor import UAMComplianceMonitor, ViolationPolicy
from repro.sim import Task, TaskSet
from repro.tuf import StepTUF


def make_task(a=2, window=1.0, name="t"):
    return Task(
        name,
        StepTUF(height=10.0, deadline=window),
        DeterministicDemand(5.0),
        UAMSpec(a, window),
        arrivals=BurstUAMArrivals(UAMSpec(a, window)) if a > 1 else None,
    )


def feed(monitor, task, times):
    """Run a sequence of arrivals; return (admitted, violations)."""
    admitted, violations = [], []
    for t in times:
        v = monitor.check(task, t)
        if v is None:
            admitted.append(t)
        else:
            violations.append(v)
    return admitted, violations


class TestShedPolicy:
    def test_burst_past_envelope_is_shed(self):
        task = make_task(a=2, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.SHED)
        admitted, violations = feed(mon, task, [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0])
        assert admitted == [0.0, 0.0, 1.0, 1.0]
        assert len(violations) == 3
        assert mon.total_violations == 3

    def test_accepted_stream_always_compliant(self):
        """The shed invariant: at most a_i accepted arrivals per window."""
        rng = np.random.default_rng(7)
        for a, window in [(1, 0.5), (2, 1.0), (3, 0.25)]:
            task = make_task(a=a, window=window)
            mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.SHED)
            times = np.sort(rng.uniform(0.0, 10.0, size=200))
            admitted, _ = feed(mon, task, times)
            assert is_uam_compliant(admitted, task.uam)

    def test_compliant_stream_never_flags(self):
        task = make_task(a=2, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.SHED)
        admitted, violations = feed(mon, task, [0.0, 0.3, 1.0, 1.3, 2.0, 2.3])
        assert violations == []
        assert len(admitted) == 6


class TestDeferPolicy:
    def test_defers_to_window_close(self):
        task = make_task(a=2, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.DEFER)
        _, violations = feed(mon, task, [0.0, 0.0, 0.0, 0.0])
        assert [v.deferred_to for v in violations] == [1.0, 1.0]

    def test_grants_preserve_order_and_compliance(self):
        task = make_task(a=2, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.DEFER)
        arrivals = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1]
        effective = []
        for t in arrivals:
            v = mon.check(task, t)
            effective.append(t if v is None else v.deferred_to)
        # Deferred releases never reorder relative to arrival order...
        assert effective == sorted(effective)
        # ...and the effective stream honours the envelope.
        assert is_uam_compliant(effective, task.uam)

    def test_random_torture_stays_ordered_and_compliant(self):
        rng = np.random.default_rng(23)
        task = make_task(a=3, window=0.5)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.DEFER)
        times = np.sort(rng.uniform(0.0, 4.0, size=150))
        effective = []
        for t in times:
            v = mon.check(task, t)
            effective.append(t if v is None else v.deferred_to)
        assert effective == sorted(effective)
        assert is_uam_compliant(effective, task.uam)

    def test_deferral_is_never_in_the_past(self):
        task = make_task(a=1, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.DEFER)
        for t in [0.0, 0.2, 0.4]:
            v = mon.check(task, t)
            if v is not None:
                assert v.deferred_to >= t


class TestAdmitAndFlagPolicy:
    def test_flags_but_admits(self):
        task = make_task(a=2, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.ADMIT_AND_FLAG)
        _, violations = feed(mon, task, [0.0, 0.0, 0.0, 0.0])
        assert len(violations) == 2
        for v in violations:
            assert v.deferred_to is None
            assert v.policy is ViolationPolicy.ADMIT_AND_FLAG
        # Flagged arrivals still count in the window, so the count keeps
        # reflecting the true (violating) stream.
        assert mon.effective_times(task.name) == [0.0, 0.0]


class TestBoundary:
    def test_arrival_exactly_at_trailing_edge_opens_new_window(self):
        task = make_task(a=1, window=1.0)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.SHED)
        assert mon.check(task, 0.0) is None
        # t = t_prev + P: the old window is half-open, so this is legal.
        assert mon.check(task, 1.0) is None
        # Strictly inside the window: violation.
        assert mon.check(task, 1.5) is not None

    def test_float_accumulation_undershoot_tolerated(self):
        task = make_task(a=1, window=0.1)
        mon = UAMComplianceMonitor(TaskSet([task]), ViolationPolicy.SHED)
        # 30 * 0.1 accumulated in floats undershoots 3.0 by a few ulps.
        t = 0.0
        for _ in range(30):
            assert mon.check(task, t) is None
            t += 0.1


def test_policy_parse():
    assert ViolationPolicy.parse("shed") is ViolationPolicy.SHED
    assert ViolationPolicy.parse("defer") is ViolationPolicy.DEFER
    assert ViolationPolicy.parse("admit-and-flag") is ViolationPolicy.ADMIT_AND_FLAG
    with pytest.raises(UAMError):
        ViolationPolicy.parse("drop")
