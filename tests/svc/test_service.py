"""SchedulerService loopback tests: HTTP ingestion, the JSONL decision
stream, lifecycle, and a small end-to-end load replay.

Everything runs against an in-process service on an ephemeral loopback
port; tests are plain sync functions wrapping ``asyncio.run`` (no
pytest-asyncio dependency).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.experiments import synthesize_taskset
from repro.obs import EventKind, events_from_jsonl
from repro.sim import WallClock
from repro.svc import (
    SchedulerService,
    ServiceCore,
    build_schedule,
    run_load_test,
    write_loadtest_artifact,
)
from repro.svc.loadgen import _Connection


def _taskset():
    return synthesize_taskset(0.8, np.random.default_rng(11))


async def _with_service(scenario, rate: float = 50.0):
    """Start a service on an ephemeral port, run ``scenario(service,
    conn)`` against it over one persistent connection, always stop."""
    service = SchedulerService(ServiceCore(_taskset()),
                               clock=WallClock(rate=rate))
    await service.start()
    conn = _Connection(service.host, service.port)
    try:
        await conn.open()
        return await scenario(service, conn)
    finally:
        await conn.close()
        await service.stop()


def test_ephemeral_port_and_healthz():
    async def scenario(service, conn):
        assert service.port != 0
        assert service.address == f"http://127.0.0.1:{service.port}"
        status, body = await conn.request("GET", "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    asyncio.run(_with_service(scenario))


def test_submit_accept_and_reject_statuses():
    async def scenario(service, conn):
        name = service.core.taskset[0].name
        status, body = await conn.request("POST", "/jobs", {"task": name})
        assert status == 200
        verdict = json.loads(body)
        assert verdict["status"] == "admitted"
        assert "job" in verdict
        # Burst the same task past its envelope: shed -> 429.
        saw_backpressure = False
        for _ in range(service.core.taskset[0].uam.max_arrivals + 2):
            status, body = await conn.request("POST", "/jobs", {"task": name})
            if status == 429:
                saw_backpressure = True
                assert json.loads(body)["status"] in ("shed", "rejected")
        assert saw_backpressure

    asyncio.run(_with_service(scenario))


def test_bad_submissions_are_400():
    async def scenario(service, conn):
        status, body = await conn.request("POST", "/jobs", {"task": "nope"})
        assert status == 400
        assert "unknown task" in json.loads(body)["error"]
        status, _ = await conn.request("POST", "/jobs", {"demand": 1.0})
        assert status == 400
        status, _ = await conn.request("GET", "/no/such/route")
        assert status == 404

    asyncio.run(_with_service(scenario))


def test_batch_submission_returns_per_job_verdicts():
    async def scenario(service, conn):
        names = [task.name for task in service.core.taskset[:3]]
        batch = [{"task": n} for n in names] + [{"task": "bogus"}]
        status, body = await conn.request("POST", "/jobs/batch", batch)
        assert status == 200
        verdicts = json.loads(body)
        assert len(verdicts) == len(batch)
        assert all(v["status"] in ("admitted", "deferred", "shed",
                                   "rejected", "error") for v in verdicts)
        assert verdicts[-1]["status"] == "error"

    asyncio.run(_with_service(scenario))


def test_tasks_endpoint_lists_hosted_envelopes():
    async def scenario(service, conn):
        status, body = await conn.request("GET", "/tasks")
        assert status == 200
        listed = json.loads(body)
        assert len(listed) == len(service.core.taskset)
        for entry, task in zip(listed, service.core.taskset):
            assert entry["name"] == task.name
            assert entry["a"] == task.uam.max_arrivals
            assert entry["window"] == pytest.approx(task.uam.window)

    asyncio.run(_with_service(scenario))


def test_event_stream_is_wellformed_jsonl():
    async def scenario(service, conn):
        names = [task.name for task in service.core.taskset[:4]]
        await conn.request("POST", "/jobs/batch", [{"task": n} for n in names])
        await asyncio.sleep(0.05)  # let the executor dispatch
        status, body = await conn.request("GET", "/events")
        assert status == 200
        log = events_from_jsonl(body.decode())
        kinds = {event.kind for event in log.events}
        assert EventKind.ADMISSION_DECISION in kinds
        assert EventKind.RELEASE in kinds
        # Ingestion events are stamped "svc"; scheduler-internal events
        # (freq decisions, ...) carry the scheduler's own name.
        sources = {event.source for event in log.events}
        assert "svc" in sources
        assert all(event.source for event in log.events)
        # Pagination: `since` skips the prefix.
        n = len(log.events)
        status, body = await conn.request("GET", f"/events?since={n}")
        assert status == 200
        assert len(events_from_jsonl(body.decode()).events) <= n

    asyncio.run(_with_service(scenario))


def test_stats_reports_counters_and_drift():
    async def scenario(service, conn):
        name = service.core.taskset[0].name
        await conn.request("POST", "/jobs", {"task": name})
        status, body = await conn.request("GET", "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["submitted"] == 1
        assert stats["clock_rate"] == service.clock.rate
        assert set(stats["drift"]) == {
            "waits", "punctual", "mean_lag_s", "max_lag_s", "total_lag_s"
        }

    asyncio.run(_with_service(scenario))


def test_submitted_job_runs_to_completion():
    async def scenario(service, conn):
        name = service.core.taskset[0].name
        await conn.request("POST", "/jobs", {"task": name})
        for _ in range(100):
            _, body = await conn.request("GET", "/stats")
            stats = json.loads(body)
            if stats["completed"] or stats["expired"]:
                break
            await asyncio.sleep(0.02)
        assert stats["completed"] == 1
        assert stats["ready_depth"] == 0
        log_status, log_body = await conn.request("GET", "/events")
        kinds = [e.kind for e in events_from_jsonl(log_body.decode()).events]
        assert EventKind.DISPATCH in kinds
        assert EventKind.COMPLETE in kinds

    asyncio.run(_with_service(scenario, rate=100.0))


def test_shutdown_endpoint_stops_serve_until_shutdown():
    async def scenario():
        service = SchedulerService(ServiceCore(_taskset()))
        await service.start()
        server_task = asyncio.create_task(service.serve_until_shutdown())
        conn = _Connection(service.host, service.port)
        await conn.open()
        status, body = await conn.request("POST", "/shutdown")
        assert status == 200
        assert json.loads(body) == {"status": "stopping"}
        await asyncio.wait_for(server_task, timeout=5.0)
        await conn.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Load-replay harness
# ----------------------------------------------------------------------
def test_build_schedule_is_deterministic():
    taskset = _taskset()
    a = build_schedule(taskset, "poisson", horizon=1.0, seed=7)
    b = build_schedule(taskset, "poisson", horizon=1.0, seed=7)
    assert a == b
    assert a == sorted(a)
    assert {name for _t, name in a} <= {task.name for task in taskset}
    assert build_schedule(taskset, "poisson", horizon=1.0, seed=8) != a


def test_small_load_replay_end_to_end(tmp_path):
    report = asyncio.run(run_load_test(
        load=0.8, seed=11, horizon=0.5, shape="poisson",
        rate=25.0, connections=2,
    ))
    assert report.errors == 0
    assert report.submitted > 0
    assert report.accepted + report.backpressured == report.submitted
    assert 0.0 <= report.shed_rate <= 1.0
    assert 0.0 <= report.deadline_hit_rate <= 1.0
    assert report.jobs_per_s > 0
    text = report.render()
    assert "jobs/s sustained" in text and "deadline-hit rate" in text

    path = write_loadtest_artifact(report, name="svc_test", directory=str(tmp_path))
    payload = json.loads(path.read_text())
    assert payload["name"] == "svc_test"
    assert set(payload["metrics"]) == set(payload["directions"])
    assert payload["directions"]["svc_shed_rate"] == "lower"
    assert payload["directions"]["svc_jobs_per_s"] == "higher"
    assert payload["meta"]["submitted"] == report.submitted
