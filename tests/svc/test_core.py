"""ServiceCore tests: the synchronous ingestion + dispatch state
machine, driven with literal (fake) time."""

import numpy as np
import pytest

from repro.experiments import synthesize_taskset
from repro.obs import EventKind, events_from_jsonl, events_to_jsonl
from repro.runtime import ViolationPolicy
from repro.svc import ServiceCore, SubmitOutcome, UnknownTaskError


@pytest.fixture()
def taskset():
    return synthesize_taskset(0.8, np.random.default_rng(11))


@pytest.fixture()
def core(taskset):
    return ServiceCore(taskset)


def _burst(core, task, n, t=0.0):
    return [core.submit(task.name, t) for _ in range(n)]


class TestSubmit:
    def test_compliant_submission_admitted(self, core, taskset):
        task = taskset[0]
        outcome = core.submit(task.name, 0.0)
        assert outcome.status == "admitted"
        assert outcome.accepted
        assert outcome.job is not None
        assert core.counters["submitted"] == 1
        assert core.counters["admitted"] == 1
        assert len(core.ready) == 1

    def test_unknown_task_raises(self, core):
        with pytest.raises(UnknownTaskError):
            core.submit("no-such-task", 0.0)
        assert core.counters["submitted"] == 0

    def test_explicit_demand_overrides_allocation(self, core, taskset):
        task = taskset[0]
        core.submit(task.name, 0.0, demand=task.allocation / 2)
        assert core.ready[0].demand == pytest.approx(task.allocation / 2)

    def test_outcome_to_dict_round_trips(self):
        out = SubmitOutcome("deferred", job="T0#1", reason="uam-deferral",
                            release=1.25)
        assert out.to_dict() == {
            "status": "deferred", "reason": "uam-deferral",
            "job": "T0#1", "release": 1.25,
        }


class TestUAMGate:
    def test_burst_beyond_envelope_is_shed(self, core, taskset):
        task = taskset[0]
        a = task.uam.max_arrivals
        _burst(core, task, a)
        outcome = core.submit(task.name, 0.0)
        assert outcome.status == "shed"
        assert outcome.reason == "uam-violation"
        assert not outcome.accepted
        assert core.counters["shed_uam"] == 1
        assert core.stats()["uam_violations"] == 1

    def test_defer_policy_grants_future_release(self, taskset):
        core = ServiceCore(taskset, policy=ViolationPolicy.DEFER)
        task = taskset[0]
        a = task.uam.max_arrivals
        _burst(core, task, a)
        outcome = core.submit(task.name, 0.0)
        assert outcome.status == "deferred"
        assert outcome.accepted
        assert outcome.release is not None and outcome.release > 0.0
        assert core.counters["deferred"] == 1
        assert core.stats()["deferred_pending"] == 1

    def test_deferred_job_admitted_at_grant(self, taskset):
        core = ServiceCore(taskset, policy=ViolationPolicy.DEFER)
        task = taskset[0]
        _burst(core, task, task.uam.max_arrivals)
        outcome = core.submit(task.name, 0.0)
        admitted_before = core.counters["admitted"]
        assert core.activate_due(outcome.release) == 1
        assert core.counters["admitted"] == admitted_before + 1
        assert core.stats()["deferred_pending"] == 0

    def test_admit_and_flag_lets_burst_through(self, taskset):
        core = ServiceCore(taskset, policy=ViolationPolicy.ADMIT_AND_FLAG)
        task = taskset[0]
        a = task.uam.max_arrivals
        _burst(core, task, a)
        outcome = core.submit(task.name, 0.0)
        assert outcome.status in ("admitted", "rejected")  # past the gate
        assert core.counters["shed_uam"] == 0
        assert core.stats()["uam_violations"] == 1


class TestAdmissionGate:
    def test_overload_rejects_and_evicts(self, taskset):
        # Admission projects Chebyshev *budgets*; to overload it the
        # burst must get past the UAM gate, so flag-only policy here.
        core = ServiceCore(taskset, policy=ViolationPolicy.ADMIT_AND_FLAG)
        rejected_outcome = None
        for _round in range(100):
            for task in taskset:
                outcome = core.submit(task.name, 0.0)
                if outcome.status == "rejected":
                    rejected_outcome = outcome
            if core.counters["rejected"] and core.counters["evicted"]:
                break
        assert core.counters["rejected"] > 0
        assert core.counters["evicted"] > 0
        assert rejected_outcome is not None
        assert not rejected_outcome.accepted
        # Evicted victims left the ready set.
        assert len(core.ready) == core.counters["admitted"] - core.counters["evicted"]


class TestDispatch:
    def test_empty_ready_decides_idle(self, core):
        decision = core.decide(0.0)
        assert decision.job is None
        assert decision.frequency == core.platform.scale.f_max

    def test_decide_advance_complete_cycle(self, core, taskset):
        task = taskset[0]
        core.submit(task.name, 0.0)
        decision = core.decide(0.0)
        job = decision.job
        assert job is not None
        dt = job.remaining_demand / decision.frequency
        core.advance(job, dt, decision.frequency)
        assert core.complete_if_done(job, dt)
        assert core.counters["completed"] == 1
        assert core.counters["deadline_hits"] == (1 if dt <= job.critical_time else 0)
        assert core.utility_accrued == pytest.approx(job.accrued_utility)
        assert job not in core.ready

    def test_partial_progress_does_not_complete(self, core, taskset):
        task = taskset[0]
        core.submit(task.name, 0.0)
        decision = core.decide(0.0)
        job = decision.job
        core.advance(job, job.remaining_demand / decision.frequency / 2,
                     decision.frequency)
        assert not core.complete_if_done(job, 0.001)
        assert job in core.ready

    def test_overdue_jobs_expire(self, core, taskset):
        task = taskset[0]
        core.submit(task.name, 0.0)
        job = core.ready[0]
        core.decide(job.termination + 1.0)
        assert core.counters["expired"] == 1
        assert job not in core.ready

    def test_next_timer_tracks_termination_and_deferrals(self, core, taskset):
        assert core.next_timer(0.0) is None
        task = taskset[0]
        core.submit(task.name, 0.0)
        timer = core.next_timer(0.0)
        assert timer == pytest.approx(core.ready[0].termination)


class TestObservability:
    def test_decision_stream_is_obs_wire_format(self, core, taskset):
        task = taskset[0]
        core.submit(task.name, 0.0)
        decision = core.decide(0.0)
        job = decision.job
        core.advance(job, job.remaining_demand / decision.frequency,
                     decision.frequency)
        core.complete_if_done(job, 0.01)
        text = events_to_jsonl(core.observer.events)
        log = events_from_jsonl(text)
        kinds = [e.kind for e in log.events]
        assert EventKind.RELEASE in kinds
        assert EventKind.ADMISSION_DECISION in kinds
        assert EventKind.DISPATCH in kinds
        assert EventKind.COMPLETE in kinds
        assert all(e.source == "svc" for e in log.events
                   if e.kind is EventKind.ADMISSION_DECISION)

    def test_stats_snapshot_keys(self, core, taskset):
        core.submit(taskset[0].name, 0.0)
        stats = core.stats()
        for key in ("submitted", "admitted", "ready_depth", "deferred_pending",
                    "utility_accrued", "uam_violations", "tasks", "events"):
            assert key in stats
        assert stats["ready_depth"] == 1
        assert stats["tasks"] == len(taskset)
        assert stats["events"] > 0
