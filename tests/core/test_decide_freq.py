"""Tests for decideFreq (repro.core.decide_freq)."""

import pytest

from repro.arrivals import BurstUAMArrivals, UAMSpec
from repro.core import offline_computing
from repro.core.decide_freq import (
    decide_freq,
    future_cycles_due,
    required_rate_demand,
    required_rate_lookahead,
)
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.sim import Job, Task, TaskSet
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.tuf import StepTUF


def _task(name="T", window=1.0, mean=100.0, a=1):
    spec = UAMSpec(a, window)
    return Task(
        name,
        StepTUF(5.0, window),
        DeterministicDemand(mean),
        spec,
        arrivals=None if a == 1 else BurstUAMArrivals(spec),
    )


def _view(tasks, jobs, time=0.0, arrivals=None, scale=None):
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=scale or FrequencyScale.powernow_k6(),
        energy_model=EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window=arrivals if arrivals is not None else {},
    )


class TestFutureCyclesDue:
    def test_zero_beyond_horizon(self):
        task = _task(window=1.0)
        view = _view([task], [], time=0.0, arrivals={"T": []})
        assert future_cycles_due(view, task, until=0.5) == 0.0  # D=1 > 0.5

    def test_one_immediate_arrival(self):
        task = _task(window=1.0, mean=100.0)
        view = _view([task], [], time=0.0, arrivals={"T": []})
        # One job can arrive now (due at 1.0); the next not before 1.0
        # (due 2.0 > until).
        assert future_cycles_due(view, task, until=1.0) == pytest.approx(100.0)

    def test_window_budget_consumed(self):
        task = _task(window=1.0, mean=100.0)
        view = _view([task], [], time=0.5, arrivals={"T": [0.4]})
        # <1, P> with an arrival at 0.4: next admissible at 1.4, due 2.4.
        assert future_cycles_due(view, task, until=2.0) == 0.0
        assert future_cycles_due(view, task, until=2.5) == pytest.approx(100.0)

    def test_burst_budget(self):
        task = _task(window=1.0, mean=100.0, a=3)
        view = _view([task], [], time=0.0, arrivals={"T": [0.0]})
        # Two more arrivals admissible immediately.
        assert future_cycles_due(view, task, until=1.0) == pytest.approx(
            2 * task.allocation
        )

    def test_multiple_windows(self):
        task = _task(window=1.0, mean=100.0)
        view = _view([task], [], time=0.0, arrivals={"T": []})
        # Arrivals at 0, 1, 2 all due by 3.0.
        assert future_cycles_due(view, task, until=3.0) == pytest.approx(300.0)


class TestRequiredRateDemand:
    def test_zero_when_nothing_anywhere(self):
        # One task whose earliest future critical time is far away and a
        # point check beyond it - nothing pending means only the hedge,
        # which for a just-released-and-done periodic window is zero.
        task = _task(window=1.0, mean=100.0)
        view = _view([task], [], time=0.1, arrivals={"T": [0.05]})
        # Pending: none.  Future: next admissible 1.05, due 2.05; at the
        # point d = 2.05 demand is 100 over 1.95 s.
        rate = required_rate_demand(view)
        assert rate == pytest.approx(100.0 / 1.95, rel=1e-6)

    def test_pending_job_rate(self):
        task = _task(window=1.0, mean=100.0)
        job = Job(task, 0, 0.0, 100.0)
        view = _view([task], [job], time=0.0, arrivals={"T": [0.0]})
        # 100 Mc due within 1.0 s plus the next window's job due at 2.0.
        assert required_rate_demand(view) >= 100.0 - 1e-9

    def test_past_critical_time_forces_fmax(self):
        task = _task(window=1.0, mean=100.0)
        job = Job(task, 0, 0.0, 100.0)
        view = _view([task], [job], time=1.0 - 1e-15, arrivals={"T": [0.0]})
        assert required_rate_demand(view) == 1000.0

    def test_caps_at_fmax(self):
        task = _task(window=1.0, mean=5000.0)
        job = Job(task, 0, 0.0, 5000.0)
        view = _view([task], [job], time=0.0, arrivals={"T": [0.0]})
        assert required_rate_demand(view) == 1000.0


class TestRequiredRateLookahead:
    def test_zero_when_nothing_pending_periodic(self):
        task = _task(window=1.0, mean=100.0)
        view = _view([task], [], time=0.1, arrivals={"T": [0.05]})
        assert required_rate_lookahead(view) == 0.0

    def test_single_job_runs_to_deadline(self):
        task = _task(window=1.0, mean=100.0)
        job = Job(task, 0, 0.0, 100.0)
        view = _view([task], [job], time=0.0, arrivals={"T": [0.0]})
        # Only task: everything must finish by its critical time.
        assert required_rate_lookahead(view) == pytest.approx(100.0)

    def test_deferral_pushes_work_past_earliest(self):
        urgent = _task("U", window=0.1, mean=20.0)
        relaxed = _task("R", window=1.0, mean=100.0)
        ju = Job(urgent, 0, 0.0, 20.0)
        jr = Job(relaxed, 0, 0.0, 100.0)
        view = _view(
            [urgent, relaxed], [ju, jr], time=0.0,
            arrivals={"U": [0.0], "R": [0.0]},
        )
        rate = required_rate_lookahead(view)
        # The urgent 20 Mc must run by 0.1; the relaxed task's cycles are
        # (mostly) deferred.  Far below the f_max worst case.
        assert rate < 500.0
        assert rate >= 20.0 / 0.1 - 1e-9

    def test_equal_critical_times_nothing_deferred(self):
        a = _task("A", window=0.5, mean=100.0)
        b = _task("B", window=0.5, mean=150.0)
        ja, jb = Job(a, 0, 0.0, 100.0), Job(b, 0, 0.0, 150.0)
        view = _view([a, b], [ja, jb], arrivals={"A": [0.0], "B": [0.0]})
        assert required_rate_lookahead(view) == pytest.approx(250.0 / 0.5)

    def test_caps_at_fmax_during_overload(self):
        task = _task(window=0.5, mean=5000.0)
        job = Job(task, 0, 0.0, 5000.0)
        view = _view([task], [job], arrivals={"T": [0.0]})
        assert required_rate_lookahead(view) == 1000.0

    def test_zero_demand_task_does_not_raise_rate(self):
        # Z has spent its whole window budget (one arrival seen, job
        # done, nothing pending): its static rate must be released in
        # visit order, not pinned in `util` shrinking every later
        # entry's headroom.  The rate with Z present must equal the
        # rate with Z absent (Z's critical time is the latest, so it is
        # visited — and subtracted — first).
        z = _task("Z", window=2.0, mean=500.0)
        a = _task("A", window=0.4, mean=300.0)
        b = _task("B", window=0.25, mean=50.0)
        ja, jb = Job(a, 0, 0.0, 300.0), Job(b, 0, 0.0, 50.0)
        with_z = _view(
            [z, a, b], [ja, jb], time=0.0,
            arrivals={"Z": [0.0], "A": [0.0], "B": [0.0]},
        )
        without_z = _view(
            [a, b], [ja, jb], time=0.0, arrivals={"A": [0.0], "B": [0.0]},
        )
        rate = required_rate_lookahead(with_z)
        assert rate == pytest.approx(required_rate_lookahead(without_z))
        # Closed form: B's 50 Mc must run before D_n = 0.25; A defers
        # all but 300 - (1000 - 200)*0.15 = 180 Mc past it.
        assert rate == pytest.approx(230.0 / 0.25)
        # The pre-fix behaviour pinned Z's 250 MHz static rate in util,
        # inflating the residue to f_max; guard against regressing.
        assert rate < 1000.0


class TestDecideFreq:
    def _setup(self):
        task = _task(window=1.0, mean=100.0)
        taskset = TaskSet([task])
        scale = FrequencyScale.powernow_k6()
        job = Job(task, 0, 0.0, 100.0)
        view = _view([task], [job], arrivals={"T": [0.0]}, scale=scale)
        params = offline_computing(taskset, scale, EnergyModel.e1())
        return view, job, params

    def test_quantises_up_the_ladder(self):
        view, job, params = self._setup()
        f = decide_freq(view, job, params, use_fopt_bound=False)
        # Lookahead rate 100 -> ladder 360.
        assert f == 360.0

    def test_fopt_bound_raises_frequency_under_e3(self):
        task = _task(window=1.0, mean=100.0)
        taskset = TaskSet([task])
        scale = FrequencyScale.powernow_k6()
        model = EnergyModel.e3(scale.f_max)
        job = Job(task, 0, 0.0, 100.0)
        view = SchedulerView(
            time=0.0, ready=[job], taskset=taskset, scale=scale,
            energy_model=model, event=SchedulingEvent.ARRIVAL,
            arrivals_in_window={"T": [0.0]},
        )
        params = offline_computing(taskset, scale, model)
        assert decide_freq(view, job, params, use_fopt_bound=True) == 820.0
        assert decide_freq(view, job, params, use_fopt_bound=False) == 360.0

    def test_method_selection(self):
        view, job, params = self._setup()
        f_la = decide_freq(view, job, params, use_fopt_bound=False, method="lookahead")
        f_pd = decide_freq(view, job, params, use_fopt_bound=False, method="demand")
        assert f_la <= f_pd  # demand bound hedges future arrivals

    def test_unknown_method_rejected(self):
        view, job, params = self._setup()
        with pytest.raises(ValueError):
            decide_freq(view, job, params, method="magic")
