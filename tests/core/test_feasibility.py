"""Tests for schedule feasibility (repro.core.feasibility)."""

import math

import pytest

from repro.core import (
    IncrementalSchedule,
    insert_by_critical_time,
    job_feasible,
    predicted_completions,
    schedule_feasible,
)
from repro.core.feasibility import _deadline_slack
from repro.arrivals import UAMSpec
from repro.demand import DeterministicDemand
from repro.sim import Job, Task
from repro.tuf import StepTUF


def _job(name="T", release=0.0, window=1.0, mean=100.0, demand=None):
    task = Task(name, StepTUF(5.0, window), DeterministicDemand(mean), UAMSpec(1, window))
    return Job(task, 0, release, demand if demand is not None else mean)


class TestJobFeasible:
    def test_feasible_with_slack(self):
        job = _job(mean=100.0, window=1.0)
        assert job_feasible(job, now=0.0, f_max=1000.0)

    def test_infeasible_past_point_of_no_return(self):
        job = _job(mean=100.0, window=1.0)
        assert not job_feasible(job, now=0.95, f_max=1000.0)

    def test_exactly_at_termination_is_infeasible(self):
        # Completing *at* the termination accrues zero utility.
        job = _job(mean=100.0, window=0.1)
        assert not job_feasible(job, now=0.0, f_max=1000.0)

    def test_partial_execution_restores_feasibility(self):
        job = _job(mean=100.0, window=0.1)
        job.executed = 60.0
        assert job_feasible(job, now=0.05, f_max=1000.0)


class TestScheduleFeasible:
    def test_empty_schedule(self):
        assert schedule_feasible([], now=0.0, f_max=1000.0)

    def test_back_to_back_fits(self):
        j1 = _job("A", window=0.2, mean=100.0)
        j2 = _job("B", window=0.5, mean=100.0)
        assert schedule_feasible([j1, j2], now=0.0, f_max=1000.0)

    def test_second_job_squeezed_out(self):
        j1 = _job("A", window=0.2, mean=150.0)
        j2 = _job("B", window=0.2, mean=100.0)
        # j2 predicted completion 0.25 >= 0.2.
        assert not schedule_feasible([j1, j2], now=0.0, f_max=1000.0)

    def test_predicted_completions(self):
        j1 = _job("A", window=1.0, mean=100.0)
        j2 = _job("B", window=1.0, mean=200.0)
        times = predicted_completions([j1, j2], now=0.5, f_max=1000.0)
        assert times == [pytest.approx(0.6), pytest.approx(0.8)]

    def test_uses_budget_not_true_demand(self):
        # Budget (allocation) is 100 but the true demand is 400: the
        # schedule must be judged on what the scheduler can know.
        j = _job("A", window=0.2, mean=100.0, demand=400.0)
        assert schedule_feasible([j], now=0.0, f_max=1000.0)


class TestInsertByCriticalTime:
    def test_insert_ordering(self):
        j1 = _job("A", release=0.0, window=0.3)
        j2 = _job("B", release=0.0, window=0.1)
        j3 = _job("C", release=0.0, window=0.2)
        sigma = insert_by_critical_time([], j1)
        sigma = insert_by_critical_time(sigma, j2)
        sigma = insert_by_critical_time(sigma, j3)
        assert [j.task.name for j in sigma] == ["B", "C", "A"]

    def test_equal_critical_times_insert_after(self):
        j1 = _job("A", release=0.0, window=0.2)
        j2 = _job("B", release=0.0, window=0.2)
        sigma = insert_by_critical_time([j1], j2)
        assert sigma == [j1, j2]

    def test_does_not_mutate_input(self):
        j1 = _job("A", window=0.2)
        j2 = _job("B", window=0.1)
        original = [j1]
        out = insert_by_critical_time(original, j2)
        assert original == [j1]
        assert out == [j2, j1]


class TestDeadlineSlackBoundary:
    """The shared ``_deadline_slack`` guard, probed at the exact edge.

    Historically ``job_feasible`` and ``schedule_feasible`` duplicated
    the tolerance expression and could scale it differently; the shared
    helper makes the single-job and whole-schedule verdicts identical by
    construction.  These tests pin the boundary semantics: a completion
    *at* the termination (or within the magnitude-scaled slack band
    before it) is infeasible, one safely before it is feasible.
    """

    F_MAX = 1000.0

    def _exact_job(self):
        # window 0.25 s, budget 125 Mcycles at 1000 MHz -> 0.125 s of
        # work; both are dyadic so now + exec reproduces the termination
        # time exactly in floating point.
        return _job("X", release=0.0, window=0.25, mean=125.0)

    def test_slack_value_small_magnitude(self):
        job = self._exact_job()
        assert _deadline_slack(job) == 1e-12  # |termination| <= 1 -> floor

    def test_slack_scales_with_termination_magnitude(self):
        big = _job("B", release=0.0, window=2.0e6, mean=1000.0)
        assert big.termination == 2.0e6
        assert _deadline_slack(big) == pytest.approx(2.0e-6)

    def test_completion_exactly_at_termination_infeasible(self):
        job = self._exact_job()
        now = 0.125
        assert now + job.remaining_budget / self.F_MAX == job.termination
        assert not job_feasible(job, now=now, f_max=self.F_MAX)

    def test_completion_one_ulp_before_termination_infeasible(self):
        # One ULP of headroom is inside the slack band: still rejected.
        job = self._exact_job()
        now = math.nextafter(job.termination, 0.0) - 0.125
        assert now + 0.125 == math.nextafter(job.termination, 0.0)
        assert not job_feasible(job, now=now, f_max=self.F_MAX)

    def test_completion_one_ulp_after_termination_infeasible(self):
        job = self._exact_job()
        now = math.nextafter(job.termination, 1.0) - 0.125
        assert now + 0.125 > job.termination
        assert not job_feasible(job, now=now, f_max=self.F_MAX)

    def test_completion_beyond_slack_band_feasible(self):
        job = self._exact_job()
        now = 0.125 - 1e-9  # completion 1 ns early: clear of the band
        assert job_feasible(job, now=now, f_max=self.F_MAX)

    def test_large_magnitude_band_scales(self):
        # termination 2e6 s -> slack 2e-6 s.  A completion 1e-7 s early
        # is inside the band (infeasible); 1e-4 s early is outside.
        big = _job("B", release=0.0, window=2.0e6, mean=1000.0)
        exec_time = big.remaining_budget / self.F_MAX
        assert not job_feasible(big, now=2.0e6 - exec_time - 1e-7, f_max=self.F_MAX)
        assert job_feasible(big, now=2.0e6 - exec_time - 1e-4, f_max=self.F_MAX)

    @pytest.mark.parametrize("delta", [0.0, 1e-13, -1e-13, 1e-9, -1e-9, 1e-6])
    def test_job_and_schedule_paths_agree(self, delta):
        # The asymmetry fix: the single-job probe and the whole-schedule
        # walk must give the same verdict at every boundary offset.
        job = self._exact_job()
        now = 0.125 - delta
        assert job_feasible(job, now, self.F_MAX) == schedule_feasible(
            [job], now, self.F_MAX
        )

    @pytest.mark.parametrize("delta", [0.0, 1e-13, -1e-13, 1e-9, -1e-9, 1e-6])
    def test_incremental_probe_matches_reference_at_boundary(self, delta):
        job = self._exact_job()
        now = 0.125 - delta
        inc = IncrementalSchedule(now, self.F_MAX)
        ref_ok = schedule_feasible(
            insert_by_critical_time([], job), now, self.F_MAX
        )
        assert (inc.try_insert(job) >= 0) == ref_ok


class TestIncrementalSchedule:
    def test_insert_ordering_matches_reference(self):
        j1 = _job("A", release=0.0, window=0.3, mean=50.0)
        j2 = _job("B", release=0.0, window=0.1, mean=50.0)
        j3 = _job("C", release=0.0, window=0.2, mean=50.0)
        inc = IncrementalSchedule(0.0, 1000.0)
        for j in (j1, j2, j3):
            assert inc.try_insert(j) >= 0
        assert [j.task.name for j in inc.jobs] == ["B", "C", "A"]

    def test_equal_critical_times_insert_after(self):
        j1 = _job("A", release=0.0, window=0.2, mean=50.0)
        j2 = _job("B", release=0.0, window=0.2, mean=50.0)
        inc = IncrementalSchedule(0.0, 1000.0)
        assert inc.try_insert(j1) == 0
        assert inc.try_insert(j2) == 1
        assert [j.task.name for j in inc.jobs] == ["A", "B"]

    def test_failed_probe_leaves_sigma_untouched(self):
        j1 = _job("A", window=0.2, mean=150.0)
        j2 = _job("B", window=0.2, mean=100.0)
        inc = IncrementalSchedule(0.0, 1000.0)
        assert inc.try_insert(j1) == 0
        before = (inc.jobs, inc.completions())
        assert inc.try_insert(j2) == -1
        assert (inc.jobs, inc.completions()) == before

    def test_completions_match_predicted_completions(self):
        j1 = _job("A", window=1.0, mean=100.0)
        j2 = _job("B", window=1.0, mean=200.0)
        inc = IncrementalSchedule(0.5, 1000.0)
        inc.try_insert(j1)
        inc.try_insert(j2)
        assert inc.completions() == predicted_completions(inc.jobs, 0.5, 1000.0)

    def test_head_and_len(self):
        inc = IncrementalSchedule(0.0, 1000.0)
        assert inc.head is None and len(inc) == 0
        j = _job("A", window=0.5)
        inc.try_insert(j)
        assert inc.head is j and len(inc) == 1
