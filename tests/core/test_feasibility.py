"""Tests for schedule feasibility (repro.core.feasibility)."""

import pytest

from repro.arrivals import UAMSpec
from repro.core import (
    insert_by_critical_time,
    job_feasible,
    predicted_completions,
    schedule_feasible,
)
from repro.demand import DeterministicDemand
from repro.sim import Job, Task
from repro.tuf import StepTUF


def _job(name="T", release=0.0, window=1.0, mean=100.0, demand=None):
    task = Task(name, StepTUF(5.0, window), DeterministicDemand(mean), UAMSpec(1, window))
    return Job(task, 0, release, demand if demand is not None else mean)


class TestJobFeasible:
    def test_feasible_with_slack(self):
        job = _job(mean=100.0, window=1.0)
        assert job_feasible(job, now=0.0, f_max=1000.0)

    def test_infeasible_past_point_of_no_return(self):
        job = _job(mean=100.0, window=1.0)
        assert not job_feasible(job, now=0.95, f_max=1000.0)

    def test_exactly_at_termination_is_infeasible(self):
        # Completing *at* the termination accrues zero utility.
        job = _job(mean=100.0, window=0.1)
        assert not job_feasible(job, now=0.0, f_max=1000.0)

    def test_partial_execution_restores_feasibility(self):
        job = _job(mean=100.0, window=0.1)
        job.executed = 60.0
        assert job_feasible(job, now=0.05, f_max=1000.0)


class TestScheduleFeasible:
    def test_empty_schedule(self):
        assert schedule_feasible([], now=0.0, f_max=1000.0)

    def test_back_to_back_fits(self):
        j1 = _job("A", window=0.2, mean=100.0)
        j2 = _job("B", window=0.5, mean=100.0)
        assert schedule_feasible([j1, j2], now=0.0, f_max=1000.0)

    def test_second_job_squeezed_out(self):
        j1 = _job("A", window=0.2, mean=150.0)
        j2 = _job("B", window=0.2, mean=100.0)
        # j2 predicted completion 0.25 >= 0.2.
        assert not schedule_feasible([j1, j2], now=0.0, f_max=1000.0)

    def test_predicted_completions(self):
        j1 = _job("A", window=1.0, mean=100.0)
        j2 = _job("B", window=1.0, mean=200.0)
        times = predicted_completions([j1, j2], now=0.5, f_max=1000.0)
        assert times == [pytest.approx(0.6), pytest.approx(0.8)]

    def test_uses_budget_not_true_demand(self):
        # Budget (allocation) is 100 but the true demand is 400: the
        # schedule must be judged on what the scheduler can know.
        j = _job("A", window=0.2, mean=100.0, demand=400.0)
        assert schedule_feasible([j], now=0.0, f_max=1000.0)


class TestInsertByCriticalTime:
    def test_insert_ordering(self):
        j1 = _job("A", release=0.0, window=0.3)
        j2 = _job("B", release=0.0, window=0.1)
        j3 = _job("C", release=0.0, window=0.2)
        sigma = insert_by_critical_time([], j1)
        sigma = insert_by_critical_time(sigma, j2)
        sigma = insert_by_critical_time(sigma, j3)
        assert [j.task.name for j in sigma] == ["B", "C", "A"]

    def test_equal_critical_times_insert_after(self):
        j1 = _job("A", release=0.0, window=0.2)
        j2 = _job("B", release=0.0, window=0.2)
        sigma = insert_by_critical_time([j1], j2)
        assert sigma == [j1, j2]

    def test_does_not_mutate_input(self):
        j1 = _job("A", window=0.2)
        j2 = _job("B", window=0.1)
        original = [j1]
        out = insert_by_critical_time(original, j2)
        assert original == [j1]
        assert out == [j2, j1]
