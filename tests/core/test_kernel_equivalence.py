"""Hot-loop kernels ≡ straight-line references, on live decision points.

The simulator's inner loops were rewritten with incremental
maintenance, key precomputation, and bisect-backed counting — each
paired with a retained ``*_reference`` transliteration.  The contract
is **bit identity**: every float the kernel produces comes from the
same expression in the same order as the reference, so ``==`` (never
``pytest.approx``) is the only acceptable comparison.

Where the fast-path differential suite probes synthetic job pools,
this one pins the kernels on *real* decision-point views: a capture
shim wrapped around EUA* re-evaluates every kernel/reference pair at
each scheduling event of a simulated UAM scenario, so the inputs carry
whatever partially-executed, mid-abort, burst-backlogged state the
engine actually produces.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import BurstUAMArrivals, ScatteredUAMArrivals, UAMSpec
from repro.core import (
    EUAStar,
    job_feasible,
    job_feasible_reference,
    job_uer,
    job_uer_reference,
    required_rate_demand,
    required_rate_demand_reference,
    required_rate_lookahead,
    required_rate_lookahead_reference,
    schedule_feasible,
    schedule_feasible_reference,
)
from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.demand import DeterministicDemand, NormalDemand
from repro.sim import Engine, Job, Task, TaskSet, materialize
from repro.sim.scheduler import ArrivalWindow, pending_of_reference
from repro.tuf import LinearTUF, StepTUF


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def uam_scenarios(draw):
    """A synthesised UAM task set (mixed burst sizes) plus a seed."""
    n = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    load = draw(st.floats(min_value=0.3, max_value=1.8))
    tasks = []
    for i in range(n):
        window = draw(st.floats(min_value=0.05, max_value=0.6))
        umax = draw(st.floats(min_value=1.0, max_value=80.0))
        a = draw(st.integers(min_value=1, max_value=3))
        mean = window * 60.0
        if draw(st.booleans()):
            tuf, nu = StepTUF(umax, window), 1.0
        else:
            tuf, nu = LinearTUF(umax, window), 0.3
        spec = UAMSpec(a, window)
        if a == 1:
            arrivals = None
        elif draw(st.booleans()):
            arrivals = BurstUAMArrivals(spec)
        else:
            arrivals = ScatteredUAMArrivals(spec)
        tasks.append(
            Task(f"T{i}", tuf, NormalDemand(mean, mean * 0.15),
                 spec, arrivals=arrivals, nu=nu, rho=0.9)
        )
    return TaskSet(tasks).scaled_to_load(load, 1000.0), seed


@st.composite
def job_pools(draw):
    """Candidate σ material: jobs with assorted progress, plus a time."""
    n = draw(st.integers(min_value=1, max_value=10))
    now = draw(st.floats(min_value=0.0, max_value=0.3))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=0.4))
        window = draw(st.floats(min_value=0.02, max_value=0.8))
        mean = draw(st.floats(min_value=5.0, max_value=400.0))
        task = Task(
            f"T{i}",
            StepTUF(draw(st.floats(min_value=1.0, max_value=50.0)), window),
            DeterministicDemand(mean),
            UAMSpec(1, window),
        )
        job = Job(task, 0, release, mean)
        job.executed = draw(st.floats(min_value=0.0, max_value=1.2)) * mean
        jobs.append(job)
    return jobs, now


# ----------------------------------------------------------------------
# The capture shim: every decision point of a real run probes the pairs
# ----------------------------------------------------------------------
class _KernelProbe(EUAStar):
    """EUA* that differentially tests every kernel on each live view
    *before* deciding (the view is a frozen snapshot, but the Job
    objects mutate as the run advances — so the comparison must happen
    at decision time, not post-hoc)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.probes = 0

    def decide(self, view):
        t = view.time
        f_m = view.scale.f_max
        model = view.energy_model

        # decideFreq rate computations (Algorithm 2 + demand bound).
        assert required_rate_lookahead(view) == \
            required_rate_lookahead_reference(view)
        assert required_rate_demand(view) == \
            required_rate_demand_reference(view)

        # Per-view pending cache vs the scan-and-sort reference.
        for task in view.taskset:
            group = view.pending_of(task)
            reference = pending_of_reference(view.ready, task)
            assert [id(j) for j in group] == [id(j) for j in reference]
            head = view.head_job_of(task)
            assert head is (reference[0] if reference else None)

        # Per-job kernels on exactly the jobs EUA* is about to rank.
        for job in view.ready:
            assert job_feasible(job, t, f_m) == \
                job_feasible_reference(job, t, f_m)
            assert job_uer(job, t, f_m, model) == \
                job_uer_reference(job, t, f_m, model)

        self.probes += 1
        return super().decide(view)


@given(uam_scenarios())
@settings(max_examples=15, deadline=None)
def test_kernels_match_references_on_live_views(scenario):
    taskset, seed = scenario
    rng = np.random.default_rng(seed)
    trace = materialize(taskset, 1.0, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    probe = _KernelProbe()
    Engine(trace, probe, cpu).run()
    assert probe.probes > 0  # the shim actually saw decision points


@given(uam_scenarios())
@settings(max_examples=10, deadline=None)
def test_probe_shim_is_transparent(scenario):
    """The shim itself must not perturb the run it is probing."""
    taskset, seed = scenario
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())

    def run(policy):
        rng = np.random.default_rng(seed)
        trace = materialize(taskset, 1.0, rng)
        return Engine(trace, policy, cpu).run()

    plain = run(EUAStar())
    probed = run(_KernelProbe())
    assert probed.metrics.accrued_utility == plain.metrics.accrued_utility
    assert probed.energy == plain.energy


# ----------------------------------------------------------------------
# Feasibility fold kernels on synthetic σ material
# ----------------------------------------------------------------------
@given(job_pools())
@settings(max_examples=60, deadline=None)
def test_schedule_feasible_kernel_matches_reference(pool):
    jobs, now = pool
    f_max = 1000.0
    sigma = sorted(jobs, key=lambda j: j.critical_time)
    assert schedule_feasible(sigma, now, f_max) == \
        schedule_feasible_reference(sigma, now, f_max)
    for job in jobs:
        assert job_feasible(job, now, f_max) == \
            job_feasible_reference(job, now, f_max)


# ----------------------------------------------------------------------
# Maintained Job attributes vs their derived forms
# ----------------------------------------------------------------------
@given(
    release=st.floats(min_value=0.0, max_value=5.0),
    window=st.floats(min_value=0.01, max_value=1.0),
    re_release=st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=100, deadline=None)
def test_job_absolute_times_track_release(release, window, re_release):
    """``termination`` / ``critical_time`` are maintained attributes for
    the hot loops; the release setter must keep them equal to the
    derived expressions — including after the adaptive runtime's
    re-release path moves a job."""
    task = Task("T0", StepTUF(10.0, window), DeterministicDemand(50.0),
                UAMSpec(1, window))
    job = Job(task, 0, release, 50.0)
    for value in (release, re_release):
        job.release = value
        assert job.termination == value + task.tuf.termination
        assert job.critical_time == value + task.critical_time
        assert job.utility_at(value + window / 2) == \
            task.tuf.utility(window / 2)


# ----------------------------------------------------------------------
# Task.dvs_static: the cached tuple vs the five properties
# ----------------------------------------------------------------------
@given(
    window=st.floats(min_value=0.01, max_value=1.0),
    a=st.integers(min_value=1, max_value=6),
    mean=st.floats(min_value=1.0, max_value=500.0),
    new_alloc=st.floats(min_value=0.5, max_value=800.0),
)
@settings(max_examples=100, deadline=None)
def test_dvs_static_matches_properties_and_invalidates(window, a, mean,
                                                       new_alloc):
    spec = UAMSpec(a, window)
    task = Task("T0", StepTUF(10.0, window), NormalDemand(mean, mean * 0.1),
                spec, arrivals=BurstUAMArrivals(spec) if a > 1 else None,
                rho=0.9)

    def expected():
        return (task.uam.max_arrivals, task.allocation, task.critical_time,
                task.window_cycles / task.critical_time, task.window_cycles)

    assert task.dvs_static() == expected()
    assert task.dvs_static() is task.dvs_static()  # cached, not rebuilt
    # reallocate() is the one sanctioned post-construction mutation and
    # must drop the cache along with the allocation memo.
    task.reallocate(new_alloc)
    assert task.allocation == new_alloc
    assert task.dvs_static() == expected()


# ----------------------------------------------------------------------
# ArrivalWindow: the zero-copy log window vs a plain list
# ----------------------------------------------------------------------
@given(
    log=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=12),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_arrival_window_is_sequence_equivalent(log, data):
    start = data.draw(st.integers(min_value=0, max_value=len(log)))
    stop = data.draw(st.integers(min_value=start, max_value=len(log)))
    window = ArrivalWindow(log, start, stop)
    plain = log[start:stop]

    assert len(window) == len(plain)
    assert list(window) == plain
    assert window == plain and plain == list(window)
    for i in range(-len(plain), len(plain)):
        assert window[i] == plain[i]
    for bad in (len(plain), -len(plain) - 1):
        with pytest.raises(IndexError):
            window[bad]
    assert window[:] == plain
    assert window[1:] == plain[1:]
    # Append-only growth of the underlying log must not move the view.
    log.append(math.inf)
    assert list(window) == plain


def test_arrival_window_defaults_span_the_log():
    log = [0.1, 0.2, 0.3]
    assert list(ArrivalWindow(log)) == log
    assert len(ArrivalWindow(log, 1)) == 2
