"""Tests for the EUA* policy object (repro.core.eua)."""

import pytest

from repro.arrivals import UAMSpec
from repro.core import EUAStar, job_uer
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.sim import Job, Task, TaskSet
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.tuf import StepTUF


def _task(name="T", window=1.0, mean=100.0, umax=10.0, abortable=True):
    return Task(
        name,
        StepTUF(umax, window),
        DeterministicDemand(mean),
        UAMSpec(1, window),
        abortable=abortable,
    )


def _view(tasks, jobs, time=0.0, model=None):
    arrivals = {t.name: [j.release for j in jobs if j.task is t] for t in tasks}
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=FrequencyScale.powernow_k6(),
        energy_model=model or EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window=arrivals,
    )


def _ready_scheduler(tasks, model=None):
    sched = EUAStar()
    sched.setup(TaskSet(tasks), FrequencyScale.powernow_k6(), model or EnergyModel.e1())
    return sched


class TestJobUER:
    def test_matches_formula(self):
        task = _task(mean=100.0, umax=10.0)
        job = Job(task, 0, 0.0, 100.0)
        model = EnergyModel.e1()
        uer = job_uer(job, now=0.0, f_max=1000.0, model=model)
        assert uer == pytest.approx(10.0 / (model.energy_per_cycle(1000.0) * 100.0))

    def test_rises_as_budget_executes(self):
        task = _task(mean=100.0)
        job = Job(task, 0, 0.0, 100.0)
        before = job_uer(job, 0.0, 1000.0, EnergyModel.e1())
        job.executed = 50.0
        after = job_uer(job, 0.05, 1000.0, EnergyModel.e1())
        assert after > before

    def test_zero_past_deadline(self):
        task = _task(mean=100.0, window=0.5)
        job = Job(task, 0, 0.0, 100.0)
        assert job_uer(job, 0.6, 1000.0, EnergyModel.e1()) == 0.0

    def test_overrun_budget_stays_finite(self):
        task = _task(mean=100.0)
        job = Job(task, 0, 0.0, 200.0)
        job.executed = 150.0  # budget exhausted, job unfinished
        uer = job_uer(job, 0.2, 1000.0, EnergyModel.e1())
        assert uer > 0.0 and uer < float("inf")


class TestDecision:
    def test_idle_when_nothing_pending(self):
        task = _task()
        sched = _ready_scheduler([task])
        d = sched.decide(_view([task], []))
        assert d.job is None
        assert d.aborts == ()

    def test_single_job_dispatched(self):
        task = _task()
        sched = _ready_scheduler([task])
        job = Job(task, 0, 0.0, 100.0)
        d = sched.decide(_view([task], [job]))
        assert d.job is job
        assert d.frequency in FrequencyScale.powernow_k6()

    def test_highest_uer_head_when_all_fit(self):
        # Two jobs, same deadline; both fit, so sigma orders by critical
        # time and the head is the earliest critical time.
        early = _task("E", window=0.5, mean=50.0, umax=1.0)
        late = _task("L", window=1.0, mean=50.0, umax=100.0)
        sched = _ready_scheduler([early, late])
        je, jl = Job(early, 0, 0.0, 50.0), Job(late, 0, 0.0, 50.0)
        d = sched.decide(_view([early, late], [je, jl]))
        assert d.job is je  # critical-time order within sigma

    def test_overload_prefers_high_uer(self):
        # Two jobs with the same critical time but only room for one:
        # the high-UER job wins the slot.
        a = _task("A", window=0.1, mean=60.0, umax=1.0)
        b = _task("B", window=0.1, mean=60.0, umax=100.0)
        sched = _ready_scheduler([a, b])
        ja, jb = Job(a, 0, 0.0, 60.0), Job(b, 0, 0.0, 60.0)
        d = sched.decide(_view([a, b], [ja, jb]))
        assert d.job is jb

    def test_aborts_infeasible(self):
        task = _task(window=0.05, mean=100.0)  # needs 0.1 s at f_max
        sched = _ready_scheduler([task])
        job = Job(task, 0, 0.0, 100.0)
        d = sched.decide(_view([task], [job]))
        assert job in d.aborts
        assert d.job is None

    def test_respects_abortable_flag(self):
        task = _task(window=0.05, mean=100.0, abortable=False)
        sched = _ready_scheduler([task])
        job = Job(task, 0, 0.0, 100.0)
        d = sched.decide(_view([task], [job]))
        assert d.aborts == ()
        assert d.job is None  # still not scheduled (infeasible)

    def test_abort_infeasible_off(self):
        task = _task(window=0.05, mean=100.0)
        sched = EUAStar(abort_infeasible=False)
        sched.setup(TaskSet([task]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        job = Job(task, 0, 0.0, 100.0)
        d = sched.decide(_view([task], [job]))
        assert d.aborts == ()

    def test_no_dvs_pins_fmax(self):
        task = _task()
        sched = EUAStar(use_dvs=False)
        sched.setup(TaskSet([task]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        job = Job(task, 0, 0.0, 100.0)
        d = sched.decide(_view([task], [job]))
        assert d.frequency == 1000.0

    def test_fopt_bound_under_e3(self):
        task = _task()
        model = EnergyModel.e3(1000.0)
        sched = _ready_scheduler([task], model)
        job = Job(task, 0, 0.0, 100.0)
        d = sched.decide(_view([task], [job], model=model))
        assert d.frequency == 820.0


class TestInsertionPolicies:
    def _crowded(self):
        # Three same-deadline jobs; capacity for two.
        tasks = [
            _task("H", window=0.1, mean=40.0, umax=100.0),
            _task("M", window=0.1, mean=40.0, umax=50.0),
            _task("L", window=0.1, mean=40.0, umax=1.0),
        ]
        jobs = [Job(t, 0, 0.0, 40.0) for t in tasks]
        return tasks, jobs

    def test_skip_infeasible_keeps_lower_ranked(self):
        tasks, jobs = self._crowded()
        sched = _ready_scheduler(tasks)
        d = sched.decide(_view(tasks, jobs))
        # H + M fit (80 Mc in 0.1 s); L is skipped but not aborted.
        assert d.job in (jobs[0], jobs[1])
        assert d.aborts == ()

    def test_strict_break_stops_at_first_failure(self):
        # With strict insertion, once a job fails to fit nothing after
        # it is considered — identical head here, but documented
        # behavioural knob; verify it doesn't crash and picks the head.
        tasks, jobs = self._crowded()
        sched = EUAStar(strict_insertion_break=True)
        sched.setup(TaskSet(tasks), FrequencyScale.powernow_k6(), EnergyModel.e1())
        d = sched.decide(_view(tasks, jobs))
        assert d.job is not None

    def test_utility_density_ordering(self):
        tasks, jobs = self._crowded()
        sched = EUAStar(ordering="utility_density")
        sched.setup(TaskSet(tasks), FrequencyScale.powernow_k6(), EnergyModel.e1())
        d = sched.decide(_view(tasks, jobs))
        assert d.job in (jobs[0], jobs[1])

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            EUAStar(ordering="random")

    def test_rejects_unknown_dvs_method(self):
        with pytest.raises(ValueError):
            EUAStar(dvs_method="magic")


class TestParamsExposure:
    def test_params_available_after_setup(self):
        task = _task()
        sched = _ready_scheduler([task])
        assert "T" in sched.params
        assert sched.params["T"].allocation == task.allocation
