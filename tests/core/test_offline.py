"""Tests for offlineComputing (repro.core.offline)."""

import pytest

from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.core import offline_computing, task_uer, uer_optimal_frequency
from repro.sim import Task, TaskSet
from repro.tuf import LinearTUF, StepTUF


def _task(mean=100.0, window=1.0, umax=10.0, tuf="step", nu=1.0):
    shape = StepTUF(umax, window) if tuf == "step" else LinearTUF(umax, window)
    return Task("T", shape, DeterministicDemand(mean), UAMSpec(1, window), nu=nu)


@pytest.fixture
def scale():
    return FrequencyScale.powernow_k6()


class TestTaskUER:
    def test_value(self, scale):
        # Step TUF: utility 10 if c/f < deadline; c=100, f=1000 -> 0.1 s.
        task = _task(mean=100.0, window=1.0)
        model = EnergyModel.e1()
        uer = task_uer(task, 1000.0, model)
        assert uer == pytest.approx(10.0 / (100.0 * 1000.0**2))

    def test_zero_when_too_slow(self, scale):
        # c/f >= termination: job cannot finish in its window.
        task = _task(mean=500.0, window=1.0)
        model = EnergyModel.e1()
        assert task_uer(task, 360.0, model) == 0.0  # 500/360 = 1.39 s > 1

    def test_linear_tuf_prefers_faster_than_energy_optimum(self, scale):
        # With a decaying TUF, finishing earlier earns more utility, so
        # UER at a moderate frequency can beat the energy-optimal f_min.
        task = _task(mean=300.0, window=1.0, tuf="linear", nu=0.3)
        model = EnergyModel.e1()
        assert task_uer(task, 550.0, model) > 0.0

    def test_start_offset(self, scale):
        task = _task(mean=100.0, window=1.0)
        model = EnergyModel.e1()
        # Step TUF: starting later is free while completion stays
        # inside the window (0.8 + 0.1 < 1.0) ...
        assert task_uer(task, 1000.0, model, start=0.8) == task_uer(
            task, 1000.0, model, start=0.0
        )
        # ... and fatal once the completion crosses it.
        assert task_uer(task, 1000.0, model, start=0.95) == 0.0


class TestUEROptimalFrequency:
    def test_e1_step_prefers_fmin(self, scale):
        # Under the CPU-only model the cheapest feasible level wins.
        task = _task(mean=100.0, window=1.0)
        assert uer_optimal_frequency(task, scale, EnergyModel.e1()) == 360.0

    def test_e1_skips_infeasible_fmin(self, scale):
        # c/360 > window: f_min yields zero utility, the next feasible
        # level with positive UER wins.
        task = _task(mean=400.0, window=1.0)
        f = uer_optimal_frequency(task, scale, EnergyModel.e1())
        assert f > 400.0  # at least c/window
        assert task_uer(task, f, EnergyModel.e1()) > 0.0

    def test_e3_prefers_interior_level(self, scale):
        task = _task(mean=100.0, window=1.0)
        model = EnergyModel.e3(scale.f_max)
        assert uer_optimal_frequency(task, scale, model) == 820.0

    def test_hopeless_task_gets_fmax(self, scale):
        # Cannot finish within the window at any level.
        task = _task(mean=2000.0, window=1.0)
        assert uer_optimal_frequency(task, scale, EnergyModel.e1()) == 1000.0


class TestOfflineComputing:
    def test_all_tasks_covered(self, scale):
        ts = TaskSet(
            [
                Task("A", StepTUF(5.0, 0.5), DeterministicDemand(50.0), UAMSpec(1, 0.5)),
                Task("B", LinearTUF(8.0, 1.0), DeterministicDemand(100.0),
                     UAMSpec(1, 1.0), nu=0.3),
            ]
        )
        params = offline_computing(ts, scale, EnergyModel.e1())
        assert set(params) == {"A", "B"}

    def test_params_match_task_properties(self, scale):
        ts = TaskSet([_task(mean=100.0, window=1.0)])
        p = offline_computing(ts, scale, EnergyModel.e1())["T"]
        assert p.allocation == ts[0].allocation
        assert p.critical_time == ts[0].critical_time
        assert p.optimal_frequency in scale

    def test_window_rate(self, scale):
        ts = TaskSet([_task(mean=100.0, window=1.0)])
        p = offline_computing(ts, scale, EnergyModel.e1())["T"]
        assert p.window_rate == pytest.approx(100.0)
