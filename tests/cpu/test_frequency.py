"""Tests for FrequencyScale (repro.cpu.frequency)."""

import pytest

from repro.cpu import POWERNOW_K6_MHZ, FrequencyError, FrequencyScale


class TestConstruction:
    def test_sorted_levels(self):
        s = FrequencyScale([3.0, 1.0, 2.0])
        assert s.levels == (1.0, 2.0, 3.0)

    def test_min_max(self):
        s = FrequencyScale.powernow_k6()
        assert s.f_min == 360.0
        assert s.f_max == 1000.0

    def test_powernow_levels(self):
        assert FrequencyScale.powernow_k6().levels == POWERNOW_K6_MHZ

    def test_len_iter_contains(self):
        s = FrequencyScale.powernow_k6()
        assert len(s) == 7
        assert list(s) == list(POWERNOW_K6_MHZ)
        assert 730.0 in s
        assert 700.0 not in s

    def test_single(self):
        s = FrequencyScale.single(500.0)
        assert s.levels == (500.0,)
        assert s.f_min == s.f_max == 500.0

    def test_uniform(self):
        s = FrequencyScale.uniform(100.0, 500.0, 5)
        assert s.levels == (100.0, 200.0, 300.0, 400.0, 500.0)

    def test_uniform_one_level_uses_fmax(self):
        assert FrequencyScale.uniform(100.0, 500.0, 1).levels == (500.0,)

    def test_rejects_empty(self):
        with pytest.raises(FrequencyError):
            FrequencyScale([])

    def test_rejects_duplicates(self):
        with pytest.raises(FrequencyError):
            FrequencyScale([1.0, 1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(FrequencyError):
            FrequencyScale([0.0, 1.0])

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(FrequencyError):
            FrequencyScale.uniform(500.0, 100.0, 3)


class TestSelect:
    """The paper's selectFreq(x)."""

    def test_exact_level(self):
        s = FrequencyScale.powernow_k6()
        assert s.select(550.0) == 550.0

    def test_rounds_up(self):
        s = FrequencyScale.powernow_k6()
        assert s.select(551.0) == 640.0
        assert s.select(361.0) == 550.0

    def test_below_minimum_selects_minimum(self):
        s = FrequencyScale.powernow_k6()
        assert s.select(100.0) == 360.0
        assert s.select(0.0) == 360.0
        assert s.select(-5.0) == 360.0

    def test_overload_returns_none(self):
        # "selectFreq() would fail to return a value" (Section 3.3).
        assert FrequencyScale.powernow_k6().select(1001.0) is None

    def test_select_capped_saturates(self):
        s = FrequencyScale.powernow_k6()
        assert s.select_capped(1500.0) == 1000.0
        assert s.select_capped(551.0) == 640.0

    def test_float_noise_near_level(self):
        s = FrequencyScale.powernow_k6()
        assert s.select(550.0 * (1.0 + 1e-15)) == 550.0


class TestFloorAtLeast:
    def test_floor(self):
        s = FrequencyScale.powernow_k6()
        assert s.floor(551.0) == 550.0
        assert s.floor(550.0) == 550.0
        assert s.floor(100.0) == 360.0

    def test_at_least(self):
        s = FrequencyScale.powernow_k6()
        assert s.at_least(551.0) == 640.0
        assert s.at_least(2000.0) == 1000.0

    def test_normalized(self):
        s = FrequencyScale([500.0, 1000.0])
        assert s.normalized() == [0.5, 1.0]
