"""Tests for the Martin energy model (repro.cpu.energy)."""

import pytest

from repro.cpu import EnergyError, EnergyModel, FrequencyScale, energy_optimal_frequency


class TestEnergyPerCycle:
    def test_equation_1(self):
        # E(f) = s3 f^2 + s2 f + s1 + s0/f
        m = EnergyModel(s3=2.0, s2=3.0, s1=5.0, s0=8.0)
        assert m.energy_per_cycle(2.0) == pytest.approx(2 * 4 + 3 * 2 + 5 + 8 / 2)

    def test_cpu_only_is_quadratic_per_cycle(self):
        m = EnergyModel.e1()
        assert m.energy_per_cycle(10.0) == pytest.approx(100.0)

    def test_power_is_f_times_energy(self):
        m = EnergyModel(s3=1.0, s0=4.0)
        f = 3.0
        assert m.power(f) == pytest.approx(f * m.energy_per_cycle(f))

    def test_energy_for_cycles(self):
        m = EnergyModel.e1()
        assert m.energy_for(5.0, 10.0) == pytest.approx(500.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(EnergyError):
            EnergyModel.e1().energy_per_cycle(0.0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(EnergyError):
            EnergyModel.e1().energy_for(-1.0, 10.0)


class TestConstruction:
    def test_rejects_all_zero(self):
        with pytest.raises(EnergyError):
            EnergyModel()

    def test_rejects_negative_coefficient(self):
        with pytest.raises(EnergyError):
            EnergyModel(s3=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            EnergyModel.e1().s3 = 2.0

    def test_has_fixed_power(self):
        assert EnergyModel.e3(1000.0).has_fixed_power()
        assert not EnergyModel.e1().has_fixed_power()

    def test_str_uses_name(self):
        assert str(EnergyModel.e1()) == "E1"


class TestPresets:
    def test_e1_cpu_only(self):
        m = EnergyModel.e1()
        assert (m.s3, m.s2, m.s1, m.s0) == (1.0, 0.0, 0.0, 0.0)

    def test_e2_adds_linear_system_power(self):
        m = EnergyModel.e2(1000.0)
        assert m.s3 == 0.5
        assert m.s1 == pytest.approx(0.1 * 1000.0**2)
        assert m.s0 == 0.0

    def test_e3_adds_fixed_system_power(self):
        m = EnergyModel.e3(1000.0)
        assert m.s3 == 0.5
        assert m.s0 == pytest.approx(0.5 * 1000.0**3)

    def test_presets_reject_bad_fmax(self):
        with pytest.raises(EnergyError):
            EnergyModel.e2(0.0)
        with pytest.raises(EnergyError):
            EnergyModel.e3(-1.0)

    def test_cpu_only_constant(self):
        m = EnergyModel.cpu_only(2.0)
        assert m.energy_per_cycle(3.0) == pytest.approx(18.0)


class TestShapeProperties:
    """Qualitative properties the paper's argument rests on."""

    def test_e1_monotone_increasing(self):
        m = EnergyModel.e1()
        scale = FrequencyScale.powernow_k6()
        vals = [m.energy_per_cycle(f) for f in scale.levels]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_e3_nonmonotone_with_interior_minimum(self):
        scale = FrequencyScale.powernow_k6()
        m = EnergyModel.e3(scale.f_max)
        vals = [m.energy_per_cycle(f) for f in scale.levels]
        # Slowest level costs more per cycle than the fastest.
        assert vals[0] > vals[-1]
        # And the minimum is strictly inside the ladder.
        k = vals.index(min(vals))
        assert 0 < k < len(vals) - 1

    def test_e3_optimum_is_820(self):
        # d/df (0.5 f^2 + 0.5 f_m^3 / f) = 0  =>  f* = (0.5 f_m^3)^(1/3)
        # ~ 794 MHz, whose nearest not-worse ladder level is 820.
        scale = FrequencyScale.powernow_k6()
        m = EnergyModel.e3(scale.f_max)
        assert energy_optimal_frequency(m, scale) == 820.0

    def test_e1_optimum_is_fmin(self):
        scale = FrequencyScale.powernow_k6()
        assert energy_optimal_frequency(EnergyModel.e1(), scale) == scale.f_min
