"""Cross-checks of the Table 2 energy presets against the paper's text.

Section 2.4 spells out the component structure of Martin's model; these
tests pin each textual claim to the implementation so regressions in
the presets are caught as *semantic* failures, not just numeric ones.
"""

import pytest

from repro.cpu import EnergyModel, FrequencyScale


class TestPaperSection24Claims:
    def test_cpu_power_is_cubic(self):
        # "P_d of CPU is given by S3 f^3".
        m = EnergyModel(s3=2.0)
        assert m.power(10.0) == pytest.approx(2.0 * 1000.0)

    def test_fixed_voltage_components_linear_power(self):
        # "P_d of those that must operate at a fixed voltage (e.g. main
        # memory) is given by S1 f" -> constant energy per cycle.
        m = EnergyModel(s1=4.0)
        assert m.power(10.0) == pytest.approx(40.0)
        assert m.energy_per_cycle(10.0) == m.energy_per_cycle(500.0) == 4.0

    def test_constant_power_components(self):
        # "P_d of those that consume constant power with respect to the
        # frequency (e.g. display devices) ... constant S0".
        m = EnergyModel(s0=8.0)
        assert m.power(10.0) == pytest.approx(8.0)
        assert m.power(100.0) == pytest.approx(8.0)
        # Per cycle, constant power means slower is MORE expensive.
        assert m.energy_per_cycle(10.0) > m.energy_per_cycle(100.0)

    def test_second_order_term(self):
        # "the quadratic term S2 f^2 is also included".
        m = EnergyModel(s2=3.0)
        assert m.power(10.0) == pytest.approx(300.0)

    def test_total_energy_formula(self):
        # E_i = e_i (S3 f^3 + S2 f^2 + S1 f + S0) with e_i = cycles/f.
        m = EnergyModel(s3=1.0, s2=2.0, s1=3.0, s0=4.0)
        f, cycles = 7.0, 21.0
        e_time = cycles / f
        expected = e_time * (f**3 + 2 * f**2 + 3 * f + 4)
        assert m.energy_for(cycles, f) == pytest.approx(expected)


class TestLadderInteraction:
    def test_e1_normalised_floor_is_0_13(self):
        # The value every Figure 2/3 underload curve saturates at.
        scale = FrequencyScale.powernow_k6()
        m = EnergyModel.e1()
        ratio = m.energy_per_cycle(scale.f_min) / m.energy_per_cycle(scale.f_max)
        assert ratio == pytest.approx(0.1296, abs=1e-4)

    def test_e3_inversion_magnitude(self):
        # E(360)/E(1000) = 1.454 under E3 — the Figure 2(d) number.
        scale = FrequencyScale.powernow_k6()
        m = EnergyModel.e3(scale.f_max)
        ratio = m.energy_per_cycle(360.0) / m.energy_per_cycle(1000.0)
        assert ratio == pytest.approx(1.4537, abs=1e-3)
