"""Tests for the simulated processor (repro.cpu.processor)."""

import pytest

from repro.cpu import EnergyError, EnergyModel, FrequencyError, FrequencyScale, Processor


@pytest.fixture
def cpu():
    return Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())


class TestFrequencyControl:
    def test_starts_at_fmax(self, cpu):
        assert cpu.frequency == 1000.0

    def test_set_valid_level(self, cpu):
        cpu.set_frequency(550.0)
        assert cpu.frequency == 550.0

    def test_rejects_off_ladder(self, cpu):
        with pytest.raises(FrequencyError):
            cpu.set_frequency(600.0)

    def test_same_frequency_is_free(self, cpu):
        cpu.set_frequency(1000.0)
        assert cpu.stats.switch_count == 0

    def test_switch_counted(self, cpu):
        cpu.set_frequency(550.0)
        cpu.set_frequency(1000.0)
        assert cpu.stats.switch_count == 2

    def test_switch_overheads(self):
        cpu = Processor(
            FrequencyScale.powernow_k6(),
            EnergyModel.e1(),
            switch_time=1e-4,
            switch_energy=5.0,
        )
        overhead = cpu.set_frequency(550.0)
        assert overhead == 1e-4
        assert cpu.stats.switch_energy == 5.0


class TestExecution:
    def test_run_accumulates_cycles(self, cpu):
        cpu.set_frequency(550.0)
        cycles = cpu.run(2.0)
        assert cycles == pytest.approx(1100.0)
        assert cpu.stats.cycles_executed == pytest.approx(1100.0)
        assert cpu.stats.busy_time == 2.0

    def test_run_accrues_energy(self, cpu):
        cpu.set_frequency(550.0)
        cpu.run(2.0)
        assert cpu.stats.energy == pytest.approx(1100.0 * 550.0**2)

    def test_run_cycles_returns_duration(self, cpu):
        cpu.set_frequency(360.0)
        assert cpu.run_cycles(360.0) == pytest.approx(1.0)

    def test_zero_duration_noop(self, cpu):
        assert cpu.run(0.0) == 0.0
        assert cpu.stats.busy_time == 0.0

    def test_rejects_negative_duration(self, cpu):
        with pytest.raises(EnergyError):
            cpu.run(-1.0)

    def test_residency_tracking(self, cpu):
        cpu.run(1.0)
        cpu.set_frequency(550.0)
        cpu.run(2.0)
        assert cpu.stats.residency[1000.0] == pytest.approx(1.0)
        assert cpu.stats.residency[550.0] == pytest.approx(2.0)

    def test_average_frequency_cycle_weighted(self, cpu):
        cpu.run(1.0)  # 1000 Mc at 1000
        cpu.set_frequency(360.0)
        cpu.run(1.0)  # 360 Mc at 360
        assert cpu.stats.average_frequency == pytest.approx(1360.0 / 2.0)


class TestIdle:
    def test_idle_free_by_default(self, cpu):
        cpu.idle(5.0)
        assert cpu.stats.idle_time == 5.0
        assert cpu.stats.idle_energy == 0.0

    def test_idle_power_charged(self):
        cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1(), idle_power=2.0)
        cpu.idle(3.0)
        assert cpu.stats.idle_energy == pytest.approx(6.0)

    def test_total_energy_sums_components(self):
        cpu = Processor(
            FrequencyScale.powernow_k6(),
            EnergyModel.e1(),
            idle_power=1.0,
            switch_energy=10.0,
        )
        cpu.run(1.0)
        cpu.idle(2.0)
        cpu.set_frequency(550.0)
        assert cpu.stats.total_energy == pytest.approx(cpu.stats.energy + 2.0 + 10.0)

    def test_rejects_negative_idle_power(self):
        with pytest.raises(EnergyError):
            Processor(FrequencyScale.powernow_k6(), EnergyModel.e1(), idle_power=-1.0)


class TestUtilities:
    def test_time_for_cycles(self, cpu):
        assert cpu.time_for_cycles(500.0) == pytest.approx(0.5)
        assert cpu.time_for_cycles(500.0, frequency=500.0) == pytest.approx(1.0)

    def test_reset(self, cpu):
        cpu.set_frequency(550.0)
        cpu.run(1.0)
        cpu.reset()
        assert cpu.frequency == 1000.0
        assert cpu.stats.cycles_executed == 0.0
        assert cpu.stats.total_energy == 0.0

    def test_total_time(self, cpu):
        cpu.run(1.0)
        cpu.idle(2.0)
        assert cpu.stats.total_time == pytest.approx(3.0)
