"""Tests for the finite-energy-budget extension (repro.ext.energy_budget)."""

import numpy as np
import pytest

from repro.core import EUAStar
from repro.experiments import energy_setting, synthesize_taskset
from repro.ext import BudgetedEUA
from repro.sim import Platform, materialize, simulate


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    taskset = synthesize_taskset(1.2, rng, tuf_shape="step", nu=1.0, rho=0.96)
    return materialize(taskset, 2.0, rng)


@pytest.fixture(scope="module")
def platform():
    return Platform(energy_model=energy_setting("E1"))


@pytest.fixture(scope="module")
def reference(workload, platform):
    return simulate(workload, EUAStar(), platform=platform)


class TestConstruction:
    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            BudgetedEUA(budget=0.0, mission_horizon=1.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            BudgetedEUA(budget=1.0, mission_horizon=0.0)


class TestBehaviour:
    def test_generous_budget_matches_eua(self, workload, platform, reference):
        r = simulate(
            workload,
            BudgetedEUA(budget=reference.energy * 10.0, mission_horizon=2.0),
            platform=platform,
        )
        assert r.metrics.accrued_utility == pytest.approx(
            reference.metrics.accrued_utility, rel=0.01
        )

    def test_budget_honoured(self, workload, platform, reference):
        budget = reference.energy * 0.4
        r = simulate(
            workload,
            BudgetedEUA(budget=budget, mission_horizon=2.0),
            platform=platform,
        )
        # Overshoot bounded by one in-flight job segment.
        assert r.energy <= budget * 1.05

    def test_utility_monotone_in_budget(self, workload, platform, reference):
        utils = []
        for frac in (0.2, 0.5, 1.0):
            r = simulate(
                workload,
                BudgetedEUA(budget=reference.energy * frac, mission_horizon=2.0),
                platform=platform,
            )
            utils.append(r.metrics.accrued_utility)
        assert utils[0] <= utils[1] + 1e-6 <= utils[2] + 1e-5

    def test_rejections_counted(self, workload, platform, reference):
        sched = BudgetedEUA(budget=reference.energy * 0.3, mission_horizon=2.0)
        simulate(workload, sched, platform=platform)
        assert sched.energy_rejections > 0

    def test_starved_budget_salvages_some_utility(self, workload, platform, reference):
        r = simulate(
            workload,
            BudgetedEUA(budget=reference.energy * 0.15, mission_horizon=2.0),
            platform=platform,
        )
        assert r.metrics.accrued_utility > 0.0
        assert r.metrics.accrued_utility < reference.metrics.accrued_utility
