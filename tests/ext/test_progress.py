"""Tests for progress-based utility accrual (repro.ext.progress)."""

import numpy as np
import pytest

from repro.arrivals import UAMSpec
from repro.core import EUAStar
from repro.demand import DeterministicDemand
from repro.experiments import energy_setting, synthesize_taskset
from repro.ext import ProgressAwareEUA, ProgressMetrics, progress_utility
from repro.sim import Job, JobStatus, Platform, Task, materialize, simulate
from repro.tuf import LinearTUF, StepTUF


def _job(status, executed, demand=10.0, abort_time=None, completion=None,
         accrued=0.0, tuf=None):
    task = Task("T", tuf or LinearTUF(10.0, 1.0), DeterministicDemand(10.0),
                UAMSpec(1, 1.0), nu=0.3)
    j = Job(task, 0, 0.0, demand)
    j.executed = executed
    j.status = status
    j.abort_time = abort_time
    j.completion_time = completion
    j.accrued_utility = accrued
    return j


class TestProgressUtility:
    def test_completed_keeps_full_utility(self):
        j = _job(JobStatus.COMPLETED, 10.0, completion=0.5, accrued=5.0)
        assert progress_utility(j) == 5.0

    def test_aborted_partial_credit(self):
        # 40% done, aborted at 0.5 where U = 5.0.
        j = _job(JobStatus.ABORTED, 4.0, abort_time=0.5)
        assert progress_utility(j) == pytest.approx(0.4 * 5.0)

    def test_expired_past_termination_is_zero(self):
        j = _job(JobStatus.EXPIRED, 4.0, abort_time=1.0)
        assert progress_utility(j) == 0.0  # U(1.0) = 0 at termination

    def test_pending_is_zero(self):
        assert progress_utility(_job(JobStatus.PENDING, 4.0)) == 0.0

    def test_abort_without_time_is_zero(self):
        j = _job(JobStatus.ABORTED, 4.0, abort_time=None)
        assert progress_utility(j) == 0.0

    def test_progress_capped_at_one(self):
        j = _job(JobStatus.ABORTED, 50.0, demand=10.0, abort_time=0.2)
        u_at = 10.0 * (1.0 - 0.2)
        assert progress_utility(j) == pytest.approx(u_at)


class TestProgressMetrics:
    def test_uplift_non_negative(self):
        rng = np.random.default_rng(13)
        ts = synthesize_taskset(1.5, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        trace = materialize(ts, 2.0, rng)
        result = simulate(trace, EUAStar(), platform=Platform(energy_model=energy_setting("E1")))
        pm = ProgressMetrics(result, ts)
        assert pm.uplift_vs_completion_model >= -1e-9
        assert pm.accrued_utility >= result.metrics.accrued_utility - 1e-9
        assert 0.0 <= pm.normalized_utility <= 1.0

    def test_per_task_bookkeeping(self):
        rng = np.random.default_rng(14)
        ts = synthesize_taskset(0.5, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        trace = materialize(ts, 1.0, rng)
        result = simulate(trace, EUAStar(), platform=Platform(energy_model=energy_setting("E1")))
        pm = ProgressMetrics(result, ts)
        assert set(pm.per_task) == set(ts.names)
        assert pm.accrued_utility == pytest.approx(sum(pm.per_task.values()))


class TestProgressAwareEUA:
    def test_runs_end_to_end(self):
        rng = np.random.default_rng(15)
        ts = synthesize_taskset(1.0, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        trace = materialize(ts, 2.0, rng)
        result = simulate(trace, ProgressAwareEUA(),
                          platform=Platform(energy_model=energy_setting("E1")))
        assert result.metrics.completed > 0

    def test_marginal_metric_demotes_banked_jobs(self):
        from repro.cpu import EnergyModel

        sched = ProgressAwareEUA()
        fresh = _job(JobStatus.PENDING, 0.0)
        banked = _job(JobStatus.PENDING, 9.0)
        model = EnergyModel.e1()
        m_fresh = sched._metric(fresh, 0.0, 1000.0, model)
        # Classic EUA* would score the nearly-done job far higher; the
        # progress-aware metric discounts by (1 - progress).
        classic = EUAStar()._metric(banked, 0.0, 1000.0, model)
        m_banked = sched._metric(banked, 0.0, 1000.0, model)
        assert m_banked < classic
        assert m_fresh > 0.0
