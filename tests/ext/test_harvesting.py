"""Tests for energy-harvesting scheduling (repro.ext.harvesting)."""

import numpy as np
import pytest

from repro.core import EUAStar
from repro.experiments import energy_setting, synthesize_taskset
from repro.ext import HarvestProfile, HarvestingEUA
from repro.sim import Platform, materialize, simulate


class TestHarvestProfile:
    def test_constant(self):
        p = HarvestProfile.constant(5.0)
        assert p.power_at(0.0) == 5.0
        assert p.power_at(100.0) == 5.0
        assert p.harvested(4.0) == pytest.approx(20.0)

    def test_piecewise(self):
        p = HarvestProfile([(0.0, 10.0), (2.0, 0.0), (3.0, 4.0)])
        assert p.power_at(1.0) == 10.0
        assert p.power_at(2.5) == 0.0
        assert p.power_at(3.5) == 4.0
        assert p.harvested(4.0) == pytest.approx(10.0 * 2 + 0.0 + 4.0)

    def test_harvested_before_zero(self):
        assert HarvestProfile.constant(1.0).harvested(-1.0) == 0.0

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError):
            HarvestProfile([(1.0, 5.0)])

    def test_rejects_unordered_segments(self):
        with pytest.raises(ValueError):
            HarvestProfile([(0.0, 5.0), (2.0, 1.0), (2.0, 3.0)])

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            HarvestProfile([(0.0, -1.0)])


class TestHarvestingEUA:
    def _platform(self):
        return Platform(energy_model=energy_setting("E1"))

    def _workload(self, load=0.8, seed=81, horizon=2.0):
        rng = np.random.default_rng(seed)
        ts = synthesize_taskset(load, rng, tuf_shape="step", nu=1.0, rho=0.96)
        return materialize(ts, horizon, rng)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HarvestingEUA(0.0, HarvestProfile.constant(1.0))

    def test_rejects_bad_bands(self):
        with pytest.raises(ValueError):
            HarvestingEUA(1.0, HarvestProfile.constant(1.0),
                          reserve_fraction=0.6, comfort_fraction=0.5)

    def test_rejects_overfull_initial_charge(self):
        with pytest.raises(ValueError):
            HarvestingEUA(1.0, HarvestProfile.constant(1.0), initial_charge=2.0)

    def test_abundant_harvest_matches_eua(self):
        trace = self._workload()
        platform = self._platform()
        reference = simulate(trace, EUAStar(), platform=platform)
        # Harvest faster than the system can possibly burn.
        huge = HarvestingEUA(
            capacity=reference.energy,
            harvest=HarvestProfile.constant(reference.energy),
            name="H",
        )
        r = simulate(trace, huge, platform=platform)
        assert r.metrics.accrued_utility == pytest.approx(
            reference.metrics.accrued_utility, rel=0.01
        )
        assert huge.depleted_decisions == 0

    def test_starved_battery_idles(self):
        trace = self._workload()
        platform = self._platform()
        reference = simulate(trace, EUAStar(), platform=platform)
        tiny = HarvestingEUA(
            capacity=reference.energy * 0.05,
            harvest=HarvestProfile.constant(0.0),
            name="H",
        )
        r = simulate(trace, tiny, platform=platform)
        assert tiny.depleted_decisions > 0
        assert r.energy < reference.energy
        assert r.metrics.accrued_utility < reference.metrics.accrued_utility

    def test_harvest_restores_operation(self):
        """With zero initial charge and steady harvest, work resumes
        once the reserve refills — some utility is accrued."""
        trace = self._workload(load=0.5)
        platform = self._platform()
        reference = simulate(trace, EUAStar(), platform=platform)
        mean_power = reference.energy / trace.horizon
        sched = HarvestingEUA(
            capacity=reference.energy * 0.5,
            harvest=HarvestProfile.constant(2.0 * mean_power),
            initial_charge=0.0,
            name="H",
        )
        r = simulate(trace, sched, platform=platform)
        assert r.metrics.accrued_utility > 0.0
        # Never spends beyond charge + harvest.
        assert r.energy <= sched.initial_charge + sched.harvest.harvested(trace.horizon) + 1e-6

    def test_more_harvest_never_hurts(self):
        trace = self._workload(load=1.0)
        platform = self._platform()
        reference = simulate(trace, EUAStar(), platform=platform)
        utils = []
        for factor in (0.2, 0.6, 2.0):
            mean_power = reference.energy / trace.horizon
            sched = HarvestingEUA(
                capacity=reference.energy * 0.3,
                harvest=HarvestProfile.constant(factor * mean_power),
                initial_charge=reference.energy * 0.1,
                name="H",
            )
            r = simulate(trace, sched, platform=platform)
            utils.append(r.metrics.accrued_utility)
        assert utils[0] <= utils[1] + 1e-6
        assert utils[1] <= utils[2] + 1e-6
