"""Shared fixture logic for the golden-trace regression suite.

One fixed-seed Table-1 workload per scheduler; the full structured
decision/event log (``repro.obs`` JSONL) is committed under
``tests/golden/`` and every run must reproduce it byte-for-byte (modulo
JSON parsing — the diff compares parsed objects so a cosmetic
serialisation change fails loudly but legibly).

Regenerate with ``python tests/golden/regenerate.py`` after an
*intentional* behaviour change, and say why in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.experiments import synthesize_taskset
from repro.experiments.adaptive import drifting_trace
from repro.obs import Observer, events_to_jsonl
from repro.resources import REUA, ResourceMap
from repro.runtime import AdaptiveRuntime, RuntimeConfig
from repro.sched import make_scheduler
from repro.sim import Platform, materialize, simulate

GOLDEN_DIR = Path(__file__).resolve().parent

#: The frozen workload: Table-1 periodic step-TUF synthesis.
SEED = 11
LOAD = 0.8
HORIZON = 0.4

#: The adaptive-runtime case replays the canonical drift scenario from
#: ``repro.experiments.adaptive`` instead (the compliant short-horizon
#: workload above never trips the detectors, so its runtime log would
#: be indistinguishable from plain EUA*).
ADAPTIVE_LABEL = "EUA*-adaptive"
ADAPTIVE_LOAD = 0.9
ADAPTIVE_HORIZON = 1.0

#: The multicore case freezes the partitioned m=2 engine: the same
#: Table-1 synthesis at an m-scaled load, packed onto two cores, each
#: running the uniprocessor EUA* over its sub-workload.  Events carry a
#: ``core`` field; the interleaving (core 0's full log, then core 1's)
#: is part of the frozen contract.
MP_LABEL = "EUA*-mp-partitioned"
MP_CORES = 2

#: The global-mode multicore case freezes the shared-queue m=2 engine
#: over the same m-scaled workload: top-m selection (dvs=False views),
#: affinity-first placement, and — the PR 10 fix — per-core residual
#: ``decideFreq`` views, whose core-stamped FREQ_DECISION events are
#: part of the frozen contract.
MP_GLOBAL_LABEL = "EUA*-mp-global"

#: scheduler label -> (filename, factory).  REUA is not in the registry
#: (it needs a resource map), so it gets an explicit factory.
CASES = {
    "EUA*": ("eua_star.jsonl", lambda: make_scheduler("EUA*")),
    "DASA": ("dasa.jsonl", lambda: make_scheduler("DASA")),
    "EDF": ("edf.jsonl", lambda: make_scheduler("EDF")),
    "REUA": ("reua.jsonl", lambda: REUA(ResourceMap({}))),
    ADAPTIVE_LABEL: ("eua_star_adaptive.jsonl", lambda: make_scheduler("EUA*")),
    MP_LABEL: ("eua_star_mp_partitioned.jsonl", lambda: make_scheduler("EUA*")),
    MP_GLOBAL_LABEL: ("eua_star_mp_global.jsonl", lambda: make_scheduler("EUA*")),
}


def record_events_jsonl(label: str, checker=None, spans: bool = False) -> str:
    """Run the fixed workload under ``label``'s scheduler and return the
    structured event log as JSONL text.

    ``checker`` optionally attaches a :class:`repro.check.InvariantChecker`
    and ``spans`` a live :class:`repro.obs.SpanTracer` — the transparency
    suite asserts the log is bit-identical with and without either.
    """
    filename, factory = CASES[label]
    observer = Observer(events=True, metrics=False, spans=spans)
    if label == ADAPTIVE_LABEL:
        platform = Platform.powernow_k6()
        trace = drifting_trace(
            seed=SEED, load=ADAPTIVE_LOAD, horizon=ADAPTIVE_HORIZON, platform=platform
        )
        runtime = AdaptiveRuntime(RuntimeConfig())
        simulate(trace, factory(), platform, observer=observer, runtime=runtime,
                 checker=checker)
    elif label in (MP_LABEL, MP_GLOBAL_LABEL):
        from repro.mp import MulticorePlatform, simulate_mp

        rng = np.random.default_rng(SEED)
        taskset = synthesize_taskset(LOAD * MP_CORES, rng)
        trace = materialize(taskset, HORIZON, rng)
        platform = MulticorePlatform.from_platform(Platform(), cores=MP_CORES)
        mode = "partitioned" if label == MP_LABEL else "global"
        # Global mode has no per-core InvariantChecker hooks (it raises
        # on a non-None checker); the transparency suite's checker arm
        # degenerates to the plain replay for this case.
        simulate_mp(trace, factory, platform, mode=mode, observer=observer,
                    checker=checker if mode == "partitioned" else None)
    else:
        rng = np.random.default_rng(SEED)
        taskset = synthesize_taskset(LOAD, rng)
        trace = materialize(taskset, HORIZON, rng)
        simulate(trace, factory(), Platform(), observer=observer, checker=checker)
    return events_to_jsonl(observer.events)


def golden_path(label: str) -> Path:
    return GOLDEN_DIR / CASES[label][0]


def parse_jsonl(text: str) -> List[Dict]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def diff_events(expected: List[Dict], actual: List[Dict]) -> List[str]:
    """Human-readable mismatch report between two parsed event streams."""
    problems: List[str] = []
    if len(expected) != len(actual):
        problems.append(f"event count: golden={len(expected)} replay={len(actual)}")
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            keys = sorted(set(e) | set(a))
            fields = [
                f"{k}: golden={e.get(k)!r} replay={a.get(k)!r}"
                for k in keys
                if e.get(k) != a.get(k)
            ]
            problems.append(f"event #{i}: " + "; ".join(fields))
            if len(problems) >= 10:
                problems.append("... (further diffs suppressed)")
                break
    return problems
