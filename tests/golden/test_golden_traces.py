"""Golden-trace regression: replay the frozen workloads and diff.

Each committed JSONL file under ``tests/golden/`` is the full
structured decision/event log of one scheduler over the fixed-seed
Table-1 workload (see ``_harness``).  The replay must reproduce every
event exactly — sequence numbers, times, kinds, job keys, and every
float in the ``fields`` payload.  A diff means scheduler behaviour
changed; if the change is intentional, regenerate with
``python tests/golden/regenerate.py`` and justify it in the commit.
"""

import json

import pytest

from ._harness import (
    ADAPTIVE_LABEL,
    CASES,
    diff_events,
    golden_path,
    parse_jsonl,
    record_events_jsonl,
)


@pytest.mark.parametrize("label", sorted(CASES))
def test_golden_file_exists_and_is_valid_jsonl(label):
    path = golden_path(label)
    assert path.exists(), f"missing golden trace {path}; run tests/golden/regenerate.py"
    events = parse_jsonl(path.read_text())
    assert events, f"{path} is empty"
    for event in events:
        assert event["type"] == "event"
        assert "seq" in event and "time" in event and "kind" in event


@pytest.mark.parametrize("label", sorted(CASES))
def test_replay_matches_golden(label):
    expected = parse_jsonl(golden_path(label).read_text())
    actual = parse_jsonl(record_events_jsonl(label))
    problems = diff_events(expected, actual)
    assert not problems, (
        f"{label} replay diverged from the golden trace:\n  " + "\n  ".join(problems)
    )


@pytest.mark.parametrize("label", sorted(CASES))
def test_replay_is_itself_deterministic(label):
    """Two replays in one process must serialise identically — guards
    against nondeterminism sneaking into the harness itself (shared RNG,
    cache-order leakage into event payloads, ...)."""
    assert record_events_jsonl(label) == record_events_jsonl(label)


def test_golden_traces_differ_across_schedulers():
    """Sanity: the four policies do not share one behaviour (a harness
    bug that ran the same scheduler four times would pass the diffs)."""
    texts = {label: golden_path(label).read_text() for label in CASES}
    assert texts["EUA*"] != texts["EDF"]
    assert texts["DASA"] != texts["EDF"]
    # EUA* and REUA with an empty resource map agree on decisions by
    # design (no blockers to charge) but must both be present and valid.
    assert json.loads(texts["REUA"].splitlines()[0])["type"] == "event"


def test_adaptive_golden_contains_runtime_events():
    """The adaptive case exists to freeze the runtime layer's behaviour:
    its golden log must actually exercise that layer, not degenerate into
    a plain EUA* trace."""
    kinds = {e["kind"] for e in parse_jsonl(golden_path(ADAPTIVE_LABEL).read_text())}
    assert "drift_detected" in kinds
    assert "reallocation" in kinds
    assert "admission_decision" in kinds
