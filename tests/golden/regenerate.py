"""Regenerate the committed golden traces.

Usage (from the repository root)::

    PYTHONPATH=src python tests/golden/regenerate.py

Only run this after an *intentional* scheduler behaviour change; the
point of the suite is that unintentional changes fail the diff.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from golden._harness import CASES, golden_path, record_events_jsonl  # noqa: E402


def main() -> int:
    for label in CASES:
        path = golden_path(label)
        path.write_text(record_events_jsonl(label))
        n = len(path.read_text().splitlines())
        print(f"wrote {path} ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
