"""Lossless JSONL round-trips for traces, event logs and metrics."""

import numpy as np
import pytest

from repro.cpu import EnergyModel, FrequencyScale, Processor
from repro.core import EUAStar
from repro.demand import NormalDemand
from repro.arrivals import UAMSpec
from repro.obs import (
    EventKind,
    MetricsRegistry,
    Observer,
    events_from_jsonl,
    events_to_jsonl,
    metrics_from_jsonl,
    metrics_to_jsonl,
)
from repro.sim import Engine, Task, TaskSet, Trace, materialize
from repro.tuf import StepTUF


def _small_run(observer=None, record_trace=True, load=0.9, seed=3):
    tasks = [
        Task(f"T{i}", StepTUF(10.0 * (i + 1), w), NormalDemand(w * 60.0, w * 1e-6),
             UAMSpec(1, w))
        for i, w in enumerate((0.05, 0.13, 0.29))
    ]
    taskset = TaskSet(tasks).scaled_to_load(load, 1000.0)
    rng = np.random.default_rng(seed)
    workload = materialize(taskset, 1.5, rng)
    cpu = Processor(FrequencyScale.powernow_k6(), EnergyModel.e1())
    engine = Engine(workload, EUAStar(), cpu, record_trace=record_trace,
                    observer=observer)
    return engine.run()


def test_trace_jsonl_roundtrip_exact():
    result = _small_run()
    trace = result.trace
    assert trace.segments and trace.events  # non-trivial input
    text = trace.to_jsonl()
    rebuilt = Trace.from_jsonl(text)
    assert rebuilt == trace           # bit-exact float round-trip
    assert rebuilt.to_jsonl() == text


def test_trace_jsonl_empty():
    assert Trace.from_jsonl(Trace().to_jsonl()) == Trace()


def test_trace_jsonl_rejects_unknown_rows():
    with pytest.raises(ValueError):
        Trace.from_jsonl('{"type": "mystery"}')


def test_event_log_jsonl_roundtrip_exact():
    obs = Observer(events=True, metrics=False)
    _small_run(observer=obs, record_trace=False)
    log = obs.events
    assert len(log) > 0
    assert len(log.of_kind(EventKind.FREQ_DECISION)) > 0
    text = events_to_jsonl(log)
    rebuilt = events_from_jsonl(text)
    assert rebuilt == log
    assert events_to_jsonl(rebuilt) == text


def test_metrics_jsonl_roundtrip():
    obs = Observer(events=False, metrics=True)
    _small_run(observer=obs, record_trace=False)
    reg = obs.metrics
    # Exercise every instrument type in the wire format.
    assert reg.counters() and reg.gauges() and reg.histograms()
    rebuilt = metrics_from_jsonl(metrics_to_jsonl(reg))
    assert {k: c.value for k, c in rebuilt.counters().items()} == \
           {k: c.value for k, c in reg.counters().items()}
    for key, g in reg.gauges().items():
        r = rebuilt.gauges()[key]
        assert (r.value, r.total, r.n) == (g.value, g.total, g.n)
    for key, h in reg.histograms().items():
        assert rebuilt.histograms()[key].samples == h.samples
    assert metrics_to_jsonl(rebuilt) == metrics_to_jsonl(reg)


def test_metrics_jsonl_rejects_unknown_rows():
    with pytest.raises(ValueError):
        metrics_from_jsonl('{"type": "summary", "name": "x"}')


def test_concatenated_metrics_jsonl_merges():
    """Concatenating two exported registries imports as their merge —
    the streaming property the JSONL format is chosen for."""
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("aborts").inc(2.0)
    b.counter("aborts").inc(3.0)
    combined = metrics_from_jsonl(metrics_to_jsonl(a) + metrics_to_jsonl(b))
    assert combined.counter_value("aborts") == 5.0
