"""EventLog semantics: sequencing, filtering, ordering."""


from repro.obs import Event, EventKind, EventLog


def test_emit_assigns_monotonic_seq():
    log = EventLog()
    log.emit(0.0, EventKind.RELEASE, "T0:0")
    log.emit(0.0, EventKind.INSERT, "T0:0", source="EUA*", uer=1.5)
    log.emit(0.5, EventKind.COMPLETE, "T0:0", utility=10.0)
    assert [e.seq for e in log] == [0, 1, 2]
    assert len(log) == 3


def test_fields_are_kept_per_event():
    log = EventLog()
    log.emit(0.1, EventKind.FREQ_DECISION, "T0:0", source="EUA*",
             frequency=550.0, window_end=0.2, method="lookahead")
    (e,) = log.of_kind(EventKind.FREQ_DECISION)
    assert e.fields["frequency"] == 550.0
    assert e.fields["method"] == "lookahead"
    assert e.job == "T0:0"
    assert e.source == "EUA*"


def test_filters():
    log = EventLog()
    log.emit(0.0, EventKind.RELEASE, "A:0")
    log.emit(0.0, EventKind.RELEASE, "B:0")
    log.emit(0.2, EventKind.COMPLETE, "A:0")
    assert [e.job for e in log.of_kind(EventKind.RELEASE)] == ["A:0", "B:0"]
    assert [e.kind for e in log.for_job("A:0")] == [
        EventKind.RELEASE,
        EventKind.COMPLETE,
    ]


def test_time_ordering_check():
    log = EventLog()
    log.emit(0.0, EventKind.RELEASE, "A:0")
    log.emit(1.0, EventKind.COMPLETE, "A:0")
    assert log.is_time_ordered()
    log.append(Event(seq=2, time=0.5, kind=EventKind.RELEASE, job="B:0"))
    assert not log.is_time_ordered()


def test_equality_is_structural():
    a, b = EventLog(), EventLog()
    a.emit(0.0, EventKind.RELEASE, "A:0", release=0.0)
    b.emit(0.0, EventKind.RELEASE, "A:0", release=0.0)
    assert a == b
    b.emit(0.1, EventKind.ABORT, "A:0")
    assert a != b
