"""Every typed event kind must survive the JSONL wire bit-identically.

Parametrized over ``list(EventKind)`` so a future kind cannot be added
without inheriting round-trip coverage: the moment it appears in the
enum, it appears in this suite.
"""

import pytest

from repro.obs import EventKind, EventLog, events_from_jsonl, events_to_jsonl

#: Representative payloads per kind — realistic field shapes where the
#: producer is known, a generic mixed-scalar payload otherwise.  Every
#: JSON scalar type (float, int, str, bool, None) appears somewhere.
_FIELDS = {
    EventKind.RELEASE: {"task": "T1", "deadline": 0.125, "cycles": 40000},
    EventKind.INSERT: {"uer": 1234.5, "position": 2},
    EventKind.REJECT: {"uer": 0.5, "reason": "infeasible"},
    EventKind.SELECT: {"policy": "EDF"},
    EventKind.PREEMPT: {"by": "T2.j3"},
    EventKind.INHERIT: {"chain_end": "T3.j1", "depth": 2},
    EventKind.ABORT: {"reason": "individually_infeasible"},
    EventKind.EXPIRE: {"pending_cycles": 100.0},
    EventKind.COMPLETE: {"utility": 9.5, "tardy": False},
    EventKind.FREQ_DECISION: {"freq": 0.75, "window": 4, "feasible": True},
    EventKind.FREQ_SWITCH: {"from_freq": 0.5, "to_freq": 1.0},
    EventKind.DISPATCH: {"prev": None, "idle": True},
    EventKind.MIGRATE: {"core": 1, "previous_core": 0},
    EventKind.DRIFT_DETECTED: {"task": "T1", "stat": 3.2},
    EventKind.REALLOCATION: {"task": "T1", "new_rate": 8.0},
    EventKind.UAM_VIOLATION: {"task": "T2", "arrivals": 5, "bound": 3},
    EventKind.ADMISSION_DECISION: {"action": "shed", "task": "T2"},
    EventKind.INVARIANT_VIOLATION: {"invariant": "sigma_feasible"},
    EventKind.SPAN: {"phase": "engine.run/engine.decide", "count": 7,
                     "total": 0.01, "self_time": 0.008, "p50": 1e-3,
                     "p99": 2e-3},
    EventKind.TELEMETRY: {"wall_clock": 1.25, "coverage": 0.99,
                          "reps_per_second": 12.5, "cache_hit_rate": None},
}


def test_payload_table_is_exhaustive():
    """Fail when a kind is added to the enum without a payload here."""
    assert set(_FIELDS) == set(EventKind)


@pytest.mark.parametrize("kind", list(EventKind), ids=lambda k: k.value)
def test_kind_roundtrips_bit_identically(kind):
    log = EventLog()
    log.emit(0.25, kind, job="T1.j0", source="test", **_FIELDS[kind])
    text = events_to_jsonl(log)
    rebuilt = events_from_jsonl(text)
    assert list(rebuilt) == list(log)
    assert events_to_jsonl(rebuilt) == text


def test_mixed_kind_log_roundtrips_in_order():
    """One log holding every kind at once: order, seq and fields hold."""
    log = EventLog()
    for i, kind in enumerate(EventKind):
        log.emit(i * 0.1, kind, job=None, source="test", **_FIELDS[kind])
    text = events_to_jsonl(log)
    rebuilt = events_from_jsonl(text)
    assert [e.kind for e in rebuilt] == list(EventKind)
    assert [e.seq for e in rebuilt] == list(range(len(EventKind)))
    assert events_to_jsonl(rebuilt) == text


def test_unknown_kind_fails_loudly():
    with pytest.raises(ValueError):
        events_from_jsonl(
            '{"type": "event", "seq": 0, "time": 0.0, "kind": "warp_core", '
            '"job": null, "source": "engine", "fields": {}}'
        )
