"""SpanTracer semantics and the engine's span-transparency contract."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "golden"))
from _harness import CASES, golden_path, record_events_jsonl  # noqa: E402

from repro.obs import Observer, SpanTracer, spans_from_jsonl, spans_to_jsonl  # noqa: E402


# ----------------------------------------------------------------------
# Tracer semantics
# ----------------------------------------------------------------------
def test_nesting_paths_and_depths():
    tr = SpanTracer()
    with tr.span("root"):
        with tr.span("child"):
            with tr.span("leaf"):
                pass
        with tr.span("child"):
            pass
    assert tr.open_depth == 0
    assert [s.path for s in tr.spans] == [
        "root/child/leaf", "root/child", "root/child", "root",
    ]
    assert [s.depth for s in tr.spans] == [2, 1, 1, 0]


def test_self_time_excludes_children():
    tr = SpanTracer()
    with tr.span("root"):
        with tr.span("child"):
            pass
    root = tr.spans[-1]
    child = tr.spans[0]
    assert root.name == "root" and child.name == "child"
    assert root.self_time == pytest.approx(root.duration - child.duration)
    assert root.self_time >= 0.0


def test_self_times_tile_the_root():
    """The coverage identity: summed self-times equal the root duration."""
    tr = SpanTracer()
    with tr.span("root"):
        for _ in range(3):
            with tr.span("a"):
                with tr.span("b"):
                    pass
    root = next(s for s in tr.spans if s.name == "root")
    assert sum(s.self_time for s in tr.spans) == pytest.approx(
        root.duration, rel=1e-9
    )


def test_exit_without_enter_raises():
    with pytest.raises(RuntimeError):
        SpanTracer().exit()


def test_add_charge_semantics():
    """charge=True counts against the parent's self time; charge=False
    records statistics only (overlapping work)."""
    charged, uncharged = SpanTracer(), SpanTracer()
    with charged.span("root"):
        charged.add("ext", 10.0, start=0.0, charge=True)
    with uncharged.span("root"):
        uncharged.add("ext", 10.0, start=0.0, charge=False)
    root_c = next(s for s in charged.spans if s.name == "root")
    root_u = next(s for s in uncharged.spans if s.name == "root")
    # The charged root lost 10 synthetic seconds of self time (clamped
    # at zero since the real root is far shorter); the uncharged didn't.
    assert root_c.self_time == 0.0
    assert root_u.self_time == pytest.approx(root_u.duration)
    assert charged.aggregate()["root/ext"].total == 10.0


def test_merge_resequences_and_preserves_stats():
    a, b = SpanTracer(), SpanTracer(worker="w1")
    with a.span("x"):
        pass
    with b.span("x"):
        pass
    a.merge(b)
    assert [s.seq for s in a.spans] == [0, 1]
    assert a.aggregate()["x"].count == 2
    assert {s.worker for s in a.spans} == {"main", "w1"}


def test_aggregate_percentiles_follow_histogram_semantics():
    tr = SpanTracer()
    for d in (1.0, 2.0, 3.0, 4.0):
        tr.add("p", d, start=0.0, charge=False)
    stats = tr.aggregate()["p"]
    assert stats.count == 4
    assert stats.total == 10.0
    assert stats.p50 == 2.0  # nearest-rank: ceil(0.5*4) = rank 2
    assert stats.p99 == 4.0  # p99 saturates to max below n=100


def test_spans_jsonl_roundtrip_exact():
    tr = SpanTracer()
    with tr.span("root"):
        with tr.span("child"):
            pass
    text = spans_to_jsonl(tr)
    rebuilt = spans_from_jsonl(text)
    assert rebuilt.spans == tr.spans
    assert spans_to_jsonl(rebuilt) == text


def test_spans_jsonl_rejects_wrong_type_and_version():
    with pytest.raises(ValueError):
        spans_from_jsonl('{"type": "event"}')
    with pytest.raises(ValueError):
        spans_from_jsonl(
            '{"type": "span", "version": 99, "seq": 0, "path": "x", '
            '"name": "x", "depth": 0, "start": 0.0, "duration": 1.0, '
            '"self": 1.0}'
        )


# ----------------------------------------------------------------------
# Engine transparency: spans attached, behaviour unchanged
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label", sorted(CASES))
def test_golden_log_bit_identical_with_spans(label):
    """Span tracing must be observe-only: with a live tracer the engine
    reproduces the committed golden decision log byte for byte."""
    with_spans = record_events_jsonl(label, spans=True)
    assert with_spans == golden_path(label).read_text()


def test_engine_spans_close_and_cover_the_run(small_taskset, platform_e1):
    import numpy as np

    from repro.obs import build_phase_report
    from repro.sched import make_scheduler
    from repro.sim import materialize, simulate

    obs = Observer(events=False, metrics=False, spans=True)
    trace = materialize(small_taskset, 0.5, np.random.default_rng(7))
    simulate(trace, make_scheduler("EUA*"), platform_e1, observer=obs)
    assert obs.spans.open_depth == 0
    paths = {s.path for s in obs.spans.spans}
    assert "engine.run" in paths
    for phase in ("release", "expiry", "snapshot", "decide", "advance",
                  "complete"):
        assert f"engine.run/engine.{phase}" in paths
    report = build_phase_report(obs.spans)
    assert report.coverage() == pytest.approx(1.0, abs=0.10)
