"""Telemetry collection and PhaseReport assembly / wire round-trips."""

import pytest

from repro.obs import (
    EventKind,
    EventLog,
    PhaseReport,
    Profiler,
    SpanTracer,
    Telemetry,
    build_phase_report,
    events_from_jsonl,
    events_to_jsonl,
    phase_report_from_jsonl,
    phase_report_to_jsonl,
)


def _traced_telemetry() -> Telemetry:
    """A small synthetic capture with tree, lanes and counters."""
    telemetry = Telemetry()
    tr = telemetry.tracer
    with tr.span("campaign"):
        with tr.span("campaign.plan"):
            pass
        with tr.span("campaign.simulate"):
            pass
    telemetry.interval("pid-1", 0.0, 0.4)
    telemetry.interval("pid-2", 0.1, 0.3)
    telemetry.interval("pid-1", 0.5, 0.6)
    telemetry.count("campaign.reps_simulated", 8)
    telemetry.count("campaign.cache_hits", 3)
    telemetry.count("campaign.cache_misses", 1)
    return telemetry


def test_counters_accumulate_and_default_to_zero():
    telemetry = Telemetry()
    assert telemetry.counter_value("missing") == 0.0
    telemetry.count("x")
    telemetry.count("x", 2.5)
    assert telemetry.counter_value("x") == 3.5


def test_merge_combines_all_three_channels():
    a, b = Telemetry(), Telemetry()
    with a.tracer.span("p"):
        pass
    with b.tracer.span("p"):
        pass
    a.count("n", 1)
    b.count("n", 2)
    b.interval("w", 0.0, 1.0)
    a.merge(b)
    assert len(a.tracer) == 2
    assert a.counter_value("n") == 3.0
    assert len(a.intervals) == 1


def test_build_report_lanes_and_rates():
    report = build_phase_report(_traced_telemetry())
    assert report.version == 1
    # Lanes: sorted by worker, busy summed over intervals.
    assert [w.worker for w in report.workers] == ["pid-1", "pid-2"]
    pid1 = report.workers[0]
    assert pid1.busy == pytest.approx(0.5)
    assert len(pid1.intervals) == 2
    # Rates from the counters.
    assert report.cache_hit_rate == pytest.approx(0.75)
    simulate = report.phase("campaign/campaign.simulate")
    assert simulate is not None
    assert report.reps_per_second == pytest.approx(8.0 / simulate.total)
    # Counters survive into the report verbatim.
    assert report.counters["campaign.reps_simulated"] == 8.0


def test_build_report_wall_clock_defaults_to_root_span():
    telemetry = _traced_telemetry()
    report = build_phase_report(telemetry)
    root = max(telemetry.tracer.spans, key=lambda s: s.duration)
    assert report.wall_clock == pytest.approx(root.duration)
    assert report.coverage() == pytest.approx(1.0, abs=0.10)


def test_profiler_timers_fold_in_but_stay_out_of_coverage():
    profiler = Profiler()
    with profiler.time("decide"):
        pass
    tr = SpanTracer()
    with tr.span("root"):
        pass
    report = build_phase_report(tr, profiler=profiler)
    timer_row = report.phase("timers/decide")
    assert timer_row is not None
    assert timer_row.count == 1
    assert timer_row not in report.tree_rows()
    assert report.self_time_total() == pytest.approx(
        report.phase("root").self_time
    )


def test_phase_total_sums_by_leaf_name():
    report = build_phase_report(_traced_telemetry())
    assert report.phase_total("campaign.simulate") == pytest.approx(
        report.phase("campaign/campaign.simulate").total
    )
    assert report.phase_total("absent") == 0.0


def test_phase_report_jsonl_roundtrip_bit_identical():
    report = build_phase_report(_traced_telemetry())
    text = phase_report_to_jsonl(report)
    rebuilt = phase_report_from_jsonl(text)
    assert rebuilt == report
    assert phase_report_to_jsonl(rebuilt) == text


def test_phase_report_version_mismatch_fails_loudly():
    report = build_phase_report(_traced_telemetry())
    payload = report.to_dict()
    payload["version"] = 2
    with pytest.raises(ValueError, match="version 2"):
        PhaseReport.from_dict(payload)


def test_to_events_emits_span_and_telemetry_kinds():
    report = build_phase_report(_traced_telemetry())
    log = EventLog()
    report.to_events(log)
    kinds = [e.kind for e in log.events]
    assert kinds.count(EventKind.SPAN) == len(report.phases)
    assert kinds.count(EventKind.TELEMETRY) == 1
    summary = log.events[-1]
    assert summary.fields["coverage"] == pytest.approx(report.coverage())
    # The emitted events ride the standard JSONL wire format.
    text = events_to_jsonl(log)
    assert events_to_jsonl(events_from_jsonl(text)) == text


def test_render_mentions_phases_lanes_and_rates():
    report = build_phase_report(_traced_telemetry())
    text = report.render()
    assert "campaign.simulate" in text
    assert "pid-2" in text
    assert "cache hit rate 75.0%" in text
    assert "wall-clock" in text
