"""MetricsRegistry: instruments, labels, and cross-repetition merging."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_get_or_create_and_labels():
    reg = MetricsRegistry()
    reg.counter("jobs", task="A").inc()
    reg.counter("jobs", task="A").inc(2.0)
    reg.counter("jobs", task="B").inc()
    assert reg.counter_value("jobs", task="A") == 3.0
    assert reg.counter_value("jobs", task="B") == 1.0
    assert reg.counter_value("jobs", task="missing") == 0.0
    assert len(reg.family("jobs")) == 2


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("jobs").inc(-1.0)


def test_gauge_tracks_last_and_mean():
    reg = MetricsRegistry()
    g = reg.gauge("queue_depth")
    for depth in (1.0, 5.0, 3.0):
        g.set(depth)
    assert g.value == 3.0
    assert g.mean == pytest.approx(3.0)
    assert g.n == 3


def test_histogram_percentiles_nearest_rank():
    reg = MetricsRegistry()
    h = reg.histogram("latency")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.percentile(50.0) == 50.0
    assert h.percentile(90.0) == 90.0
    assert h.percentile(99.0) == 99.0
    assert h.percentile(100.0) == 100.0
    assert h.count == 100
    assert h.mean == pytest.approx(50.5)
    with pytest.raises(ValueError):
        h.percentile(101.0)


def test_merge_aggregates_across_repetitions():
    """The experiment-layer contract: per-run registries merge into
    fleet totals — counters add, histograms pool, gauges keep a pooled
    mean."""
    runs = []
    for rep in range(3):
        reg = MetricsRegistry()
        reg.counter("jobs_completed", task="A").inc(10.0 + rep)
        reg.gauge("queue_depth").set(float(rep))
        for v in (1.0, 2.0):
            reg.histogram("sojourn").observe(v + rep)
        runs.append(reg)

    merged = MetricsRegistry.merged(runs)
    assert merged.counter_value("jobs_completed", task="A") == 33.0
    assert merged.gauge("queue_depth").mean == pytest.approx(1.0)
    assert merged.gauge("queue_depth").n == 3
    assert merged.histogram("sojourn").count == 6
    assert merged.histogram("sojourn").percentile(100.0) == 4.0


def test_merge_is_incremental_and_label_aware():
    a = MetricsRegistry()
    a.counter("residency", mhz="360").inc(0.5)
    b = MetricsRegistry()
    b.counter("residency", mhz="360").inc(0.25)
    b.counter("residency", mhz="1000").inc(1.0)
    a.merge(b)
    assert a.counter_value("residency", mhz="360") == 0.75
    assert a.counter_value("residency", mhz="1000") == 1.0


# ----------------------------------------------------------------------
# Nearest-rank percentile contract (property suite).  These pin the
# semantics documented on Histogram.percentile: every result is an
# observed sample, the function is monotone in p, the extremes map to
# min/max, and small samples saturate early.
# ----------------------------------------------------------------------
import math  # noqa: E402

from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.obs import Histogram  # noqa: E402

_samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)
_p = st.floats(min_value=0.0, max_value=100.0)


def _hist(values):
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


@given(_samples, _p)
def test_percentile_is_an_observed_sample(values, p):
    assert _hist(values).percentile(p) in values


@given(_samples, _p, _p)
def test_percentile_is_monotone_in_p(values, p1, p2):
    h = _hist(values)
    lo, hi = sorted((p1, p2))
    assert h.percentile(lo) <= h.percentile(hi)


@given(_samples)
def test_percentile_extremes_are_min_and_max(values):
    h = _hist(values)
    assert h.percentile(0.0) == min(values)
    assert h.percentile(100.0) == max(values)


@given(_samples, _p)
def test_percentile_matches_nearest_rank_definition(values, p):
    rank = max(1, math.ceil(p / 100.0 * len(values)))
    assert _hist(values).percentile(p) == sorted(values)[rank - 1]


@given(_samples, _p)
def test_percentile_saturates_to_max_on_small_samples(values, p):
    """p > 100·(n-1)/n already returns the maximum — so p99 cannot
    differ from max until n >= 100."""
    n = len(values)
    if p > 100.0 * (n - 1) / n:
        assert _hist(values).percentile(p) == max(values)


@given(st.floats(allow_nan=False, allow_infinity=False), _p)
def test_single_sample_always_returned(value, p):
    assert _hist([value]).percentile(p) == value


@given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
       st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), _p)
def test_two_samples_split_at_the_median(a, b, p):
    h = _hist([a, b])
    expected = min(a, b) if p <= 50.0 else max(a, b)
    assert h.percentile(p) == expected


@given(_p)
def test_empty_histogram_returns_zero(p):
    assert Histogram().percentile(p) == 0.0


@given(_samples)
def test_out_of_range_p_raises(values):
    h = _hist(values)
    with pytest.raises(ValueError):
        h.percentile(-0.5)
    with pytest.raises(ValueError):
        h.percentile(100.5)
