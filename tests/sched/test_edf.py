"""Tests for EDF policies (repro.sched.edf)."""


from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.sched import EDFStatic, edf_pick
from repro.sim import Job, Task, TaskSet
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.tuf import StepTUF


def _task(name="T", window=1.0):
    return Task(name, StepTUF(5.0, window), DeterministicDemand(10.0), UAMSpec(1, window))


def _view(tasks, jobs, time=0.0):
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=FrequencyScale.powernow_k6(),
        energy_model=EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window={},
    )


class TestEdfPick:
    def test_none_when_empty(self):
        assert edf_pick(_view([_task()], [])) is None

    def test_earliest_critical_time(self):
        a, b = _task("A", 1.0), _task("B", 0.5)
        ja, jb = Job(a, 0, 0.0, 10.0), Job(b, 0, 0.0, 10.0)
        assert edf_pick(_view([a, b], [ja, jb])) is jb

    def test_tie_broken_by_release(self):
        a = _task("A", 1.0)
        j0, j1 = Job(a, 0, 0.0, 10.0), Job(a, 1, 0.0, 10.0)
        # identical release and critical time: index breaks the tie
        assert edf_pick(_view([a], [j1, j0])) is j0

    def test_stale_job_sorts_first(self):
        # The -NA domino mechanism: an expired job keeps its old (early)
        # critical time and keeps winning the pick.
        a = _task("A", 0.5)
        stale = Job(a, 0, 0.0, 10.0)
        fresh = Job(a, 1, 1.0, 10.0)
        assert edf_pick(_view([a], [fresh, stale], time=2.0)) is stale


class TestEDFStatic:
    def test_runs_at_fmax_by_default(self):
        sched = EDFStatic()
        task = _task()
        d = sched.decide(_view([task], [Job(task, 0, 0.0, 10.0)]))
        assert d.frequency == 1000.0

    def test_pinned_frequency(self):
        sched = EDFStatic(frequency=550.0)
        task = _task()
        d = sched.decide(_view([task], [Job(task, 0, 0.0, 10.0)]))
        assert d.frequency == 550.0

    def test_off_ladder_frequency_quantised(self):
        sched = EDFStatic(frequency=600.0)
        task = _task()
        d = sched.decide(_view([task], [Job(task, 0, 0.0, 10.0)]))
        assert d.frequency == 640.0

    def test_na_variant_flag(self):
        assert EDFStatic().abort_expired
        assert not EDFStatic(abort_expired=False).abort_expired

    def test_never_aborts(self):
        sched = EDFStatic()
        task = _task(window=0.001)  # hopeless
        d = sched.decide(_view([task], [Job(task, 0, 0.0, 10.0)]))
        assert d.aborts == ()
