"""Tests for the DASA baseline (repro.sched.dasa)."""

import numpy as np
import pytest

from repro.arrivals import UAMSpec
from repro.core import EUAStar
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.sched import DASA, EDFStatic
from repro.sim import Job, Platform, Task, TaskSet, compare, materialize
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.tuf import StepTUF


def _task(name="T", window=1.0, mean=100.0, umax=10.0):
    return Task(name, StepTUF(umax, window), DeterministicDemand(mean), UAMSpec(1, window))


def _view(tasks, jobs, time=0.0):
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=FrequencyScale.powernow_k6(),
        energy_model=EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window={},
    )


class TestDecisions:
    def test_runs_at_fmax_by_default(self):
        task = _task()
        d = DASA().decide(_view([task], [Job(task, 0, 0.0, 100.0)]))
        assert d.frequency == 1000.0

    def test_pinned_frequency_quantised(self):
        task = _task()
        d = DASA(frequency=600.0).decide(_view([task], [Job(task, 0, 0.0, 100.0)]))
        assert d.frequency == 640.0

    def test_idle_when_empty(self):
        assert DASA().decide(_view([_task()], [])).job is None

    def test_overload_prefers_high_pud(self):
        cheap = _task("C", window=0.1, mean=60.0, umax=1.0)
        rich = _task("R", window=0.1, mean=60.0, umax=100.0)
        jc, jr = Job(cheap, 0, 0.0, 60.0), Job(rich, 0, 0.0, 60.0)
        d = DASA().decide(_view([cheap, rich], [jc, jr]))
        assert d.job is jr

    def test_aborts_infeasible(self):
        task = _task(window=0.05, mean=100.0)
        job = Job(task, 0, 0.0, 100.0)
        d = DASA().decide(_view([task], [job]))
        assert job in d.aborts

    def test_no_abort_variant(self):
        task = _task(window=0.05, mean=100.0)
        job = Job(task, 0, 0.0, 100.0)
        d = DASA(abort_infeasible=False).decide(_view([task], [job]))
        assert d.aborts == ()

    def test_underload_head_is_edf(self):
        early = _task("E", window=0.3, mean=30.0)
        late = _task("L", window=1.0, mean=30.0, umax=100.0)
        je, jl = Job(early, 0, 0.0, 30.0), Job(late, 0, 0.0, 30.0)
        d = DASA().decide(_view([early, late], [je, jl]))
        assert d.job is je  # both fit; sigma is critical-time ordered


class TestEndToEnd:
    def test_matches_eua_utility_without_energy_awareness(self, platform_e1, overload_taskset):
        """DASA accrues EUA*-level utility during overloads (same
        utility-accrual machinery) but at no-DVS energy."""
        trace = materialize(overload_taskset, 2.5, np.random.default_rng(41))
        runs = compare([DASA(), EUAStar(), EDFStatic()], trace, platform=platform_e1)
        assert (
            runs["DASA"].metrics.normalized_utility
            >= runs["EDF"].metrics.normalized_utility
        )
        assert runs["DASA"].metrics.normalized_utility == pytest.approx(
            runs["EUA*"].metrics.normalized_utility, abs=0.05
        )

    def test_no_energy_savings(self, platform_e1, small_taskset):
        trace = materialize(small_taskset, 2.5, np.random.default_rng(42))
        runs = compare([DASA(), EUAStar(), EDFStatic()], trace, platform=platform_e1)
        assert runs["DASA"].energy == pytest.approx(runs["EDF"].energy, rel=0.02)
        assert runs["EUA*"].energy < 0.7 * runs["DASA"].energy
