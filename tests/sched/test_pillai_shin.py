"""Tests for the Pillai-Shin RT-DVS baselines (repro.sched.pillai_shin)."""


from repro.arrivals import UAMSpec
from repro.cpu import EnergyModel, FrequencyScale
from repro.demand import DeterministicDemand
from repro.sched import CCEDF, LAEDF, StaticEDF
from repro.sim import Job, Platform, Task, TaskSet, simulate
from repro.sim.scheduler import SchedulerView, SchedulingEvent
from repro.tuf import StepTUF


def _task(name="T", window=1.0, mean=100.0):
    return Task(name, StepTUF(5.0, window), DeterministicDemand(mean), UAMSpec(1, window))


def _view(tasks, jobs, time=0.0, arrivals=None):
    return SchedulerView(
        time=time,
        ready=jobs,
        taskset=TaskSet(tasks),
        scale=FrequencyScale.powernow_k6(),
        energy_model=EnergyModel.e1(),
        event=SchedulingEvent.ARRIVAL,
        arrivals_in_window=arrivals or {},
    )


class TestStaticEDF:
    def test_frequency_fixed_at_setup(self):
        # Two tasks at 100 Mc per 1.0 s window each: rate 200 -> 360.
        tasks = [_task("A", 1.0, 100.0), _task("B", 1.0, 100.0)]
        sched = StaticEDF()
        sched.setup(TaskSet(tasks), FrequencyScale.powernow_k6(), EnergyModel.e1())
        d = sched.decide(_view(tasks, [Job(tasks[0], 0, 0.0, 100.0)]))
        assert d.frequency == 360.0

    def test_saturates_during_overload(self):
        tasks = [_task("A", 0.1, 200.0)]  # rate 2000 > f_max
        sched = StaticEDF()
        sched.setup(TaskSet(tasks), FrequencyScale.powernow_k6(), EnergyModel.e1())
        d = sched.decide(_view(tasks, [Job(tasks[0], 0, 0.0, 200.0)]))
        assert d.frequency == 1000.0

    def test_edf_job_selection(self):
        a, b = _task("A", 1.0), _task("B", 0.3)
        sched = StaticEDF()
        sched.setup(TaskSet([a, b]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        ja, jb = Job(a, 0, 0.0, 100.0), Job(b, 0, 0.0, 100.0)
        assert sched.decide(_view([a, b], [ja, jb])).job is jb


class TestCCEDF:
    def test_worst_case_while_pending(self):
        task = _task(mean=500.0)
        sched = CCEDF()
        sched.setup(TaskSet([task]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        job = Job(task, 0, 0.0, 500.0)
        d = sched.decide(_view([task], [job]))
        assert d.frequency == 550.0  # 500 MHz rate -> level 550

    def test_reclaims_on_early_completion(self):
        task = _task(mean=500.0)
        sched = CCEDF()
        sched.setup(TaskSet([task]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        job = Job(task, 0, 0.0, 200.0)
        job.executed = 200.0
        sched.on_completion(job, 0.2)
        # Idle reservation now reflects the actual 200 Mc.
        d = sched.decide(_view([task], []))
        assert d.frequency == 360.0  # 200 MHz -> lowest level

    def test_reservation_resets_with_new_job(self):
        task = _task(mean=500.0)
        sched = CCEDF()
        sched.setup(TaskSet([task]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        job = Job(task, 0, 0.0, 200.0)
        job.executed = 200.0
        sched.on_completion(job, 0.2)
        fresh = Job(task, 1, 1.0, 500.0)
        d = sched.decide(_view([task], [fresh], time=1.0))
        assert d.frequency == 550.0  # worst case again

    def test_end_to_end_saves_energy_on_overrun_free_workload(self, platform_e1, small_taskset):
        dvs = simulate(small_taskset, CCEDF(), platform_e1, horizon=3.0, seed=1)
        pin = simulate(small_taskset, StaticEDF(), platform_e1, horizon=3.0, seed=1)
        assert dvs.metrics.normalized_utility >= pin.metrics.normalized_utility - 1e-9


class TestLAEDF:
    def test_defers_below_static_rate(self):
        urgent = _task("U", window=0.1, mean=20.0)
        relaxed = _task("R", window=1.0, mean=100.0)
        sched = LAEDF()
        sched.setup(TaskSet([urgent, relaxed]), FrequencyScale.powernow_k6(),
                    EnergyModel.e1())
        ju, jr = Job(urgent, 0, 0.0, 20.0), Job(relaxed, 0, 0.0, 100.0)
        d = sched.decide(
            _view([urgent, relaxed], [ju, jr], arrivals={"U": [0.0], "R": [0.0]})
        )
        assert d.job is ju
        assert d.frequency < 1000.0

    def test_overload_pins_fmax(self):
        task = _task(window=0.1, mean=500.0)
        sched = LAEDF()
        sched.setup(TaskSet([task]), FrequencyScale.powernow_k6(), EnergyModel.e1())
        d = sched.decide(_view([task], [Job(task, 0, 0.0, 500.0)],
                               arrivals={"T": [0.0]}))
        assert d.frequency == 1000.0

    def test_na_variant(self):
        assert not LAEDF(abort_expired=False).abort_expired
