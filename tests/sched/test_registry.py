"""Tests for the scheduler registry (repro.sched.registry)."""

import pytest

from repro.core import EUAStar
from repro.sched import (
    LAEDF,
    EDFStatic,
    Scheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)


class TestLookup:
    def test_paper_figure_names_present(self):
        names = available_schedulers()
        for required in ("EUA*", "EDF", "LA-EDF", "LA-EDF-NA"):
            assert required in names

    def test_make_returns_fresh_instances(self):
        a = make_scheduler("EUA*")
        b = make_scheduler("EUA*")
        assert a is not b
        assert isinstance(a, EUAStar)

    def test_na_variants_configured(self):
        assert make_scheduler("LA-EDF-NA").abort_expired is False
        assert make_scheduler("LA-EDF").abort_expired is True
        assert make_scheduler("EDF-NA").abort_expired is False

    def test_ablation_variants_configured(self):
        assert make_scheduler("EUA*-noDVS").use_dvs is False
        assert make_scheduler("EUA*-noFopt").use_fopt_bound is False
        assert make_scheduler("EUA*-noAbort").abort_infeasible is False
        assert make_scheduler("EUA*-UD").ordering == "utility_density"
        assert make_scheduler("EUA*-demand").dvs_method == "demand"

    def test_default_eua_uses_paper_algorithm2(self):
        assert make_scheduler("EUA*").dvs_method == "lookahead"

    def test_names_match_instances(self):
        for name in available_schedulers():
            assert make_scheduler(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("nonsense")


class TestRegistration:
    def test_register_custom(self):
        class Custom(EDFStatic):
            pass

        name = "test-custom-policy"
        if name not in available_schedulers():
            register_scheduler(name, lambda: Custom(name=name))
        assert isinstance(make_scheduler(name), Custom)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scheduler("EDF", lambda: EDFStatic())
