"""Telemetry attached to campaigns/sweeps must be observe-only.

The contract mirrors the engine's span transparency: attaching a
:class:`~repro.obs.Telemetry` to ``run_campaign``/``run_sweep`` may not
change a single aggregate bit, at any workers setting — and the capture
itself must account for the run (phases present, counters exact,
worker lanes populated in pool mode).
"""

import pytest

from repro.experiments.parallel import run_sweep
from repro.obs import Telemetry, build_phase_report
from repro.stats import CampaignConfig, EarlyStopRule, RunCache, run_campaign

pytestmark = pytest.mark.filterwarnings(
    "ignore:.*falling back to serial.*"
)


def _config(**overrides):
    base = dict(
        load=0.8,
        horizon=0.5,
        schedulers=("EUA*",),
        n_replications=4,
        base_seed=11,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _flatten(result):
    out = {}
    for name, stats in result.schedulers.items():
        out[name] = {
            k: (s.mean, s.std, s.n, s.half_width)
            for k, s in stats.metrics.items()
        }
    return out


# ----------------------------------------------------------------------
# Determinism: telemetry must not move a single bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_campaign_identical_with_and_without_telemetry(workers):
    plain = run_campaign(_config(), workers=workers)
    traced = run_campaign(_config(), workers=workers,
                          telemetry=Telemetry())
    assert _flatten(traced) == _flatten(plain)


def test_sweep_identical_with_and_without_telemetry():
    items = list(range(5))
    plain = run_sweep(_square, items, max_workers=1)
    assert plain == run_sweep(
        _square, items, max_workers=1, telemetry=Telemetry()
    )


# ----------------------------------------------------------------------
# The capture accounts for the run
# ----------------------------------------------------------------------
def test_campaign_telemetry_phases_counters_and_coverage():
    telemetry = Telemetry()
    result = run_campaign(_config(), workers=1, telemetry=telemetry)
    assert telemetry.tracer.open_depth == 0
    report = build_phase_report(telemetry)
    paths = {r.phase for r in report.phases}
    for leaf in ("campaign.plan", "campaign.cache",
                 "campaign.simulate", "campaign.fold"):
        assert any(p.rsplit("/", 1)[-1] == leaf for p in paths), leaf
    # Serial execution is in-tree (one span per dispatched chunk) and
    # lane-tracked as "main".
    assert any(p.rsplit("/", 1)[-1] == "pool.chunk" for p in paths)
    assert [w.worker for w in report.workers] == ["main"]
    # Counters match the campaign's own accounting exactly.
    assert telemetry.counter_value("campaign.reps_simulated") == result.n_simulated
    # Every simulated replication was folded worker-side exactly once.
    assert telemetry.counter_value("campaign.worker_folds") == result.n_simulated
    assert telemetry.counter_value("campaign.cache_misses") == 0.0
    assert report.cache_hit_rate is None  # no cache attached -> no probes
    assert report.reps_per_second > 0.0
    assert report.coverage() == pytest.approx(1.0, abs=0.10)


def test_early_stop_rule_traced_as_stop_check(tmp_path):
    """The sequential peek only exists when a rule is set — and then it
    must show up in the trace (once per peek, including the pre-batch
    one)."""
    config = _config(
        n_replications=4,
        early_stop=EarlyStopRule(min_replications=1, confidence=0.9,
                                 check_every=2),
    )
    telemetry = Telemetry()
    run_campaign(config, telemetry=telemetry)
    report = build_phase_report(telemetry)
    stop_rows = [r for r in report.phases
                 if r.phase.rsplit("/", 1)[-1] == "campaign.stop_check"]
    assert stop_rows and stop_rows[0].count >= 1


def test_warm_cache_telemetry_hit_rate_is_one(tmp_path):
    cache = RunCache(tmp_path / "cache")
    run_campaign(_config(), cache=cache)
    telemetry = Telemetry()
    warm = run_campaign(_config(), cache=cache, telemetry=telemetry)
    assert warm.n_simulated == 0
    report = build_phase_report(telemetry)
    assert report.cache_hit_rate == 1.0
    assert telemetry.counter_value("campaign.cache_hits") == warm.n_cached
    assert report.reps_per_second is None  # nothing was simulated


def test_parallel_sweep_records_worker_lanes_and_payload():
    telemetry = Telemetry()
    items = list(range(8))
    values = run_sweep(_square, items, max_workers=2, telemetry=telemetry)
    assert values == [i * i for i in items]
    assert telemetry.counter_value("pool.items") == len(items)
    report = build_phase_report(telemetry)
    paths = {r.phase for r in report.phases}
    leaves = {p.rsplit("/", 1)[-1] for p in paths}
    if telemetry.counter_value("pool.pickled_bytes") > 0.0:
        # Pool path: serialize/submit/fold phases plus per-pid lanes
        # whose interval count matches the item count.
        assert {"pool.serialize", "pool.submit", "pool.fold"} <= leaves
        assert report.workers, "expected at least one worker lane"
        assert sum(len(w.intervals) for w in report.workers) == len(items)
        assert all(w.worker.startswith("pid-") for w in report.workers)
    else:
        # Serial fallback (sandboxed hosts): still traced, lane "main".
        assert "pool.execute" in leaves
        assert [w.worker for w in report.workers] == ["main"]


def _square(i):
    return i * i
