"""Campaign driver: determinism, caching, early stop, verdicts, CLI."""

import pytest

from repro.stats import (
    CampaignConfig,
    EarlyStopRule,
    RunCache,
    render_campaign,
    run_campaign,
)
from repro.stats.campaign import ReplicationSummary, _run_replication, ReplicationSpec


def _config(**overrides):
    base = dict(
        load=0.8,
        horizon=0.5,
        schedulers=("EUA*",),
        n_replications=6,
        base_seed=11,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _flatten(result):
    """Canonical bit-comparable rendering of a campaign aggregate."""
    out = {}
    for name, stats in result.schedulers.items():
        out[name] = {
            "metrics": {
                k: (s.mean, s.std, s.n, s.half_width)
                for k, s in stats.metrics.items()
            },
            "assurance": [tuple(vars(a).values()) for a in stats.assurance],
        }
    return out


class TestReplication:
    def test_summary_round_trips_exactly(self):
        config = _config(n_replications=1)
        spec = ReplicationSpec(
            workload=config.workload_spec(11),
            platform=config.platform_spec(),
            schedulers=config.scheduler_specs(),
        )
        summary = _run_replication(spec)
        clone = ReplicationSummary.from_dict(summary.to_dict())
        assert clone == summary

    def test_decided_excludes_censored_jobs(self):
        config = _config(n_replications=1)
        spec = ReplicationSpec(
            workload=config.workload_spec(11),
            platform=config.platform_spec(),
            schedulers=config.scheduler_specs(),
        )
        summary = _run_replication(spec)
        for counts in summary.assurance.values():
            for satisfied, decided in counts.values():
                assert 0 <= satisfied <= decided


class TestDeterminism:
    def test_workers_do_not_change_aggregates(self):
        config = _config()
        serial = run_campaign(config, workers=1)
        parallel = run_campaign(config, workers=4)
        assert _flatten(serial) == _flatten(parallel)
        assert serial.n_simulated == parallel.n_simulated == 6

    def test_cache_cold_vs_resumed_bit_identical(self, tmp_path):
        config = _config()
        cache = RunCache(tmp_path)
        cold = run_campaign(config, cache=cache)
        warm = run_campaign(config, cache=cache)
        assert cold.n_simulated == 6 and cold.n_cached == 0
        assert warm.n_simulated == 0 and warm.n_cached == 6
        assert _flatten(cold) == _flatten(warm)
        # And both equal the uncached aggregate.
        assert _flatten(run_campaign(config)) == _flatten(cold)

    def test_partial_cache_resume(self, tmp_path):
        cache = RunCache(tmp_path)
        run_campaign(_config(n_replications=3), cache=cache)
        grown = run_campaign(_config(n_replications=6), cache=cache)
        assert grown.n_cached == 3 and grown.n_simulated == 3
        assert _flatten(grown) == _flatten(run_campaign(_config(n_replications=6)))


class TestVerdicts:
    def test_underload_passes_with_relaxed_rho(self):
        # Every decided job completes at load 0.8 underload; with
        # ρ = 0.5 even the sparse tasks' pooled intervals clear it.
        result = run_campaign(_config(horizon=2.0, rho=0.5, n_replications=4))
        assert result.verdict == "pass"
        assert result.ok

    def test_overloaded_edf_fails(self):
        # EDF collapses during overload (the domino effect): expired
        # jobs count as failures and pull the interval below ρ.
        result = run_campaign(
            _config(load=1.6, horizon=1.0, schedulers=("EDF",), n_replications=4)
        )
        assert result.verdict == "fail"
        assert not result.ok

    def test_tiny_sample_is_inconclusive(self):
        result = run_campaign(_config(n_replications=1))
        assert result.verdict == "inconclusive"
        assert result.ok  # inconclusive is not a failure

    def test_render_contains_verdict_and_tables(self):
        result = run_campaign(_config(n_replications=2))
        text = render_campaign(result)
        assert "campaign verdict:" in text
        assert "Wilson intervals" in text
        assert "EUA*" in text


class TestEarlyStop:
    def _stopping_config(self, **overrides):
        base = dict(
            horizon=2.0,
            rho=0.5,
            n_replications=20,
            early_stop=EarlyStopRule(
                min_replications=4, confidence=0.95, check_every=2
            ),
        )
        base.update(overrides)
        return _config(**base)

    def test_stops_before_budget(self):
        result = run_campaign(self._stopping_config())
        assert result.stopped_early
        assert result.n_completed < result.n_planned
        assert result.n_completed >= 4
        assert result.verdict == "pass"

    def test_warm_cache_satisfies_early_stop_without_simulating(self, tmp_path):
        cache = RunCache(tmp_path)
        cold = run_campaign(self._stopping_config(), cache=cache)
        warm = run_campaign(self._stopping_config(), cache=cache)
        assert warm.n_simulated == 0
        assert warm.stopped_early
        assert _flatten(cold) == _flatten(warm)

    def test_no_rule_runs_full_budget(self):
        result = run_campaign(_config(n_replications=3))
        assert not result.stopped_early
        assert result.n_completed == result.n_planned == 3


class TestConfigValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            _config(n_replications=0)
        with pytest.raises(ValueError):
            _config(schedulers=())
        with pytest.raises(ValueError):
            _config(confidence=0.0)

    def test_seeds_are_contiguous(self):
        assert _config(base_seed=7, n_replications=3).seeds == (7, 8, 9)


class TestCli:
    def test_stats_subcommand_pass(self, capsys):
        from repro.cli import main

        code = main(
            ["stats", "--load", "0.8", "-n", "2", "--horizon", "0.5",
             "--rho", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign verdict:" in out

    def test_stats_subcommand_fail_exit_code(self, capsys):
        from repro.cli import main

        code = main(
            ["stats", "--load", "1.6", "-n", "4", "--horizon", "1.0",
             "--schedulers", "EDF"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_stats_cache_dir_and_early_stop(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["stats", "--load", "0.8", "-n", "8", "--horizon", "2.0",
                "--rho", "0.5", "--early-stop", "--min-replications", "4",
                "--check-every", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "stopped early" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "simulated 0" in second

    def test_obs_subcommand_still_summarises(self, capsys):
        from repro.cli import main

        code = main(["obs", "--load", "0.4", "--horizon", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decide_freq" in out
