"""Content-addressed run cache: keys, round-trips, corruption."""

import json

import pytest

from repro.experiments.parallel import PlatformSpec, SchedulerSpec, WorkloadSpec
from repro.stats import RunCache, run_cache_key


def _workload(seed=11, **overrides):
    base = dict(load=0.8, seed=seed, horizon=1.0)
    base.update(overrides)
    return WorkloadSpec(**base)


SCHEDULERS = (SchedulerSpec.registry("EUA*"),)
PLATFORM = PlatformSpec()


class TestRunCacheKey:
    def test_stable_across_calls(self):
        a = run_cache_key(_workload(), PLATFORM, SCHEDULERS)
        b = run_cache_key(_workload(), PLATFORM, SCHEDULERS)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_seed_changes_key(self):
        assert run_cache_key(_workload(11), PLATFORM, SCHEDULERS) != run_cache_key(
            _workload(12), PLATFORM, SCHEDULERS
        )

    @pytest.mark.parametrize(
        "override",
        [
            {"load": 0.9},
            {"horizon": 2.0},
            {"rho": 0.9},
            {"arrival_mode": "burst"},
            {"f_max": 800.0},
        ],
    )
    def test_workload_fields_change_key(self, override):
        assert run_cache_key(_workload(), PLATFORM, SCHEDULERS) != run_cache_key(
            _workload(**override), PLATFORM, SCHEDULERS
        )

    def test_platform_changes_key(self):
        assert run_cache_key(_workload(), PLATFORM, SCHEDULERS) != run_cache_key(
            _workload(), PlatformSpec(energy="E3"), SCHEDULERS
        )

    def test_scheduler_list_is_order_sensitive(self):
        two = (SchedulerSpec.registry("EUA*"), SchedulerSpec.registry("EDF"))
        assert run_cache_key(_workload(), PLATFORM, two) != run_cache_key(
            _workload(), PLATFORM, tuple(reversed(two))
        )


class TestRunCacheStore:
    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        key = run_cache_key(_workload(), PLATFORM, SCHEDULERS)
        payload = {"seed": 11, "metrics": {"EUA*": {"energy": 1.25e8}}}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert len(cache) == 1

    def test_float_exactness(self, tmp_path):
        cache = RunCache(tmp_path)
        value = 0.1 + 0.2  # not representable prettily; must round-trip
        cache.put("k" * 64, {"v": value})
        assert cache.get("k" * 64)["v"] == value

    def test_miss_returns_none(self, tmp_path):
        assert RunCache(tmp_path).get("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.path_for("bad").write_text("{not json")
        assert cache.get("bad") is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.path_for("arr").write_text(json.dumps([1, 2]))
        assert cache.get("arr") is None

    def test_creates_root(self, tmp_path):
        root = tmp_path / "nested" / "cache"
        RunCache(root)
        assert root.is_dir()

    def test_no_tmp_droppings(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("a" * 64, {"x": 1})
        assert list(tmp_path.glob("*.tmp")) == []
