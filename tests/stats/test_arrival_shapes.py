"""Campaigns over registry arrival shapes: determinism, cache identity,
and the replication-level assurance Bernoulli the threshold study sums.
"""

from repro.stats import CampaignConfig, RunCache, run_campaign


def _config(**overrides):
    base = dict(
        load=0.8,
        horizon=0.5,
        schedulers=("EUA*",),
        n_replications=6,
        base_seed=11,
        arrival_mode="nhpp-diurnal",
        arrival_params=(("peak_frac", 0.25),),
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _flatten(result):
    out = {}
    for name, stats in result.schedulers.items():
        out[name] = {
            "metrics": {
                k: (s.mean, s.std, s.n, s.half_width)
                for k, s in stats.metrics.items()
            },
            "successes": stats.replication_successes,
            "decided": stats.replication_decided,
        }
    return out


class TestRegistryShapeDeterminism:
    def test_workers_and_chunking_do_not_change_aggregates(self):
        serial = run_campaign(_config(), workers=1)
        parallel = run_campaign(_config(), workers=2, chunk_size=2)
        assert _flatten(serial) == _flatten(parallel)

    def test_chunk_size_one_matches_batched(self):
        assert _flatten(run_campaign(_config(), chunk_size=1)) == \
            _flatten(run_campaign(_config(), chunk_size=6))

    def test_cache_round_trip_bit_identical(self, tmp_path):
        cache = RunCache(tmp_path)
        cold = run_campaign(_config(), cache=cache)
        warm = run_campaign(_config(), cache=cache)
        assert cold.n_simulated == 6 and warm.n_cached == 6
        assert _flatten(cold) == _flatten(warm)

    def test_arrival_params_change_cache_identity(self, tmp_path):
        # A different shape parameter is a different experiment: the
        # cache must miss, not serve the other configuration's runs.
        cache = RunCache(tmp_path)
        run_campaign(_config(), cache=cache)
        other = run_campaign(
            _config(arrival_params=(("peak_frac", 0.75),)), cache=cache
        )
        assert other.n_cached == 0 and other.n_simulated == 6

    def test_arrival_mode_change_cache_identity(self, tmp_path):
        cache = RunCache(tmp_path)
        run_campaign(_config(), cache=cache)
        other = run_campaign(_config(arrival_mode="flash-crowd",
                                     arrival_params=()), cache=cache)
        assert other.n_cached == 0 and other.n_simulated == 6


class TestAssuranceBernoulli:
    def test_counts_are_consistent(self):
        result = run_campaign(_config(horizon=1.0))
        stats = result.schedulers["EUA*"]
        assert 0 <= stats.replication_successes <= stats.replication_decided
        assert stats.replication_decided <= result.n_simulated + result.n_cached
        assert 0.0 <= stats.assurance_probability <= 1.0

    def test_interval_brackets_the_probability(self):
        result = run_campaign(_config(horizon=1.0))
        stats = result.schedulers["EUA*"]
        lo, hi = stats.assurance_interval(0.95)
        assert 0.0 <= lo <= stats.assurance_probability <= hi <= 1.0

    def test_underload_succeeds_overload_fails(self):
        low = run_campaign(_config(load=0.4, rho=0.5, horizon=1.0))
        high = run_campaign(_config(load=6.0, horizon=1.0))
        assert low.schedulers["EUA*"].assurance_probability > \
            high.schedulers["EUA*"].assurance_probability

    def test_zero_decided_defaults_to_certain_success(self):
        from repro.stats.campaign import SchedulerStats

        stats = SchedulerStats(name="EDF", metrics={}, assurance=[])
        assert stats.assurance_probability == 1.0
        assert stats.assurance_interval() == (0.0, 1.0)
