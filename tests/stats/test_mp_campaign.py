"""Monte-Carlo campaigns over the multicore engine (cores > 1)."""

import pytest

from repro.stats import CampaignConfig, run_campaign


def _config(**overrides):
    base = dict(
        load=0.8,
        horizon=0.2,
        schedulers=("EUA*",),
        n_replications=2,
        base_seed=3,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def test_partitioned_campaign_runs_and_reports_migrations():
    result = run_campaign(_config(cores=2, mp_mode="partitioned"))
    assert result.n_completed == 2
    stats = result.schedulers["EUA*"]
    assert stats.assurance  # per-task pooled assurance present
    migrations = stats.metrics["migrations"]
    assert migrations.mean == 0.0  # partitioned mode never migrates


def test_global_campaign_runs():
    result = run_campaign(_config(cores=2, mp_mode="global"))
    stats = result.schedulers["EUA*"]
    assert "migrations" in stats.metrics
    assert stats.metrics["migrations"].mean >= 0.0
    assert stats.metrics["energy"].mean > 0.0


def test_mp_campaign_deterministic_across_workers():
    a = run_campaign(_config(cores=2, mp_mode="partitioned"), workers=1)
    b = run_campaign(_config(cores=2, mp_mode="partitioned"), workers=2)
    sa, sb = a.schedulers["EUA*"], b.schedulers["EUA*"]
    assert {k: (v.mean, v.half_width) for k, v in sa.metrics.items()} == {
        k: (v.mean, v.half_width) for k, v in sb.metrics.items()
    }


def test_uniprocessor_path_untouched_at_one_core():
    # cores=1 (the default) must keep taking the uniprocessor path:
    # no `migrations` scalar appears in the summaries.
    result = run_campaign(_config())
    assert "migrations" not in result.schedulers["EUA*"].metrics


def test_config_validation():
    with pytest.raises(ValueError):
        _config(cores=0)
    with pytest.raises(ValueError):
        _config(cores=2, mp_mode="clustered")
