"""Closed-form checks of the campaign estimator primitives."""

import math

import pytest

from repro.analysis import (
    normal_quantile,
    summarize,
    wilson_interval,
    wilson_lower_bound,
)
from repro.stats import EarlyStopRule, MetricAccumulator, assurance_verdict


class TestNormalQuantile:
    # Reference values to 6 dp; the Winitzki inverse-erf is ~1e-4 abs
    # near the centre, degrading to ~1e-2 in the deep tail (fine for
    # conservative confidence bounds).
    @pytest.mark.parametrize(
        "p, z, tol",
        [
            (0.5, 0.0, 1e-6),
            (0.975, 1.959964, 2e-3),
            (0.95, 1.644854, 2e-3),
            (0.9995, 3.290527, 1e-2),
            (0.025, -1.959964, 2e-3),
        ],
    )
    def test_matches_reference(self, p, z, tol):
        assert normal_quantile(p) == pytest.approx(z, abs=tol)

    def test_domain_enforced(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                normal_quantile(bad)

    def test_symmetry(self):
        assert normal_quantile(0.8) == pytest.approx(-normal_quantile(0.2), abs=1e-12)


class TestWilsonInterval:
    # Closed-form Wilson values at z = 1.959964 (two-sided 95%).
    @pytest.mark.parametrize(
        "s, n, low, high",
        [
            (8, 10, 0.490162, 0.943318),
            (96, 100, 0.901629, 0.984337),
            (10, 10, 0.722467, 1.0),
            (0, 10, 0.0, 0.277533),
        ],
    )
    def test_matches_closed_form(self, s, n, low, high):
        lo, hi = wilson_interval(s, n, 0.95)
        assert lo == pytest.approx(low, abs=5e-4)
        assert hi == pytest.approx(high, abs=5e-4)

    def test_two_sided_nests_inside_one_sided_lower(self):
        # Two-sided 95% uses z ≈ 1.96; the one-sided 95% lower bound
        # uses z ≈ 1.645 and therefore sits above the two-sided low.
        lo, _ = wilson_interval(8, 10, 0.95)
        assert wilson_lower_bound(8, 10, 0.95) == pytest.approx(0.540793, abs=5e-4)
        assert lo < wilson_lower_bound(8, 10, 0.95)

    def test_stricter_confidence_widens(self):
        lo95, hi95 = wilson_interval(190, 200, 0.95)
        lo999, hi999 = wilson_interval(190, 200, 0.999)
        assert lo999 < lo95 and hi999 > hi95
        assert lo999 == pytest.approx(0.872359, abs=3e-3)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=1.0)


class TestMetricAccumulator:
    def test_matches_batch_summary(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        acc = MetricAccumulator()
        for v in values:
            acc.fold({"m": v})
        stat = acc.stat("m", confidence=0.95)
        ref = summarize(values)  # z = 1.96 vs our 1.95996…
        assert stat.n == len(values)
        assert stat.mean == pytest.approx(ref.mean, abs=1e-12)
        assert stat.std == pytest.approx(ref.std, rel=1e-12)
        assert stat.half_width == pytest.approx(ref.half_width, rel=1e-3)

    def test_welford_closed_form(self):
        acc = MetricAccumulator()
        for v in (2.0, 4.0, 6.0):
            acc.fold({"m": v})
        stat = acc.stat("m")
        assert stat.mean == pytest.approx(4.0)
        assert stat.std == pytest.approx(2.0)  # sample std of {2,4,6}

    def test_single_observation_has_zero_width(self):
        acc = MetricAccumulator()
        acc.fold({"m": 7.0})
        stat = acc.stat("m")
        assert (stat.mean, stat.std, stat.n, stat.half_width) == (7.0, 0.0, 1, 0.0)

    def test_count_and_names(self):
        acc = MetricAccumulator()
        assert acc.count == 0
        acc.fold({"b": 1.0, "a": 2.0})
        assert acc.count == 1
        assert acc.names() == ("a", "b")


class TestAssuranceVerdict:
    def test_pass_when_interval_clears_rho(self):
        # 96% requirement; 5000/5000 → low ≈ 0.9992.
        assert assurance_verdict(5000, 5000, 0.96) == "pass"

    def test_fail_when_interval_below_rho(self):
        # 50/100 against ρ = 0.96: high ≈ 0.598 < 0.96.
        assert assurance_verdict(50, 100, 0.96) == "fail"

    def test_inconclusive_straddles_rho(self):
        # 96/100: interval (0.902, 0.984) straddles 0.96.
        assert assurance_verdict(96, 100, 0.96) == "inconclusive"

    def test_no_decided_jobs_is_inconclusive(self):
        assert assurance_verdict(0, 0, 0.96) == "inconclusive"

    def test_rho_zero_always_passes(self):
        assert assurance_verdict(0, 10, 0.0) == "pass"


class TestEarlyStopRule:
    def test_blocks_below_min_replications(self):
        rule = EarlyStopRule(min_replications=50, confidence=0.999)
        assert not rule.should_stop(49, [(5000, 5000, 0.96)])

    def test_stops_when_all_decided(self):
        rule = EarlyStopRule(min_replications=10, confidence=0.999)
        assert rule.should_stop(10, [(5000, 5000, 0.96), (0, 500, 0.96)])

    def test_continues_on_any_inconclusive(self):
        rule = EarlyStopRule(min_replications=10, confidence=0.999)
        assert not rule.should_stop(10, [(5000, 5000, 0.96), (96, 100, 0.96)])

    def test_never_stops_on_empty_counts(self):
        rule = EarlyStopRule(min_replications=1)
        assert not rule.should_stop(100, [])

    def test_stricter_confidence_is_harder_to_stop(self):
        # 190/200 vs ρ = 0.90: decided at 95% (low ≈ 0.911) but not at
        # 99.9% (low ≈ 0.872).
        loose = EarlyStopRule(min_replications=1, confidence=0.95)
        strict = EarlyStopRule(min_replications=1, confidence=0.999)
        counts = [(190, 200, 0.90)]
        assert loose.should_stop(5, counts)
        assert not strict.should_stop(5, counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopRule(min_replications=0)
        with pytest.raises(ValueError):
            EarlyStopRule(confidence=1.0)
        with pytest.raises(ValueError):
            EarlyStopRule(check_every=0)


class TestWelfordMergeIdentity:
    def test_sequential_equals_merged(self):
        # The campaign folds serially, but the underlying estimator's
        # merge (Chan et al.) must agree bit-for-bit on clean splits —
        # this is what makes cache-resumed folds safe.
        from repro.demand import WelfordEstimator

        xs = [float(k) ** 1.5 for k in range(1, 40)]
        whole = WelfordEstimator()
        whole.update_many(xs)
        left, right = WelfordEstimator(), WelfordEstimator()
        left.update_many(xs[:17])
        right.update_many(xs[17:])
        merged = left.merge(right)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert math.sqrt(merged.sample_variance) == pytest.approx(
            math.sqrt(whole.sample_variance), rel=1e-12
        )
