"""The pool-scaling gate must be three-way: pass / fail / skipped.

``bench_stats_throughput`` once encoded its ``stats_speedup`` gate as
an inline ``if cpus >= WORKERS: assert ...`` — on a host with fewer
usable CPUs than workers the assert was simply never reached, which is
indistinguishable from a green gate in the benchmark's exit status.
The gate now lives in :func:`repro.experiments.parallel.speedup_gate`
with an explicit ``"skipped"`` verdict (surfaced into the BENCH
artifact) and a typed :class:`~repro.experiments.parallel.\
SpeedupRegression` on capable hosts, and these tests pin each arm.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.experiments.parallel import (
    SpeedupRegression,
    speedup_gate,
    usable_cpus,
)

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"


# ----------------------------------------------------------------------
# The three verdict arms
# ----------------------------------------------------------------------
def test_gate_skips_when_host_cannot_demonstrate_scaling():
    """cpus < workers: the claim is unmeasurable — the verdict must be
    the distinct ``"skipped"``, never ``"pass"``, and must not raise
    even for a catastrophic measured speedup."""
    assert speedup_gate(0.1, workers=4, cpus=1) == "skipped"
    assert speedup_gate(0.1, workers=4, cpus=3) == "skipped"
    assert speedup_gate(10.0, workers=4, cpus=1) != "pass"


def test_gate_passes_on_capable_host_with_real_scaling():
    assert speedup_gate(2.0, workers=4, cpus=4) == "pass"
    assert speedup_gate(3.7, workers=4, cpus=16) == "pass"


def test_gate_fails_on_capable_host_when_scaling_regresses():
    with pytest.raises(SpeedupRegression):
        speedup_gate(1.2, workers=4, cpus=4)
    # The boundary host (exactly `workers` CPUs) is capable: it gates.
    with pytest.raises(SpeedupRegression):
        speedup_gate(1.99, workers=4, cpus=4)
    # SpeedupRegression is an AssertionError so a bare benchmark run
    # still dies loudly without special handling.
    assert issubclass(SpeedupRegression, AssertionError)


def test_gate_threshold_is_configurable():
    assert speedup_gate(1.5, workers=2, cpus=2, min_speedup=1.4) == "pass"
    with pytest.raises(SpeedupRegression):
        speedup_gate(1.3, workers=2, cpus=2, min_speedup=1.4)


def test_gate_rejects_nonsense_workers():
    with pytest.raises(ValueError):
        speedup_gate(1.0, workers=0, cpus=4)


def test_gate_defaults_to_host_affinity():
    """With ``cpus`` omitted the gate reads the real affinity mask —
    asking for more workers than the host has must skip, not pass."""
    host = usable_cpus()
    assert host >= 1
    assert speedup_gate(0.0, workers=host + 1) == "skipped"


# ----------------------------------------------------------------------
# The benchmark is wired to the shared gate
# ----------------------------------------------------------------------
def test_bench_stats_throughput_uses_shared_gate():
    """The benchmark must call the tested helper, not a private inline
    re-derivation that could silently diverge again."""
    spec = importlib.util.spec_from_file_location(
        "bench_stats_throughput_under_test",
        BENCHMARKS / "bench_stats_throughput.py",
    )
    module = importlib.util.module_from_spec(spec)
    sys.path.insert(0, str(BENCHMARKS))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(BENCHMARKS))
    assert module.speedup_gate is speedup_gate
    assert module.usable_cpus is usable_cpus
    assert not hasattr(module, "_usable_cpus")
