"""Chunking is an execution detail — the run cache must never see it.

A replication's cache identity is ``run_cache_key(workload, platform,
schedulers)``: what was simulated, not how the campaign dispatched it.
A campaign warmed at one ``chunk_size`` / ``workers`` setting must
therefore resume for free at any other setting, and both drivers
(:func:`~repro.stats.run_campaign` and the per-replication
:func:`~repro.stats.run_campaign_reference` oracle) must address the
same entries.
"""

import pytest

from repro.stats import (
    CampaignConfig,
    RunCache,
    run_cache_key,
    run_campaign,
    run_campaign_reference,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore:.*falling back to serial.*"
)


def _config(**overrides):
    base = dict(
        load=0.8,
        horizon=0.5,
        schedulers=("EUA*",),
        n_replications=5,
        base_seed=11,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def _flatten(result):
    return {
        name: {k: (s.mean, s.std, s.n, s.half_width)
               for k, s in stats.metrics.items()}
        for name, stats in result.schedulers.items()
    }


def test_cache_key_ignores_chunking_knobs():
    """The key is a pure function of the replication specs — there is
    no argument through which ``chunk_size`` or ``workers`` could even
    reach it, and the per-seed keys are stable across calls."""
    config = _config()
    platform = config.platform_spec()
    schedulers = config.scheduler_specs()
    keys = [run_cache_key(config.workload_spec(seed), platform, schedulers)
            for seed in config.seeds]
    assert len(set(keys)) == len(keys)  # one entry per seed
    again = [run_cache_key(config.workload_spec(seed), platform, schedulers)
             for seed in config.seeds]
    assert keys == again


@pytest.mark.parametrize("warm_kwargs", [
    dict(chunk_size=1),
    dict(chunk_size=3),
    dict(chunk_size=50),
    dict(workers=2, chunk_size=2),
    dict(workers=2),
])
def test_warm_cache_hits_across_chunkings(tmp_path, warm_kwargs):
    """Warm at chunk_size=2, resume at any other grain: zero
    simulations, full hit count, bit-identical aggregates."""
    cache = RunCache(tmp_path / "cache")
    cold = run_campaign(_config(), cache=cache, chunk_size=2)
    assert cold.n_simulated == _config().n_replications

    warm = run_campaign(_config(), cache=cache, **warm_kwargs)
    assert warm.n_simulated == 0
    assert warm.n_cached == _config().n_replications
    assert _flatten(warm) == _flatten(cold)


def test_reference_driver_shares_the_cache_namespace(tmp_path):
    """Entries written by the chunked driver satisfy the reference
    driver and vice versa — same keys, same payloads."""
    cache = RunCache(tmp_path / "cache")
    cold = run_campaign(_config(), cache=cache, chunk_size=2)
    warm_ref = run_campaign_reference(_config(), cache=cache)
    assert warm_ref.n_simulated == 0
    assert _flatten(warm_ref) == _flatten(cold)

    cache2 = RunCache(tmp_path / "cache2")
    cold_ref = run_campaign_reference(_config(), cache=cache2)
    warm = run_campaign(_config(), cache=cache2, chunk_size=4)
    assert warm.n_simulated == 0
    assert _flatten(warm) == _flatten(cold_ref)
    assert len(cache) == len(cache2) == _config().n_replications


def test_partial_warm_cache_only_simulates_the_gap(tmp_path):
    """Overlapping seed ranges share entries whatever the chunking: a
    campaign extending a warmed one re-simulates only the new seeds."""
    cache = RunCache(tmp_path / "cache")
    run_campaign(_config(n_replications=3), cache=cache, chunk_size=2)
    extended = run_campaign(_config(n_replications=5), cache=cache,
                            chunk_size=3)
    assert extended.n_cached == 3
    assert extended.n_simulated == 2
    # And the stitched campaign matches an uncached straight run.
    fresh = run_campaign(_config(n_replications=5))
    assert _flatten(extended) == _flatten(fresh)
