"""Tests for the TUF abstraction (repro.tuf.base)."""

import math

import pytest

from repro.tuf import LinearTUF, StepTUF, TUFError
from repro.tuf.base import TUF


class _HalfLife(TUF):
    """Concrete TUF for exercising the ABC's generic machinery."""

    def __init__(self):
        super().__init__(termination=2.0)

    def _utility(self, t: float) -> float:
        return 8.0 * 0.5 ** t


class TestConstruction:
    def test_rejects_zero_termination(self):
        with pytest.raises(TUFError):
            StepTUF(height=1.0, deadline=0.0)

    def test_rejects_negative_termination(self):
        with pytest.raises(TUFError):
            StepTUF(height=1.0, deadline=-1.0)

    def test_rejects_infinite_termination(self):
        with pytest.raises(TUFError):
            StepTUF(height=1.0, deadline=math.inf)

    def test_rejects_nan_termination(self):
        with pytest.raises(TUFError):
            StepTUF(height=1.0, deadline=math.nan)

    def test_termination_is_float(self):
        assert isinstance(_HalfLife().termination, float)


class TestEvaluation:
    def test_zero_before_release(self):
        assert _HalfLife().utility(-0.001) == 0.0

    def test_zero_at_termination(self):
        assert _HalfLife().utility(2.0) == 0.0

    def test_zero_after_termination(self):
        assert _HalfLife().utility(100.0) == 0.0

    def test_positive_inside_window(self):
        assert _HalfLife().utility(1.0) == pytest.approx(4.0)

    def test_utility_at_release(self):
        assert _HalfLife().utility(0.0) == pytest.approx(8.0)

    def test_max_utility_is_release_value(self):
        assert _HalfLife().max_utility == pytest.approx(8.0)

    def test_utilities_vector_form(self):
        tuf = _HalfLife()
        times = [-1.0, 0.0, 1.0, 2.0]
        assert tuf.utilities(times) == [tuf.utility(t) for t in times]


class TestCriticalTimeGeneric:
    """The default bisection inversion on the half-life curve."""

    def test_nu_zero_gives_termination(self):
        assert _HalfLife().critical_time(0.0) == pytest.approx(2.0)

    def test_nu_one_gives_release(self):
        # U(t) < U_max for every t > 0 on a strictly decreasing curve.
        assert _HalfLife().critical_time(1.0) == pytest.approx(0.0, abs=1e-9)

    def test_nu_half_matches_half_life(self):
        assert _HalfLife().critical_time(0.5) == pytest.approx(1.0, abs=1e-6)

    def test_inversion_consistency(self):
        tuf = _HalfLife()
        for nu in (0.3, 0.6, 0.9):
            d = tuf.critical_time(nu)
            assert tuf.utility(d) >= nu * tuf.max_utility - 1e-6

    def test_rejects_negative_nu(self):
        with pytest.raises(TUFError):
            _HalfLife().critical_time(-0.1)

    def test_rejects_nu_above_one(self):
        with pytest.raises(TUFError):
            _HalfLife().critical_time(1.5)


class TestNonIncreasingCheck:
    def test_decreasing_curve_passes(self):
        assert _HalfLife().is_non_increasing()

    def test_increasing_curve_fails(self):
        class Rising(TUF):
            def __init__(self):
                super().__init__(termination=1.0)

            def _utility(self, t):
                return 1.0 + t

        assert not Rising().is_non_increasing()

    def test_linear_tuf_analytic_override(self):
        assert LinearTUF(5.0, 1.0).is_non_increasing(samples=3)
