"""Tests for TUF transformations (repro.tuf.operations)."""

import pytest

from repro.tuf import (
    LinearTUF,
    StepTUF,
    TUFError,
    clamp,
    scale,
    shift,
    utility_density,
    validate,
)


class TestScale:
    def test_scales_utility(self):
        tuf = scale(LinearTUF(10.0, 1.0), 2.5)
        assert tuf.utility(0.0) == pytest.approx(25.0)
        assert tuf.utility(0.5) == pytest.approx(12.5)

    def test_preserves_termination(self):
        assert scale(LinearTUF(10.0, 1.0), 2.5).termination == 1.0

    def test_preserves_critical_time(self):
        inner = LinearTUF(10.0, 1.0)
        assert scale(inner, 3.0).critical_time(0.4) == inner.critical_time(0.4)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(TUFError):
            scale(LinearTUF(10.0, 1.0), 0.0)


class TestShift:
    def test_stretches_time_axis(self):
        tuf = shift(LinearTUF(10.0, 1.0), 2.0)
        assert tuf.termination == 2.0
        assert tuf.utility(1.0) == pytest.approx(5.0)

    def test_scales_critical_time(self):
        inner = LinearTUF(10.0, 1.0)
        assert shift(inner, 2.0).critical_time(0.3) == pytest.approx(
            2.0 * inner.critical_time(0.3)
        )

    def test_compression(self):
        tuf = shift(StepTUF(5.0, 1.0), 0.5)
        assert tuf.termination == 0.5
        assert tuf.utility(0.49) == 5.0
        assert tuf.utility(0.5) == 0.0

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(TUFError):
            shift(LinearTUF(10.0, 1.0), -1.0)


class TestClamp:
    def test_truncates(self):
        tuf = clamp(LinearTUF(10.0, 1.0), 0.5)
        assert tuf.termination == 0.5
        assert tuf.utility(0.4) == pytest.approx(6.0)
        assert tuf.utility(0.6) == 0.0

    def test_critical_time_capped(self):
        tuf = clamp(LinearTUF(10.0, 1.0), 0.5)
        assert tuf.critical_time(0.1) == 0.5  # inner would say 0.9

    def test_rejects_loosening(self):
        with pytest.raises(TUFError):
            clamp(LinearTUF(10.0, 1.0), 2.0)


class TestValidate:
    def test_accepts_paper_shapes(self):
        validate(StepTUF(1.0, 1.0))
        validate(LinearTUF(5.0, 0.3))

    def test_rejects_increasing(self):
        class Rising(LinearTUF):
            def _utility(self, t):
                return t  # increasing

        with pytest.raises(TUFError):
            validate(Rising(5.0, 1.0))


class TestUtilityDensity:
    def test_value(self):
        assert utility_density(StepTUF(10.0, 1.0), 0.5, cycles=2.0) == pytest.approx(5.0)

    def test_zero_past_deadline(self):
        assert utility_density(StepTUF(10.0, 1.0), 1.5, cycles=2.0) == 0.0

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(TUFError):
            utility_density(StepTUF(10.0, 1.0), 0.5, cycles=0.0)


class TestComposition:
    def test_scale_then_shift(self):
        tuf = shift(scale(LinearTUF(10.0, 1.0), 2.0), 3.0)
        assert tuf.max_utility == pytest.approx(20.0)
        assert tuf.termination == pytest.approx(3.0)
        assert tuf.utility(1.5) == pytest.approx(10.0)

    def test_clamp_of_shift(self):
        tuf = clamp(shift(StepTUF(4.0, 1.0), 2.0), 1.0)
        assert tuf.utility(0.9) == 4.0
        assert tuf.utility(1.1) == 0.0
