"""Tests for the Figure 1 TUF catalog (repro.tuf.catalog)."""

import pytest

from repro.tuf import (
    TUFError,
    classic_deadline,
    missile_intercept_window,
    plot_correlation,
    track_association,
    validate,
)


class TestTrackAssociation:
    def test_flat_until_revisit(self):
        tuf = track_association(50.0, 0.1)
        assert tuf.utility(0.09) == pytest.approx(50.0)

    def test_decays_after_revisit(self):
        tuf = track_association(50.0, 0.1)
        assert tuf.utility(0.15) == pytest.approx(25.0)
        assert tuf.termination == pytest.approx(0.2)

    def test_valid_model(self):
        validate(track_association(50.0, 0.1))

    def test_rejects_bad_revisit(self):
        with pytest.raises(TUFError):
            track_association(50.0, 0.0)


class TestPlotCorrelation:
    def test_two_plateaus(self):
        tuf = plot_correlation(30.0, 12.0, 0.25)
        assert tuf.utility(0.2) == 30.0
        assert tuf.utility(0.3) == 12.0
        assert tuf.utility(0.5) == 0.0

    def test_valid_model(self):
        validate(plot_correlation(30.0, 12.0, 0.25))

    def test_rejects_inverted_utilities(self):
        with pytest.raises(TUFError):
            plot_correlation(12.0, 30.0, 0.25)

    def test_rejects_zero_window(self):
        with pytest.raises(TUFError):
            plot_correlation(30.0, 12.0, 0.0)


class TestMissileWindow:
    def test_commit_point(self):
        tuf = missile_intercept_window(100.0, 1.0, commit_fraction=0.6)
        assert tuf.utility(0.59) == pytest.approx(100.0)
        assert tuf.utility(0.8) == pytest.approx(50.0)

    def test_valid_model(self):
        validate(missile_intercept_window(100.0, 1.0))

    def test_rejects_bad_fraction(self):
        with pytest.raises(TUFError):
            missile_intercept_window(100.0, 1.0, commit_fraction=1.0)


class TestClassicDeadline:
    def test_is_step(self):
        tuf = classic_deadline(10.0, 0.5)
        assert tuf.utility(0.49) == 10.0
        assert tuf.utility(0.5) == 0.0

    def test_critical_time_binary(self):
        tuf = classic_deadline(10.0, 0.5)
        assert tuf.critical_time(1.0) == 0.5
        with pytest.raises(TUFError):
            tuf.critical_time(0.5)
