"""Tests for concrete TUF shapes (repro.tuf.shapes)."""

import pytest

from repro.tuf import (
    ExponentialDecayTUF,
    LinearTUF,
    MultiStepTUF,
    PiecewiseLinearTUF,
    QuadraticDecayTUF,
    StepTUF,
    TabulatedTUF,
    TUFError,
)


class TestStepTUF:
    def test_constant_until_deadline(self):
        tuf = StepTUF(height=10.0, deadline=0.5)
        assert tuf.utility(0.0) == 10.0
        assert tuf.utility(0.4999) == 10.0

    def test_zero_at_deadline(self):
        assert StepTUF(10.0, 0.5).utility(0.5) == 0.0

    def test_deadline_equals_termination(self):
        tuf = StepTUF(10.0, 0.5)
        assert tuf.deadline == tuf.termination == 0.5

    def test_max_utility(self):
        assert StepTUF(7.0, 1.0).max_utility == 7.0

    def test_rejects_nonpositive_height(self):
        with pytest.raises(TUFError):
            StepTUF(0.0, 1.0)

    def test_critical_time_nu_one(self):
        assert StepTUF(10.0, 0.5).critical_time(1.0) == 0.5

    def test_critical_time_nu_zero(self):
        assert StepTUF(10.0, 0.5).critical_time(0.0) == 0.5

    def test_fractional_nu_rejected(self):
        # Paper Section 2.2: step TUFs admit nu in {0, 1} only.
        with pytest.raises(TUFError):
            StepTUF(10.0, 0.5).critical_time(0.5)


class TestLinearTUF:
    def test_decays_to_zero_at_termination(self):
        tuf = LinearTUF(10.0, 2.0)
        assert tuf.utility(1.99999) == pytest.approx(0.0, abs=1e-3)

    def test_midpoint_half_utility(self):
        assert LinearTUF(10.0, 2.0).utility(1.0) == pytest.approx(5.0)

    def test_slope_matches_paper_formula(self):
        # Section 5.2: slope = U_max / P.
        tuf = LinearTUF(30.0, 0.6)
        assert tuf.slope == pytest.approx(50.0)

    def test_critical_time_closed_form(self):
        tuf = LinearTUF(10.0, 2.0)
        assert tuf.critical_time(0.3) == pytest.approx(1.4)

    def test_critical_time_nu_one(self):
        assert LinearTUF(10.0, 2.0).critical_time(1.0) == 0.0

    def test_rejects_nonpositive_umax(self):
        with pytest.raises(TUFError):
            LinearTUF(-1.0, 2.0)


class TestPiecewiseLinearTUF:
    def _awacs(self):
        # Fig 1(a): full utility until t_c, then linear drop.
        return PiecewiseLinearTUF([(0.0, 50.0), (0.1, 50.0), (0.2, 0.0)])

    def test_flat_region(self):
        assert self._awacs().utility(0.05) == pytest.approx(50.0)

    def test_decay_region(self):
        assert self._awacs().utility(0.15) == pytest.approx(25.0)

    def test_termination_from_last_point(self):
        assert self._awacs().termination == pytest.approx(0.2)

    def test_critical_time_in_flat_region(self):
        assert self._awacs().critical_time(1.0) == pytest.approx(0.1)

    def test_critical_time_in_decay_region(self):
        assert self._awacs().critical_time(0.5) == pytest.approx(0.15)

    def test_critical_time_nu_zero(self):
        assert self._awacs().critical_time(0.0) == pytest.approx(0.2)

    def test_breakpoints_property(self):
        assert self._awacs().breakpoints == [(0.0, 50.0), (0.1, 50.0), (0.2, 0.0)]

    def test_rejects_nonzero_start(self):
        with pytest.raises(TUFError):
            PiecewiseLinearTUF([(0.1, 1.0), (0.2, 0.0)])

    def test_rejects_increasing_utilities(self):
        with pytest.raises(TUFError):
            PiecewiseLinearTUF([(0.0, 1.0), (0.1, 2.0)])

    def test_rejects_non_monotone_times(self):
        with pytest.raises(TUFError):
            PiecewiseLinearTUF([(0.0, 2.0), (0.1, 1.0), (0.1, 0.5)])

    def test_rejects_single_point(self):
        with pytest.raises(TUFError):
            PiecewiseLinearTUF([(0.0, 1.0)])


class TestMultiStepTUF:
    def _corr(self):
        # Fig 1(b): Uc_max until t_f, Um_max until 2 t_f.
        return MultiStepTUF([(0.25, 30.0), (0.5, 12.0)])

    def test_first_plateau(self):
        assert self._corr().utility(0.1) == 30.0

    def test_second_plateau(self):
        assert self._corr().utility(0.3) == 12.0

    def test_zero_after_last_step(self):
        assert self._corr().utility(0.5) == 0.0

    def test_max_utility(self):
        assert self._corr().max_utility == 30.0

    def test_critical_time_full_requirement(self):
        assert self._corr().critical_time(1.0) == pytest.approx(0.25)

    def test_critical_time_partial_requirement(self):
        # 12/30 = 0.4: the second plateau still satisfies nu=0.4.
        assert self._corr().critical_time(0.4) == pytest.approx(0.5)

    def test_critical_time_unattainable_between_plateaus(self):
        assert self._corr().critical_time(0.5) == pytest.approx(0.25)

    def test_rejects_increasing_steps(self):
        with pytest.raises(TUFError):
            MultiStepTUF([(0.1, 5.0), (0.2, 6.0)])

    def test_rejects_empty(self):
        with pytest.raises(TUFError):
            MultiStepTUF([])


class TestExponentialDecayTUF:
    def test_decay_rate(self):
        tuf = ExponentialDecayTUF(10.0, tau=1.0, termination=5.0)
        assert tuf.utility(1.0) == pytest.approx(10.0 / 2.718281828, rel=1e-6)

    def test_critical_time_closed_form(self):
        tuf = ExponentialDecayTUF(10.0, tau=2.0, termination=50.0)
        d = tuf.critical_time(0.5)
        assert tuf.utility(d) == pytest.approx(5.0, rel=1e-9)

    def test_critical_time_clamped_to_termination(self):
        tuf = ExponentialDecayTUF(10.0, tau=100.0, termination=1.0)
        assert tuf.critical_time(0.1) == 1.0

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(TUFError):
            ExponentialDecayTUF(10.0, tau=0.0, termination=1.0)


class TestQuadraticDecayTUF:
    def test_concavity_beats_linear_early(self):
        quad = QuadraticDecayTUF(10.0, 1.0)
        lin = LinearTUF(10.0, 1.0)
        assert quad.utility(0.3) > lin.utility(0.3)

    def test_zero_at_termination(self):
        assert QuadraticDecayTUF(10.0, 1.0).utility(0.999999) == pytest.approx(0.0, abs=1e-4)

    def test_critical_time_closed_form(self):
        tuf = QuadraticDecayTUF(10.0, 1.0)
        d = tuf.critical_time(0.75)
        assert d == pytest.approx(0.5)
        assert tuf.utility(d) == pytest.approx(7.5)


class TestTabulatedTUF:
    def test_interpolates_samples(self):
        tuf = TabulatedTUF([10.0, 8.0, 4.0, 0.0], termination=3.0)
        assert tuf.utility(0.5) == pytest.approx(9.0)
        assert tuf.utility(1.5) == pytest.approx(6.0)

    def test_rejects_increasing_samples(self):
        with pytest.raises(TUFError):
            TabulatedTUF([1.0, 2.0], termination=1.0)

    def test_rejects_single_sample(self):
        with pytest.raises(TUFError):
            TabulatedTUF([1.0], termination=1.0)
