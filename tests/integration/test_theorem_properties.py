"""Integration checks of the paper's Section 4 theorems.

Theorem 2 / Corollaries 3–4 / Theorem 5 (periodic + step TUFs + no
overload) and Theorem 6 (non-increasing TUFs under the BRH condition),
validated on multiple random workloads.
"""

import numpy as np
import pytest

from repro.analysis import brh_schedulable, is_underload_regime, verify_assurances
from repro.core import EUAStar
from repro.experiments import synthesize_taskset
from repro.sched import EDFStatic
from repro.sim import JobStatus, Platform, compare, materialize, simulate


@pytest.mark.parametrize("seed", [21, 22, 23])
@pytest.mark.parametrize("load", [0.4, 0.8])
class TestTheorem2Family:
    """EDF-equivalence during underloads (EUA* pinned at f_max so the
    schedules are time-comparable)."""

    def _runs(self, load, seed):
        rng = np.random.default_rng(seed)
        ts = synthesize_taskset(load, rng, tuf_shape="step", nu=1.0, rho=0.96)
        assert is_underload_regime(ts, 1000.0)
        trace = materialize(ts, 2.5, rng)
        platform = Platform()
        return ts, compare(
            [EUAStar(name="EUA*", use_dvs=False), EDFStatic(name="EDF")],
            trace,
            platform=platform,
        )

    def test_equal_total_utility(self, load, seed):
        _, runs = self._runs(load, seed)
        assert runs["EUA*"].metrics.accrued_utility == pytest.approx(
            runs["EDF"].metrics.accrued_utility
        )

    def test_all_critical_times_met(self, load, seed):
        _, runs = self._runs(load, seed)
        for job in runs["EUA*"].jobs:
            if job.status is JobStatus.COMPLETED:
                assert job.completion_time <= job.critical_time + 1e-9

    def test_max_lateness_matches_edf(self, load, seed):
        _, runs = self._runs(load, seed)

        def max_lateness(result):
            return max(
                j.completion_time - j.critical_time
                for j in result.jobs
                if j.status is JobStatus.COMPLETED
            )

        assert max_lateness(runs["EUA*"]) == pytest.approx(max_lateness(runs["EDF"]))

    def test_statistical_requirements_met(self, load, seed):
        ts, runs = self._runs(load, seed)
        reports = verify_assurances(runs["EUA*"], ts)
        assert all(r.satisfied_point for r in reports.values())


@pytest.mark.parametrize("seed", [31, 32])
class TestTheorem6:
    """Non-step, non-increasing TUFs with D < X under BRH."""

    def test_assurances_with_dvs(self, seed):
        rng = np.random.default_rng(seed)
        ts = synthesize_taskset(0.6, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        assert brh_schedulable(ts, 1000.0)
        trace = materialize(ts, 2.5, rng)
        result = simulate(trace, EUAStar(), platform=Platform())
        reports = verify_assurances(result, ts)
        assert all(r.satisfied_point for r in reports.values()), {
            k: v.attainment for k, v in reports.items()
        }

    def test_critical_times_precede_terminations(self, seed):
        rng = np.random.default_rng(seed)
        ts = synthesize_taskset(0.6, rng, tuf_shape="linear", nu=0.3, rho=0.9)
        for t in ts:
            assert t.critical_time < t.tuf.termination
