"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.analysis import verify_assurances
from repro.core import EUAStar
from repro.cpu import EnergyModel
from repro.sched import LAEDF, EDFStatic, make_scheduler
from repro.sim import JobStatus, Platform, compare, materialize, simulate


class TestUnderloadBehaviour:
    def test_everyone_completes_everything(self, platform_e1, small_taskset):
        trace = materialize(small_taskset, 3.0, np.random.default_rng(1))
        for name in ("EUA*", "LA-EDF", "EDF", "ccEDF", "Static-EDF"):
            result = simulate(trace, make_scheduler(name), platform_e1)
            assert result.metrics.aborted == 0, name
            assert result.metrics.expired == 0, name
            assert result.metrics.normalized_utility == pytest.approx(1.0), name

    def test_dvs_saves_energy_e1(self, platform_e1, small_taskset):
        trace = materialize(small_taskset, 3.0, np.random.default_rng(2))
        runs = compare(
            [EUAStar(), LAEDF(), EDFStatic()], trace, platform=platform_e1
        )
        edf = runs["EDF"].energy
        assert runs["EUA*"].energy < 0.8 * edf
        assert runs["LA-EDF"].energy < 0.8 * edf

    def test_assurances_hold(self, platform_e1, small_taskset):
        trace = materialize(small_taskset, 3.0, np.random.default_rng(3))
        result = simulate(trace, EUAStar(), platform_e1)
        reports = verify_assurances(result, small_taskset)
        assert all(r.satisfied_point for r in reports.values())


class TestOverloadBehaviour:
    def test_eua_beats_edf_utility(self, platform_e1, overload_taskset):
        trace = materialize(overload_taskset, 3.0, np.random.default_rng(4))
        runs = compare([EUAStar(), EDFStatic()], trace, platform=platform_e1)
        assert (
            runs["EUA*"].metrics.accrued_utility
            > runs["EDF"].metrics.accrued_utility
        )

    def test_domino_effect_without_abortion(self, platform_e1, overload_taskset):
        trace = materialize(overload_taskset, 3.0, np.random.default_rng(5))
        runs = compare(
            [LAEDF(), LAEDF(name="LA-EDF-NA", abort_expired=False)],
            trace,
            platform=platform_e1,
        )
        with_abort = runs["LA-EDF"].metrics.normalized_utility
        without = runs["LA-EDF-NA"].metrics.normalized_utility
        assert without < 0.5 * with_abort

    def test_eua_aborts_infeasible_jobs(self, platform_e1, overload_taskset):
        trace = materialize(overload_taskset, 3.0, np.random.default_rng(6))
        result = simulate(trace, EUAStar(), platform_e1)
        assert result.metrics.aborted > 0
        # Aborted jobs never executed past their point of no return by
        # much: they are dropped early, not at the deadline.
        aborted = [j for j in result.jobs if j.status is JobStatus.ABORTED]
        assert all(j.abort_time < j.termination for j in aborted)

    def test_frequencies_converge_to_fmax(self, platform_e1, overload_taskset):
        trace = materialize(overload_taskset, 3.0, np.random.default_rng(7))
        result = simulate(trace, EUAStar(), platform_e1)
        assert result.processor_stats.average_frequency > 900.0


class TestEnergyModelE3:
    def test_naive_dvs_wastes_energy(self, platform_e3, small_taskset):
        trace = materialize(small_taskset, 3.0, np.random.default_rng(8))
        runs = compare(
            [EUAStar(), LAEDF(), EDFStatic()], trace, platform=platform_e3
        )
        edf = runs["EDF"].energy
        assert runs["LA-EDF"].energy > edf  # race-to-f_min backfires
        assert runs["EUA*"].energy < edf  # f° bound adapts

    def test_eua_sits_near_energy_optimal_level(self, platform_e3, small_taskset):
        trace = materialize(small_taskset, 3.0, np.random.default_rng(9))
        result = simulate(trace, EUAStar(), platform_e3)
        residency = result.processor_stats.residency
        busiest = max(residency, key=residency.get)
        assert busiest == 820.0  # E3's per-cycle optimum on the ladder


class TestComparisonHarness:
    def test_shared_workload_has_identical_releases(self, platform_e1, small_taskset):
        trace = materialize(small_taskset, 2.0, np.random.default_rng(10))
        runs = compare([EUAStar(), EDFStatic()], trace, platform=platform_e1)
        keys_a = sorted(j.key for j in runs["EUA*"].jobs)
        keys_b = sorted(j.key for j in runs["EDF"].jobs)
        assert keys_a == keys_b

    def test_duplicate_names_rejected(self, platform_e1, small_taskset):
        with pytest.raises(ValueError):
            compare(
                [EDFStatic(), EDFStatic()],
                small_taskset,
                platform=platform_e1,
                horizon=1.0,
                seed=1,
            )
