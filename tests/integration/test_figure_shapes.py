"""Reduced-scale reproductions of the paper's figure shapes.

The full sweeps live in benchmarks/; these integration tests pin the
qualitative claims at a scale suitable for the unit-test suite.
"""

import numpy as np
import pytest

from repro.core import EUAStar
from repro.experiments import energy_setting, run_figure2, synthesize_taskset
from repro.sim import Platform, compare, materialize


@pytest.fixture(scope="module")
def fig2_e1():
    return run_figure2("E1", loads=(0.4, 1.6), seeds=(11,), horizon=2.5)


@pytest.fixture(scope="module")
def fig2_e3():
    return run_figure2("E3", loads=(0.4, 1.6), seeds=(11,), horizon=2.5)


class TestFigure2Shape:
    def test_underload_optimal_utility(self, fig2_e1):
        p = fig2_e1.points[0]
        for name in ("EUA*", "LA-EDF", "LA-EDF-NA", "EDF"):
            assert p.utility[name].mean >= 0.97

    def test_underload_energy_savings(self, fig2_e1):
        p = fig2_e1.points[0]
        assert p.energy["EUA*"].mean < 0.6
        assert p.energy["LA-EDF"].mean < 0.6

    def test_overload_domino(self, fig2_e1):
        p = fig2_e1.points[-1]
        assert p.utility["LA-EDF-NA"].mean < 0.5 * p.utility["LA-EDF"].mean

    def test_overload_eua_wins_utility(self, fig2_e1):
        p = fig2_e1.points[-1]
        assert p.utility["EUA*"].mean >= p.utility["LA-EDF"].mean

    def test_overload_energy_converges(self, fig2_e1):
        p = fig2_e1.points[-1]
        for name in ("EUA*", "LA-EDF"):
            assert p.energy[name].mean == pytest.approx(1.0, abs=0.1)

    def test_e3_inversion(self, fig2_e3):
        p = fig2_e3.points[0]
        assert p.energy["LA-EDF"].mean > 1.0
        assert p.energy["EUA*"].mean < 1.0


class TestFigure3Mechanism:
    def test_burstiness_raises_lookahead_energy(self):
        """The a=3 UAM envelope with unpredictable arrivals costs more
        energy than a=1 at the same mid-range load (Figure 3)."""
        platform = Platform(energy_model=energy_setting("E1"))
        energies = {}
        for a in (1, 3):
            ratios = []
            for seed in (11, 13):
                rng = np.random.default_rng(seed)
                ts = synthesize_taskset(
                    0.8, rng, tuf_shape="linear", nu=0.3, rho=0.9,
                    arrival_mode="poisson", burst_override=a,
                )
                trace = materialize(ts, 2.5, rng)
                runs = compare(
                    [EUAStar(name="EUA*"), EUAStar(name="noDVS", use_dvs=False)],
                    trace,
                    platform=platform,
                )
                ratios.append(runs["EUA*"].energy / runs["noDVS"].energy)
            energies[a] = float(np.mean(ratios))
        assert energies[3] > energies[1]

    def test_overload_insensitive_to_burst(self):
        platform = Platform(energy_model=energy_setting("E1"))
        energies = {}
        for a in (1, 3):
            rng = np.random.default_rng(17)
            ts = synthesize_taskset(
                1.7, rng, tuf_shape="linear", nu=0.3, rho=0.9,
                arrival_mode="poisson", burst_override=a,
            )
            trace = materialize(ts, 2.0, rng)
            runs = compare(
                [EUAStar(name="EUA*"), EUAStar(name="noDVS", use_dvs=False)],
                trace,
                platform=platform,
            )
            energies[a] = runs["EUA*"].energy / runs["noDVS"].energy
        assert energies[1] == pytest.approx(energies[3], abs=0.12)
        assert min(energies.values()) > 0.75
