"""Every shipped example must run to completion and print its story.

Examples are documentation; rotten ones are worse than none.  Each runs
as a subprocess exactly the way a reader would invoke it.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


class TestExamples:
    def test_quickstart_underload(self):
        stdout = _run("quickstart.py", "0.5")
        assert "EUA*" in stdout and "EDF" in stdout
        assert "norm energy" in stdout

    def test_quickstart_overload(self):
        stdout = _run("quickstart.py", "1.5")
        assert "EUA*" in stdout

    def test_awacs_tracking(self):
        stdout = _run("awacs_tracking.py")
        assert "saturation engagement" in stdout
        assert "track_association" in stdout

    def test_mobile_multimedia(self):
        stdout = _run("mobile_multimedia.py")
        assert "battery life" in stdout
        assert "820 MHz" in stdout  # the E3 UER-optimal level

    def test_overload_adaptation(self):
        stdout = _run("overload_adaptation.py")
        assert "Finite energy budget" in stdout

    def test_profiling_loop(self):
        stdout = _run("profiling_loop.py")
        assert "Day 1 (profiled budgets)" in stdout
        assert "energy saved" in stdout
