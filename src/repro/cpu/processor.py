"""Simulated DVS processor — cycle and energy accounting.

The :class:`Processor` is a passive state machine driven by the
simulation engine: the engine tells it "run at frequency f for Δt
seconds" or "idle for Δt seconds" and it integrates executed cycles and
consumed energy under a :class:`~repro.cpu.energy.EnergyModel`.

Frequency-switch overhead (time and energy) is modelled optionally; the
paper ignores it (as do the RT-DVS baselines it compares against), so
the default is zero, but the knob enables the AB6-style sensitivity
ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .energy import EnergyError, EnergyModel
from .frequency import FrequencyError, FrequencyScale

__all__ = ["Processor", "ProcessorStats"]


@dataclass
class ProcessorStats:
    """Cumulative processor accounting."""

    energy: float = 0.0
    cycles_executed: float = 0.0
    busy_time: float = 0.0
    idle_time: float = 0.0
    idle_energy: float = 0.0
    switch_count: int = 0
    switch_energy: float = 0.0
    #: (frequency, seconds) residency pairs accumulated per level.
    residency: dict = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        return self.energy + self.idle_energy + self.switch_energy

    @property
    def total_time(self) -> float:
        return self.busy_time + self.idle_time

    @property
    def average_frequency(self) -> float:
        """Cycle-weighted mean operating frequency while busy."""
        if self.busy_time == 0.0:
            return 0.0
        return self.cycles_executed / self.busy_time


class Processor:
    """A DVS-capable uniprocessor with energy integration.

    Parameters
    ----------
    scale:
        The discrete frequency ladder.
    model:
        Per-cycle energy model.
    idle_power:
        Power drawn while idle (default 0, matching the paper's
        formulation; see DESIGN.md).
    switch_time, switch_energy:
        Optional per-transition DVS overheads.
    """

    def __init__(
        self,
        scale: FrequencyScale,
        model: EnergyModel,
        idle_power: float = 0.0,
        switch_time: float = 0.0,
        switch_energy: float = 0.0,
    ):
        if idle_power < 0.0:
            raise EnergyError(f"idle_power must be >= 0, got {idle_power!r}")
        if switch_time < 0.0 or switch_energy < 0.0:
            raise EnergyError("switch overheads must be >= 0")
        self.scale = scale
        self.model = model
        self.idle_power = float(idle_power)
        self.switch_time = float(switch_time)
        self.switch_energy = float(switch_energy)
        self._frequency = scale.f_max
        self.stats = ProcessorStats()

    # ------------------------------------------------------------------
    @property
    def frequency(self) -> float:
        """Current operating frequency (MHz)."""
        return self._frequency

    def set_frequency(self, frequency: float) -> float:
        """Switch operating point; returns the switch *time* overhead.

        ``frequency`` must be a level of the ladder.  Setting the current
        frequency is a no-op with zero overhead.
        """
        if frequency not in self.scale:
            raise FrequencyError(f"{frequency!r} is not a level of {self.scale!r}")
        if math.isclose(frequency, self._frequency, rel_tol=1e-12):
            return 0.0
        self._frequency = frequency
        self.stats.switch_count += 1
        self.stats.switch_energy += self.switch_energy
        return self.switch_time

    # ------------------------------------------------------------------
    def run(self, duration: float) -> float:
        """Execute at the current frequency for ``duration`` seconds.

        Returns the number of (M)cycles executed and accrues energy.
        """
        self._check_duration(duration)
        if duration == 0.0:
            return 0.0
        cycles = self._frequency * duration
        self.stats.cycles_executed += cycles
        self.stats.busy_time += duration
        self.stats.energy += self.model.energy_for(cycles, self._frequency)
        self.stats.residency[self._frequency] = (
            self.stats.residency.get(self._frequency, 0.0) + duration
        )
        return cycles

    def run_cycles(self, cycles: float) -> float:
        """Execute ``cycles`` at the current frequency; returns seconds."""
        if cycles < 0.0:
            raise EnergyError(f"cycles must be >= 0, got {cycles!r}")
        duration = cycles / self._frequency
        self.run(duration)
        return duration

    def idle(self, duration: float) -> None:
        """Idle for ``duration`` seconds (charges ``idle_power``)."""
        self._check_duration(duration)
        self.stats.idle_time += duration
        self.stats.idle_energy += self.idle_power * duration

    def time_for_cycles(self, cycles: float, frequency: Optional[float] = None) -> float:
        """Seconds needed to execute ``cycles`` at ``frequency`` (current
        frequency if omitted)."""
        f = self._frequency if frequency is None else frequency
        if f <= 0.0:
            raise FrequencyError(f"frequency must be > 0, got {f!r}")
        return cycles / f

    @staticmethod
    def _check_duration(duration: float) -> None:
        if duration < 0.0 or not math.isfinite(duration):
            raise EnergyError(f"duration must be finite and >= 0, got {duration!r}")

    def reset(self) -> None:
        """Clear accumulated statistics and return to ``f_max``."""
        self._frequency = self.scale.f_max
        self.stats = ProcessorStats()
