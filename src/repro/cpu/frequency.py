"""Discrete DVS frequency scales.

The paper's target is a variable-voltage processor with ``m`` discrete
operating frequencies ``{f_1 < … < f_m}``; the experiments use the AMD
K6-2+ with the PowerNow! ladder.  Units are **MHz = Mcycles/second**,
pairing with demands in Mcycles.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["FrequencyScale", "FrequencyError", "POWERNOW_K6_MHZ"]

#: AMD K6-2+ PowerNow! operating points (MHz), paper Section 5.  The scan
#: shows "{36, 55, 64, 73, 82, 91, 1 MHz}" with trailing zeros lost; the
#: physical part steps 360..1000 MHz (see DESIGN.md, substitution notes).
POWERNOW_K6_MHZ: Tuple[float, ...] = (360.0, 550.0, 640.0, 730.0, 820.0, 910.0, 1000.0)


class FrequencyError(ValueError):
    """Raised for ill-formed frequency scales or out-of-scale requests."""


class FrequencyScale:
    """An ordered set of discrete CPU frequencies.

    Implements the paper's ``selectFreq(x)``: the lowest level ``f_i`` with
    ``x <= f_i`` (returns ``None`` when ``x`` exceeds ``f_max``, the
    overload case Algorithm 2 guards against by capping at ``f_m``).
    """

    def __init__(self, levels: Iterable[float]):
        lv = sorted(float(f) for f in levels)
        if not lv:
            raise FrequencyError("need at least one frequency level")
        for f in lv:
            if f <= 0.0 or not math.isfinite(f):
                raise FrequencyError(f"frequencies must be finite and > 0, got {f!r}")
        for a, b in zip(lv, lv[1:]):
            if b == a:
                raise FrequencyError(f"duplicate frequency level {a!r}")
        self._levels: Tuple[float, ...] = tuple(lv)

    # ------------------------------------------------------------------
    @classmethod
    def powernow_k6(cls) -> "FrequencyScale":
        """The AMD K6-2+ PowerNow! scale used in the paper's simulations."""
        return cls(POWERNOW_K6_MHZ)

    @classmethod
    def single(cls, frequency: float) -> "FrequencyScale":
        """A fixed-frequency processor (no DVS)."""
        return cls([frequency])

    @classmethod
    def uniform(cls, f_min: float, f_max: float, levels: int) -> "FrequencyScale":
        """``levels`` equally spaced frequencies in ``[f_min, f_max]``."""
        if levels < 1:
            raise FrequencyError(f"need >= 1 level, got {levels!r}")
        if levels == 1:
            return cls([f_max])
        if not (0.0 < f_min < f_max):
            raise FrequencyError(f"need 0 < f_min < f_max, got ({f_min!r}, {f_max!r})")
        step = (f_max - f_min) / (levels - 1)
        return cls(f_min + step * k for k in range(levels))

    # ------------------------------------------------------------------
    @property
    def levels(self) -> Tuple[float, ...]:
        return self._levels

    @property
    def f_min(self) -> float:
        return self._levels[0]

    @property
    def f_max(self) -> float:
        return self._levels[-1]

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self):
        return iter(self._levels)

    def __contains__(self, f: float) -> bool:
        i = bisect_left(self._levels, f)
        return i < len(self._levels) and math.isclose(self._levels[i], f, rel_tol=1e-12)

    # ------------------------------------------------------------------
    def _snap_index(self, x: float) -> Optional[int]:
        """Index of the lowest level within float tolerance of ``x``.

        Both :meth:`select` and :meth:`floor` treat a level within one
        relative ULP-scale tolerance of the query as *equal* to it.  They
        must agree on which level that is — when two adjacent levels are
        both within tolerance, the lower one wins for both — otherwise
        ``floor(x)`` could exceed ``at_least(x)`` by one ULP.
        """
        i = bisect_left(self._levels, x)
        if i > 0 and math.isclose(self._levels[i - 1], x, rel_tol=1e-12):
            return i - 1
        if i < len(self._levels) and math.isclose(self._levels[i], x, rel_tol=1e-12):
            return i
        return None

    def select(self, demand: float) -> Optional[float]:
        """``selectFreq(x)``: lowest level ``>= demand``, else ``None``.

        ``demand`` is a required execution rate in Mcycles/second.  A
        non-positive demand selects the lowest level (the CPU must still
        run to execute the head job).
        """
        if demand <= 0.0:
            return self.f_min
        # Float noise can land a demand one ULP off an exact level.
        snap = self._snap_index(demand)
        if snap is not None:
            return self._levels[snap]
        i = bisect_left(self._levels, demand)
        if i == len(self._levels):
            return None
        return self._levels[i]

    def select_capped(self, demand: float) -> float:
        """Like :meth:`select` but saturating at ``f_max`` (Algorithm 2
        line 9: during overload the required frequency is capped)."""
        chosen = self.select(demand)
        return self.f_max if chosen is None else chosen

    def floor(self, frequency: float) -> float:
        """Highest level ``<= frequency`` (lowest level if none)."""
        snap = self._snap_index(frequency)
        if snap is not None:
            return self._levels[snap]
        i = bisect_left(self._levels, frequency)
        return self._levels[max(0, i - 1)]

    def at_least(self, frequency: float) -> float:
        """Lowest level ``>= frequency``, saturating at ``f_max``."""
        return self.select_capped(frequency)

    def normalized(self) -> List[float]:
        """Levels divided by ``f_max`` (handy for reporting)."""
        return [f / self.f_max for f in self._levels]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FrequencyScale({list(self._levels)!r})"
