"""Martin's system-level energy model (paper Section 2.4).

At frequency ``f`` the *system* (CPU + memory + fixed-power peripherals +
second-order regulator/leakage effects) draws dynamic power

    P(f) = S3·f³ + S2·f² + S1·f + S0,

so the expected energy consumed **per cycle** is

    E(f) = S3·f² + S2·f + S1 + S0/f.            (paper Eq. 1)

The S0 term makes slower-not-always-better: below some frequency the
fixed system power dominates and energy per cycle rises again, which is
what gives each task a UER-*optimal* frequency that is "not necessarily
the lowest one".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .frequency import FrequencyScale

__all__ = [
    "EnergyModel",
    "EnergyError",
    "energy_optimal_frequency",
    "MulticorePowerModel",
    "MPConfiguration",
    "min_energy_configuration",
]


class EnergyError(ValueError):
    """Raised for ill-formed energy-model parameters."""


@dataclass(frozen=True)
class EnergyModel:
    """Per-cycle system energy ``E(f) = s3·f² + s2·f + s1 + s0/f``.

    Coefficients are non-negative; at least one must be positive.  Units
    are arbitrary (the paper reports only normalised energies); the
    coefficients in the Table 2 presets pair with frequencies in MHz.
    """

    s3: float = 0.0
    s2: float = 0.0
    s1: float = 0.0
    s0: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        for label, v in (("s3", self.s3), ("s2", self.s2), ("s1", self.s1), ("s0", self.s0)):
            if v < 0.0 or not math.isfinite(v):
                raise EnergyError(f"{label} must be finite and >= 0, got {v!r}")
        if self.s3 == self.s2 == self.s1 == self.s0 == 0.0:
            raise EnergyError("at least one coefficient must be positive")
        # Per-frequency memo for energy_per_cycle: the scheduler hot
        # paths price the same handful of ladder levels millions of
        # times per sweep (UER denominators, quantisation, accounting).
        # Values are the cached results of the exact computation, so
        # observable behaviour is bit-identical with or without it.
        object.__setattr__(self, "_epc_cache", {})

    # ------------------------------------------------------------------
    # Paper presets (Table 2).  The scanned coefficients are OCR-damaged;
    # see DESIGN.md for the reconstruction rationale.  E1 is the stated
    # conventional CPU-only cubic model.
    # ------------------------------------------------------------------
    @classmethod
    def e1(cls) -> "EnergyModel":
        """E1: conventional CPU-only model, ``P = f³`` (S3 = 1)."""
        return cls(s3=1.0, name="E1")

    @classmethod
    def e2(cls, f_max: float) -> "EnergyModel":
        """E2: half the cubic CPU term plus frequency-proportional
        subsystem power ``S1 = 0.1·f_max²`` (memory-like component)."""
        cls._check_fmax(f_max)
        return cls(s3=0.5, s1=0.1 * f_max**2, name="E2")

    @classmethod
    def e3(cls, f_max: float) -> "EnergyModel":
        """E3: half the cubic CPU term plus large fixed system power
        ``S0 = 0.5·f_max³`` (display-like component) — the setting where
        aggressive down-scaling stops paying off."""
        cls._check_fmax(f_max)
        return cls(s3=0.5, s0=0.5 * f_max**3, name="E3")

    @staticmethod
    def _check_fmax(f_max: float) -> None:
        if f_max <= 0.0 or not math.isfinite(f_max):
            raise EnergyError(f"f_max must be finite and > 0, got {f_max!r}")

    @classmethod
    def cpu_only(cls, s3: float = 1.0) -> "EnergyModel":
        """Pure ``S3·f³`` CPU model with a configurable constant."""
        return cls(s3=s3, name=f"cpu_only(s3={s3})")

    # ------------------------------------------------------------------
    def energy_per_cycle(self, frequency: float) -> float:
        """``E(f)`` — expected energy for one (M)cycle at ``frequency``.

        Memoized per frequency (only valid frequencies are cached, so
        the ``frequency <= 0`` check still fires on every bad call).
        """
        epc = self._epc_cache.get(frequency)
        if epc is None:
            if frequency <= 0.0:
                raise EnergyError(f"frequency must be > 0, got {frequency!r}")
            f = frequency
            epc = self.s3 * f * f + self.s2 * f + self.s1 + self.s0 / f
            self._epc_cache[frequency] = epc
        return epc

    def power(self, frequency: float) -> float:
        """Dynamic system power ``P(f) = f · E(f)``."""
        return frequency * self.energy_per_cycle(frequency)

    def energy_for(self, cycles: float, frequency: float) -> float:
        """Energy to execute ``cycles`` at ``frequency``."""
        if cycles < 0.0:
            raise EnergyError(f"cycles must be >= 0, got {cycles!r}")
        return cycles * self.energy_per_cycle(frequency)

    def has_fixed_power(self) -> bool:
        """Whether the model includes frequency-independent power (S0)."""
        return self.s0 > 0.0

    def __str__(self) -> str:
        return self.name or (
            f"EnergyModel(s3={self.s3}, s2={self.s2}, s1={self.s1}, s0={self.s0})"
        )


def energy_optimal_frequency(model: EnergyModel, scale: FrequencyScale) -> float:
    """Level of ``scale`` minimising energy-per-cycle ``E(f)``.

    With ``s0 == 0`` this is always ``f_min``; with fixed system power the
    minimum can move strictly inside the ladder.  (The *UER*-optimal
    frequency, which also weighs utility decay, lives in
    :mod:`repro.core.offline` because it needs the task's TUF.)
    """
    return min(scale.levels, key=model.energy_per_cycle)


# ----------------------------------------------------------------------
# Multicore platform model (repro.mp)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MulticorePowerModel:
    """Core-count-aware platform power.

    Each powered-on core runs the same per-core Martin model, and every
    powered-on core additionally draws a frequency-independent uncore
    share ``active_power`` (interconnect, shared caches, per-core
    regulator).  With ``k`` active cores all clocked at ``f``:

        P(f, k) = k · (P_core(f) + active_power).

    ``active_power = 0`` collapses to ``k`` independent uniprocessor
    Martin models, which is what keeps the m=1 engine bit-identical to
    the uniprocessor one.  The :meth:`eapss` constructor yields the
    EAPSS-style ``P ∝ f³·cores`` alternative (per-core ``E(f) = f²``).
    """

    core_model: EnergyModel
    active_power: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.active_power < 0.0 or not math.isfinite(self.active_power):
            raise EnergyError(
                f"active_power must be finite and >= 0, got {self.active_power!r}"
            )

    @classmethod
    def martin(cls, core_model: EnergyModel, active_power: float = 0.0) -> "MulticorePowerModel":
        """Per-core Martin model plus the active-cores uncore term."""
        return cls(
            core_model=core_model,
            active_power=active_power,
            name=f"martin[{core_model}]",
        )

    @classmethod
    def eapss(cls, active_power: float = 0.0) -> "MulticorePowerModel":
        """EAPSS-style platform: ``P(f, k) = k·f³`` (+ uncore term).

        Equivalent to a cubic CPU-only per-core model — the
        multiprocessor analogue of the paper's E1 preset.
        """
        return cls(
            core_model=EnergyModel.cpu_only(),
            active_power=active_power,
            name="eapss",
        )

    # ------------------------------------------------------------------
    def platform_power(self, frequency: float, active_cores: int) -> float:
        """``P(f, k)`` — total power with ``k`` cores active at ``f``."""
        if active_cores < 0:
            raise EnergyError(f"active_cores must be >= 0, got {active_cores!r}")
        if active_cores == 0:
            return 0.0
        return active_cores * (self.core_model.power(frequency) + self.active_power)

    def __str__(self) -> str:
        return self.name or f"MulticorePowerModel({self.core_model})"


@dataclass(frozen=True)
class MPConfiguration:
    """One (frequency, active-cores) operating point of the platform."""

    frequency: float
    cores: int
    power: float
    feasible: bool


def _ffd_fits(rates: list, bins: int, capacity: float) -> bool:
    """First-fit-decreasing feasibility: can ``rates`` (cycles/second
    densities ``C_i/D_i``) be packed into ``bins`` cores of ``capacity``
    cycles/second each?  Sufficient, not necessary — the standard
    partitioned-feasibility test (Baruah & Fisher)."""
    tol = 1e-9 * max(1.0, capacity)
    loads = [0.0] * bins
    for rate in sorted(rates, reverse=True):
        for i in range(bins):
            if loads[i] + rate <= capacity + tol:
                loads[i] += rate
                break
        else:
            return False
    return True


def min_energy_configuration(
    model: MulticorePowerModel,
    scale: FrequencyScale,
    m: int,
    task_rates,
) -> MPConfiguration:
    """Minimum-energy feasible (frequency, active-cores) pair.

    Searches every ladder level ``f`` × core count ``k ∈ 1..m`` and
    returns the feasible configuration (FFD-packable task densities)
    with the lowest platform power ``P(f, k)``; ties break toward fewer
    cores, then lower frequency.  On overload — no configuration packs
    the task set even at ``(f_max, m)`` — falls back to full power with
    ``feasible=False``, mirroring the uniprocessor ``decideFreq``
    overload fallback.
    """
    if m < 1:
        raise EnergyError(f"m must be >= 1, got {m!r}")
    rates = [float(r) for r in task_rates]
    if any(r < 0.0 or not math.isfinite(r) for r in rates):
        raise EnergyError(f"task rates must be finite and >= 0, got {rates!r}")
    best: "MPConfiguration | None" = None
    for k in range(1, m + 1):
        for f in scale.levels:
            if not _ffd_fits(rates, k, f):
                continue
            power = model.platform_power(f, k)
            if (
                best is None
                or power < best.power
                or (power == best.power and (k, f) < (best.cores, best.frequency))
            ):
                best = MPConfiguration(frequency=f, cores=k, power=power, feasible=True)
    if best is not None:
        return best
    f_max = scale.f_max
    return MPConfiguration(
        frequency=f_max,
        cores=m,
        power=model.platform_power(f_max, m),
        feasible=False,
    )
