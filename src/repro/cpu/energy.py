"""Martin's system-level energy model (paper Section 2.4).

At frequency ``f`` the *system* (CPU + memory + fixed-power peripherals +
second-order regulator/leakage effects) draws dynamic power

    P(f) = S3·f³ + S2·f² + S1·f + S0,

so the expected energy consumed **per cycle** is

    E(f) = S3·f² + S2·f + S1 + S0/f.            (paper Eq. 1)

The S0 term makes slower-not-always-better: below some frequency the
fixed system power dominates and energy per cycle rises again, which is
what gives each task a UER-*optimal* frequency that is "not necessarily
the lowest one".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .frequency import FrequencyScale

__all__ = ["EnergyModel", "EnergyError", "energy_optimal_frequency"]


class EnergyError(ValueError):
    """Raised for ill-formed energy-model parameters."""


@dataclass(frozen=True)
class EnergyModel:
    """Per-cycle system energy ``E(f) = s3·f² + s2·f + s1 + s0/f``.

    Coefficients are non-negative; at least one must be positive.  Units
    are arbitrary (the paper reports only normalised energies); the
    coefficients in the Table 2 presets pair with frequencies in MHz.
    """

    s3: float = 0.0
    s2: float = 0.0
    s1: float = 0.0
    s0: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        for label, v in (("s3", self.s3), ("s2", self.s2), ("s1", self.s1), ("s0", self.s0)):
            if v < 0.0 or not math.isfinite(v):
                raise EnergyError(f"{label} must be finite and >= 0, got {v!r}")
        if self.s3 == self.s2 == self.s1 == self.s0 == 0.0:
            raise EnergyError("at least one coefficient must be positive")
        # Per-frequency memo for energy_per_cycle: the scheduler hot
        # paths price the same handful of ladder levels millions of
        # times per sweep (UER denominators, quantisation, accounting).
        # Values are the cached results of the exact computation, so
        # observable behaviour is bit-identical with or without it.
        object.__setattr__(self, "_epc_cache", {})

    # ------------------------------------------------------------------
    # Paper presets (Table 2).  The scanned coefficients are OCR-damaged;
    # see DESIGN.md for the reconstruction rationale.  E1 is the stated
    # conventional CPU-only cubic model.
    # ------------------------------------------------------------------
    @classmethod
    def e1(cls) -> "EnergyModel":
        """E1: conventional CPU-only model, ``P = f³`` (S3 = 1)."""
        return cls(s3=1.0, name="E1")

    @classmethod
    def e2(cls, f_max: float) -> "EnergyModel":
        """E2: half the cubic CPU term plus frequency-proportional
        subsystem power ``S1 = 0.1·f_max²`` (memory-like component)."""
        cls._check_fmax(f_max)
        return cls(s3=0.5, s1=0.1 * f_max**2, name="E2")

    @classmethod
    def e3(cls, f_max: float) -> "EnergyModel":
        """E3: half the cubic CPU term plus large fixed system power
        ``S0 = 0.5·f_max³`` (display-like component) — the setting where
        aggressive down-scaling stops paying off."""
        cls._check_fmax(f_max)
        return cls(s3=0.5, s0=0.5 * f_max**3, name="E3")

    @staticmethod
    def _check_fmax(f_max: float) -> None:
        if f_max <= 0.0 or not math.isfinite(f_max):
            raise EnergyError(f"f_max must be finite and > 0, got {f_max!r}")

    @classmethod
    def cpu_only(cls, s3: float = 1.0) -> "EnergyModel":
        """Pure ``S3·f³`` CPU model with a configurable constant."""
        return cls(s3=s3, name=f"cpu_only(s3={s3})")

    # ------------------------------------------------------------------
    def energy_per_cycle(self, frequency: float) -> float:
        """``E(f)`` — expected energy for one (M)cycle at ``frequency``.

        Memoized per frequency (only valid frequencies are cached, so
        the ``frequency <= 0`` check still fires on every bad call).
        """
        epc = self._epc_cache.get(frequency)
        if epc is None:
            if frequency <= 0.0:
                raise EnergyError(f"frequency must be > 0, got {frequency!r}")
            f = frequency
            epc = self.s3 * f * f + self.s2 * f + self.s1 + self.s0 / f
            self._epc_cache[frequency] = epc
        return epc

    def power(self, frequency: float) -> float:
        """Dynamic system power ``P(f) = f · E(f)``."""
        return frequency * self.energy_per_cycle(frequency)

    def energy_for(self, cycles: float, frequency: float) -> float:
        """Energy to execute ``cycles`` at ``frequency``."""
        if cycles < 0.0:
            raise EnergyError(f"cycles must be >= 0, got {cycles!r}")
        return cycles * self.energy_per_cycle(frequency)

    def has_fixed_power(self) -> bool:
        """Whether the model includes frequency-independent power (S0)."""
        return self.s0 > 0.0

    def __str__(self) -> str:
        return self.name or (
            f"EnergyModel(s3={self.s3}, s2={self.s2}, s1={self.s1}, s0={self.s0})"
        )


def energy_optimal_frequency(model: EnergyModel, scale: FrequencyScale) -> float:
    """Level of ``scale`` minimising energy-per-cycle ``E(f)``.

    With ``s0 == 0`` this is always ``f_min``; with fixed system power the
    minimum can move strictly inside the ladder.  (The *UER*-optimal
    frequency, which also weighs utility decay, lives in
    :mod:`repro.core.offline` because it needs the task's TUF.)
    """
    return min(scale.levels, key=model.energy_per_cycle)
