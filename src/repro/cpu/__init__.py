"""CPU substrate: DVS frequency ladder, system-level energy model, processor."""

from .energy import (
    EnergyError,
    EnergyModel,
    MPConfiguration,
    MulticorePowerModel,
    energy_optimal_frequency,
    min_energy_configuration,
)
from .frequency import POWERNOW_K6_MHZ, FrequencyError, FrequencyScale
from .processor import Processor, ProcessorStats

__all__ = [
    "FrequencyScale",
    "FrequencyError",
    "POWERNOW_K6_MHZ",
    "EnergyModel",
    "EnergyError",
    "energy_optimal_frequency",
    "MulticorePowerModel",
    "MPConfiguration",
    "min_energy_configuration",
    "Processor",
    "ProcessorStats",
]
