"""Multiprocessor EUA* (repro.mp).

Partitioned and global multicore scheduling on m per-core
:class:`~repro.cpu.Processor` instances behind the uniprocessor
:class:`~repro.sim.scheduler.SchedulerView` contract, with a
core-count-aware platform energy model.  See ``docs/model.md``
("Multiprocessor extension") for semantics and assumptions.
"""

from .engine import (
    MP_MODES,
    GlobalEngine,
    MPSimulationResult,
    MulticorePlatform,
    simulate_global,
    simulate_mp,
    simulate_partitioned,
)
from .partition import PARTITION_STRATEGIES, Partition, partition_taskset

__all__ = [
    "MP_MODES",
    "PARTITION_STRATEGIES",
    "GlobalEngine",
    "MPSimulationResult",
    "MulticorePlatform",
    "Partition",
    "partition_taskset",
    "simulate_global",
    "simulate_mp",
    "simulate_partitioned",
]
