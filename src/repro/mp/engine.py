"""Multiprocessor simulation engines (partitioned & global EUA*).

Two execution models over ``m`` per-core :class:`~repro.cpu.Processor`
instances, both behind the existing :class:`~repro.sim.scheduler.SchedulerView`
contract so every uniprocessor policy runs unchanged:

* **partitioned** — tasks are assigned to cores offline
  (:func:`~repro.mp.partition.partition_taskset`) and each core runs the
  *unmodified* uniprocessor :class:`~repro.sim.engine.Engine` over its
  disjoint sub-workload.  No migrations, by construction.
* **global** — one shared ready queue; at every scheduling event the
  policy's ``decide`` is invoked repeatedly over residual views
  (``view.without(...)``) to pick the top-m jobs by its own ordering
  (UER for EUA*), each with its own per-core frequency decision.  Jobs
  may resume on a different core than they last ran on; such migrations
  are counted and emitted as :attr:`~repro.obs.EventKind.MIGRATE`.

The anchoring oracle: at ``m = 1`` both modes reduce *bit-identically*
to the uniprocessor engine — partitioned because it literally runs it,
global because its loop mirrors ``Engine._run_loop`` operation-for-
operation (same EPS tolerances, same event-emission order, same float
expressions).  ``tests/properties/test_mp_equivalence.py`` pins this.

Energy: each core integrates the per-core Martin model exactly as the
uniprocessor does; the platform additionally charges the
frequency-independent uncore share ``active_power`` per powered core
over the whole horizon (:class:`~repro.cpu.MulticorePowerModel`).  The
uncore term is folded into the combined ``idle_energy`` so existing
aggregate consumers (``Metrics``, normalisers, campaigns) see it
without modification; ``active_power = 0`` (the default) keeps m=1 runs
exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cpu import (
    EnergyModel,
    FrequencyScale,
    MPConfiguration,
    MulticorePowerModel,
    Processor,
    ProcessorStats,
    min_energy_configuration,
)
from ..obs import EventKind, Observer
from ..sim.engine import EPS_CYCLES, EPS_TIME, Engine, SimulationError, SimulationResult, _ArrivalLog
from ..sim.job import Job, JobStatus
from ..sim.metrics import Metrics
from ..sim.runner import Platform
from ..sim.scheduler import ArrivalWindow, Scheduler, SchedulerView, SchedulingEvent
from ..sim.task import TaskSet
from ..sim.workload import WorkloadTrace
from .partition import Partition, partition_taskset

__all__ = [
    "MulticorePlatform",
    "MPSimulationResult",
    "simulate_partitioned",
    "simulate_global",
    "simulate_mp",
    "MP_MODES",
]

MP_MODES = ("partitioned", "global")

#: One executed/idle interval of one core: (start, end, job key or None,
#: frequency).  Same shape as :class:`repro.sim.trace.Segment`.
CoreSegment = Tuple[float, float, Optional[str], float]

SchedulerSpecLike = Union[str, Scheduler, Callable[[], Scheduler]]


def _scheduler_factory(spec: SchedulerSpecLike) -> Callable[[], Scheduler]:
    """Normalise a scheduler spec into a fresh-instance factory.

    Accepts a registry name, a zero-arg factory, or a ready instance.
    An instance is wrapped in a single-shot factory: schedulers are
    stateful, so it may be consumed at most once (the partitioned
    engine needs one instance *per core*).
    """
    if isinstance(spec, str):
        from ..sched import make_scheduler

        return lambda: make_scheduler(spec)
    if isinstance(spec, Scheduler):
        box = [spec]

        def once() -> Scheduler:
            if not box:
                raise ValueError(
                    "a Scheduler instance can drive only one core; pass a "
                    "registry name or a factory for multicore runs"
                )
            return box.pop()

        return once
    return spec


class _CoreObserver:
    """Observer proxy that stamps every event with its core index.

    Duck-types the :class:`~repro.obs.Observer` surface the engine and
    schedulers touch (``emit``/``inc``/``set_gauge``/``observe``/
    ``record`` plus the ``events``/``metrics``/``profiler``/``spans``
    attributes).  All sinks are *shared* with the wrapped observer —
    only ``emit`` is intercepted, to inject ``core=k`` into the event's
    field dict.  Metric label cardinality is left untouched so m=1 runs
    aggregate identically to uniprocessor ones.
    """

    __slots__ = ("_obs", "core", "events", "metrics", "profiler", "spans")

    def __init__(self, obs: Observer, core: int):
        self._obs = obs
        self.core = core
        self.events = obs.events
        self.metrics = obs.metrics
        self.profiler = obs.profiler
        self.spans = obs.spans

    def emit(self, time, kind, job=None, source="engine", **fields) -> None:
        if self.events is not None:
            self.events.emit(time, kind, job, source, core=self.core, **fields)

    def inc(self, name, amount=1.0, **labels) -> None:
        self._obs.inc(name, amount, **labels)

    def set_gauge(self, name, value, **labels) -> None:
        self._obs.set_gauge(name, value, **labels)

    def observe(self, name, value, **labels) -> None:
        self._obs.observe(name, value, **labels)

    def record(self, name, seconds) -> None:
        self._obs.record(name, seconds)

    @property
    def profiling(self) -> bool:
        return self.profiler is not None

    @property
    def tracing(self) -> bool:
        return self.spans is not None


class MulticorePlatform(Platform):
    """An m-core platform: shared ladder/model + uncore power term.

    Extends the uniprocessor :class:`~repro.sim.runner.Platform` with a
    core count and the frequency-independent per-active-core uncore
    power ``active_power``.  Every core gets an identical fresh
    :class:`~repro.cpu.Processor` (homogeneous platform — the paper's
    model has no heterogeneity to reproduce).
    """

    def __init__(
        self,
        cores: int = 1,
        scale: Optional[FrequencyScale] = None,
        energy_model: Optional[EnergyModel] = None,
        idle_power: float = 0.0,
        switch_time: float = 0.0,
        switch_energy: float = 0.0,
        active_power: float = 0.0,
    ):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores!r}")
        super().__init__(
            scale=scale,
            energy_model=energy_model,
            idle_power=idle_power,
            switch_time=switch_time,
            switch_energy=switch_energy,
        )
        self.cores = int(cores)
        self.active_power = float(active_power)

    def power_model(self) -> MulticorePowerModel:
        """The platform's core-count-aware power model."""
        return MulticorePowerModel.martin(self.energy_model, self.active_power)

    def configuration(self, taskset: TaskSet) -> MPConfiguration:
        """Minimum-energy feasible (frequency, active-cores) pair for
        ``taskset`` on this platform (full power on overload)."""
        return min_energy_configuration(
            self.power_model(),
            self.scale,
            self.cores,
            [t.min_feasible_frequency for t in taskset],
        )

    @classmethod
    def from_platform(
        cls, platform: Platform, cores: int, active_power: float = 0.0
    ) -> "MulticorePlatform":
        return cls(
            cores=cores,
            scale=platform.scale,
            energy_model=platform.energy_model,
            idle_power=platform.idle_power,
            switch_time=platform.switch_time,
            switch_energy=platform.switch_energy,
            active_power=active_power,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MulticorePlatform(cores={self.cores}, scale={self.scale!r}, "
            f"energy_model={self.energy_model}, active_power={self.active_power})"
        )


@dataclass
class MPSimulationResult:
    """Everything a multicore run produces.

    ``metrics``/``processor_stats`` aggregate over all cores (uncore
    energy folded into ``idle_energy``), so the result satisfies the
    same consumer contract as :class:`~repro.sim.engine.SimulationResult`
    — ``normalize_energy``/``normalize_utility``, campaign summaries and
    benchmark reducers work unchanged.
    """

    scheduler_name: str
    mode: str
    cores: int
    metrics: Metrics
    processor_stats: ProcessorStats
    per_core_stats: List[ProcessorStats]
    jobs: List[Job]
    horizon: float
    migrations: int = 0
    uncore_energy: float = 0.0
    #: Task name -> core (partitioned mode only).
    core_of_task: Optional[Dict[str, int]] = None
    partition: Optional[Partition] = None
    #: Per-core execution segments (always for global; for partitioned
    #: only when ``record_trace=True``).
    core_segments: Optional[List[List[CoreSegment]]] = None
    per_core_results: Optional[List[Optional[SimulationResult]]] = None
    configuration: Optional[MPConfiguration] = None
    trace = None  # SimulationResult-consumer compatibility

    @property
    def normalized_utility(self) -> float:
        return self.metrics.normalized_utility

    @property
    def energy(self) -> float:
        return self.metrics.energy


def _combine_stats(
    per_core: List[ProcessorStats], uncore_energy: float
) -> ProcessorStats:
    """Sum per-core accounting; charge the uncore term as idle energy.

    Single-core sums reduce to ``0.0 + x`` which is exact for the
    non-negative accumulators involved, preserving m=1 bit-identity.
    """
    combined = ProcessorStats()
    for s in per_core:
        combined.energy += s.energy
        combined.cycles_executed += s.cycles_executed
        combined.busy_time += s.busy_time
        combined.idle_time += s.idle_time
        combined.idle_energy += s.idle_energy
        combined.switch_count += s.switch_count
        combined.switch_energy += s.switch_energy
        for f, dur in s.residency.items():
            combined.residency[f] = combined.residency.get(f, 0.0) + dur
    combined.idle_energy += uncore_energy
    return combined


# ----------------------------------------------------------------------
# Partitioned mode
# ----------------------------------------------------------------------
def simulate_partitioned(
    workload: WorkloadTrace,
    scheduler: SchedulerSpecLike,
    platform: MulticorePlatform,
    strategy: str = "wfd",
    auto_cores: bool = False,
    observer: Optional[Observer] = None,
    check: bool = False,
    record_trace: bool = False,
    checker=None,
) -> MPSimulationResult:
    """Partitioned multicore run: m independent uniprocessor engines.

    Tasks are packed onto cores by :func:`partition_taskset`; each
    non-empty core runs the unchanged :class:`~repro.sim.engine.Engine`
    with a fresh scheduler instance over its disjoint sub-workload.
    Empty cores idle for the whole horizon (charging ``idle_power``).
    With ``auto_cores=True`` the minimum-energy feasible active-core
    count from :func:`~repro.cpu.min_energy_configuration` bounds the
    partition; cores beyond it are powered down (no idle or uncore
    energy).  ``check=True`` attaches a per-core
    :class:`~repro.check.InvariantChecker` — the per-core σ/UER
    reconstruction of the multicore invariant suite.  Alternatively
    pass an explicit ``checker`` instance to share across cores: the
    engines bind it sequentially (each bind resets its per-run state)
    and the violations of every core are accumulated back onto it, so
    collect-mode auditing sees the whole platform.
    """
    factory = _scheduler_factory(scheduler)
    taskset = workload.taskset
    horizon = workload.horizon

    configuration: Optional[MPConfiguration] = None
    active = platform.cores
    if auto_cores:
        configuration = platform.configuration(taskset)
        active = configuration.cores if configuration.feasible else platform.cores

    partition = partition_taskset(taskset, active, strategy, f_max=platform.scale.f_max)
    by_spec: Dict[str, List] = {t.name: [] for t in taskset}
    for spec in workload:
        by_spec[spec.task.name].append(spec)

    checker_factory = None
    if checker is not None:
        def checker_factory():  # shared instance, rebound per core
            return checker
    elif check:
        from ..check import InvariantChecker

        checker_factory = InvariantChecker
    collected_violations: List = []

    scheduler_name: Optional[str] = None
    per_core_stats: List[ProcessorStats] = []
    per_core_results: List[Optional[SimulationResult]] = []
    core_segments: Optional[List[List[CoreSegment]]] = [] if record_trace else None
    all_jobs: List[Job] = []

    for core, indices in enumerate(partition.assignment):
        if not indices:
            # Powered but idle core: charge idle power over the horizon,
            # matching what the engine does for an eventless workload.
            cpu = platform.processor()
            cpu.idle(horizon)
            per_core_stats.append(cpu.stats)
            per_core_results.append(None)
            if core_segments is not None:
                core_segments.append([(0.0, horizon, None, cpu.frequency)])
            continue
        sub_taskset = partition.sub_taskset(taskset, core)
        sub_specs = [s for i in indices for s in by_spec[taskset[i].name]]
        sub_trace = WorkloadTrace(sub_taskset, horizon, sub_specs)
        sched = factory()
        if scheduler_name is None:
            scheduler_name = sched.name
        engine = Engine(
            sub_trace,
            sched,
            platform.processor(),
            record_trace=record_trace,
            observer=_CoreObserver(observer, core) if observer is not None else None,
            checker=checker_factory() if checker_factory is not None else None,
        )
        result = engine.run()
        if checker is not None:
            collected_violations.extend(checker.violations)
        per_core_stats.append(result.processor_stats)
        per_core_results.append(result)
        all_jobs.extend(result.jobs)
        if core_segments is not None and result.trace is not None:
            core_segments.append(
                [(s.start, s.end, s.job_key, s.frequency) for s in result.trace.segments]
            )

    if checker is not None:
        checker.violations = collected_violations

    uncore_energy = platform.active_power * active * horizon
    combined = _combine_stats(per_core_stats, uncore_energy)
    metrics = Metrics(taskset, all_jobs, combined, horizon)
    return MPSimulationResult(
        scheduler_name=scheduler_name if scheduler_name is not None else "scheduler",
        mode="partitioned",
        cores=platform.cores,
        metrics=metrics,
        processor_stats=combined,
        per_core_stats=per_core_stats,
        jobs=all_jobs,
        horizon=horizon,
        migrations=0,
        uncore_energy=uncore_energy,
        core_of_task=partition.core_of(taskset),
        partition=partition,
        core_segments=core_segments,
        per_core_results=per_core_results,
        configuration=configuration,
    )


# ----------------------------------------------------------------------
# Global mode
# ----------------------------------------------------------------------
class GlobalEngine:
    """Global multicore engine: shared ready queue, top-m dispatch.

    The loop body mirrors ``Engine._run_loop`` operation-for-operation;
    the only structural additions are (a) the slot loop that re-invokes
    ``scheduler.decide`` over residual views to fill up to m cores and
    (b) the core-affinity assignment with migration accounting.  At
    ``m = 1`` the slot loop collapses to the single ``decide`` call and
    the float stream is bit-identical to the uniprocessor engine
    (pinned in ``tests/properties/test_mp_equivalence.py``) — treat any
    edit here as an edit to ``Engine._run_loop`` and vice versa.

    DVS switch *time* is rejected: a per-core stall while other cores
    keep running has no well-defined global-time treatment in this
    event model (the uniprocessor engine advances global time for it).
    Switch energy and counts are still accounted.
    """

    def __init__(
        self,
        workload: WorkloadTrace,
        scheduler: Scheduler,
        platform: MulticorePlatform,
        observer: Optional[Observer] = None,
    ):
        if platform.switch_time > 0.0:
            raise SimulationError(
                "GlobalEngine does not support switch_time > 0 "
                "(per-core DVS stalls are ill-defined under global time); "
                "use partitioned mode or switch_energy-only overheads"
            )
        self.workload = workload
        self.scheduler = scheduler
        self.platform = platform
        self.observer = observer
        self.cores: List[Processor] = [platform.processor() for _ in range(platform.cores)]
        self.migrations = 0
        self.core_segments: List[List[CoreSegment]] = [[] for _ in range(platform.cores)]
        #: Core-stamping observer proxies for the per-core frequency
        #: decisions (FREQ_DECISION events carry ``core=k``).
        self._core_obs: Optional[List[_CoreObserver]] = (
            [_CoreObserver(observer, k) for k in range(platform.cores)]
            if observer is not None
            else None
        )

    # ------------------------------------------------------------------
    def run(self) -> MPSimulationResult:
        taskset: TaskSet = self.workload.taskset
        horizon = self.workload.horizon
        scheduler = self.scheduler
        cores = self.cores
        m = len(cores)

        obs = self.observer
        if obs is not None:
            scheduler.bind_observer(obs)
        profiling = obs is not None and obs.profiler is not None

        scheduler.setup(taskset, self.platform.scale, self.platform.energy_model)

        jobs: List[Job] = [
            Job(spec.task, spec.index, spec.release, spec.demand) for spec in self.workload
        ]
        n_jobs = len(jobs)
        arrival_idx = 0
        releases: List[float] = [job.release for job in jobs]
        ready: List[Job] = []
        recent_arrivals: Dict[str, _ArrivalLog] = {t.name: _ArrivalLog() for t in taskset}
        window_specs: List[Tuple[_ArrivalLog, str, float]] = [
            (recent_arrivals[task.name], task.name, task.uam.window) for task in taskset
        ]

        t = 0.0
        event = SchedulingEvent.START
        last_running: List[Optional[Job]] = [None] * m
        #: id(job) -> core the job last *executed* on (migration tracking).
        last_exec_core: Dict[int, int] = {}
        stall_guard = 0
        max_stall = 4 * n_jobs + 64

        while True:
            advanced = False

            # --- release arrivals due now -----------------------------
            while arrival_idx < n_jobs and releases[arrival_idx] <= t + EPS_TIME:
                job = jobs[arrival_idx]
                arrival_idx += 1
                event = SchedulingEvent.ARRIVAL
                advanced = True
                ready.append(job)
                recent_arrivals[job.task.name].append(job.release)
                if obs is not None:
                    obs.emit(t, EventKind.RELEASE, job.key,
                             release=job.release, termination=job.termination)
                    obs.inc("jobs_released", task=job.task.name)

            # --- raise termination exceptions -------------------------
            if scheduler.abort_expired:
                t_eps = t + EPS_TIME
                expired: List[Job] = []
                for j in ready:
                    if j.termination <= t_eps and j.task.abortable:
                        expired.append(j)
                for job in expired:
                    job.status = JobStatus.EXPIRED
                    job.abort_time = t
                    ready.remove(job)
                    if obs is not None:
                        obs.emit(t, EventKind.EXPIRE, job.key,
                                 executed=job.executed, demand=job.demand)
                        obs.inc("jobs_expired", task=job.task.name)
                    event = SchedulingEvent.EXPIRY
                    advanced = True

            if t >= horizon - EPS_TIME:
                break

            # --- consult the scheduler: top-m dispatch -----------------
            # At m > 1 the shared view carries all m cores' worth of
            # demand, so any frequency computed over it is meaningless
            # for a single core (decideFreq pins to f_max).  The
            # selection round therefore runs with dvs=False — picks and
            # aborts are unaffected — and per-core frequencies are
            # decided afterwards over per-core residual views.
            view = self._build_view(t, ready, taskset, window_specs, event, dvs=(m == 1))
            if obs is not None:
                obs.set_gauge("queue_depth", len(ready))
                obs.observe("queue_depth_samples", len(ready))
                obs.inc("scheduler_invocations", event=event.value)

            picks: List[Tuple[Job, float]] = []
            event_aborts: List[Job] = []
            working = view
            for slot in range(m):
                if profiling:
                    t0 = perf_counter()
                    decision = scheduler.decide(working)
                    obs.record("engine.decide", perf_counter() - t0)
                else:
                    decision = scheduler.decide(working)
                for job in decision.aborts:
                    if job.is_finished:
                        raise SimulationError(f"scheduler aborted finished job {job.key}")
                    job.status = JobStatus.ABORTED
                    job.abort_time = t
                    event_aborts.append(job)
                    if job in ready:
                        ready.remove(job)
                    if obs is not None:
                        obs.emit(t, EventKind.ABORT, job.key,
                                 executed=job.executed, budget=job.allocated)
                        obs.inc("jobs_aborted", task=job.task.name)
                    advanced = True
                picked = decision.job
                if picked is None:
                    break
                if picked not in ready:
                    raise SimulationError(
                        f"scheduler selected non-ready job {picked.key}"
                    )
                picks.append((picked, decision.frequency))
                if slot + 1 < m:
                    working = working.without([picked, *decision.aborts])

            # --- assign picks to cores (affinity first) ----------------
            assigned: List[Optional[Tuple[Job, float]]] = [None] * m
            free = set(range(m))
            for job, freq in picks:
                k = last_exec_core.get(id(job), -1)
                if k not in free:
                    k = min(free)
                assigned[k] = (job, freq)
                free.discard(k)

            if m > 1 and picks:
                self._decide_core_frequencies(view, assigned, event_aborts)

            running: List[Optional[Job]] = [None] * m
            for k in range(m):
                pick = assigned[k]
                if pick is None:
                    continue
                job, freq = pick
                running[k] = job
                cpu = cores[k]
                freq_before = cpu.frequency
                cpu.set_frequency(freq)  # switch_time is 0 by construction
                if obs is not None and cpu.frequency != freq_before:
                    obs.emit(t, EventKind.FREQ_SWITCH, job.key,
                             frequency=cpu.frequency, previous=freq_before,
                             overhead=0.0, core=k)
                    obs.inc("freq_switches")

            if obs is not None:
                for k in range(m):
                    if running[k] is last_running[k]:
                        continue
                    prev = last_running[k]
                    if (
                        prev is not None
                        and running[k] is not None
                        and prev.status is JobStatus.PENDING
                    ):
                        obs.emit(t, EventKind.PREEMPT, prev.key,
                                 preempted_by=running[k].key, core=k)
                        obs.inc("preemptions")
                    if running[k] is not None:
                        obs.emit(t, EventKind.DISPATCH, running[k].key,
                                 frequency=cores[k].frequency,
                                 remaining_budget=running[k].remaining_budget,
                                 core=k)
                        obs.inc("dispatches", task=running[k].task.name)

            # --- find the next event -----------------------------------
            t_arrival = releases[arrival_idx] if arrival_idx < n_jobs else math.inf
            t_term = math.inf
            if scheduler.abort_expired:
                t_eps = t + EPS_TIME
                for j in ready:
                    j_term = j.termination
                    if j_term < t_term and j_term > t_eps and j.task.abortable:
                        t_term = j_term
            t_complete = math.inf
            for k in range(m):
                job = running[k]
                if job is not None:
                    t_k = t + job.remaining_demand / cores[k].frequency
                    if t_k < t_complete:
                        t_complete = t_k
            t_next = min(horizon, t_arrival, t_term, t_complete)
            if t_next < t:
                t_next = t  # coincident events; process without moving

            # --- advance ------------------------------------------------
            dt = t_next - t
            for k in range(m):
                cpu = cores[k]
                job = running[k]
                if job is not None:
                    if dt > 0.0:
                        prev_core = last_exec_core.get(id(job))
                        if prev_core is not None and prev_core != k:
                            self.migrations += 1
                            if obs is not None:
                                obs.emit(t, EventKind.MIGRATE, job.key,
                                         core=k, previous_core=prev_core)
                                obs.inc("migrations", task=job.task.name)
                        last_exec_core[id(job)] = k
                    executed = cpu.run(dt)
                    job.executed += executed
                    if dt > 0.0:
                        self.core_segments[k].append((t, t_next, job.key, cpu.frequency))
                else:
                    cpu.idle(dt)
                    if dt > 0.0:
                        self.core_segments[k].append((t, t_next, None, cpu.frequency))
                if obs is not None and dt > 0.0:
                    obs.inc("cpu_residency_seconds", dt,
                            mhz=f"{cpu.frequency:g}",
                            state="busy" if job is not None else "idle")
            if obs is not None:
                last_running = list(running)
            if dt > 0.0:
                advanced = True
            t = t_next

            # --- completion --------------------------------------------
            for k in range(m):
                job = running[k]
                if job is not None and job.remaining_demand <= EPS_CYCLES:
                    job.status = JobStatus.COMPLETED
                    job.completion_time = t
                    job.accrued_utility = job.utility_at(t)
                    ready.remove(job)
                    scheduler.on_completion(job, t)
                    if obs is not None:
                        obs.emit(t, EventKind.COMPLETE, job.key,
                                 utility=job.accrued_utility,
                                 sojourn=t - job.release, core=k)
                        obs.inc("jobs_completed", task=job.task.name)
                        obs.observe("sojourn_seconds", t - job.release)
                        last_running[k] = None
                    event = SchedulingEvent.COMPLETION
                    advanced = True

            if not advanced:
                stall_guard += 1
                if stall_guard > max_stall:
                    raise SimulationError(
                        f"no progress at t={t} (scheduler {scheduler.name!r} idles "
                        f"with {len(ready)} ready jobs and no future events)"
                    )
                if (
                    not any(job is not None for job in running)
                    and arrival_idx >= n_jobs
                    and (t_term is math.inf)
                ):
                    break
            else:
                stall_guard = 0

        per_core_stats = [cpu.stats for cpu in cores]
        uncore_energy = self.platform.active_power * m * horizon
        combined = _combine_stats(per_core_stats, uncore_energy)
        metrics = Metrics(taskset, jobs, combined, horizon)
        return MPSimulationResult(
            scheduler_name=scheduler.name,
            mode="global",
            cores=m,
            metrics=metrics,
            processor_stats=combined,
            per_core_stats=per_core_stats,
            jobs=jobs,
            horizon=horizon,
            migrations=self.migrations,
            uncore_energy=uncore_energy,
            core_segments=self.core_segments,
        )

    # ------------------------------------------------------------------
    def _build_view(
        self,
        t: float,
        ready: List[Job],
        taskset: TaskSet,
        window_specs: List[Tuple[_ArrivalLog, str, float]],
        event: SchedulingEvent,
        dvs: bool = True,
    ) -> SchedulerView:
        counts: Dict[str, ArrivalWindow] = {}
        for log, name, window in window_specs:
            log.trim(t - window + EPS_TIME)
            counts[name] = log.window()
        energy = 0.0
        for cpu in self.cores:
            energy += cpu.stats.total_energy
        return SchedulerView(
            time=t,
            ready=ready,
            taskset=taskset,
            scale=self.platform.scale,
            energy_model=self.platform.energy_model,
            event=event,
            arrivals_in_window=counts,
            energy_consumed=energy,
            dvs=dvs,
        )

    # ------------------------------------------------------------------
    def _decide_core_frequencies(
        self,
        view: SchedulerView,
        assigned: List[Optional[Tuple[Job, float]]],
        aborted: List[Job],
    ) -> None:
        """Per-core ``decideFreq`` over residual demand views (m > 1).

        The selection round ran over the shared view with ``dvs=False``
        (its m-core demand makes any single frequency meaningless — the
        PR 8 bench notes' "degenerates to f_max").  Here the taskset is
        split per core: each picked job's task is pinned to its core,
        and the remaining tasks are distributed worst-fit by density
        using the same deterministic ordering as the offline
        partitioner, so every busy core prices roughly ``1/m`` of the
        background demand instead of all of it.  Each assigned core
        then gets ``scheduler.decide_frequency`` over its residual view
        (its own dispatch plus its task share, minus jobs dispatched
        elsewhere and jobs aborted this event); ``None`` keeps the
        selection-round frequency (fixed-frequency policies).

        ``assigned`` is updated in place.  Job selection is untouched —
        only operating frequencies change, which is why m = 1 (this
        method never runs) stays bit-identical to the uniprocessor
        engine.
        """
        scheduler = self.scheduler
        taskset = view.taskset
        m = len(assigned)

        # A task picked on several cores at once (rare: multiple pending
        # jobs of one task) is pinned to each, so every core's own
        # dispatch is always covered by its view's taskset.
        pinned: Dict[int, List[int]] = {}
        for k in range(m):
            pick = assigned[k]
            if pick is not None:
                pinned.setdefault(id(pick[0].task), []).append(k)

        loads = [0.0] * m
        members: List[List[int]] = [[] for _ in range(m)]
        rest: List[int] = []
        for i, task in enumerate(taskset):
            cores_of_task = pinned.get(id(task))
            if cores_of_task is None:
                rest.append(i)
                continue
            for k in cores_of_task:
                members[k].append(i)
                loads[k] += task.min_feasible_frequency
        # Same ordering key as repro.mp.partition.partition_taskset:
        # density desc, utility-per-cycle desc, index — deterministic.
        rest.sort(
            key=lambda i: (
                -taskset[i].min_feasible_frequency,
                -(taskset[i].tuf.max_utility / taskset[i].allocation),
                i,
            )
        )
        for i in rest:
            k = min(range(m), key=lambda q: (loads[q], q))
            members[k].append(i)
            loads[k] += taskset[i].min_feasible_frequency

        dropped = {id(j) for j in aborted}
        core_obs = self._core_obs
        for k in range(m):
            pick = assigned[k]
            if pick is None:
                continue
            job = pick[0]
            subset = sorted(members[k])
            subset_ids = {id(taskset[i]) for i in subset}
            elsewhere = {
                id(p[0]) for q, p in enumerate(assigned) if p is not None and q != k
            }
            sub_view = SchedulerView(
                time=view.time,
                ready=[
                    j
                    for j in view.ready
                    if id(j.task) in subset_ids
                    and id(j) not in dropped
                    and id(j) not in elsewhere
                ],
                taskset=TaskSet(taskset[i] for i in subset),
                scale=view.scale,
                energy_model=view.energy_model,
                event=view.event,
                arrivals_in_window=view._arrivals_in_window,
                energy_consumed=view.energy_consumed,
            )
            if core_obs is not None:
                scheduler.bind_observer(core_obs[k])
            try:
                freq = scheduler.decide_frequency(sub_view, job)
            finally:
                if core_obs is not None:
                    scheduler.bind_observer(self.observer)
            if freq is not None:
                assigned[k] = (job, freq)


def simulate_global(
    workload: WorkloadTrace,
    scheduler: SchedulerSpecLike,
    platform: MulticorePlatform,
    observer: Optional[Observer] = None,
) -> MPSimulationResult:
    """Global multicore run over ``workload`` (see :class:`GlobalEngine`)."""
    sched = _scheduler_factory(scheduler)()
    return GlobalEngine(workload, sched, platform, observer=observer).run()


# ----------------------------------------------------------------------
def simulate_mp(
    workload: WorkloadTrace,
    scheduler: SchedulerSpecLike,
    platform: MulticorePlatform,
    mode: str = "partitioned",
    strategy: str = "wfd",
    auto_cores: bool = False,
    observer: Optional[Observer] = None,
    check: bool = False,
    record_trace: bool = False,
    checker=None,
) -> MPSimulationResult:
    """Run a multicore simulation in ``mode`` ("partitioned"/"global").

    ``check=True`` additionally runs the multicore invariant suite on
    the finished result (:func:`repro.check.check_mp_result`) — and, in
    partitioned mode, a per-core uniprocessor
    :class:`~repro.check.InvariantChecker` during the run.  A shared
    ``checker`` instance (partitioned mode only) audits every core and
    accumulates violations across them.
    """
    if mode not in MP_MODES:
        raise ValueError(f"unknown mp mode {mode!r}; choose from {MP_MODES}")
    if mode == "partitioned":
        result = simulate_partitioned(
            workload,
            scheduler,
            platform,
            strategy=strategy,
            auto_cores=auto_cores,
            observer=observer,
            check=check,
            record_trace=record_trace,
            checker=checker,
        )
    else:
        if checker is not None:
            raise SimulationError(
                "global mode has no per-core InvariantChecker hooks; "
                "use check=True for the multicore invariant suite"
            )
        result = simulate_global(workload, scheduler, platform, observer=observer)
    if check:
        from ..check import check_mp_result

        check_mp_result(result)
    return result
