"""UER-density-aware task partitioning (partitioned multicore EUA*).

Partitioned multiprocessor scheduling reduces the m-core problem to m
independent uniprocessor problems: tasks are assigned to cores offline
and never migrate.  The classic sufficient feasibility test (Baruah &
Fisher, "Feasibility Analysis of Sporadic Real-Time Multiprocessor Task
Systems") is a bin-packing of per-task *densities* — here the
Chebyshev-allocated demand rate ``C_i / D_i`` the paper's Theorem 1
already derives for the uniprocessor case — into bins of capacity
``f_max``.

Two decreasing heuristics are provided:

* ``"ffd"`` — first-fit decreasing: pack each task onto the first core
  with room, concentrating load on low-index cores (pairs with the
  active-cores energy search: unused cores can be powered down);
* ``"wfd"`` — worst-fit decreasing: pack onto the least-loaded core,
  balancing load so every core gets maximal DVS slack (the right choice
  when all m cores stay powered).

Ordering is *UER-aware*: ties in density break toward the task with the
higher utility-per-allocated-cycle ``U_max / c_i``, so when two tasks
compete for the last well-fitting slot the one promising more utility
per unit of (energy-proportional) work is placed first.  The final
tie-break is the original task index, keeping the partition fully
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.task import TaskModelError, TaskSet

__all__ = ["Partition", "partition_taskset", "PARTITION_STRATEGIES"]

PARTITION_STRATEGIES = ("wfd", "ffd")


@dataclass(frozen=True)
class Partition:
    """An assignment of task indices to cores.

    ``assignment[k]`` holds the indices (into the original task set,
    ascending) of the tasks placed on core ``k``.  Cores may be empty.
    """

    cores: int
    strategy: str
    assignment: Tuple[Tuple[int, ...], ...]
    #: Per-core sum of assigned densities ``C_i / D_i`` (MHz).
    loads: Tuple[float, ...]

    def core_of(self, taskset: TaskSet) -> Dict[str, int]:
        """Map task name -> assigned core for ``taskset``."""
        out: Dict[str, int] = {}
        for core, indices in enumerate(self.assignment):
            for i in indices:
                out[taskset[i].name] = core
        return out

    def sub_taskset(self, taskset: TaskSet, core: int) -> TaskSet:
        """The tasks of ``core`` in original task-set order.

        Raises :class:`~repro.sim.task.TaskModelError` for an empty
        core (``TaskSet`` must be non-empty) — callers skip empty cores.
        """
        return TaskSet(taskset[i] for i in self.assignment[core])


def partition_taskset(
    taskset: TaskSet,
    cores: int,
    strategy: str = "wfd",
    f_max: float = 0.0,
) -> Partition:
    """Assign every task of ``taskset`` to one of ``cores`` cores.

    Tasks are sorted by decreasing density ``C_i / D_i`` (UER tie-break,
    see module docstring) and packed by ``strategy``.  ``f_max`` is the
    per-core capacity used by the first-fit test; when no core has room
    (overload, or ``f_max == 0``) both strategies fall back to the
    least-loaded core so every task is always placed — overload is then
    handled online by each core's scheduler (abort/shed), mirroring the
    uniprocessor engine's behaviour.

    ``cores == 1`` puts everything on core 0, so the partitioned engine
    degenerates to the uniprocessor engine exactly.
    """
    if cores < 1:
        raise TaskModelError(f"cores must be >= 1, got {cores!r}")
    if strategy not in PARTITION_STRATEGIES:
        raise TaskModelError(
            f"unknown partition strategy {strategy!r}; choose from {PARTITION_STRATEGIES}"
        )
    order = sorted(
        range(len(taskset)),
        key=lambda i: (
            -taskset[i].min_feasible_frequency,
            -(taskset[i].tuf.max_utility / taskset[i].allocation),
            i,
        ),
    )
    loads = [0.0] * cores
    bins: List[List[int]] = [[] for _ in range(cores)]

    for i in order:
        density = taskset[i].min_feasible_frequency
        target = -1
        if strategy == "ffd" and f_max > 0.0:
            tol = 1e-9 * max(1.0, f_max)
            for k in range(cores):
                if loads[k] + density <= f_max + tol:
                    target = k
                    break
        if target < 0:
            # WFD proper, and the FFD overload fallback: least-loaded
            # core, lowest index on ties.
            target = min(range(cores), key=lambda k: (loads[k], k))
        bins[target].append(i)
        loads[target] += density

    return Partition(
        cores=cores,
        strategy=strategy,
        assignment=tuple(tuple(sorted(b)) for b in bins),
        loads=tuple(loads),
    )
