"""Correctness tooling: runtime invariant checking + differential fuzzing.

Two halves (see ``docs/testing.md``):

* :class:`InvariantChecker` — an observe-only engine hook layer that
  re-derives every scheduling decision from first principles and raises
  a typed :class:`InvariantViolation` on disagreement;
* :func:`run_fuzz` — an adversarial scenario generator that runs the
  scheduler zoo under the checker plus cross-scheduler metamorphic
  oracles, shrinking failures to minimal corpus repro files.
"""

from .corpus import CorpusCase, load_case, replay_case, save_case
from .fuzzer import FuzzFinding, FuzzReport, Scenario, run_check, run_fuzz
from .invariants import InvariantChecker, InvariantConfig, InvariantViolation
from .mp_invariants import check_mp_result
from .shrink import shrink_workload

__all__ = [
    "CorpusCase",
    "FuzzFinding",
    "FuzzReport",
    "InvariantChecker",
    "InvariantConfig",
    "InvariantViolation",
    "Scenario",
    "check_mp_result",
    "load_case",
    "replay_case",
    "run_check",
    "run_fuzz",
    "save_case",
    "shrink_workload",
]
