"""Runtime invariant checking — an engine hook layer (`repro.check`).

The :class:`InvariantChecker` attaches to a simulation the same way the
adaptive runtime does: the engine holds an ``Optional[InvariantChecker]``
and every hook site is guarded by a single ``is not None`` branch, so a
detached checker costs nothing and an attached one observes — never
influences — the run.  At every decision point it re-derives what a
correct EUA* implementation *must* have done from first principles
(reference feasibility walks, an independently coded UER formula, its
own UAM sliding window, its own energy integration) and raises a typed
:class:`InvariantViolation` on the first disagreement.

Independence matters: the checker deliberately re-implements the
boundary arithmetic it audits (UAM window tolerance, the UER metric)
instead of importing the production helpers, so a bug — or a seeded
mutation (:mod:`repro.check.mutations`) — in the production code cannot
silently patch both sides of the comparison.

Invariant catalogue (see ``docs/testing.md`` for the narrative):

===================  ========================================================
key                  asserts
===================  ========================================================
``tuf_shape``        every TUF is non-increasing with a positive maximum
``task_params``      ``c_i > 0`` and ``0 < D_i <= X_i`` for every task
``offline_params``   the scheduler's ``offlineComputing`` outputs equal the
                     uncached reference (EUA* only, checked once)
``uam_envelope``     admitted releases satisfy ``⟨a, P⟩`` per task
``frequency_in_scale``  every dispatch frequency is a ladder level
``dispatch_ready``   the dispatched job is pending and in the ready set
``abort_valid``      aborted jobs are pending, ready and not the dispatch
``sigma_order``      the reconstructed σ is critical-time ordered
``sigma_feasible``   the reconstructed σ is feasible at ``f_max``
``sigma_head``       the dispatched job equals the head of the reference σ
``abort_set``        the abort set equals the individually infeasible jobs
``fopt_bound``       dispatch frequency ``>= f°`` of the dispatched task
``frequency_sufficient``  dispatch frequency covers the assurance rate of
                     the scheduler's DVS method, capped at ``f_max``
``head_feasible``    the dispatched job alone is feasible at ``f_max``
``edf_equivalence``  Theorem 2: under periodic step-TUF underload (with the
                     deterministic DVS method) σ holds every ready job and
                     the head has the earliest critical time
``time_monotonic``   execution segments never run backwards
``utility_accrual``  accrued utility equals ``U(completion)`` in ``[0, Umax]``
``energy_conservation``  per-slice ``E(f)`` sums equal the engine totals
``metrics_consistency``  metrics re-derive from the final job population
===================  ========================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..cpu import Processor
from ..obs import EventKind, Observer
from ..sim.job import Job, JobStatus
from ..sim.scheduler import Decision, Scheduler, SchedulerView
from ..sim.task import TaskSet

__all__ = ["InvariantViolation", "InvariantConfig", "InvariantChecker"]

#: Relative tolerance for re-derived float comparisons (energy, utility).
_TOL = 1e-9

#: Mirror of the UAM window tolerance — deliberately *not* imported from
#: :mod:`repro.arrivals.uam`, so a bug there cannot blind the checker.
_UAM_TOL_REL = 1e-9

#: Underload threshold for the Theorem-2 in-run equivalence invariant.
_EDF_EQUIV_LOAD = 0.9


class InvariantViolation(RuntimeError):
    """A machine-checked scheduling invariant failed.

    Attributes
    ----------
    invariant:
        The catalogue key (e.g. ``"sigma_head"``).
    time:
        Simulation time of the violation.
    job:
        Key of the job involved, if any.
    detail:
        Human-readable description of the disagreement.
    """

    def __init__(self, invariant: str, time: float, detail: str, job: Optional[str] = None):
        self.invariant = invariant
        self.time = time
        self.job = job
        self.detail = detail
        where = f" job={job}" if job else ""
        super().__init__(f"[{invariant}] t={time:.9g}{where}: {detail}")


@dataclass
class InvariantConfig:
    """Per-invariant-group toggles (all on by default)."""

    check_uam: bool = True
    check_decisions: bool = True
    check_sigma: bool = True
    check_frequency: bool = True
    check_energy: bool = True
    check_utility: bool = True
    check_params: bool = True
    check_edf_equivalence: bool = True


class InvariantChecker:
    """Observe-only auditor of a single simulation run.

    Parameters
    ----------
    config:
        Which invariant groups to evaluate.
    mode:
        ``"raise"`` (default) raises the first :class:`InvariantViolation`;
        ``"collect"`` accumulates them in :attr:`violations` and lets the
        run complete (the fuzzer's mode).

    A checker is single-use per run: the engine calls :meth:`bind` before
    the main loop, the ``on_*`` hooks during it, and :meth:`on_result`
    after.  Violations are also emitted as ``invariant_violation``
    events on the attached observer, so a clean run's event log is
    bit-identical with or without the checker.
    """

    def __init__(self, config: Optional[InvariantConfig] = None, mode: str = "raise"):
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.config = config if config is not None else InvariantConfig()
        self.mode = mode
        self.violations: List[InvariantViolation] = []
        self._taskset: Optional[TaskSet] = None
        self._scheduler: Optional[Scheduler] = None
        self._observer: Optional[Observer] = None
        self._scale = None
        self._model = None
        self._idle_power = 0.0
        self._uam: Dict[str, Deque[float]] = {}
        self._busy_energy = 0.0
        self._idle_time = 0.0
        self._last_segment_end = 0.0
        self._params_checked = False
        self._edf_equiv_active = False

    @property
    def ok(self) -> bool:
        return not self.violations

    # ------------------------------------------------------------------
    def bind(
        self,
        taskset: TaskSet,
        processor: Processor,
        scheduler: Scheduler,
        observer: Optional[Observer],
    ) -> None:
        """Reset per-run state and validate the static task model."""
        self._taskset = taskset
        self._scheduler = scheduler
        self._observer = observer
        self._scale = processor.scale
        self._model = processor.model
        self._idle_power = processor.idle_power
        self._uam = {t.name: deque() for t in taskset}
        self._busy_energy = 0.0
        self._idle_time = 0.0
        self._last_segment_end = 0.0
        self._params_checked = False
        self.violations = []
        self._edf_equiv_active = self._edf_equivalence_applies()
        for task in taskset:
            if self.config.check_params:
                if not task.allocation > 0.0:
                    self._violate(
                        "task_params", 0.0,
                        f"task {task.name!r}: allocation {task.allocation} <= 0")
                if not (0.0 < task.critical_time <= task.tuf.termination + _TOL):
                    self._violate(
                        "task_params", 0.0,
                        f"task {task.name!r}: critical time {task.critical_time} "
                        f"outside (0, {task.tuf.termination}]")
            if self.config.check_utility:
                if task.tuf.max_utility < 0.0:
                    self._violate(
                        "tuf_shape", 0.0,
                        f"task {task.name!r}: negative max utility {task.tuf.max_utility}")
                if not task.tuf.is_non_increasing():
                    self._violate(
                        "tuf_shape", 0.0,
                        f"task {task.name!r}: TUF is not non-increasing")

    def _edf_equivalence_applies(self) -> bool:
        """Theorem 2 preconditions, decided once per run (see catalogue).

        The lookahead DVS method is *statistically* safe only, so the
        per-decision equivalence invariant is restricted to schedulers
        whose feasibility is deterministic (no DVS, or the processor-
        demand method); the lookahead arm is covered by the fuzzer's
        cross-scheduler dominance oracle instead.
        """
        if not self.config.check_edf_equivalence:
            return False
        sched = self._scheduler
        from ..core.eua import EUAStar  # local: engine imports run before core

        if type(sched) is not EUAStar:
            return False
        if sched.use_dvs and sched.dvs_method != "demand":
            return False
        if not (sched.abort_expired and sched.abort_infeasible):
            return False
        if sched.strict_insertion_break or sched.ordering != "uer":
            return False
        for task in self._taskset:
            if task.uam.max_arrivals != 1 or task.nu != 1.0 or not task.abortable:
                return False
            if type(task.tuf).__name__ != "StepTUF":
                return False
        return self._taskset.load(self._scale.f_max) < _EDF_EQUIV_LOAD

    # ------------------------------------------------------------------
    def _violate(self, invariant: str, time: float, detail: str,
                 job: Optional[str] = None) -> None:
        violation = InvariantViolation(invariant, time, detail, job)
        self.violations.append(violation)
        obs = self._observer
        if obs is not None:
            obs.emit(time, EventKind.INVARIANT_VIOLATION, job, source="check",
                     invariant=invariant, detail=detail)
            obs.inc("invariant_violations", invariant=invariant)
        if self.mode == "raise":
            raise violation

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_release(self, job: Job, time: float) -> None:
        """UAM envelope compliance of the admitted release stream."""
        if not self.config.check_uam:
            return
        task = job.task
        dq = self._uam[task.name]
        window = task.uam.window
        effective = window - _UAM_TOL_REL * max(1.0, abs(window))
        while dq and job.release - dq[0] >= effective:
            dq.popleft()
        dq.append(job.release)
        if len(dq) > task.uam.max_arrivals:
            self._violate(
                "uam_envelope", time,
                f"task {task.name!r}: {len(dq)} releases within window "
                f"{window} exceed a={task.uam.max_arrivals} "
                f"(window opened at {dq[0]})",
                job=job.key)

    def on_decision(self, view: SchedulerView, decision: Decision,
                    scheduler: Scheduler) -> None:
        if not self.config.check_decisions:
            return
        t = view.time
        ready_ids = {id(j) for j in view.ready}
        job = decision.job
        if job is not None:
            if self.config.check_frequency and decision.frequency not in view.scale:
                self._violate(
                    "frequency_in_scale", t,
                    f"dispatch frequency {decision.frequency!r} is not a level "
                    f"of {view.scale!r}", job=job.key)
            if id(job) not in ready_ids or job.status is not JobStatus.PENDING:
                self._violate(
                    "dispatch_ready", t,
                    f"dispatched job is {job.status.value} / not in the ready set",
                    job=job.key)
        for aborted in decision.aborts:
            if id(aborted) not in ready_ids or aborted.is_finished:
                self._violate(
                    "abort_valid", t,
                    f"abort of {aborted.status.value} / non-ready job",
                    job=aborted.key)
            if aborted is job:
                self._violate(
                    "abort_valid", t, "dispatched job is in its own abort set",
                    job=aborted.key)
        from ..core.eua import EUAStar

        if self.config.check_sigma and isinstance(scheduler, EUAStar):
            self._check_eua_decision(view, decision, scheduler)

    # ------------------------------------------------------------------
    def _check_eua_decision(self, view: SchedulerView, decision: Decision,
                            scheduler) -> None:
        """Re-derive Algorithm 1 with the naive reference path."""
        from ..core.feasibility import (
            insert_by_critical_time_reference,
            job_feasible_reference,
            schedule_feasible_reference,
        )
        from ..core.offline import MIN_UER_CYCLES, offline_computing_reference

        t = view.time
        f_m = view.scale.f_max
        model = view.energy_model

        if self.config.check_params and not self._params_checked:
            self._params_checked = True
            reference = offline_computing_reference(self._taskset, view.scale, model)
            for name, expected in reference.items():
                got = scheduler.params.get(name)
                if got != expected:
                    self._violate(
                        "offline_params", t,
                        f"task {name!r}: scheduler params {got} != reference {expected}")

        expected_aborts: List[Job] = []
        ranked: List[Tuple[float, float, Job]] = []
        for job in view.ready:
            if not job_feasible_reference(job, t, f_m):
                if scheduler.abort_infeasible and job.task.abortable:
                    expected_aborts.append(job)
                continue
            # The UER metric, independently coded (see module docstring).
            c = max(job.remaining_budget, MIN_UER_CYCLES)
            utility = job.utility_at(t + c / f_m)
            if scheduler.ordering == "uer":
                metric = utility / (model.energy_per_cycle(f_m) * c)
            else:  # utility_density ablation
                metric = utility / c
            ranked.append((metric, job.critical_time, job))
        ranked.sort(key=lambda e: (-e[0], e[1], e[2].release, e[2].index))

        sigma: List[Job] = []
        for metric, _, job in ranked:
            if metric <= 0.0:
                break
            tentative = insert_by_critical_time_reference(sigma, job)
            if schedule_feasible_reference(tentative, t, f_m):
                sigma = tentative
            elif scheduler.strict_insertion_break:
                break

        for a, b in zip(sigma, sigma[1:]):
            if a.critical_time > b.critical_time:
                self._violate(
                    "sigma_order", t,
                    f"σ not critical-time ordered: {a.key} ({a.critical_time}) "
                    f"before {b.key} ({b.critical_time})")
        if sigma and not schedule_feasible_reference(sigma, t, f_m):
            self._violate("sigma_feasible", t, "reconstructed σ infeasible at f_max")

        expected_head = sigma[0] if sigma else None
        if decision.job is not expected_head:
            self._violate(
                "sigma_head", t,
                f"dispatched {decision.job.key if decision.job else None} but the "
                f"reference σ head is {expected_head.key if expected_head else None} "
                f"(|σ|={len(sigma)})",
                job=decision.job.key if decision.job else None)

        got_aborts = {id(j) for j in decision.aborts}
        want_aborts = {id(j) for j in expected_aborts}
        if got_aborts != want_aborts:
            self._violate(
                "abort_set", t,
                f"abort set {sorted(j.key for j in decision.aborts)} != individually "
                f"infeasible set {sorted(j.key for j in expected_aborts)}")

        if decision.job is not None:
            if not job_feasible_reference(decision.job, t, f_m):
                self._violate(
                    "head_feasible", t,
                    "dispatched job cannot finish its budget at f_max",
                    job=decision.job.key)
            if (self.config.check_frequency and scheduler.use_dvs
                    and scheduler.use_fopt_bound):
                params = scheduler.params.get(decision.job.task.name)
                if params is not None and decision.frequency < params.optimal_frequency:
                    self._violate(
                        "fopt_bound", t,
                        f"dispatch frequency {decision.frequency} below "
                        f"f°={params.optimal_frequency} of task "
                        f"{decision.job.task.name!r}",
                        job=decision.job.key)
            if self.config.check_frequency and scheduler.use_dvs:
                from ..core.decide_freq import (
                    required_rate_demand,
                    required_rate_lookahead,
                )

                working = view.without(expected_aborts) if expected_aborts else view
                if scheduler.dvs_method == "demand":
                    rate = required_rate_demand(working)
                else:
                    rate = required_rate_lookahead(working)
                need = min(rate, f_m)
                if decision.frequency < need * (1.0 - _TOL):
                    self._violate(
                        "frequency_sufficient", t,
                        f"dispatch frequency {decision.frequency} below the "
                        f"{scheduler.dvs_method} assurance rate {rate} "
                        f"(capped at f_max={f_m})",
                        job=decision.job.key)

        if self._edf_equiv_active:
            pending = [j for j in view.ready if j not in decision.aborts]
            if len(sigma) != len(pending):
                in_sigma = {id(j) for j in sigma}
                left_out = [j.key for j in pending if id(j) not in in_sigma]
                self._violate(
                    "edf_equivalence", t,
                    f"Theorem 2: periodic underload but σ excludes {left_out}")
            elif expected_head is not None:
                earliest = min(j.critical_time for j in pending)
                if expected_head.critical_time > earliest + _TOL:
                    self._violate(
                        "edf_equivalence", t,
                        f"Theorem 2: head critical time {expected_head.critical_time} "
                        f"is not the earliest ({earliest})",
                        job=expected_head.key)

    # ------------------------------------------------------------------
    def on_segment(self, start: float, end: float, frequency: float,
                   executed: float) -> None:
        """Independent energy integration over one busy slice."""
        if not self.config.check_energy:
            return
        if end < start - _TOL * max(1.0, abs(start)):
            self._violate("time_monotonic", start,
                          f"segment runs backwards: [{start}, {end}]")
        self._last_segment_end = end
        self._busy_energy += executed * self._model.energy_per_cycle(frequency)

    def on_idle(self, duration: float) -> None:
        if not self.config.check_energy:
            return
        self._idle_time += duration

    def on_completion(self, job: Job, time: float) -> None:
        """TUF consistency of accrued utility at completion."""
        if not self.config.check_utility:
            return
        expected = job.utility_at(time)
        tol = _TOL * max(1.0, abs(expected))
        if abs(job.accrued_utility - expected) > tol:
            self._violate(
                "utility_accrual", time,
                f"accrued {job.accrued_utility} != U(completion) {expected}",
                job=job.key)
        if not (-tol <= job.accrued_utility <= job.max_utility + _TOL * max(1.0, job.max_utility)):
            self._violate(
                "utility_accrual", time,
                f"accrued {job.accrued_utility} outside [0, {job.max_utility}]",
                job=job.key)

    # ------------------------------------------------------------------
    def on_result(self, result) -> None:
        """Conservation checks over the finished run."""
        stats = result.processor_stats
        t_end = result.horizon
        if self.config.check_energy:
            tol = _TOL * max(1.0, abs(stats.energy))
            if abs(self._busy_energy - stats.energy) > tol:
                self._violate(
                    "energy_conservation", t_end,
                    f"per-slice E(f) sum {self._busy_energy} != processor busy "
                    f"energy {stats.energy}")
            expected_idle = self._idle_power * self._idle_time
            tol = _TOL * max(1.0, abs(stats.idle_energy))
            if abs(expected_idle - stats.idle_energy) > tol:
                self._violate(
                    "energy_conservation", t_end,
                    f"idle energy {stats.idle_energy} != idle_power×idle_time "
                    f"{expected_idle}")
        if self.config.check_utility:
            accrued = sum(j.accrued_utility for j in result.jobs)
            tol = _TOL * max(1.0, abs(accrued))
            if abs(accrued - result.metrics.accrued_utility) > tol:
                self._violate(
                    "metrics_consistency", t_end,
                    f"metrics accrued utility {result.metrics.accrued_utility} != "
                    f"job-population sum {accrued}")
            counts = {
                "completed": sum(1 for j in result.jobs if j.status is JobStatus.COMPLETED),
                "aborted": sum(1 for j in result.jobs if j.status is JobStatus.ABORTED),
                "expired": sum(1 for j in result.jobs if j.status is JobStatus.EXPIRED),
            }
            for key, count in counts.items():
                if count != getattr(result.metrics, key):
                    self._violate(
                        "metrics_consistency", t_end,
                        f"metrics {key}={getattr(result.metrics, key)} != "
                        f"recount {count}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InvariantChecker(mode={self.mode!r}, "
                f"violations={len(self.violations)})")
