"""Failing-workload corpus files (``tests/corpus/``).

A :class:`CorpusCase` is a fully self-contained, JSON-serialised repro
of one fuzzer finding: platform, task model, the exact job releases and
demands, and which oracle flagged it.  Floats round-trip exactly
(``json`` serialises via ``repr``), so a replay re-executes the very
same simulation bit for bit.

Replayed tasks with ``a > 1`` get a :class:`BurstUAMArrivals` dummy
generator — jobs always come from the stored trace, but the task model
requires *some* generator contained in the envelope (and deliberately
not :class:`TraceArrivals`, which would reject the UAM-violating
streams that some corpus cases exist to preserve).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..arrivals import BurstUAMArrivals, UAMSpec
from ..cpu import EnergyModel, FrequencyScale
from ..demand import NormalDemand
from ..sim.runner import Platform
from ..sim.task import Task, TaskSet
from ..sim.workload import JobSpec, WorkloadTrace
from ..tuf import LinearTUF, StepTUF

__all__ = ["CORPUS_VERSION", "CorpusCase", "load_case", "replay_case", "save_case"]

CORPUS_VERSION = 1


@dataclass
class CorpusCase:
    """One minimized failing workload plus the oracle that flagged it."""

    oracle: str  # "invariant" | "exception" | "dominance" | "scaling"
    scheduler: str  # fuzzer zoo label (empty for cross-scheduler oracles)
    invariant: Optional[str]  # invariant key for oracle == "invariant"
    note: str
    horizon: float
    platform: Dict
    tasks: List[Dict]
    jobs: List[Dict]
    version: int = CORPUS_VERSION

    # ------------------------------------------------------------------
    def build(self) -> tuple:
        """Reconstruct ``(trace, platform)`` for replay."""
        scale = FrequencyScale(self.platform["levels"])
        energy = self.platform["energy"]
        model = EnergyModel(
            s3=energy["s3"], s2=energy["s2"], s1=energy["s1"], s0=energy["s0"],
            name=energy.get("name", ""),
        )
        platform = Platform(
            scale,
            model,
            idle_power=self.platform.get("idle_power", 0.0),
            switch_time=self.platform.get("switch_time", 0.0),
            switch_energy=self.platform.get("switch_energy", 0.0),
        )
        tasks: Dict[str, Task] = {}
        for td in self.tasks:
            tuf_d = td["tuf"]
            if tuf_d["kind"] == "step":
                tuf = StepTUF(tuf_d["max_utility"], tuf_d["termination"])
            elif tuf_d["kind"] == "linear":
                tuf = LinearTUF(tuf_d["max_utility"], tuf_d["termination"])
            else:
                raise ValueError(f"unknown TUF kind {tuf_d['kind']!r}")
            spec = UAMSpec(td["uam"]["max_arrivals"], td["uam"]["window"])
            arrivals = BurstUAMArrivals(spec) if spec.max_arrivals > 1 else None
            tasks[td["name"]] = Task(
                td["name"],
                tuf,
                NormalDemand(td["demand"]["mean"], td["demand"]["variance"]),
                spec,
                arrivals=arrivals,
                nu=td["nu"],
                rho=td["rho"],
                abortable=td.get("abortable", True),
            )
        jobs = [
            JobSpec(tasks[jd["task"]], jd["index"], jd["release"], jd["demand"])
            for jd in self.jobs
        ]
        trace = WorkloadTrace(TaskSet(tasks.values()), self.horizon, jobs)
        return trace, platform


# ----------------------------------------------------------------------
def _tuf_to_dict(tuf) -> Dict:
    if isinstance(tuf, StepTUF):
        kind = "step"
    elif isinstance(tuf, LinearTUF):
        kind = "linear"
    else:
        raise ValueError(f"cannot serialise TUF {type(tuf).__name__}")
    return {"kind": kind, "max_utility": tuf.max_utility, "termination": tuf.termination}


def case_from_trace(
    trace: WorkloadTrace,
    platform: Platform,
    oracle: str,
    scheduler: str = "",
    invariant: Optional[str] = None,
    note: str = "",
) -> CorpusCase:
    """Serialise a failing ``(trace, platform)`` into a corpus case."""
    model = platform.energy_model
    return CorpusCase(
        oracle=oracle,
        scheduler=scheduler,
        invariant=invariant,
        note=note,
        horizon=trace.horizon,
        platform={
            "levels": list(platform.scale.levels),
            "energy": {
                "s3": model.s3, "s2": model.s2, "s1": model.s1, "s0": model.s0,
                "name": model.name,
            },
            "idle_power": platform.idle_power,
            "switch_time": platform.switch_time,
            "switch_energy": platform.switch_energy,
        },
        tasks=[
            {
                "name": t.name,
                "tuf": _tuf_to_dict(t.tuf),
                "uam": {"max_arrivals": t.uam.max_arrivals, "window": t.uam.window},
                "demand": {"mean": t.demand.mean, "variance": t.demand.variance},
                "nu": t.nu,
                "rho": t.rho,
                "abortable": t.abortable,
            }
            for t in trace.taskset
        ],
        jobs=[
            {"task": j.task.name, "index": j.index, "release": j.release, "demand": j.demand}
            for j in trace
        ],
    )


# ----------------------------------------------------------------------
def save_case(case: CorpusCase, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(asdict(case), indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Union[str, Path]) -> CorpusCase:
    data = json.loads(Path(path).read_text())
    version = data.get("version", 0)
    if version != CORPUS_VERSION:
        raise ValueError(f"corpus case {path} has version {version}, expected {CORPUS_VERSION}")
    return CorpusCase(**data)


@dataclass
class ReplayResult:
    """Outcome of replaying one corpus case."""

    case: CorpusCase
    messages: List[str] = field(default_factory=list)

    @property
    def still_failing(self) -> bool:
        return bool(self.messages)


def replay_case(case: CorpusCase) -> ReplayResult:
    """Re-run a corpus case through the oracle that produced it."""
    # Local import: the fuzzer imports this module for saving.
    from . import fuzzer

    trace, platform = case.build()
    messages: List[str] = []
    if case.oracle in ("invariant", "exception"):
        violations, error = fuzzer.run_invariant_oracle(trace, platform, case.scheduler)
        if case.oracle == "exception":
            if error is not None:
                messages.append(error)
        else:
            messages.extend(
                str(v) for v in violations
                if case.invariant is None or v.invariant == case.invariant
            )
            if error is not None:
                messages.append(error)
    elif case.oracle == "dominance":
        msg = fuzzer.run_dominance_oracle(trace, platform)
        if msg is not None:
            messages.append(msg)
    elif case.oracle == "scaling":
        msg = fuzzer.run_scaling_oracle(trace, platform)
        if msg is not None:
            messages.append(msg)
    else:
        raise ValueError(f"unknown oracle {case.oracle!r}")
    return ReplayResult(case=case, messages=messages)
