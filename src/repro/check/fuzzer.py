"""Differential scenario fuzzer.

Generates adversarial workloads — bursty UAM edges, near-1.0
utilisation, degenerate TUFs, single-frequency platforms — and runs the
scheduler zoo over each under the :class:`InvariantChecker`, plus two
cross-scheduler metamorphic oracles:

* **dominance** (Theorem 2 corollary): on periodic step-TUF underload
  with no demand overruns, EUA* with the deterministic processor-demand
  DVS method must accrue at least EDF-at-``f_max``'s utility.  The
  lookahead method is excluded — it is *statistically* safe only
  (pathological phasings may shed a few cycles), so asserting hard
  dominance for it would false-positive.
* **time scaling**: stretching every time quantity by λ=2 (releases,
  TUF terminations, UAM windows) and every cycle quantity by λ=2
  (demands, allocations) leaves all required *rates* unchanged, so the
  decision trace must be preserved event for event (times ×λ, cycle
  fields ×λ, UERs ×1/λ, frequencies and utilities invariant).  λ=2 is
  exact in IEEE arithmetic — power-of-two scaling, ``sqrt(4x) =
  2·sqrt(x)`` and ``(2a)/(2b) = a/b`` are all bit-exact — so the
  comparison tolerance only has to absorb the engine's absolute-epsilon
  constants (see ``docs/testing.md``).

Failures shrink to minimal workloads saved under ``tests/corpus/``.
The budget is a *scenario count* (deterministic in ``seed``), not a
wall-clock limit, so CI runs are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arrivals import (
    BurstUAMArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    UAMSpec,
    create_arrival_generator,
)
from ..cpu import FrequencyScale
from ..demand import NormalDemand
from ..experiments.config import energy_setting
from ..obs import Observer
from ..resources import REUA, ResourceMap
from ..sched import make_scheduler
from ..sim.runner import Platform, simulate
from ..sim.task import Task, TaskSet
from ..sim.workload import JobSpec, WorkloadTrace, materialize
from ..tuf import LinearTUF, StepTUF
from .corpus import case_from_trace, save_case
from .invariants import InvariantChecker, InvariantViolation
from .shrink import shrink_workload

__all__ = [
    "Scenario",
    "FuzzFinding",
    "FuzzReport",
    "generate_scenarios",
    "build_workload",
    "run_check",
    "run_fuzz",
]

#: Relative tolerance for cross-run float comparisons.
_TOL = 1e-9

#: Scheduler zoo exercised under the invariant checker.  REUA gets an
#: empty resource map — pure scheduling, no blocking chains.
_ZOO: Dict[str, object] = {
    "EUA*": lambda: make_scheduler("EUA*"),
    "EUA*-demand": lambda: make_scheduler("EUA*-demand"),
    "DASA": lambda: make_scheduler("DASA"),
    "EDF": lambda: make_scheduler("EDF"),
    "LA-EDF": lambda: make_scheduler("LA-EDF"),
    "REUA": lambda: REUA(ResourceMap({})),
}

_PLATFORMS = {
    "powernow": lambda: FrequencyScale.powernow_k6(),
    "single": lambda: FrequencyScale.single(1000.0),
    "coarse": lambda: FrequencyScale.uniform(250.0, 1000.0, 3),
    "fine": lambda: FrequencyScale.uniform(100.0, 1000.0, 12),
}

#: Dominance-oracle underload margin (stays clear of the feasibility
#: cliff, where admission-order effects are legitimate).
_DOMINANCE_LOAD = 0.88


@dataclass(frozen=True)
class Scenario:
    """One generated fuzz scenario (fully determined by its fields)."""

    seed: int
    n_tasks: int
    target_load: float
    horizon: float
    platform: str  # key into _PLATFORMS
    energy: str  # "E1" | "E2" | "E3"
    arrival_mode: str  # any registered arrival-shape name
    tuf_shape: str  # "step" | "linear" | "mixed"
    nu: float  # statistical requirement for linear TUFs


@dataclass
class FuzzFinding:
    """One oracle failure (before/after shrinking)."""

    oracle: str  # "invariant" | "exception" | "dominance" | "scaling"
    scheduler: str  # zoo label ("" for cross-scheduler oracles)
    invariant: Optional[str]
    message: str
    scenario: Scenario
    corpus_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Everything one fuzz run produced."""

    budget: int
    seed: int
    scenarios_run: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
def generate_scenarios(
    budget: int, seed: int, shapes: Optional[Sequence[str]] = None
) -> List[Scenario]:
    """Stratified adversarial scenarios, deterministic in ``seed``.

    Strata rotate so every small budget still covers the interesting
    corners: dominance-eligible periodic underload, bursty UAM edges,
    near-saturation loads, degenerate-TUF overload, and a grab bag.

    With ``shapes`` the stratification instead rotates over that list of
    registered arrival-shape names (the registry lane).  The default
    path's draw sequence is untouched — corpus seeds stay replayable.
    """
    if shapes is not None:
        return _registry_scenarios(budget, seed, tuple(shapes))
    rng = np.random.default_rng(seed)
    scenarios: List[Scenario] = []
    for i in range(budget):
        stratum = i % 5
        if stratum == 0:  # periodic step underload (dominance-eligible)
            arrival, tuf = "periodic", "step"
            load = float(rng.uniform(0.4, 0.85))
        elif stratum == 1:  # bursty UAM window edges
            arrival, tuf = "burst", "step"
            load = float(rng.uniform(0.5, 1.1))
        elif stratum == 2:  # near-1.0 utilisation
            arrival = str(rng.choice(["periodic", "scattered"]))
            tuf = str(rng.choice(["step", "linear"]))
            load = float(rng.uniform(0.92, 1.05))
        elif stratum == 3:  # degenerate TUFs under overload
            arrival = str(rng.choice(["burst", "poisson"]))
            tuf = str(rng.choice(["linear", "mixed"]))
            load = float(rng.uniform(0.8, 1.6))
        else:  # grab bag
            arrival = str(rng.choice(["periodic", "burst", "scattered", "poisson"]))
            tuf = str(rng.choice(["step", "linear", "mixed"]))
            load = float(rng.uniform(0.2, 1.8))
        platform = str(rng.choice(
            ["powernow", "single", "coarse", "fine"], p=[0.4, 0.2, 0.2, 0.2]
        ))
        scenarios.append(Scenario(
            seed=int(rng.integers(0, 2**31)),
            n_tasks=int(rng.integers(2, 6)),
            target_load=load,
            horizon=float(rng.uniform(0.4, 1.2)),
            platform=platform,
            energy=str(rng.choice(["E1", "E2", "E3"])),
            arrival_mode=arrival,
            tuf_shape=tuf,
            nu=float(rng.choice([0.3, 0.7, 0.95])),
        ))
    return scenarios


def _registry_scenarios(
    budget: int, seed: int, shapes: Tuple[str, ...]
) -> List[Scenario]:
    """Scenarios stratified over registered arrival shapes.

    Each shape gets ``budget / len(shapes)`` scenarios (round-robin), so
    even a small budget touches every generator's UAM-thinning path.
    """
    if not shapes:
        raise ValueError("shapes must be a non-empty sequence of shape names")
    rng = np.random.default_rng(seed)
    scenarios: List[Scenario] = []
    for i in range(budget):
        arrival = shapes[i % len(shapes)]
        tuf = str(rng.choice(["step", "linear", "mixed"]))
        load = float(rng.uniform(0.3, 1.6))
        platform = str(rng.choice(
            ["powernow", "single", "coarse", "fine"], p=[0.4, 0.2, 0.2, 0.2]
        ))
        scenarios.append(Scenario(
            seed=int(rng.integers(0, 2**31)),
            n_tasks=int(rng.integers(2, 6)),
            target_load=load,
            horizon=float(rng.uniform(0.4, 1.2)),
            platform=platform,
            energy=str(rng.choice(["E1", "E2", "E3"])),
            arrival_mode=arrival,
            tuf_shape=tuf,
            nu=float(rng.choice([0.3, 0.7, 0.95])),
        ))
    return scenarios


def build_workload(scenario: Scenario) -> Tuple[WorkloadTrace, Platform]:
    """Materialise a scenario: task set, platform, and fixed job trace.

    ``verify=False``: the checker is the UAM auditor here — a buggy
    arrival *producer* must reach the invariant layer, not be caught by
    the producer's own verification.
    """
    rng = np.random.default_rng(scenario.seed)
    scale = _PLATFORMS[scenario.platform]()
    model = energy_setting(scenario.energy, scale.f_max)
    platform = Platform(scale, model)

    equal_windows = scenario.seed % 5 == 0
    base_window = float(rng.uniform(0.03, 0.4))
    tasks: List[Task] = []
    for i in range(scenario.n_tasks):
        if equal_windows:
            window = base_window
        else:
            window = float(np.exp(rng.uniform(math.log(0.03), math.log(0.4))))
        umax = float(10.0 ** rng.uniform(0.0, 3.0))
        if scenario.tuf_shape == "mixed":
            shape = "step" if i % 2 == 0 else "linear"
        else:
            shape = scenario.tuf_shape
        if shape == "step":
            tuf, nu = StepTUF(umax, window), 1.0
        else:
            tuf, nu = LinearTUF(umax, window), scenario.nu
        a = 1 if scenario.arrival_mode == "periodic" else int(rng.integers(2, 5))
        spec = UAMSpec(a, window)
        if scenario.arrival_mode == "periodic":
            arrivals = None
        elif scenario.arrival_mode == "burst":
            arrivals = BurstUAMArrivals(spec, randomize=bool(rng.integers(0, 2)))
        elif scenario.arrival_mode == "scattered":
            arrivals = ScatteredUAMArrivals(spec, spread=float(rng.uniform(0.5, 1.0)))
        elif scenario.arrival_mode == "poisson":
            arrivals = PoissonUAMArrivals(spec, rate=0.8 * spec.peak_rate)
        else:  # registry lane: any other registered shape, spec defaults
            arrivals = create_arrival_generator(scenario.arrival_mode, spec=spec)
        mean = float(rng.uniform(0.05, 0.3)) * window * scale.f_max / a
        rel_std = float(rng.uniform(0.01, 0.2))
        tasks.append(Task(
            f"T{i}",
            tuf,
            NormalDemand(mean, (rel_std * mean) ** 2),
            spec,
            arrivals=arrivals,
            nu=nu,
            rho=float(rng.uniform(0.9, 0.99)),
        ))
    taskset = TaskSet(tasks).scaled_to_load(scenario.target_load, scale.f_max)
    trace = materialize(
        taskset, scenario.horizon, np.random.default_rng(scenario.seed + 1), verify=False
    )
    return trace, platform


# ----------------------------------------------------------------------
# Oracles (shared with corpus replay)
# ----------------------------------------------------------------------
def run_invariant_oracle(
    trace: WorkloadTrace, platform: Platform, label: str
) -> Tuple[List[InvariantViolation], Optional[str]]:
    """Run one zoo scheduler under a collect-mode checker.

    Returns ``(violations, error)`` where ``error`` is a formatted
    exception if the run itself blew up.
    """
    checker = InvariantChecker(mode="collect")
    try:
        simulate(trace, _ZOO[label](), platform, checker=checker)
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return checker.violations, f"{type(exc).__name__}: {exc}"
    return checker.violations, None


def run_dominance_oracle(trace: WorkloadTrace, platform: Platform) -> Optional[str]:
    """EUA*-demand utility must reach EDF-at-``f_max``'s (Theorem 2)."""
    eua = simulate(trace, _ZOO["EUA*-demand"](), platform)
    edf = simulate(trace, _ZOO["EDF"](), platform)
    eua_u = eua.metrics.accrued_utility
    edf_u = edf.metrics.accrued_utility
    tol = _TOL * max(1.0, abs(edf_u))
    if eua_u < edf_u - tol:
        return (
            f"EUA*-demand accrued {eua_u} < EDF-at-f_max {edf_u} on "
            f"periodic step-TUF underload"
        )
    return None


def dominance_applies(scenario: Scenario, trace: WorkloadTrace) -> bool:
    """Preconditions: periodic, step TUFs, ν=1, clear underload, and no
    demand overrun (a job whose true demand exceeds its budget may
    legitimately expire under EUA* while EDF finishes it)."""
    if scenario.arrival_mode != "periodic" or scenario.tuf_shape != "step":
        return False
    if scenario.target_load >= _DOMINANCE_LOAD:
        return False
    return all(spec.demand <= spec.task.allocation for spec in trace)


# -- time scaling -------------------------------------------------------
_SCALING_LAMBDA = 2.0
_TIME_FIELDS = frozenset(
    {"release", "termination", "sojourn", "window_start", "window_end",
     "overhead", "deadline"}
)
_CYCLE_FIELDS = frozenset({"remaining_budget", "executed", "demand", "budget"})


def _scale_tuf(tuf, lam: float):
    if isinstance(tuf, StepTUF):
        return StepTUF(tuf.max_utility, tuf.termination * lam)
    if isinstance(tuf, LinearTUF):
        return LinearTUF(tuf.max_utility, tuf.termination * lam)
    raise ValueError(f"cannot scale TUF {type(tuf).__name__}")


def scale_workload(trace: WorkloadTrace, lam: float) -> WorkloadTrace:
    """Stretch all times by ``lam`` and all cycle demands by ``lam``."""
    scaled: Dict[str, Task] = {}
    for task in trace.taskset:
        spec = UAMSpec(task.uam.max_arrivals, task.uam.window * lam)
        scaled[task.name] = Task(
            task.name,
            _scale_tuf(task.tuf, lam),
            task.demand.scaled(lam),
            spec,
            arrivals=BurstUAMArrivals(spec) if spec.max_arrivals > 1 else None,
            nu=task.nu,
            rho=task.rho,
            abortable=task.abortable,
        )
    jobs = [
        JobSpec(scaled[j.task.name], j.index, j.release * lam, j.demand * lam)
        for j in trace
    ]
    return WorkloadTrace(TaskSet(scaled.values()), trace.horizon * lam, jobs)


def _close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= _TOL * max(1.0, abs(a), abs(b))


def run_scaling_oracle(trace: WorkloadTrace, platform: Platform) -> Optional[str]:
    """λ=2 time scaling must preserve EUA*'s decision trace."""
    lam = _SCALING_LAMBDA
    base_obs, scaled_obs = Observer(metrics=False), Observer(metrics=False)
    try:
        simulate(trace, _ZOO["EUA*"](), platform, observer=base_obs)
    except Exception:
        return None  # a crashing base run belongs to the exception oracle
    try:
        simulate(scale_workload(trace, lam), _ZOO["EUA*"](), platform,
                 observer=scaled_obs)
    except Exception as exc:  # noqa: BLE001
        return f"scaled run crashed while base run succeeded: {exc}"

    base, scaled = base_obs.events.events, scaled_obs.events.events
    if len(base) != len(scaled):
        return f"event count changed under λ={lam}: {len(base)} -> {len(scaled)}"
    for a, b in zip(base, scaled):
        if a.kind is not b.kind or a.job != b.job or a.source != b.source:
            return (
                f"event {a.seq} changed under λ={lam}: "
                f"{a.kind.value}/{a.job} -> {b.kind.value}/{b.job}"
            )
        if not _close(a.time * lam, b.time):
            return f"event {a.seq} time {a.time}×λ != {b.time}"
        if set(a.fields) != set(b.fields):
            return f"event {a.seq} fields changed: {sorted(a.fields)} -> {sorted(b.fields)}"
        for key, va in a.fields.items():
            vb = b.fields[key]
            if isinstance(va, bool) or not isinstance(va, (int, float)):
                if va != vb:
                    return f"event {a.seq} field {key}: {va!r} -> {vb!r}"
                continue
            if key in _TIME_FIELDS:
                expect = va * lam
            elif key in _CYCLE_FIELDS:
                expect = va * lam
            elif key == "uer":
                expect = va / lam
            else:  # frequencies, rates, utilities, positions: invariant
                expect = va
            if not _close(expect, float(vb)):
                return (
                    f"event {a.seq} ({a.kind.value}) field {key}: "
                    f"expected {expect}, got {vb}"
                )
    return None


# ----------------------------------------------------------------------
# Fuzz driver
# ----------------------------------------------------------------------
def _fuzz_one(scenario: Scenario) -> List[FuzzFinding]:
    trace, platform = build_workload(scenario)
    findings: List[FuzzFinding] = []
    for label in _ZOO:
        violations, error = run_invariant_oracle(trace, platform, label)
        for violation in violations:
            findings.append(FuzzFinding(
                oracle="invariant", scheduler=label,
                invariant=violation.invariant, message=str(violation),
                scenario=scenario,
            ))
        if error is not None:
            findings.append(FuzzFinding(
                oracle="exception", scheduler=label, invariant=None,
                message=error, scenario=scenario,
            ))
    if dominance_applies(scenario, trace):
        message = run_dominance_oracle(trace, platform)
        if message is not None:
            findings.append(FuzzFinding(
                oracle="dominance", scheduler="", invariant=None,
                message=message, scenario=scenario,
            ))
    message = run_scaling_oracle(trace, platform)
    if message is not None:
        findings.append(FuzzFinding(
            oracle="scaling", scheduler="", invariant=None,
            message=message, scenario=scenario,
        ))
    return findings


def _predicate_for(finding: FuzzFinding, platform: Platform):
    """Does a candidate workload still exhibit ``finding``'s failure?"""
    if finding.oracle in ("invariant", "exception"):
        label, want = finding.scheduler, finding.invariant

        def predicate(candidate: WorkloadTrace) -> bool:
            violations, error = run_invariant_oracle(candidate, platform, label)
            if finding.oracle == "exception":
                return error is not None
            return any(v.invariant == want for v in violations)

        return predicate
    if finding.oracle == "dominance":
        return lambda candidate: run_dominance_oracle(candidate, platform) is not None
    return lambda candidate: run_scaling_oracle(candidate, platform) is not None


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in text.lower()).strip("-") or "x"


def run_fuzz(
    budget: int = 100,
    seed: int = 0,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
    max_shrink_evals: int = 200,
    log=None,
    shapes: Optional[Sequence[str]] = None,
) -> FuzzReport:
    """Fuzz ``budget`` scenarios; shrink and save each distinct failure.

    Findings are deduplicated by ``(oracle, invariant, scheduler)`` —
    at most three instances of each signature are kept (and at most one
    shrunk to a corpus file), so a systemic bug does not flood the
    report.  ``shapes`` switches generation to the registry lane (see
    :func:`generate_scenarios`).
    """
    report = FuzzReport(budget=budget, seed=seed)
    seen: Dict[Tuple[str, Optional[str], str], int] = {}
    for scenario in generate_scenarios(budget, seed, shapes=shapes):
        report.scenarios_run += 1
        for finding in _fuzz_one(scenario):
            key = (finding.oracle, finding.invariant, finding.scheduler)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > 3:
                continue
            if seen[key] == 1 and corpus_dir is not None:
                trace, platform = build_workload(scenario)
                if shrink:
                    trace = shrink_workload(
                        trace, _predicate_for(finding, platform),
                        max_evals=max_shrink_evals,
                    )
                case = case_from_trace(
                    trace, platform,
                    oracle=finding.oracle, scheduler=finding.scheduler,
                    invariant=finding.invariant,
                    note=f"{finding.message} (scenario seed {scenario.seed})",
                )
                name = "_".join(
                    _slug(p) for p in
                    (finding.oracle, finding.invariant or "x",
                     finding.scheduler or "x", str(scenario.seed))
                )
                finding.corpus_path = str(save_case(case, Path(corpus_dir) / f"{name}.json"))
            report.findings.append(finding)
            if log is not None:
                log(f"[{finding.oracle}] {finding.message}")
    return report


# ----------------------------------------------------------------------
# One-shot checking (CLI `check`)
# ----------------------------------------------------------------------
@dataclass
class CheckReport:
    """Outcome of running one scheduler under the invariant checker."""

    scheduler: str
    violations: List[InvariantViolation]
    accrued_utility: float
    energy: float
    jobs: int

    @property
    def ok(self) -> bool:
        return not self.violations


def run_check(
    scheduler: str = "EUA*",
    load: float = 0.8,
    seed: int = 11,
    horizon: float = 2.0,
    energy: str = "E1",
    arrivals: str = "periodic",
    tuf: str = "step",
    arrival_params: Tuple[Tuple[str, object], ...] = (),
) -> CheckReport:
    """Audit one synthesized workload under the invariant checker."""
    from ..experiments.workload import synthesize_taskset

    rng = np.random.default_rng(seed)
    nu = 1.0 if tuf == "step" else 0.7
    scale = FrequencyScale.powernow_k6()
    taskset = synthesize_taskset(
        load, rng, tuf_shape=tuf, nu=nu, f_max=scale.f_max,
        arrival_mode=arrivals, arrival_params=arrival_params,
    )
    platform = Platform(scale, energy_setting(energy, scale.f_max))
    trace = materialize(taskset, horizon, np.random.default_rng(seed + 1), verify=False)
    checker = InvariantChecker(mode="collect")
    if scheduler in _ZOO:
        sched = _ZOO[scheduler]()
    else:
        sched = make_scheduler(scheduler)
    result = simulate(trace, sched, platform, checker=checker)
    return CheckReport(
        scheduler=sched.name,
        violations=checker.violations,
        accrued_utility=result.metrics.accrued_utility,
        energy=result.metrics.energy,
        jobs=len(result.jobs),
    )
