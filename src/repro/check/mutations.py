"""Seeded bugs for mutation-testing the checker and fuzzer.

Each context manager monkeypatches one production function with a
subtly wrong variant — the classes of defect the invariant layer exists
to catch — and restores the original on exit.  The test suite asserts
that a bounded fuzz budget flags every mutation and shrinks it to a
corpus repro (``tests/check/test_mutations.py``).

The checker's independence rules (own UER formula, own UAM window walk)
are what make these detectable: a mutation can never patch both the
production path and the reference the checker compares against.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager

__all__ = ["flipped_uer_order", "uam_window_off_by_one", "missnapped_floor"]


@contextmanager
def flipped_uer_order():
    """Invert the UER ranking: the most valuable-per-joule jobs sort last.

    Caught by ``sigma_head`` — the checker's independently coded UER
    metric still ranks correctly, so the reconstructed σ head disagrees
    with the dispatch whenever two ready jobs have distinct UERs.
    """
    from ..core import eua

    original = eua.job_uer

    def flipped(job, now, f_max, model):
        value = original(job, now, f_max, model)
        return 1.0 / value if value > 0.0 else value

    eua.job_uer = flipped
    try:
        yield
    finally:
        eua.job_uer = original


@contextmanager
def uam_window_off_by_one():
    """Release bursts one tolerance step early at the UAM window edge.

    Burst ``k+1`` lands at ``k·P·(1 − 1e-7)`` — *inside* the effective
    window ``P·(1 − 1e-9)`` opened by burst ``k`` — so any window holds
    ``2a > a`` arrivals.  Caught by the checker's ``uam_envelope``
    sliding window (the fuzzer materialises with ``verify=False``
    precisely so producer bugs reach the checker).
    """
    from ..arrivals.generators import BurstUAMArrivals

    original = BurstUAMArrivals.generate

    def patched(self, horizon, rng=None):
        rng = self._rng(rng)
        a = self.spec.max_arrivals
        period = self.spec.window * (1.0 - 1e-7)
        times = []
        k = 0
        while True:
            t = self.phase + k * period
            if t >= horizon:
                break
            size = int(rng.integers(1, a + 1)) if self.randomize else a
            times.extend([float(t)] * size)
            k += 1
        return times

    BurstUAMArrivals.generate = patched
    try:
        yield
    finally:
        BurstUAMArrivals.generate = original


@contextmanager
def missnapped_floor():
    """Fatten the frequency snap tolerance so near-misses snap *down*.

    ``selectFreq`` then behaves like ``floor`` for rates within 15% of a
    ladder level — systematic under-clocking.  Caught by
    ``frequency_sufficient`` (the dispatch frequency no longer covers
    the assurance rate) and, independently, by the dominance oracle
    (the slow EUA* arm sheds utility that EDF-at-``f_max`` keeps).
    """
    from ..cpu.frequency import FrequencyScale

    original = FrequencyScale._snap_index

    def patched(self, x):
        levels = self._levels
        i = bisect_left(levels, x)
        if i > 0 and math.isclose(levels[i - 1], x, rel_tol=0.15):
            return i - 1
        if i < len(levels) and math.isclose(levels[i], x, rel_tol=1e-12):
            return i
        return None

    FrequencyScale._snap_index = patched
    try:
        yield
    finally:
        FrequencyScale._snap_index = original
