"""Workload shrinking: reduce a failing trace to a minimal repro.

Given a :class:`~repro.sim.workload.WorkloadTrace` and a predicate that
returns ``True`` while the candidate still exhibits the failure, the
shrinker greedily applies reductions in decreasing order of power:

1. drop whole tasks (and their jobs);
2. delta-debug the job list (ddmin-style chunk removal);
3. drop tasks left without jobs;
4. trim the horizon to the last job's TUF window.

Every candidate is re-validated through the predicate, so the result is
always a genuine repro of the *same* failure (shrinking can never
replace one bug with another).  The predicate-call budget bounds total
work — fuzzing wants a small repro quickly, not a globally minimal one.
"""

from __future__ import annotations

from typing import Callable, List

from ..sim.task import TaskSet
from ..sim.workload import JobSpec, WorkloadTrace

__all__ = ["shrink_workload"]


def shrink_workload(
    trace: WorkloadTrace,
    predicate: Callable[[WorkloadTrace], bool],
    max_evals: int = 200,
) -> WorkloadTrace:
    """Return the smallest still-failing reduction of ``trace`` found.

    ``predicate(candidate)`` must return ``True`` iff the candidate
    still fails the same way.  The input trace is assumed failing; if
    the budget runs out the best reduction so far is returned.
    """
    evals = 0

    def check(candidate: WorkloadTrace) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            # A predicate crash is not the tracked failure.
            return False

    current = trace

    # --- 1. drop whole tasks ------------------------------------------
    changed = True
    while changed and len(list(current.taskset)) > 1:
        changed = False
        for task in list(current.taskset):
            remaining = [t for t in current.taskset if t is not task]
            if not remaining:
                continue
            jobs = [j for j in current.jobs if j.task is not task]
            if not jobs:
                continue
            candidate = WorkloadTrace(TaskSet(remaining), current.horizon, jobs)
            if check(candidate):
                current = candidate
                changed = True
                break

    # --- 2. ddmin over the job list -----------------------------------
    jobs: List[JobSpec] = current.jobs
    n = 2
    while len(jobs) >= 2:
        chunk = max(1, len(jobs) // n)
        reduced = False
        for start in range(0, len(jobs), chunk):
            cand_jobs = jobs[:start] + jobs[start + chunk:]
            if not cand_jobs:
                continue
            candidate = WorkloadTrace(current.taskset, current.horizon, cand_jobs)
            if check(candidate):
                jobs = cand_jobs
                current = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            n = min(len(jobs), n * 2)

    # --- 3. drop now-jobless tasks ------------------------------------
    used = {j.task.name for j in current.jobs}
    keep = [t for t in current.taskset if t.name in used]
    if keep and len(keep) < len(list(current.taskset)):
        candidate = WorkloadTrace(TaskSet(keep), current.horizon, current.jobs)
        if check(candidate):
            current = candidate

    # --- 4. trim the horizon ------------------------------------------
    if current.jobs:
        last = max(j.release + j.task.tuf.termination for j in current.jobs)
        tight = last * (1.0 + 1e-9) + 1e-9
        if tight < current.horizon:
            candidate = WorkloadTrace(current.taskset, tight, current.jobs)
            if check(candidate):
                current = candidate

    return current
