"""Multicore invariants (repro.mp result auditing).

The per-core σ/UER reconstruction is the existing uniprocessor
:class:`~repro.check.InvariantChecker`, attached per core by the
partitioned engine (``simulate_partitioned(check=True)``).  This module
adds the invariants that only exist *between* cores, checked over a
finished :class:`~repro.mp.MPSimulationResult`:

* **MP1 — no dual execution**: no job executes on two cores during
  overlapping time slots (from the per-core execution segments);
* **MP2 — partition respected**: in partitioned mode every job ran only
  on its task's assigned core, and the migration count is zero;
* **MP3 — migration-count sanity**: the engine's migration counter
  equals the number of cross-core resumptions reconstructed from the
  segments (and is zero when only one core exists);
* **MP4 — energy conservation**: the combined processor accounting is
  exactly the per-core sum plus the uncore term;
* **MP5 — conservation of jobs**: per-core job populations partition
  the combined job population (no job lost or double-counted).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .invariants import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mp imports check)
    from ..mp.engine import MPSimulationResult

__all__ = ["check_mp_result"]

#: Slot-overlap tolerance, matching the engine's event coincidence EPS.
_EPS = 1e-12
#: Relative tolerance for energy conservation (pure float summation).
_ENERGY_RTOL = 1e-9


def _busy_segments(
    core_segments: List[List[Tuple[float, float, Optional[str], float]]],
) -> Dict[str, List[Tuple[float, float, int]]]:
    """Per job key: (start, end, core) execution intervals, time-sorted."""
    by_job: Dict[str, List[Tuple[float, float, int]]] = {}
    for core, segments in enumerate(core_segments):
        for start, end, job_key, _freq in segments:
            if job_key is not None and end - start > _EPS:
                by_job.setdefault(job_key, []).append((start, end, core))
    for intervals in by_job.values():
        intervals.sort()
    return by_job


def check_mp_result(result: "MPSimulationResult") -> None:
    """Audit a finished multicore run; raises :class:`InvariantViolation`."""
    segments = result.core_segments
    by_job = _busy_segments(segments) if segments is not None else None

    # --- MP1: no job on two cores in an overlapping slot ---------------
    if by_job is not None:
        for job_key, intervals in by_job.items():
            for (s0, e0, c0), (s1, _e1, c1) in zip(intervals, intervals[1:]):
                if c1 != c0 and s1 < e0 - _EPS:
                    raise InvariantViolation(
                        "MP1-dual-execution",
                        s1,
                        f"executes on cores {c0} and {c1} concurrently "
                        f"([{s0:.9g}, {e0:.9g}) vs start {s1:.9g})",
                        job=job_key,
                    )

    # --- MP2: partitioned runs respect the assignment ------------------
    if result.mode == "partitioned":
        if result.migrations != 0:
            raise InvariantViolation(
                "MP2-partition-respected",
                result.horizon,
                f"partitioned run reports {result.migrations} migrations",
            )
        core_of = result.core_of_task
        if core_of is not None and result.per_core_results is not None:
            for core, sub in enumerate(result.per_core_results):
                if sub is None:
                    continue
                for job in sub.jobs:
                    assigned = core_of.get(job.task.name)
                    if assigned != core:
                        raise InvariantViolation(
                            "MP2-partition-respected",
                            job.release,
                            f"job of task {job.task.name!r} ran on core {core}, "
                            f"assigned to core {assigned}",
                            job=job.key,
                        )
        if by_job is not None and core_of is not None:
            for job_key, intervals in by_job.items():
                task_name = job_key.rsplit(":", 1)[0]
                assigned = core_of.get(task_name)
                for start, _end, core in intervals:
                    if core != assigned:
                        raise InvariantViolation(
                            "MP2-partition-respected",
                            start,
                            f"segment of task {task_name!r} on core {core}, "
                            f"assigned to core {assigned}",
                            job=job_key,
                        )

    # --- MP3: migration counter matches the segment record -------------
    if by_job is not None:
        reconstructed = 0
        for intervals in by_job.values():
            for (_s0, _e0, c0), (_s1, _e1, c1) in zip(intervals, intervals[1:]):
                if c1 != c0:
                    reconstructed += 1
        if reconstructed != result.migrations:
            raise InvariantViolation(
                "MP3-migration-count",
                result.horizon,
                f"engine counted {result.migrations} migrations, segments "
                f"show {reconstructed}",
            )
    if len(result.per_core_stats) <= 1 and result.migrations != 0:
        raise InvariantViolation(
            "MP3-migration-count",
            result.horizon,
            f"single-core run reports {result.migrations} migrations",
        )

    # --- MP4: energy conservation over cores + uncore -------------------
    expected = result.uncore_energy
    for stats in result.per_core_stats:
        expected += stats.total_energy
    combined = result.processor_stats.total_energy
    tol = _ENERGY_RTOL * max(1.0, abs(expected))
    if abs(combined - expected) > tol:
        raise InvariantViolation(
            "MP4-energy-conservation",
            result.horizon,
            f"combined energy {combined!r} != per-core sum + uncore {expected!r}",
        )

    # --- MP5: per-core jobs partition the combined population -----------
    if result.per_core_results is not None:
        per_core_keys = [
            job.key for sub in result.per_core_results if sub is not None for job in sub.jobs
        ]
        combined_keys = [job.key for job in result.jobs]
        if sorted(per_core_keys) != sorted(combined_keys):
            raise InvariantViolation(
                "MP5-job-conservation",
                result.horizon,
                f"per-core jobs ({len(per_core_keys)}) do not partition the "
                f"combined population ({len(combined_keys)})",
            )
