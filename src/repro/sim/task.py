"""Tasks and task sets (paper Section 2.1–2.2).

A :class:`Task` bundles everything the paper attaches to ``T_i``:

* a non-increasing unimodal TUF ``U_i`` whose relative termination time
  equals the UAM window ``P_i`` (the paper's convention, Section 2.2 —
  we allow it to differ, but :meth:`Task.validate_paper_model` checks
  the strict form);
* a UAM arrival envelope ``⟨a_i, P_i⟩`` and a concrete arrival
  generator honouring it;
* a stochastic cycle demand ``Y_i``;
* the statistical requirement ``{ν_i, ρ_i}``.

Derived quantities used throughout the schedulers (Section 3.1) are
cached properties: the Chebyshev allocation ``c_i``, the critical time
``D_i``, and the per-window worst-case cycles ``C_i = a_i · c_i``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from ..arrivals import ArrivalGenerator, PeriodicArrivals, UAMSpec
from ..demand import DemandDistribution, chebyshev_allocation
from ..tuf import TUF, StepTUF

__all__ = ["Task", "TaskSet", "TaskModelError"]


class TaskModelError(ValueError):
    """Raised for inconsistent task definitions."""


def _spec_implies(tight: UAMSpec, loose: UAMSpec) -> bool:
    """Whether every ``tight``-compliant stream is ``loose``-compliant.

    Sufficient (and used) conditions:

    * ``a' <= a`` and ``P' >= P`` — any window of length ``P`` sits inside
      a window of length ``P'``;
    * otherwise cover the ``P`` window with ``ceil(P / P')`` windows of
      length ``P'``: compliance needs ``a' · ceil(P / P') <= a``.
    """
    a_t, p_t = tight.max_arrivals, tight.window
    a_l, p_l = loose.max_arrivals, loose.window
    tol = 1e-9 * max(1.0, p_l)
    if a_t <= a_l and p_t >= p_l - tol:
        return True
    covers = math.ceil((p_l - tol) / p_t)
    return a_t * covers <= a_l


class Task:
    """One application task ``T_i``.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`TaskSet`.
    tuf:
        The job time constraint, relative to each release.
    demand:
        Per-job cycle demand distribution ``Y_i`` (Mcycles).
    uam:
        The arrival envelope ``⟨a_i, P_i⟩``.
    arrivals:
        Concrete arrival generator; defaults to strictly periodic with
        period ``P_i`` (the UAM special case ``⟨1, P⟩`` pattern, also
        used for ``a > 1`` specs only if explicitly passed).
    nu, rho:
        The statistical requirement: accrue at least ``nu`` of the
        maximum utility with probability at least ``rho``.
    abortable:
        Whether the exception raised at the termination time aborts the
        job (paper Section 2.2).  Disabled for `-NA` comparisons.
    """

    def __init__(
        self,
        name: str,
        tuf: TUF,
        demand: DemandDistribution,
        uam: UAMSpec,
        arrivals: Optional[ArrivalGenerator] = None,
        nu: float = 1.0,
        rho: float = 0.96,
        abortable: bool = True,
    ):
        if not name:
            raise TaskModelError("task name must be non-empty")
        if not (0.0 <= nu <= 1.0):
            raise TaskModelError(f"nu must lie in [0, 1], got {nu!r}")
        if not (0.0 <= rho < 1.0):
            raise TaskModelError(f"rho must lie in [0, 1), got {rho!r}")
        if isinstance(tuf, StepTUF) and nu not in (0.0, 1.0):
            raise TaskModelError("step TUFs admit nu in {0, 1} only (paper Section 2.2)")
        if arrivals is None:
            if uam.max_arrivals != 1:
                raise TaskModelError(
                    "an explicit arrival generator is required when a > 1 "
                    "(the default periodic pattern only matches <1, P>)"
                )
            arrivals = PeriodicArrivals(uam.window)
        if not _spec_implies(arrivals.spec, uam):
            raise TaskModelError(
                f"arrival generator spec {arrivals.spec} is not contained in "
                f"the task UAM envelope {uam}"
            )
        self.name = name
        self.tuf = tuf
        self.demand = demand
        self.uam = uam
        self.arrivals = arrivals
        self.nu = float(nu)
        self.rho = float(rho)
        self.abortable = bool(abortable)
        self._allocation: Optional[float] = None
        self._critical_time: Optional[float] = None
        self._dvs_static: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Derived parameters (paper Section 3.1)
    # ------------------------------------------------------------------
    @property
    def allocation(self) -> float:
        """Chebyshev cycle allocation ``c_i`` for ``Pr[Y < c] >= rho``."""
        if self._allocation is None:
            self._allocation = chebyshev_allocation(
                self.demand.mean, self.demand.variance, self.rho
            )
        return self._allocation

    @property
    def critical_time(self) -> float:
        """Critical time ``D_i`` from ``nu = U(D)/U_max`` (relative)."""
        if self._critical_time is None:
            self._critical_time = self.tuf.critical_time(self.nu)
        return self._critical_time

    @property
    def window_cycles(self) -> float:
        """``C_i = a_i · c_i`` — worst-case cycles per UAM window."""
        return self.uam.max_arrivals * self.allocation

    @property
    def min_feasible_frequency(self) -> float:
        """Theorem 1: all jobs meet ``D_i`` iff run at ``f >= C_i / D_i``."""
        return self.window_cycles / self.critical_time

    def utilization(self, frequency: float) -> float:
        """``C_i / (D_i · f)`` — fraction of the CPU at ``frequency``."""
        if frequency <= 0.0:
            raise TaskModelError(f"frequency must be > 0, got {frequency!r}")
        return self.min_feasible_frequency / frequency

    def dvs_static(self) -> tuple:
        """``(a_i, c_i, D_i, C_i/D_i, C_i)`` — the static per-task
        parameters the ``decideFreq`` kernel folds every decision.

        Cached once and invalidated by :meth:`reallocate` (the only
        post-construction mutation), so the hot loop pays one attribute
        access instead of re-deriving five properties per task per
        decision.  Each element is produced by the same expression the
        un-cached path evaluates, keeping downstream floats
        bit-identical.
        """
        static = self._dvs_static
        if static is None:
            a = self.uam.max_arrivals
            c = self.allocation
            d = self.critical_time
            # rate: task.window_cycles / task.critical_time; cap: C_i.
            static = self._dvs_static = (a, c, d, (a * c) / d, a * c)
        return static

    def reallocate(self, allocation: float) -> None:
        """Override the Chebyshev allocation ``c_i`` with a profiled value.

        This is the *only* supported mutation of a task after
        construction, and it exists for the online adaptation layer
        (:mod:`repro.runtime`): when observed demand drifts away from
        the declared distribution, the runtime re-derives ``c_i`` from
        the profiled moments and installs it here so every consumer —
        job budgets, ``remaining_window_cycles``, ``decideFreq`` — sees
        the refreshed value.  Callers that share the task set across
        runs must restore the original allocation afterwards (the
        runtime's ``finalize()`` does) and must invalidate the
        ``offlineComputing`` memo (:func:`repro.core.offline.invalidate_offline_cache`)
        before re-deriving scheduler parameters.
        """
        if allocation <= 0.0 or not math.isfinite(allocation):
            raise TaskModelError(f"allocation must be finite and > 0, got {allocation!r}")
        self._allocation = float(allocation)
        self._dvs_static = None

    # ------------------------------------------------------------------
    def scaled_demand(self, k: float) -> "Task":
        """A copy of the task with demand ``k · Y`` (load sweeps).

        ``c_i`` scales linearly with ``k`` because both the mean and the
        standard deviation do (the paper scales ``E(Y)`` by ``k`` and
        ``Var(Y)`` by ``k²``).
        """
        return Task(
            name=self.name,
            tuf=self.tuf,
            demand=self.demand.scaled(k),
            uam=self.uam,
            arrivals=self.arrivals,
            nu=self.nu,
            rho=self.rho,
            abortable=self.abortable,
        )

    def with_requirement(self, nu: float, rho: float) -> "Task":
        """A copy with a different statistical requirement ``{ν, ρ}``."""
        return Task(
            name=self.name,
            tuf=self.tuf,
            demand=self.demand,
            uam=self.uam,
            arrivals=self.arrivals,
            nu=nu,
            rho=rho,
            abortable=self.abortable,
        )

    def validate_paper_model(self) -> None:
        """Check the strict Section 2.2 conventions.

        The TUF termination time must equal the UAM window ``P_i`` and
        the TUF must be non-increasing.
        """
        if not math.isclose(self.tuf.termination, self.uam.window, rel_tol=1e-9):
            raise TaskModelError(
                f"task {self.name!r}: TUF termination {self.tuf.termination} "
                f"!= UAM window {self.uam.window}"
            )
        if not self.tuf.is_non_increasing():
            raise TaskModelError(f"task {self.name!r}: TUF is not non-increasing")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Task({self.name!r}, uam=<{self.uam.max_arrivals},{self.uam.window}>, "
            f"c={self.allocation:.3f}, D={self.critical_time:.4f})"
        )


class TaskSet:
    """An ordered collection of uniquely named tasks."""

    def __init__(self, tasks: Iterable[Task]):
        self._tasks: List[Task] = list(tasks)
        names = [t.name for t in self._tasks]
        if len(set(names)) != len(names):
            raise TaskModelError(f"duplicate task names in {names}")
        if not self._tasks:
            raise TaskModelError("task set must be non-empty")

    def __iter__(self):
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def by_name(self, name: str) -> Task:
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    @property
    def names(self) -> List[str]:
        return [t.name for t in self._tasks]

    # ------------------------------------------------------------------
    def load(self, f_max: float) -> float:
        """System load ``ϱ = (1/f_m) Σ C_i / D_i`` (paper Section 5)."""
        if f_max <= 0.0:
            raise TaskModelError(f"f_max must be > 0, got {f_max!r}")
        return sum(t.min_feasible_frequency for t in self._tasks) / f_max

    def scaled_to_load(self, target_load: float, f_max: float) -> "TaskSet":
        """Scale every task's demand by one constant ``k`` to hit
        ``target_load`` (the paper's workload knob).

        ``c_i`` is linear in ``k``, so ``k = target / current``.
        """
        if target_load <= 0.0:
            raise TaskModelError(f"target load must be > 0, got {target_load!r}")
        current = self.load(f_max)
        k = target_load / current
        return TaskSet(t.scaled_demand(k) for t in self._tasks)

    def validate_paper_model(self) -> None:
        for t in self._tasks:
            t.validate_paper_model()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSet({self.names!r})"
