"""Jobs — the basic scheduling entity (paper Section 2.1).

A :class:`Job` ``J_{i,j}`` is one invocation of a task.  Its *true*
cycle demand is drawn from the task's demand distribution when the
workload is materialised; schedulers never see it — they budget with the
Chebyshev allocation ``c_i`` and observe only executed cycles.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from .task import Task

__all__ = ["Job", "JobStatus"]


class JobStatus(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    PENDING = "pending"  # released, not yet completed/aborted
    COMPLETED = "completed"  # finished all demanded cycles
    ABORTED = "aborted"  # dropped by the scheduler (infeasible)
    EXPIRED = "expired"  # termination time reached mid-execution
    SHED = "shed"  # dropped by the runtime admission layer (never or no longer scheduled)


class Job:
    """One released invocation ``J_{i,j}`` of a task.

    Attributes
    ----------
    task:
        The owning :class:`~repro.sim.task.Task`.
    index:
        ``j`` — the invocation number within its task (0-based).
    release:
        Absolute release time ``I_{i,j}`` (the TUF initial time).
    demand:
        True cycle demand (Mcycles) — hidden from schedulers.
    executed:
        Cycles executed so far.
    """

    __slots__ = (
        "task",
        "index",
        "_release",
        "demand",
        "executed",
        "status",
        "completion_time",
        "accrued_utility",
        "abort_time",
        "termination",
        "critical_time",
    )

    def __init__(self, task: Task, index: int, release: float, demand: float):
        if release < 0.0 or not math.isfinite(release):
            raise ValueError(f"release must be finite and >= 0, got {release!r}")
        if demand <= 0.0 or not math.isfinite(demand):
            raise ValueError(f"demand must be finite and > 0, got {demand!r}")
        self.task = task
        self.index = int(index)
        self.demand = float(demand)
        self.executed = 0.0
        self.status = JobStatus.PENDING
        self.completion_time: Optional[float] = None
        self.accrued_utility = 0.0
        self.abort_time: Optional[float] = None
        self.release = float(release)  # also derives the absolute times

    # ------------------------------------------------------------------
    # Absolute time constraints
    # ------------------------------------------------------------------
    # ``termination`` (``X_{i,j} = release + X``) and ``critical_time``
    # (``D^a = release + D_i``) are *maintained* plain attributes, not
    # computed properties: the scheduler hot loops read them far more
    # often than ``release`` ever changes (only the adaptive runtime's
    # defer path re-releases a job).  The ``release`` setter keeps them
    # consistent; the equivalence suite pins them to the derived forms.

    @property
    def release(self) -> float:
        """Absolute release time ``I_{i,j}`` (the TUF initial time)."""
        return self._release

    @release.setter
    def release(self, value: float) -> None:
        self._release = value
        task = self.task
        self.termination = value + task.tuf.termination
        self.critical_time = value + task.critical_time

    def utility_at(self, t: float) -> float:
        """Utility accrued if the job completes at absolute time ``t``."""
        return self.task.tuf.utility(t - self._release)

    @property
    def max_utility(self) -> float:
        return self.task.tuf.max_utility

    # ------------------------------------------------------------------
    # Scheduler-visible budget
    # ------------------------------------------------------------------
    @property
    def allocated(self) -> float:
        """The Chebyshev budget ``c_i`` for this job."""
        return self.task.allocation

    @property
    def remaining_budget(self) -> float:
        """``c^r`` — unexecuted part of the allocation (never negative).

        When the true demand overruns the allocation this reaches zero
        while the job is still pending — exactly the information gap the
        statistical model admits with probability ``1 − ρ``.
        """
        return max(0.0, self.allocated - self.executed)

    # ------------------------------------------------------------------
    # True progress (engine-only)
    # ------------------------------------------------------------------
    @property
    def remaining_demand(self) -> float:
        """True unexecuted cycles (engine bookkeeping only)."""
        return max(0.0, self.demand - self.executed)

    @property
    def is_finished(self) -> bool:
        return self.status is not JobStatus.PENDING

    @property
    def met_statistical_requirement(self) -> bool:
        """Whether this job accrued ``>= ν_i`` of its maximum utility."""
        return self.accrued_utility >= self.task.nu * self.max_utility - 1e-12

    @property
    def sojourn_time(self) -> Optional[float]:
        """Completion latency, if completed."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release

    @property
    def key(self) -> str:
        """Stable identifier ``task:index``."""
        return f"{self.task.name}:{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job({self.key}, release={self.release:.4f}, demand={self.demand:.3f}, "
            f"executed={self.executed:.3f}, {self.status.value})"
        )
