"""Execution traces — optional per-segment recording.

A :class:`Trace` records every contiguous stretch of processor activity
(which job ran, at which frequency) plus the discrete events (releases,
completions, aborts, expiries, frequency switches).  Traces back the
energy/cycle conservation property tests and the Theorem 2 (EDF
equivalence) checks, and make simulations debuggable.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Trace", "Segment", "TraceEvent", "TraceEventKind"]


class TraceEventKind(enum.Enum):
    RELEASE = "release"
    COMPLETE = "complete"
    ABORT = "abort"
    EXPIRE = "expire"
    FREQ = "freq"


@dataclass(frozen=True)
class Segment:
    """A maximal interval with constant (job, frequency) state.

    ``job_key`` is ``None`` for idle intervals; ``frequency`` is the
    operating point during the interval (idle intervals keep the last
    set frequency for reference).
    """

    start: float
    end: float
    job_key: Optional[str]
    frequency: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def cycles(self) -> float:
        """Cycles executed during the segment (0 when idle)."""
        return 0.0 if self.job_key is None else self.duration * self.frequency


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: TraceEventKind
    job_key: Optional[str] = None
    value: float = 0.0


class Trace:
    """Chronological record of segments and events."""

    def __init__(self) -> None:
        self.segments: List[Segment] = []
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------
    def add_segment(self, start: float, end: float, job_key: Optional[str], frequency: float):
        if end < start:
            raise ValueError(f"segment must not run backwards: [{start}, {end}]")
        if end == start:
            return
        # Coalesce with the previous segment when state is unchanged.
        if self.segments:
            last = self.segments[-1]
            if (
                last.end == start
                and last.job_key == job_key
                and last.frequency == frequency
            ):
                self.segments[-1] = Segment(last.start, end, job_key, frequency)
                return
        self.segments.append(Segment(start, end, job_key, frequency))

    def add_event(self, time: float, kind: TraceEventKind, job_key: Optional[str] = None,
                  value: float = 0.0) -> None:
        self.events.append(TraceEvent(time, kind, job_key, value))

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise the trace, one JSON object per line.

        Two row types: ``segment`` (the execution timeline) and
        ``event`` (the discrete markers).  Floats go through :mod:`json`
        ``repr``, which round-trips IEEE doubles exactly, so
        ``Trace.from_jsonl(trace.to_jsonl())`` reproduces the trace
        bit-for-bit (asserted by the test suite).
        """
        lines: List[str] = []
        for s in self.segments:
            lines.append(json.dumps({
                "type": "segment", "start": s.start, "end": s.end,
                "job": s.job_key, "frequency": s.frequency,
            }))
        for e in self.events:
            lines.append(json.dumps({
                "type": "event", "time": e.time, "kind": e.kind.value,
                "job": e.job_key, "value": e.value,
            }))
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Rebuild a trace from :meth:`to_jsonl` output.

        Rows append verbatim (no re-coalescing), preserving the exact
        segment list the producer recorded.
        """
        trace = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            row = json.loads(line)
            kind = row.get("type")
            if kind == "segment":
                trace.segments.append(Segment(
                    start=float(row["start"]), end=float(row["end"]),
                    job_key=row.get("job"), frequency=float(row["frequency"]),
                ))
            elif kind == "event":
                trace.events.append(TraceEvent(
                    time=float(row["time"]), kind=TraceEventKind(row["kind"]),
                    job_key=row.get("job"), value=float(row.get("value", 0.0)),
                ))
            else:
                raise ValueError(f"line {lineno}: unknown trace row type {kind!r}")
        return trace

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.segments == other.segments and self.events == other.events

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def busy_segments(self) -> List[Segment]:
        return [s for s in self.segments if s.job_key is not None]

    def executed_cycles(self, job_key: Optional[str] = None) -> float:
        """Total cycles, optionally restricted to one job."""
        return sum(
            s.cycles
            for s in self.segments
            if s.job_key is not None and (job_key is None or s.job_key == job_key)
        )

    def busy_time(self) -> float:
        return sum(s.duration for s in self.busy_segments())

    def idle_time(self) -> float:
        return sum(s.duration for s in self.segments if s.job_key is None)

    def job_order(self) -> List[str]:
        """Distinct job keys in first-execution order (Theorem 2 checks)."""
        seen: List[str] = []
        for s in self.busy_segments():
            if s.job_key not in seen:
                seen.append(s.job_key)
        return seen

    def events_of(self, kind: TraceEventKind) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is kind]

    def is_contiguous(self) -> bool:
        """Segments tile the timeline with no gaps or overlaps."""
        for a, b in zip(self.segments, self.segments[1:]):
            if abs(a.end - b.start) > 1e-9:
                return False
        return True

    def preemption_count(self) -> int:
        """Busy→busy transitions that switch to a *different* job while
        the previous one had not completed at the boundary."""
        completions = {
            (e.job_key, e.time) for e in self.events if e.kind is TraceEventKind.COMPLETE
        }
        count = 0
        busy = self.busy_segments()
        for a, b in zip(busy, busy[1:]):
            if a.job_key != b.job_key and abs(a.end - b.start) <= 1e-9:
                if (a.job_key, a.end) not in completions:
                    # Also not aborted/expired at that instant?  Treat any
                    # non-completion switch as a preemption.
                    ended = any(
                        e.kind in (TraceEventKind.ABORT, TraceEventKind.EXPIRE)
                        and e.job_key == a.job_key
                        and abs(e.time - a.end) <= 1e-9
                        for e in self.events
                    )
                    if not ended:
                        count += 1
        return count
