"""Simulation metrics.

Aggregates the quantities the paper reports: accrued utility (absolute
and normalised), system-level energy, per-task statistical-assurance
attainment, and job outcome counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpu import ProcessorStats
from .job import Job, JobStatus
from .task import Task, TaskSet

__all__ = ["TaskMetrics", "Metrics"]


@dataclass
class TaskMetrics:
    """Per-task outcome summary."""

    name: str
    released: int = 0
    completed: int = 0
    aborted: int = 0
    expired: int = 0
    shed: int = 0
    unfinished: int = 0
    accrued_utility: float = 0.0
    max_possible_utility: float = 0.0
    met_critical_time: int = 0
    met_requirement: int = 0

    @property
    def normalized_utility(self) -> float:
        """Accrued / maximum-possible utility for this task."""
        if self.max_possible_utility == 0.0:
            return 0.0
        return self.accrued_utility / self.max_possible_utility

    @property
    def assurance_attainment(self) -> float:
        """Empirical ``Pr[utility >= ν·U_max]`` over decided jobs.

        Jobs still unfinished at the horizon are excluded — their outcome
        is censored, not failed.
        """
        decided = self.released - self.unfinished
        if decided == 0:
            return 1.0
        return self.met_requirement / decided

    @property
    def critical_time_hit_rate(self) -> float:
        decided = self.released - self.unfinished
        if decided == 0:
            return 1.0
        return self.met_critical_time / decided


class Metrics:
    """Whole-run summary built from the final job population."""

    def __init__(
        self,
        taskset: TaskSet,
        jobs: List[Job],
        processor_stats: ProcessorStats,
        horizon: float,
    ):
        self.taskset = taskset
        self.jobs = list(jobs)
        self.processor = processor_stats
        self.horizon = float(horizon)
        self.per_task: Dict[str, TaskMetrics] = {t.name: TaskMetrics(t.name) for t in taskset}
        for job in self.jobs:
            tm = self.per_task[job.task.name]
            tm.released += 1
            tm.max_possible_utility += job.max_utility
            tm.accrued_utility += job.accrued_utility
            if job.status is JobStatus.COMPLETED:
                tm.completed += 1
                assert job.completion_time is not None
                if job.completion_time <= job.critical_time + 1e-9:
                    tm.met_critical_time += 1
                if job.met_statistical_requirement:
                    tm.met_requirement += 1
            elif job.status is JobStatus.ABORTED:
                tm.aborted += 1
            elif job.status is JobStatus.EXPIRED:
                tm.expired += 1
            elif job.status is JobStatus.SHED:
                tm.shed += 1
            else:
                tm.unfinished += 1

    # ------------------------------------------------------------------
    # System-level aggregates
    # ------------------------------------------------------------------
    @property
    def accrued_utility(self) -> float:
        return sum(tm.accrued_utility for tm in self.per_task.values())

    @property
    def max_possible_utility(self) -> float:
        return sum(tm.max_possible_utility for tm in self.per_task.values())

    @property
    def normalized_utility(self) -> float:
        """Total accrued utility / total attainable utility."""
        denom = self.max_possible_utility
        return self.accrued_utility / denom if denom > 0.0 else 0.0

    @property
    def energy(self) -> float:
        """Total system energy (busy + idle + switching)."""
        return self.processor.total_energy

    @property
    def utility_per_energy(self) -> float:
        """The paper's overload objective: utility per unit energy."""
        return self.accrued_utility / self.energy if self.energy > 0.0 else 0.0

    @property
    def released(self) -> int:
        return sum(tm.released for tm in self.per_task.values())

    @property
    def completed(self) -> int:
        return sum(tm.completed for tm in self.per_task.values())

    @property
    def aborted(self) -> int:
        return sum(tm.aborted for tm in self.per_task.values())

    @property
    def expired(self) -> int:
        return sum(tm.expired for tm in self.per_task.values())

    @property
    def shed(self) -> int:
        return sum(tm.shed for tm in self.per_task.values())

    @property
    def unfinished(self) -> int:
        return sum(tm.unfinished for tm in self.per_task.values())

    # ------------------------------------------------------------------
    def assurance_satisfied(self, task: Task) -> bool:
        """Whether ``{ν_i, ρ_i}`` held empirically for ``task``."""
        tm = self.per_task[task.name]
        return tm.assurance_attainment >= task.rho - 1e-12

    def all_assurances_satisfied(self) -> bool:
        return all(self.assurance_satisfied(t) for t in self.taskset)

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers (reporting convenience)."""
        return {
            "accrued_utility": self.accrued_utility,
            "max_possible_utility": self.max_possible_utility,
            "normalized_utility": self.normalized_utility,
            "energy": self.energy,
            "utility_per_energy": self.utility_per_energy,
            "released": float(self.released),
            "completed": float(self.completed),
            "aborted": float(self.aborted),
            "expired": float(self.expired),
            "shed": float(self.shed),
            "unfinished": float(self.unfinished),
            "busy_time": self.processor.busy_time,
            "idle_time": self.processor.idle_time,
            "avg_frequency": self.processor.average_frequency,
            "freq_switches": float(self.processor.switch_count),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Metrics(utility={self.accrued_utility:.1f}/{self.max_possible_utility:.1f}, "
            f"energy={self.energy:.3g}, jobs={self.completed}/{self.released})"
        )
