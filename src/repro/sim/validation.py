"""Post-hoc validation of simulation outputs.

An independent auditor for finished runs: re-derives everything a
correct simulation must satisfy from the recorded :class:`Trace` and
job population, without trusting the engine's own accounting.  Used by
the integration tests and available to users who build custom policies
(the first thing to run when a new scheduler produces suspicious
numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..cpu import EnergyModel
from .engine import SimulationResult
from .job import JobStatus
from .trace import TraceEventKind

__all__ = ["ValidationReport", "validate_result"]

_TOL = 1e-6


@dataclass
class ValidationReport:
    """Outcome of a validation pass: empty ``violations`` means clean."""

    violations: List[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def _check(self, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self.violations.append(message)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return f"OK ({self.checks_run} checks)"
        return f"{len(self.violations)} violations:\n" + "\n".join(
            f"  - {v}" for v in self.violations
        )


def validate_result(result: SimulationResult, model: EnergyModel) -> ValidationReport:
    """Audit ``result`` (requires a run with ``record_trace=True``)."""
    report = ValidationReport()
    trace = result.trace
    if trace is None:
        report._check(False, "no execution trace recorded (record_trace=False)")
        return report

    # ------------------------------------------------------------------
    # Timeline: segments tile [0, horizon] exactly once.
    # ------------------------------------------------------------------
    report._check(trace.is_contiguous(), "trace segments have gaps or overlaps")
    if trace.segments:
        report._check(
            abs(trace.segments[0].start) <= _TOL,
            f"trace starts at {trace.segments[0].start}, expected 0",
        )
        report._check(
            abs(trace.segments[-1].end - result.horizon) <= _TOL,
            f"trace ends at {trace.segments[-1].end}, expected {result.horizon}",
        )

    # ------------------------------------------------------------------
    # Serial execution: one job at a time (guaranteed by construction of
    # Segment, but overlapping same-instant segments would break it).
    # ------------------------------------------------------------------
    for a, b in zip(trace.segments, trace.segments[1:]):
        report._check(
            b.start >= a.end - _TOL,
            f"overlapping segments at {a.end} / {b.start}",
        )

    # ------------------------------------------------------------------
    # Per-job execution windows and cycle conservation.
    # ------------------------------------------------------------------
    by_key = {j.key: j for j in result.jobs}
    for key, job in by_key.items():
        executed = trace.executed_cycles(key)
        report._check(
            abs(executed - job.executed) <= _TOL * max(1.0, job.executed),
            f"{key}: trace cycles {executed} != job.executed {job.executed}",
        )
        for seg in trace.busy_segments():
            if seg.job_key != key:
                continue
            report._check(
                seg.start >= job.release - _TOL,
                f"{key} executed at {seg.start} before its release {job.release}",
            )
        if job.status is JobStatus.COMPLETED:
            report._check(
                abs(job.executed - job.demand) <= _TOL * max(1.0, job.demand),
                f"{key} completed with {job.executed} of {job.demand} cycles",
            )
            report._check(
                job.completion_time is not None
                and abs(job.accrued_utility - job.utility_at(job.completion_time))
                <= _TOL,
                f"{key} utility {job.accrued_utility} inconsistent with completion",
            )
        elif job.status in (JobStatus.ABORTED, JobStatus.EXPIRED):
            report._check(
                job.accrued_utility == 0.0,
                f"{key} {job.status.value} but accrued {job.accrued_utility}",
            )

    # ------------------------------------------------------------------
    # Events consistent with final statuses.
    # ------------------------------------------------------------------
    completions = {e.job_key for e in trace.events_of(TraceEventKind.COMPLETE)}
    for key, job in by_key.items():
        if job.status is JobStatus.COMPLETED:
            report._check(key in completions, f"{key} completed without a COMPLETE event")
        else:
            report._check(
                key not in completions,
                f"{key} has a COMPLETE event but status {job.status.value}",
            )

    # ------------------------------------------------------------------
    # Energy: independent integration over segments.
    # ------------------------------------------------------------------
    seg_energy = sum(
        s.cycles * model.energy_per_cycle(s.frequency) for s in trace.busy_segments()
    )
    busy_energy = result.processor_stats.energy
    report._check(
        abs(seg_energy - busy_energy) <= _TOL * max(1.0, busy_energy),
        f"segment energy {seg_energy} != processor busy energy {busy_energy}",
    )

    # ------------------------------------------------------------------
    # Metrics re-derivation.
    # ------------------------------------------------------------------
    accrued = sum(j.accrued_utility for j in result.jobs)
    report._check(
        abs(accrued - result.metrics.accrued_utility) <= _TOL * max(1.0, accrued),
        "metrics accrued utility does not match the job population",
    )
    counts = {
        "completed": sum(1 for j in result.jobs if j.status is JobStatus.COMPLETED),
        "aborted": sum(1 for j in result.jobs if j.status is JobStatus.ABORTED),
        "expired": sum(1 for j in result.jobs if j.status is JobStatus.EXPIRED),
    }
    report._check(counts["completed"] == result.metrics.completed, "completed count mismatch")
    report._check(counts["aborted"] == result.metrics.aborted, "aborted count mismatch")
    report._check(counts["expired"] == result.metrics.expired, "expired count mismatch")

    return report
