"""Clock abstraction: simulated vs wall-clock time advance.

The :class:`~repro.sim.engine.Engine` is a discrete-event simulator —
between scheduling events nothing observable happens, so the default
(virtual) clock jumps straight to the next event instant.  The service
runtime (:mod:`repro.svc`) drives the *same* engine loop against real
time: a :class:`WallClock` sleeps until each event instant actually
arrives (arrivals, predicted completions, and TUF termination times —
the deadline timers), then lets the engine apply exactly the state
change it would have applied in simulation.

Contract
--------
``wait_until(t)`` blocks until clock time reaches ``t`` and returns the
*lag* — how far past ``t`` the clock was when the wait ended.  A virtual
clock never waits (lag 0 by construction); a wall clock accumulates the
per-wait lag into :class:`ClockDrift`, the drift accounting the service
reports.  The engine only consults the clock when one is attached and
``clock.virtual`` is false, so the simulation path executes zero new
floating-point operations — ``clock=None`` (the default) and
``clock="sim"`` are bit-identical to the pre-clock engine, which the
golden-trace suite pins.
"""

from __future__ import annotations

import time as _time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Union

__all__ = ["Clock", "ClockDrift", "SimClock", "WallClock", "FakeClock", "as_clock"]


@dataclass
class ClockDrift:
    """Aggregate lag accounting over a clock's waits.

    Lag is measured in *clock* seconds (the engine's time domain): how
    far past the requested instant the clock had already advanced when
    ``wait_until`` returned.  A discrete-event run has zero everywhere;
    a wall-clock run accumulates scheduler latency, sleep quantisation
    and host preemption here.
    """

    waits: int = 0
    #: Waits that returned at or before the requested instant.
    punctual: int = 0
    total_lag: float = 0.0
    max_lag: float = 0.0
    #: Most recent lag (gauge for live dashboards).
    last_lag: float = 0.0

    def record(self, lag: float) -> float:
        lag = max(0.0, lag)
        self.waits += 1
        if lag <= 0.0:
            self.punctual += 1
        self.total_lag += lag
        if lag > self.max_lag:
            self.max_lag = lag
        self.last_lag = lag
        return lag

    @property
    def mean_lag(self) -> float:
        return self.total_lag / self.waits if self.waits else 0.0

    def summary(self) -> dict:
        """JSON-friendly snapshot (service ``/stats``, load reports)."""
        return {
            "waits": self.waits,
            "punctual": self.punctual,
            "mean_lag_s": self.mean_lag,
            "max_lag_s": self.max_lag,
            "total_lag_s": self.total_lag,
        }


class Clock(ABC):
    """Time source the engine advances against.

    ``virtual`` clocks jump (discrete-event semantics); non-virtual
    clocks are *waited on* — the engine calls :meth:`wait_until` with
    every upcoming event instant, including TUF termination times, so
    expiry processing happens when the deadline actually passes.
    """

    #: Virtual clocks never block; the engine skips ``wait_until``.
    virtual: bool = True

    def __init__(self) -> None:
        self.drift = ClockDrift()

    def start(self) -> None:
        """Anchor the clock at time zero (idempotent for virtual clocks)."""

    @abstractmethod
    def now(self) -> float:
        """Current clock time in seconds since :meth:`start`."""

    @abstractmethod
    def wait_until(self, t: float) -> float:
        """Block until clock time reaches ``t``; return the lag."""

    def wall_remaining(self, t: float) -> float:
        """Wall seconds until clock time ``t`` (negative when past).

        Cooperative waiters (the asyncio service) sleep this long on
        the event loop instead of calling the blocking
        :meth:`wait_until`.  Identity mapping by default; rate-scaled
        clocks override it.
        """
        return t - self.now()

    def note_lag(self, t: float) -> float:
        """Record drift against target ``t`` without sleeping."""
        return self.drift.record(self.now() - t)


class SimClock(Clock):
    """The discrete-event clock: jumps to each requested instant.

    Attaching one is behaviourally identical to attaching no clock at
    all (the engine never waits on a virtual clock); it exists so
    ``clock="sim"`` is an explicit, inspectable choice and so code
    written against the :class:`Clock` interface can run in simulation.
    """

    virtual = True

    def __init__(self) -> None:
        super().__init__()
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def wait_until(self, t: float) -> float:
        if t > self._now:
            self._now = t
        return self.drift.record(0.0)


class WallClock(Clock):
    """Monotonic wall-clock time, optionally rate-scaled.

    ``rate`` maps wall seconds to clock seconds: at ``rate=60`` one wall
    second advances the clock by sixty — the load-replay harness uses
    this to compress long arrival traces into short wall-clock runs
    while preserving every relative deadline.  ``now()`` is anchored at
    :meth:`start` via :func:`time.monotonic`, so host clock adjustments
    never move it backwards.

    Waits sleep in bounded chunks (``max_sleep`` wall seconds) so a
    long idle period stays interruptible by ``KeyboardInterrupt``
    without a signal-handling dependency.
    """

    virtual = False

    def __init__(self, rate: float = 1.0, max_sleep: float = 0.5):
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        super().__init__()
        self.rate = float(rate)
        self.max_sleep = float(max_sleep)
        self._anchor: Optional[float] = None

    def start(self) -> None:
        if self._anchor is None:
            self._anchor = _time.monotonic()

    def now(self) -> float:
        if self._anchor is None:
            return 0.0
        return (_time.monotonic() - self._anchor) * self.rate

    def wall_remaining(self, t: float) -> float:
        """Wall seconds until clock time ``t`` (negative when past)."""
        return (t - self.now()) / self.rate

    def wait_until(self, t: float) -> float:
        self.start()
        while True:
            remaining = self.wall_remaining(t)
            if remaining <= 0.0:
                break
            _time.sleep(min(remaining, self.max_sleep))
        return self.drift.record(self.now() - t)

class FakeClock(Clock):
    """Deterministic non-virtual clock for driver tests.

    Behaves like a wall clock that is always punctual (or late by a
    scripted amount), without ever sleeping: ``wait_until`` records the
    requested instant in :attr:`waits` and advances ``now`` to it, plus
    the next scripted lag if any.  Tests assert on the wait sequence —
    event ordering, deadline-timer instants — and on how the engine
    responds to injected lateness.
    """

    virtual = False

    def __init__(self, lags: Optional[List[float]] = None):
        super().__init__()
        self._now = 0.0
        #: Every instant the engine waited for, in call order.
        self.waits: List[float] = []
        self._lags = list(lags) if lags else []

    def now(self) -> float:
        return self._now

    def wait_until(self, t: float) -> float:
        self.waits.append(t)
        lag = self._lags.pop(0) if self._lags else 0.0
        self._now = max(self._now, t) + lag
        return self.drift.record(self._now - t)


def as_clock(spec: Union[None, str, Clock]) -> Optional[Clock]:
    """Resolve a clock argument: ``None``, ``"sim"``, ``"wall"``, or an
    instance.  ``None`` stays ``None`` (the engine's zero-overhead
    default path); ``"sim"`` returns a :class:`SimClock` (same
    behaviour, explicit object)."""
    if spec is None or isinstance(spec, Clock):
        return spec
    if spec == "sim":
        return SimClock()
    if spec == "wall":
        return WallClock()
    raise ValueError(f"unknown clock {spec!r} (expected 'sim', 'wall', or a Clock)")
