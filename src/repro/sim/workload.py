"""Materialised workloads.

A :class:`WorkloadTrace` fixes every random choice of a simulation run —
arrival times and true per-job cycle demands — so different schedulers
can be compared on the *identical* workload (the paper's normalised
comparisons require this: the "no-DVS" EDF run and the EUA* run must see
the same jobs).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..arrivals import is_uam_compliant
from .task import Task, TaskSet

__all__ = ["JobSpec", "WorkloadTrace", "materialize"]


@dataclass(frozen=True)
class JobSpec:
    """One planned job release: task, invocation index, time, true demand."""

    task: Task
    index: int
    release: float
    demand: float


class WorkloadTrace:
    """A fixed, replayable sequence of job releases over a horizon."""

    def __init__(self, taskset: TaskSet, horizon: float, jobs: Sequence[JobSpec]):
        if horizon <= 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon!r}")
        self.taskset = taskset
        self.horizon = float(horizon)
        self._jobs: List[JobSpec] = sorted(jobs, key=lambda j: (j.release, j.task.name, j.index))

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._jobs)

    @property
    def jobs(self) -> List[JobSpec]:
        return list(self._jobs)

    def jobs_of(self, task: Task) -> List[JobSpec]:
        return [j for j in self._jobs if j.task is task]

    @property
    def total_demand(self) -> float:
        """Sum of true demands (Mcycles) over the horizon."""
        return sum(j.demand for j in self._jobs)

    @property
    def max_possible_utility(self) -> float:
        """Σ U_max over all released jobs — the utility denominator."""
        return sum(j.task.tuf.max_utility for j in self._jobs)

    def demand_rate(self) -> float:
        """Average true demand per second (Mcycles/s = MHz equivalent)."""
        return self.total_demand / self.horizon

    def verify_uam(self) -> None:
        """Assert every task's releases satisfy its UAM envelope."""
        for task in self.taskset:
            times = [j.release for j in self.jobs_of(task)]
            if not is_uam_compliant(times, task.uam):
                raise ValueError(f"trace violates UAM envelope of task {task.name!r}")


def materialize(
    taskset: TaskSet,
    horizon: float,
    rng: Optional[np.random.Generator] = None,
    verify: bool = True,
    include_boundary: bool = False,
) -> WorkloadTrace:
    """Draw arrivals and demands for every task over ``[0, horizon)``.

    Each task consumes an independent child generator spawned from
    ``rng`` so adding a task never perturbs the draws of the others
    (variance reduction across experimental arms).

    By default jobs whose TUF window would outlive the horizon are not
    released (``include_boundary=False``): such jobs are censored — no
    scheduler can be charged for them fairly, and DVS policies that
    legitimately defer work would otherwise look like they lost utility
    at the simulation edge.

    Omitting ``rng`` draws from an unseeded generator — fine at the
    REPL, but the trace is then unreproducible, so it warns (see
    :class:`~repro.arrivals.UnseededRNGWarning`).  Every campaign /
    experiment path seeds explicitly.
    """
    if rng is None:
        from ..arrivals import UnseededRNGWarning

        warnings.warn(
            "materialize() called without rng: drawing from an unseeded "
            "generator; the workload trace will not be reproducible",
            UnseededRNGWarning,
            stacklevel=2,
        )
        rng = np.random.default_rng()
    specs: List[JobSpec] = []
    children = rng.spawn(len(taskset))
    for task, child in zip(taskset, children):
        times = task.arrivals.generate(horizon, child)
        if not include_boundary:
            cutoff = horizon - task.tuf.termination
            times = [t for t in times if t <= cutoff]
        if times:
            demands = task.demand.sample(child, size=len(times))
            for idx, (t, y) in enumerate(zip(times, np.atleast_1d(demands))):
                specs.append(JobSpec(task=task, index=idx, release=float(t), demand=float(y)))
    trace = WorkloadTrace(taskset, horizon, specs)
    if verify:
        trace.verify_uam()
    return trace
