"""Scheduler interface.

A scheduler is invoked by the engine at every scheduling event — job
arrival, job completion, and expiration of a time constraint (paper
Section 3.2) — and returns a :class:`Decision`: which pending job to
execute, at which frequency, and which pending jobs to abort.

Schedulers see only the statistical budget (the Chebyshev allocation
``c_i`` and executed cycles), never a job's true remaining demand.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu import EnergyModel, FrequencyScale
from .job import Job
from .task import Task, TaskSet

__all__ = [
    "Scheduler",
    "SchedulerView",
    "Decision",
    "SchedulingEvent",
    "ArrivalWindow",
    "pending_of_reference",
]


class ArrivalWindow:
    """Immutable window over an append-only per-task release log.

    The engine keeps one monotonically growing list of release times per
    task and trims the trailing UAM window by advancing a head index —
    entries are never deleted.  A snapshot therefore only needs the
    ``(log, start, stop)`` triple: it stays valid (and cheap — no copy)
    for the lifetime of the view that captured it, preserving the
    snapshot-stability contract the old per-decision list copies gave.

    Supports the small sequence surface the schedulers use: ``len``,
    indexing (including negative indices), iteration, and equality
    against any sequence.
    """

    __slots__ = ("_log", "_start", "_stop")

    def __init__(self, log: Sequence[float], start: int = 0, stop: Optional[int] = None):
        self._log = log
        self._start = start
        self._stop = len(log) if stop is None else stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._log[self._start : self._stop])[index]
        n = self._stop - self._start
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("ArrivalWindow index out of range")
        return self._log[self._start + index]

    def __iter__(self):
        return iter(self._log[self._start : self._stop])

    def __eq__(self, other) -> bool:
        try:
            return list(self) == list(other)
        except TypeError:
            return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrivalWindow({list(self)!r})"


#: Sort key shared by the cached and reference pending-job orderings.
def _pending_key(job: Job) -> Tuple[float, float, int]:
    return (job.critical_time, job.release, job.index)


def pending_of_reference(ready: Sequence[Job], task: Task) -> List[Job]:
    """The original one-shot scan: filter ``ready`` by task, sort by
    absolute critical time.  Retained as the equivalence oracle for the
    per-view pending cache (``tests/core/test_kernel_equivalence.py``)."""
    jobs = [j for j in ready if j.task is task]
    jobs.sort(key=_pending_key)
    return jobs


class SchedulingEvent(enum.Enum):
    """What triggered the scheduler invocation."""

    START = "start"
    ARRIVAL = "arrival"
    COMPLETION = "completion"
    EXPIRY = "expiry"
    ABORT = "abort"


@dataclass(frozen=True)
class Decision:
    """Outcome of one scheduler invocation.

    ``job is None`` means idle until the next event.  ``frequency`` must
    be a level of the platform's frequency scale (ignored when idling).
    ``aborts`` are pending jobs the scheduler drops (EUA* line 10).
    """

    job: Optional[Job]
    frequency: float
    aborts: Tuple[Job, ...] = ()


class SchedulerView:
    """Snapshot of scheduler-visible state at a decision point."""

    __slots__ = (
        "time",
        "ready",
        "taskset",
        "scale",
        "energy_model",
        "event",
        "_arrivals_in_window",
        "energy_consumed",
        "_pending",
        "dvs",
    )

    def __init__(
        self,
        time: float,
        ready: Sequence[Job],
        taskset: TaskSet,
        scale: FrequencyScale,
        energy_model: EnergyModel,
        event: SchedulingEvent,
        arrivals_in_window: Dict[str, List[float]],
        energy_consumed: float = 0.0,
        dvs: bool = True,
    ):
        #: Current simulation time ``t_cur``.
        self.time = time
        #: Pending jobs (may include expired jobs for no-abort policies).
        #: **Snapshot contract:** this list is copied at construction,
        #: never aliased to the engine's live ready list — observers and
        #: checkers may retain a view across the engine's abort pass and
        #: still see the membership that existed at decision time.  (The
        #: :class:`Job` objects themselves are shared and mutable; only
        #: the membership is frozen.)
        self.ready: List[Job] = list(ready)
        self.taskset = taskset
        self.scale = scale
        self.energy_model = energy_model
        #: The triggering event kind.
        self.event = event
        #: Per task name: release *times* within the trailing UAM window.
        self._arrivals_in_window = arrivals_in_window
        #: Total system energy consumed so far (busy + idle + switches).
        #: Used by energy-budget-aware extensions (repro.ext).
        self.energy_consumed = energy_consumed
        #: Whether a DVS frequency decision is wanted alongside the job
        #: pick.  The global multicore engine sets this ``False`` on the
        #: shared top-m selection views: a frequency computed over the
        #: whole m-core demand is meaningless for any single core (it
        #: pins to ``f_max``), so the engine asks for per-core
        #: frequencies separately via :meth:`Scheduler.decide_frequency`
        #: over per-core residual views.
        self.dvs = dvs
        #: Lazily built ``id(task) -> sorted pending jobs`` cache.  The
        #: view's ready membership is frozen at construction, so one
        #: grouping pass serves every ``pending_of``-family query of the
        #: decision point instead of a scan-and-sort per call.
        self._pending: Optional[Dict[int, List[Job]]] = None

    # ------------------------------------------------------------------
    def _pending_map(self) -> Dict[int, List[Job]]:
        cache = self._pending
        if cache is None:
            cache = {}
            for job in self.ready:
                key = id(job.task)
                group = cache.get(key)
                if group is None:
                    cache[key] = [job]
                else:
                    group.append(job)
            for group in cache.values():
                if len(group) > 1:
                    group.sort(key=_pending_key)
            self._pending = cache
        return cache

    def pending_of(self, task: Task) -> List[Job]:
        """Pending jobs of ``task`` ordered by absolute critical time.

        Returns a fresh list (callers may mutate it); ordering is
        bit-identical to :func:`pending_of_reference`, which pins the
        cached grouping against the original scan-and-sort.
        """
        group = self._pending_map().get(id(task))
        return list(group) if group else []

    def head_job_of(self, task: Task) -> Optional[Job]:
        """Earliest-critical-time pending job of ``task``."""
        group = self._pending_map().get(id(task))
        return group[0] if group else None

    def arrivals_in_window(self, task: Task) -> int:
        """Releases of ``task`` within its trailing UAM window ``P_i``."""
        return len(self._arrivals_in_window.get(task.name, ()))

    def recent_arrival_times(self, task: Task) -> List[float]:
        """Release times of ``task`` within its trailing UAM window."""
        return list(self._arrivals_in_window.get(task.name, ()))

    def next_admissible_arrival(self, task: Task) -> float:
        """Earliest instant the UAM envelope admits another release.

        With fewer than ``a`` releases in the trailing window a new job
        may arrive *now*; otherwise not before the a-th most recent
        release plus ``P``.
        """
        recent = self._arrivals_in_window.get(task.name, ())
        a = task.uam.max_arrivals
        if len(recent) < a:
            return self.time
        return max(self.time, recent[-a] + task.uam.window)

    def remaining_window_cycles(self, task: Task) -> float:
        """``C_i^r`` — remaining budgeted cycles of the current window.

        Paper Section 3.3: EUA* "keeps track of the remaining
        computation cycles ``C_i^r``" per UAM window, considering at
        most ``a_i`` instances even when leftover jobs from the
        previous window inflate the actual count ``a\'_i``.  Two parts:

        * **pending work** — ``(min(a_i, a\'_i) − 1)·c_i + c^r`` with
          ``c^r`` the earliest pending job\'s remaining budget;
        * **arrival hedge** — the UAM envelope still admits
          ``a_i − (arrivals seen in the trailing window)`` further
          releases *at any instant*; each must be budgeted ``c_i``.
          This is the slack-estimation term the paper\'s Figure 3
          discussion turns on: for periodic tasks (``⟨1, P⟩``) the
          trailing window always holds exactly one arrival, so the
          hedge vanishes and deferral is maximally aggressive, while
          bursty specs (``a > 1``) with unspent arrival budget force
          conservative (higher-frequency) operating points.

        The sum is capped at the window total ``C_i = a_i·c_i``.
        """
        a = task.uam.max_arrivals
        c = task.allocation
        pending = self._pending_map().get(id(task), ())
        if pending:
            head_remaining = pending[0].remaining_budget
            count = min(a, len(pending))
            work = (count - 1) * c + head_remaining
        else:
            work = 0.0
        unseen = max(0, a - self.arrivals_in_window(task))
        return min(work + unseen * c, a * c)

    def without(self, jobs: Sequence[Job]) -> "SchedulerView":
        """A copy of the view with ``jobs`` removed from the ready set.

        Used by policies that decide to abort jobs and then reason about
        the remaining workload (e.g. EUA*'s DVS step must not budget
        cycles for jobs it just dropped).
        """
        dropped = set(id(j) for j in jobs)
        return SchedulerView(
            time=self.time,
            ready=[j for j in self.ready if id(j) not in dropped],
            taskset=self.taskset,
            scale=self.scale,
            energy_model=self.energy_model,
            event=self.event,
            arrivals_in_window=self._arrivals_in_window,
            energy_consumed=self.energy_consumed,
            dvs=self.dvs,
        )

    def earliest_critical_time(self, task: Task) -> float:
        """``D_i^a`` — the earliest pending invocation's absolute critical
        time, or ``t + D_i`` for a task with nothing pending (a new UAM
        window may open now)."""
        head = self.head_job_of(task)
        if head is not None:
            return head.critical_time
        return self.time + task.critical_time


class Scheduler(ABC):
    """Base class for all scheduling policies.

    Attributes
    ----------
    name:
        Display name used in reports and the registry.
    abort_expired:
        Whether the engine should abort a pending job when its
        termination time passes (the exception-handler semantics of
        Section 2.2).  ``False`` reproduces the `-NA` (no-abort)
        comparison policies, which keep executing stale jobs.
    observer:
        Optional :class:`repro.obs.Observer` the policy emits decision
        records and timings to.  ``None`` (the default) disables all
        instrumentation; the engine binds its own observer here before
        :meth:`setup` so schedulers and engine write to the same sinks.
    """

    name: str = "scheduler"
    abort_expired: bool = True
    observer = None  # type: ignore[assignment]  # Optional[repro.obs.Observer]

    def bind_observer(self, observer) -> None:
        """Attach (or with ``None``, detach) an observability sink."""
        self.observer = observer

    def setup(self, taskset: TaskSet, scale: FrequencyScale, energy_model: EnergyModel) -> None:
        """One-time initialisation before the simulation starts.

        Corresponds to the paper's ``offlineComputing()`` hook; the
        default does nothing.
        """

    @abstractmethod
    def decide(self, view: SchedulerView) -> Decision:
        """Pick the job to execute and the operating frequency."""

    def decide_frequency(self, view: SchedulerView, job: Job) -> Optional[float]:
        """Frequency for running ``job`` against ``view``'s demand.

        Invoked by the global multicore engine once per assigned core
        with a *per-core residual view* (the core's own pick plus its
        deterministic share of the background demand) after the top-m
        selection round ran with ``view.dvs = False``.  Returning
        ``None`` (the default) tells the engine to keep the frequency
        of the selection-round :class:`Decision` — correct for
        fixed-frequency policies like EDF.
        """
        return None

    def on_completion(self, job: Job, time: float) -> None:
        """Engine callback after a job completes.

        ``job.executed`` now holds the *actual* cycles consumed —
        cycle-conserving policies use this to reclaim over-provisioned
        budget.  Default: ignore.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
