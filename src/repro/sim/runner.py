"""High-level simulation entry points.

:func:`simulate` runs one scheduler over a workload; :func:`compare`
runs several schedulers over the *same* materialised workload, which is
how the paper's normalised utility/energy figures are produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Union

import numpy as np

from ..cpu import EnergyModel, FrequencyScale, Processor
from ..demand import DemandProfiler
from ..obs import Observer
from .clock import Clock
from .scheduler import Scheduler
from .engine import Engine, SimulationResult
from .task import TaskSet
from .workload import WorkloadTrace, materialize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports sim)
    from ..check import InvariantChecker
    from ..runtime import AdaptiveRuntime

__all__ = ["Platform", "simulate", "compare"]


class Platform:
    """A CPU configuration: frequency ladder + energy model + overheads.

    Factory for fresh :class:`~repro.cpu.Processor` instances so every
    run starts from clean accounting.
    """

    def __init__(
        self,
        scale: Optional[FrequencyScale] = None,
        energy_model: Optional[EnergyModel] = None,
        idle_power: float = 0.0,
        switch_time: float = 0.0,
        switch_energy: float = 0.0,
    ):
        self.scale = scale if scale is not None else FrequencyScale.powernow_k6()
        self.energy_model = energy_model if energy_model is not None else EnergyModel.e1()
        self.idle_power = idle_power
        self.switch_time = switch_time
        self.switch_energy = switch_energy

    def processor(self) -> Processor:
        return Processor(
            self.scale,
            self.energy_model,
            idle_power=self.idle_power,
            switch_time=self.switch_time,
            switch_energy=self.switch_energy,
        )

    @classmethod
    def powernow_k6(cls, energy_model: Optional[EnergyModel] = None) -> "Platform":
        """The paper's simulation platform (AMD K6-2+ PowerNow!)."""
        return cls(FrequencyScale.powernow_k6(), energy_model)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform(scale={self.scale!r}, energy_model={self.energy_model})"


def _as_workload(
    workload: Union[WorkloadTrace, TaskSet],
    horizon: Optional[float],
    rng: Optional[np.random.Generator],
    seed: Optional[int],
) -> WorkloadTrace:
    if isinstance(workload, WorkloadTrace):
        return workload
    if horizon is None:
        raise ValueError("horizon is required when passing a TaskSet")
    if rng is None:
        rng = np.random.default_rng(seed)
    return materialize(workload, horizon, rng)


def simulate(
    workload: Union[WorkloadTrace, TaskSet],
    scheduler: Scheduler,
    platform: Optional[Platform] = None,
    horizon: Optional[float] = None,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    record_trace: bool = False,
    profiler: Optional[DemandProfiler] = None,
    observer: Optional[Observer] = None,
    runtime: Optional["AdaptiveRuntime"] = None,
    checker: Optional["InvariantChecker"] = None,
    clock: Union[None, str, Clock] = None,
) -> SimulationResult:
    """Run ``scheduler`` over ``workload`` and return the result.

    ``workload`` may be a pre-materialised :class:`WorkloadTrace`
    (reproducible, comparable across schedulers) or a :class:`TaskSet`
    plus ``horizon`` (materialised here from ``rng``/``seed``).
    ``observer`` attaches an observability sink (event log, metrics,
    profiling) to both the engine and the scheduler; ``None`` keeps the
    run instrumentation-free.  ``runtime`` attaches an
    :class:`~repro.runtime.AdaptiveRuntime` (online re-allocation, UAM
    enforcement, admission control); it is single-use — pass a fresh
    instance per run.  ``checker`` attaches an observe-only
    :class:`~repro.check.InvariantChecker`; like ``runtime`` it is
    single-use per run.  ``clock`` selects the time source:
    ``None``/``"sim"`` run discrete-event (bit-identical), ``"wall"``
    or a :class:`~repro.sim.clock.Clock` instance makes the engine wait
    for each event instant in real time (the service driver).
    """
    platform = platform if platform is not None else Platform()
    trace = _as_workload(workload, horizon, rng, seed)
    engine = Engine(
        trace,
        scheduler,
        platform.processor(),
        record_trace=record_trace,
        profiler=profiler,
        observer=observer,
        runtime=runtime,
        checker=checker,
        clock=clock,
    )
    return engine.run()


def _simulate_unit(args) -> SimulationResult:
    """One ``compare`` arm (top-level so process pools can pickle it)."""
    trace, scheduler, platform, record_trace = args
    return simulate(trace, scheduler, platform, record_trace=record_trace)


def compare(
    schedulers: Sequence[Scheduler],
    workload: Union[WorkloadTrace, TaskSet],
    platform: Optional[Platform] = None,
    horizon: Optional[float] = None,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    record_trace: bool = False,
    workers: int = 1,
) -> Dict[str, SimulationResult]:
    """Run every scheduler over the identical materialised workload.

    Returns ``{scheduler.name: result}``.  This is the primitive behind
    all the paper's normalised comparisons — utility and energy of each
    policy divided by the EDF-at-``f_max`` run on the same jobs.

    ``workers > 1`` runs the scheduler arms on a process pool (each arm
    is an independent simulation over the pickled trace); results are
    merged in scheduler order, so the returned mapping is identical to
    the serial one — simulations are deterministic, and the per-arm
    float streams never interact.  Schedulers must be picklable for the
    parallel path (every registry policy is).
    """
    platform = platform if platform is not None else Platform()
    trace = _as_workload(workload, horizon, rng, seed)
    names = [s.name for s in schedulers]
    for name in names:
        if names.count(name) > 1:
            raise ValueError(f"duplicate scheduler name {name!r}")
    if workers > 1:
        # Local import: repro.experiments.parallel imports this module.
        from ..experiments.parallel import run_sweep

        outs = run_sweep(
            _simulate_unit,
            [(trace, s, platform, record_trace) for s in schedulers],
            max_workers=workers,
        )
        return dict(zip(names, outs))
    results: Dict[str, SimulationResult] = {}
    for scheduler in schedulers:
        results[scheduler.name] = simulate(
            trace, scheduler, platform, record_trace=record_trace
        )
    return results
