"""Discrete-event simulation engine.

A preemptive uniprocessor with DVS, driven by any
:class:`~repro.sched.base.Scheduler`.  The engine owns ground truth
(true job demands); the scheduler sees only budgets and executed cycles.

Event model
-----------
The scheduler is (re-)invoked at exactly the paper's scheduling events:

* **arrival** of a job,
* **completion** of a job,
* **expiration of a time constraint** (a TUF termination time).

Between events the chosen job runs at the chosen frequency.  The engine
advances time to the earliest of: next arrival, next relevant
termination, predicted completion of the running job, or the horizon —
then applies state changes and re-invokes the scheduler.

Abortion semantics (paper Section 2.2): when a pending job's
termination time is reached, an exception is raised which aborts the job
(status ``EXPIRED``).  Policies with ``abort_expired = False`` (the
`-NA` baselines) suppress this, so stale jobs keep executing and accrue
zero utility — the domino-effect regime of the evaluation.  Exception
handlers are modelled as zero-cost (the paper does not charge them).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..cpu import Processor, ProcessorStats
from ..demand import DemandProfiler
from ..obs import EventKind, Observer
from .clock import Clock, as_clock
from .scheduler import ArrivalWindow, Scheduler, SchedulerView, SchedulingEvent
from .job import Job, JobStatus
from .metrics import Metrics
from .task import TaskSet
from .trace import Trace, TraceEventKind
from .workload import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports sim)
    from ..check import InvariantChecker
    from ..runtime import AdaptiveRuntime

__all__ = ["Engine", "SimulationResult", "SimulationError"]

#: Cycle tolerance: a job with fewer remaining Mcycles is complete.
EPS_CYCLES = 1e-9
#: Time tolerance for event coincidence.
EPS_TIME = 1e-12


class SimulationError(RuntimeError):
    """Raised when the engine detects an inconsistent run."""


class _ArrivalLog:
    """Append-only release log of one task with a trailing-window head.

    The UAM window is trimmed by advancing ``head`` — entries are never
    removed, so an :class:`~repro.sim.scheduler.ArrivalWindow` snapshot
    handed to a :class:`SchedulerView` stays valid after the engine
    moves on.  ``snap`` caches the current window's snapshot; it is
    invalidated on append and on trim so unchanged windows are shared
    between consecutive decision points instead of re-copied.
    """

    __slots__ = ("data", "head", "snap")

    def __init__(self) -> None:
        self.data: List[float] = []
        self.head = 0
        self.snap: Optional[ArrivalWindow] = None

    def append(self, release: float) -> None:
        self.data.append(release)
        self.snap = None

    def trim(self, cutoff: float) -> None:
        """Advance ``head`` past entries at or before ``cutoff``."""
        data = self.data
        head = self.head
        n = len(data)
        while head < n and data[head] <= cutoff:
            head += 1
        if head != self.head:
            self.head = head
            self.snap = None

    def window(self) -> ArrivalWindow:
        snap = self.snap
        if snap is None:
            snap = self.snap = ArrivalWindow(self.data, self.head, len(self.data))
        return snap


@dataclass
class SimulationResult:
    """Everything a run produces."""

    scheduler_name: str
    metrics: Metrics
    processor_stats: ProcessorStats
    jobs: List[Job]
    horizon: float
    trace: Optional[Trace] = None

    @property
    def normalized_utility(self) -> float:
        return self.metrics.normalized_utility

    @property
    def energy(self) -> float:
        return self.metrics.energy


class Engine:
    """One simulation run binding a workload, a scheduler and a CPU."""

    def __init__(
        self,
        workload: WorkloadTrace,
        scheduler: Scheduler,
        processor: Processor,
        record_trace: bool = False,
        profiler: Optional[DemandProfiler] = None,
        observer: Optional[Observer] = None,
        runtime: Optional["AdaptiveRuntime"] = None,
        checker: Optional["InvariantChecker"] = None,
        clock: Union[None, str, Clock] = None,
    ):
        self.workload = workload
        self.scheduler = scheduler
        self.processor = processor
        self.record_trace = bool(record_trace)
        self.profiler = profiler
        self.observer = observer
        self.runtime = runtime
        self.checker = checker
        #: Time source.  ``None``/``"sim"`` keep discrete-event jumps;
        #: a non-virtual clock (``"wall"``) makes the loop *wait* for
        #: each event instant before applying it (see repro.sim.clock).
        self.clock = as_clock(clock)
        self.trace: Optional[Trace] = Trace() if record_trace else None

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation.

        With an adaptive runtime attached the main loop is wrapped in
        ``try/finally`` so ``runtime.finalize()`` always restores the
        task allocations the runtime may have mutated — even when the
        run raises — keeping task sets safe to share across arms.
        """
        ck = self.checker
        if ck is not None:
            ck.bind(self.workload.taskset, self.processor, self.scheduler, self.observer)
        rt = self.runtime
        if rt is None:
            result = self._run()
        else:
            rt.bind(
                self.workload.taskset,
                self.processor.scale,
                self.processor.model,
                self.scheduler,
                self.observer,
            )
            try:
                result = self._run()
            finally:
                rt.finalize()
        if ck is not None:
            ck.on_result(result)
        return result

    def _run(self) -> SimulationResult:
        """Span-tracing shim around the dispatch loop.

        With a tracer attached the whole run nests under one
        ``engine.run`` root span (so phase self-times tile the measured
        wall-clock); without one this is a tail call — the disabled
        path stays exactly the loop it always was.
        """
        obs = self.observer
        sp = obs.spans if obs is not None else None
        if sp is None:
            return self._run_loop()
        sp.enter("engine.run")
        try:
            return self._run_loop()
        finally:
            sp.exit()

    def _run_loop(self) -> SimulationResult:
        taskset: TaskSet = self.workload.taskset
        horizon = self.workload.horizon
        scheduler = self.scheduler
        cpu = self.processor

        # Observability: `obs is None` must stay the zero-cost default —
        # every instrumentation site below is guarded by one branch.
        obs = self.observer
        if obs is not None:
            scheduler.bind_observer(obs)
        profiling = obs is not None and obs.profiler is not None
        # Span tracing: `tracing` is hoisted exactly like `profiling`,
        # so a detached tracer costs one predictable branch per phase.
        sp = obs.spans if obs is not None else None
        tracing = sp is not None

        scheduler.setup(taskset, cpu.scale, cpu.model)

        jobs: List[Job] = [
            Job(spec.task, spec.index, spec.release, spec.demand) for spec in self.workload
        ]
        n_jobs = len(jobs)
        arrival_idx = 0
        #: Release instants in arrival order — jobs[k].release hoisted so
        #: the event-search loop reads a list slot, not a property.
        releases: List[float] = [job.release for job in jobs]
        ready: List[Job] = []
        recent_arrivals: Dict[str, _ArrivalLog] = {t.name: _ArrivalLog() for t in taskset}
        #: Snapshot recipe, hoisted once: (log, name, UAM window) per
        #: task, so each decision's trim-and-window pass reads locals
        #: instead of chasing ``recent_arrivals[task.name]`` and
        #: ``task.uam.window`` attribute chains.
        window_specs: List[Tuple[_ArrivalLog, str, float]] = [
            (recent_arrivals[task.name], task.name, task.uam.window) for task in taskset
        ]

        # Adaptive runtime (optional): deferred re-releases wait here,
        # ordered by their granted release instant (seq breaks ties —
        # jobs are not comparable).
        rt = self.runtime
        # Invariant checker (optional): observe-only hooks, same
        # zero-cost-when-detached contract as `obs` and `rt`.
        ck = self.checker
        # Real-time driver (optional): with a non-virtual clock attached
        # the loop waits for each event instant (arrival, predicted
        # completion, termination deadline) before applying it.  The
        # virtual path adds exactly one boolean branch per iteration —
        # no new float operations — so sim runs stay bit-identical.
        clk = self.clock
        realtime = clk is not None and not clk.virtual
        if clk is not None:
            clk.start()
        deferred_heap: List[Tuple[float, int, Job]] = []
        deferred_seq = 0

        t = 0.0
        event = SchedulingEvent.START
        #: Job executing in the most recent segment (preemption detection).
        last_running: Optional[Job] = None
        # Progress guard: every iteration must either advance time or
        # change the job population; bound the zero-progress streak.
        stall_guard = 0
        max_stall = 4 * n_jobs + 64

        while True:
            advanced = False

            # --- release arrivals due now -----------------------------
            # Deferred re-releases (runtime `defer` policy) and fresh
            # arrivals drain through the same gate; with no runtime the
            # heap stays empty and the gate is a straight admit.
            if tracing:
                sp.enter("engine.release")
            while True:
                if deferred_heap and deferred_heap[0][0] <= t + EPS_TIME:
                    job = heapq.heappop(deferred_heap)[2]
                    from_deferred = True
                elif arrival_idx < n_jobs and releases[arrival_idx] <= t + EPS_TIME:
                    job = jobs[arrival_idx]
                    arrival_idx += 1
                    from_deferred = False
                else:
                    break
                event = SchedulingEvent.ARRIVAL
                advanced = True
                if rt is not None:
                    verdict = rt.on_arrival(job, t, ready, deferred=from_deferred)
                    if verdict.action == "shed":
                        job.status = JobStatus.SHED
                        job.abort_time = t
                        if self.trace is not None:
                            self.trace.add_event(t, TraceEventKind.ABORT, job.key)
                        continue
                    if verdict.action == "defer":
                        job.release = verdict.release
                        heapq.heappush(deferred_heap, (job.release, deferred_seq, job))
                        deferred_seq += 1
                        continue
                    for victim in verdict.evictions:
                        victim.status = JobStatus.SHED
                        victim.abort_time = t
                        ready.remove(victim)
                        if self.trace is not None:
                            self.trace.add_event(t, TraceEventKind.ABORT, victim.key)
                ready.append(job)
                recent_arrivals[job.task.name].append(job.release)
                if ck is not None:
                    ck.on_release(job, t)
                if self.trace is not None:
                    self.trace.add_event(t, TraceEventKind.RELEASE, job.key)
                if obs is not None:
                    obs.emit(t, EventKind.RELEASE, job.key,
                             release=job.release, termination=job.termination)
                    obs.inc("jobs_released", task=job.task.name)

            if tracing:
                sp.exit()  # engine.release
                sp.enter("engine.expiry")

            # --- raise termination exceptions -------------------------
            if scheduler.abort_expired:
                t_eps = t + EPS_TIME
                expired: List[Job] = []
                for j in ready:
                    if j.termination <= t_eps and j.task.abortable:
                        expired.append(j)
                for job in expired:
                    job.status = JobStatus.EXPIRED
                    job.abort_time = t
                    ready.remove(job)
                    if self.trace is not None:
                        self.trace.add_event(t, TraceEventKind.EXPIRE, job.key)
                    if obs is not None:
                        obs.emit(t, EventKind.EXPIRE, job.key,
                                 executed=job.executed, demand=job.demand)
                        obs.inc("jobs_expired", task=job.task.name)
                    event = SchedulingEvent.EXPIRY
                    advanced = True

            if tracing:
                sp.exit()  # engine.expiry

            if t >= horizon - EPS_TIME:
                break

            # --- consult the scheduler ---------------------------------
            if tracing:
                sp.enter("engine.snapshot")
            view = self._build_view(t, ready, taskset, window_specs, event)
            if obs is not None:
                obs.set_gauge("queue_depth", len(ready))
                obs.observe("queue_depth_samples", len(ready))
                obs.inc("scheduler_invocations", event=event.value)
            if tracing:
                sp.exit()  # engine.snapshot
                sp.enter("engine.decide")
            if profiling:
                t0 = perf_counter()
                decision = scheduler.decide(view)
                obs.record("engine.decide", perf_counter() - t0)
            else:
                decision = scheduler.decide(view)
            if tracing:
                sp.exit()  # engine.decide
            if ck is not None:
                ck.on_decision(view, decision, scheduler)
            for job in decision.aborts:
                if job.is_finished:
                    raise SimulationError(f"scheduler aborted finished job {job.key}")
                job.status = JobStatus.ABORTED
                job.abort_time = t
                if job in ready:
                    ready.remove(job)
                if self.trace is not None:
                    self.trace.add_event(t, TraceEventKind.ABORT, job.key)
                if obs is not None:
                    obs.emit(t, EventKind.ABORT, job.key,
                             executed=job.executed, budget=job.allocated)
                    obs.inc("jobs_aborted", task=job.task.name)
                advanced = True

            running = decision.job
            if running is not None:
                if running not in ready:
                    raise SimulationError(
                        f"scheduler selected non-ready job {running.key}"
                    )
                freq_before = cpu.frequency
                switch_overhead = cpu.set_frequency(decision.frequency)
                if switch_overhead > 0.0:
                    # Charge the DVS transition as stalled (non-executing) time.
                    cpu.idle(switch_overhead)
                    if ck is not None:
                        ck.on_idle(switch_overhead)
                    t = min(horizon, t + switch_overhead)
                if self.trace is not None and cpu.frequency != freq_before:
                    self.trace.add_event(t, TraceEventKind.FREQ, value=cpu.frequency)
                if obs is not None and cpu.frequency != freq_before:
                    obs.emit(t, EventKind.FREQ_SWITCH, running.key,
                             frequency=cpu.frequency, previous=freq_before,
                             overhead=switch_overhead)
                    obs.inc("freq_switches")

            if obs is not None and running is not last_running:
                if (
                    last_running is not None
                    and running is not None
                    and last_running.status is JobStatus.PENDING
                ):
                    obs.emit(t, EventKind.PREEMPT, last_running.key,
                             preempted_by=running.key)
                    obs.inc("preemptions")
                if running is not None:
                    obs.emit(t, EventKind.DISPATCH, running.key,
                             frequency=cpu.frequency,
                             remaining_budget=running.remaining_budget)
                    obs.inc("dispatches", task=running.task.name)

            # --- find the next event -----------------------------------
            if tracing:
                sp.enter("engine.advance")
            t_arrival = releases[arrival_idx] if arrival_idx < n_jobs else math.inf
            if deferred_heap:
                t_arrival = min(t_arrival, deferred_heap[0][0])
            t_term = math.inf
            if scheduler.abort_expired:
                t_eps = t + EPS_TIME
                for j in ready:
                    j_term = j.termination
                    if j_term < t_term and j_term > t_eps and j.task.abortable:
                        t_term = j_term
            if running is not None:
                t_complete = t + running.remaining_demand / cpu.frequency
            else:
                t_complete = math.inf
            t_next = min(horizon, t_arrival, t_term, t_complete)
            if t_next < t:
                t_next = t  # coincident events; process without moving
            if realtime:
                # Deadline timer: block until the event instant passes
                # on the wall clock (lag lands in clk.drift), then apply
                # exactly the simulated state change.
                clk.wait_until(t_next)

            # --- advance ------------------------------------------------
            dt = t_next - t
            if running is not None:
                executed = cpu.run(dt)
                running.executed += executed
                if ck is not None:
                    ck.on_segment(t, t_next, cpu.frequency, executed)
                if self.trace is not None:
                    self.trace.add_segment(t, t_next, running.key, cpu.frequency)
            else:
                cpu.idle(dt)
                if ck is not None:
                    ck.on_idle(dt)
                if self.trace is not None:
                    self.trace.add_segment(t, t_next, None, cpu.frequency)
            if obs is not None:
                last_running = running
                if dt > 0.0:
                    obs.inc("cpu_residency_seconds", dt,
                            mhz=f"{cpu.frequency:g}",
                            state="busy" if running is not None else "idle")
            if dt > 0.0:
                advanced = True
            t = t_next
            if tracing:
                sp.exit()  # engine.advance
                sp.enter("engine.complete")

            # --- completion --------------------------------------------
            if running is not None and running.remaining_demand <= EPS_CYCLES:
                running.status = JobStatus.COMPLETED
                running.completion_time = t
                running.accrued_utility = running.utility_at(t)
                ready.remove(running)
                if ck is not None:
                    ck.on_completion(running, t)
                scheduler.on_completion(running, t)
                if rt is not None:
                    rt.on_completion(running, t)
                if self.profiler is not None:
                    self.profiler.record(running.task.name, running.executed)
                if self.trace is not None:
                    self.trace.add_event(
                        t, TraceEventKind.COMPLETE, running.key, running.accrued_utility
                    )
                if obs is not None:
                    obs.emit(t, EventKind.COMPLETE, running.key,
                             utility=running.accrued_utility,
                             sojourn=t - running.release)
                    obs.inc("jobs_completed", task=running.task.name)
                    obs.observe("sojourn_seconds", t - running.release)
                    last_running = None
                event = SchedulingEvent.COMPLETION
                advanced = True

            if tracing:
                sp.exit()  # engine.complete

            if not advanced:
                stall_guard += 1
                if stall_guard > max_stall:
                    raise SimulationError(
                        f"no progress at t={t} (scheduler {scheduler.name!r} idles "
                        f"with {len(ready)} ready jobs and no future events)"
                    )
                # Nothing happened and nothing will: if no future events
                # exist and the scheduler idles, we are done early.
                if (
                    running is None
                    and arrival_idx >= n_jobs
                    and not deferred_heap
                    and (t_term is math.inf)
                ):
                    break
            else:
                stall_guard = 0

        metrics = Metrics(taskset, jobs, cpu.stats, horizon)
        return SimulationResult(
            scheduler_name=scheduler.name,
            metrics=metrics,
            processor_stats=cpu.stats,
            jobs=jobs,
            horizon=horizon,
            trace=self.trace,
        )

    # ------------------------------------------------------------------
    def _build_view(
        self,
        t: float,
        ready: List[Job],
        taskset: TaskSet,
        window_specs: List[Tuple["_ArrivalLog", str, float]],
        event: SchedulingEvent,
    ) -> SchedulerView:
        """Build the scheduler-visible snapshot for one decision point.

        ``ready`` is the engine's *live* list — it is mutated in place by
        the post-decision abort pass and the completion handler.
        :class:`SchedulerView` copies it on construction, so a view
        retained by an observer, checker, or scheduler stays
        membership-stable after the engine moves on; the regression
        suite pins this.  Per-task arrival windows are
        :class:`~repro.sim.scheduler.ArrivalWindow` snapshots over the
        engine's append-only release logs — equally stable, without the
        per-decision list copies the engine used to make.
        """
        counts: Dict[str, ArrivalWindow] = {}
        for log, name, window in window_specs:
            log.trim(t - window + EPS_TIME)
            counts[name] = log.window()
        return SchedulerView(
            time=t,
            ready=ready,
            taskset=taskset,
            scale=self.processor.scale,
            energy_model=self.processor.model,
            event=event,
            arrivals_in_window=counts,
            energy_consumed=self.processor.stats.total_energy,
        )
