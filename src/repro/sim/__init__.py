"""Discrete-event simulation of a preemptive DVS uniprocessor."""

from .clock import Clock, ClockDrift, FakeClock, SimClock, WallClock, as_clock
from .engine import Engine, SimulationError, SimulationResult
from .job import Job, JobStatus
from .metrics import Metrics, TaskMetrics
from .runner import Platform, compare, simulate
from .task import Task, TaskModelError, TaskSet
from .trace import Segment, Trace, TraceEvent, TraceEventKind
from .validation import ValidationReport, validate_result
from .workload import JobSpec, WorkloadTrace, materialize

__all__ = [
    "Task",
    "TaskSet",
    "TaskModelError",
    "Job",
    "JobStatus",
    "JobSpec",
    "WorkloadTrace",
    "materialize",
    "Engine",
    "SimulationResult",
    "SimulationError",
    "Metrics",
    "TaskMetrics",
    "Trace",
    "TraceEvent",
    "TraceEventKind",
    "Segment",
    "Platform",
    "simulate",
    "compare",
    "ValidationReport",
    "validate_result",
    "Clock",
    "ClockDrift",
    "SimClock",
    "WallClock",
    "FakeClock",
    "as_clock",
]
