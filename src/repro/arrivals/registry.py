"""A registry of named, config-constructible arrival generators.

Mirrors :mod:`repro.sched.registry`: every shape has a string key and a
factory so workloads, campaigns, the fuzzer and the CLI can all build
arrival processes from plain data (``name`` + keyword params) instead
of hard-coded constructor calls.  Two construction styles compose:

*Spec-relative* — give the factory the task's declared
:class:`~repro.arrivals.uam.UAMSpec` and let defaults scale off it
(``create_arrival_generator("poisson", spec=spec)`` reproduces the
workload synthesiser's historical ``rate = 2 a / P`` choice exactly).
Shapes constructible this way are listed by
:func:`workload_shape_names` and are what ``synthesize_taskset`` and
the fuzzer's registry strata accept.

*Absolute* — pass every parameter explicitly, as produced by
:meth:`~repro.arrivals.generators.ArrivalGenerator.to_config`.  The
round trip ``generator_from_config(generator_config(g))`` rebuilds a
generator whose streams are bit-identical under the same rng, which is
what lets arrival configs participate in ``RunCache`` identity and in
campaign configs (see ``CampaignConfig.arrival_params``).

Behaviour preservation is load-bearing: for the four legacy workload
modes (``periodic`` / ``burst`` / ``scattered`` / ``poisson``) the
spec-relative factories below construct byte-identical generators to
the pre-registry hard-coded calls — the golden traces and BENCH
aggregates pin this, and ``tests/arrivals/test_registry.py`` pins the
constructor equivalence directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from .generators import (
    ArrivalGenerator,
    BurstUAMArrivals,
    FlashCrowdArrivals,
    JitteredPeriodicArrivals,
    LoopedTraceArrivals,
    MMPPUAMArrivals,
    NHPPArrivals,
    ParetoArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    SporadicArrivals,
    TraceArrivals,
)
from .uam import UAMError, UAMSpec

__all__ = [
    "register_arrival_generator",
    "create_arrival_generator",
    "arrival_generator_names",
    "workload_shape_names",
    "generator_config",
    "generator_from_config",
]

#: name → (factory(spec, **params), constructible from a spec alone?)
_REGISTRY: Dict[str, tuple] = {}


def register_arrival_generator(
    name: str,
    factory: Optional[Callable[..., ArrivalGenerator]] = None,
    *,
    from_spec: bool = True,
):
    """Register ``factory`` under ``name`` (usable as a decorator).

    ``factory(spec, **params)`` must return an
    :class:`~repro.arrivals.generators.ArrivalGenerator`; ``spec`` may
    be ``None`` when the shape carries its own envelope (e.g. traces).
    ``from_spec=False`` marks shapes that *require* extra parameters
    (recorded traces) and excludes them from
    :func:`workload_shape_names`.  Duplicate names are an error — shadow
    registration would silently change campaign identity.
    """

    def _register(fn: Callable[..., ArrivalGenerator]):
        if name in _REGISTRY:
            raise ValueError(f"arrival generator {name!r} is already registered")
        _REGISTRY[name] = (fn, bool(from_spec))
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def arrival_generator_names() -> List[str]:
    """All registered shape names, sorted."""
    return sorted(_REGISTRY)


def workload_shape_names() -> List[str]:
    """Shapes constructible from a ``UAMSpec`` alone (sorted) — the
    valid ``arrival_mode`` values for ``synthesize_taskset``, campaign
    configs and the fuzzer's registry strata."""
    return sorted(name for name, (_, from_spec) in _REGISTRY.items() if from_spec)


def create_arrival_generator(
    name: str,
    *,
    spec: Optional[UAMSpec] = None,
    a: Optional[int] = None,
    window: Optional[float] = None,
    **params: object,
) -> ArrivalGenerator:
    """Build a registered generator by name.

    The UAM envelope comes either from ``spec`` or from the scalar pair
    ``a``/``window`` (the form :meth:`to_config` emits, so JSON configs
    round-trip without constructing a :class:`UAMSpec` first).
    """
    try:
        factory, _ = _REGISTRY[name]
    except KeyError:
        raise UAMError(
            f"unknown arrival generator {name!r} "
            f"(registered: {', '.join(arrival_generator_names())})"
        ) from None
    if spec is None and a is not None and window is not None:
        spec = UAMSpec(int(a), float(window))
    elif spec is not None and (a is not None or window is not None):
        raise UAMError("pass either spec or the a/window pair, not both")
    return factory(spec, **params)


def generator_config(generator: ArrivalGenerator) -> Dict[str, object]:
    """``generator.to_config()`` — a JSON-ready dict with the registry
    ``name`` key, round-trippable through :func:`generator_from_config`."""
    return generator.to_config()


def generator_from_config(config: Mapping[str, object]) -> ArrivalGenerator:
    """Rebuild a generator from a :func:`generator_config` dict."""
    cfg = dict(config)
    try:
        name = str(cfg.pop("name"))
    except KeyError:
        raise UAMError("generator config must carry a 'name' key") from None
    return create_arrival_generator(name, **cfg)


# ----------------------------------------------------------------------
# Built-in shapes
# ----------------------------------------------------------------------
def _require_spec(spec: Optional[UAMSpec], name: str) -> UAMSpec:
    if spec is None:
        raise UAMError(f"arrival shape {name!r} needs a UAM spec (or a/window)")
    return spec


@register_arrival_generator("periodic")
def _make_periodic(
    spec: Optional[UAMSpec],
    period: Optional[float] = None,
    phase: float = 0.0,
) -> PeriodicArrivals:
    if period is None:
        period = _require_spec(spec, "periodic").window
    return PeriodicArrivals(period, phase=phase)


@register_arrival_generator("jittered")
def _make_jittered(
    spec: Optional[UAMSpec],
    period: Optional[float] = None,
    jitter: Optional[float] = None,
    jitter_frac: float = 0.25,
    phase: float = 0.0,
) -> JitteredPeriodicArrivals:
    if period is None:
        period = _require_spec(spec, "jittered").window
    if jitter is None:
        jitter = jitter_frac * period
    return JitteredPeriodicArrivals(period, jitter, phase=phase)


@register_arrival_generator("sporadic")
def _make_sporadic(
    spec: Optional[UAMSpec],
    min_interarrival: Optional[float] = None,
    mean_interarrival: Optional[float] = None,
    mean_factor: float = 2.0,
) -> SporadicArrivals:
    if min_interarrival is None:
        s = _require_spec(spec, "sporadic")
        # Rate-equivalent minimum separation: a arrivals per window.
        min_interarrival = s.window / s.max_arrivals
    if mean_interarrival is None:
        mean_interarrival = mean_factor * min_interarrival
    return SporadicArrivals(min_interarrival, mean_interarrival)


@register_arrival_generator("burst")
def _make_burst(
    spec: Optional[UAMSpec],
    randomize: bool = False,
    phase: float = 0.0,
) -> BurstUAMArrivals:
    return BurstUAMArrivals(_require_spec(spec, "burst"), randomize=randomize, phase=phase)


@register_arrival_generator("scattered")
def _make_scattered(
    spec: Optional[UAMSpec],
    spread: float = 1.0,
    phase: float = 0.0,
) -> ScatteredUAMArrivals:
    return ScatteredUAMArrivals(_require_spec(spec, "scattered"), spread=spread, phase=phase)


@register_arrival_generator("poisson")
def _make_poisson(
    spec: Optional[UAMSpec],
    rate: Optional[float] = None,
    rel_rate: float = 2.0,
) -> PoissonUAMArrivals:
    s = _require_spec(spec, "poisson")
    if rate is None:
        # Left-associative on purpose: (rel_rate · a) / P equals the
        # historical ``2.0 * a / window`` to the last bit, which the
        # golden traces pin.
        rate = rel_rate * s.max_arrivals / s.window
    return PoissonUAMArrivals(s, rate)


@register_arrival_generator("mmpp")
def _make_mmpp(
    spec: Optional[UAMSpec],
    burst_rate: Optional[float] = None,
    quiet_rate: Optional[float] = None,
    mean_burst_duration: Optional[float] = None,
    mean_quiet_duration: Optional[float] = None,
    rel_burst_rate: float = 4.0,
    rel_quiet_rate: float = 0.25,
) -> MMPPUAMArrivals:
    s = _require_spec(spec, "mmpp")
    if burst_rate is None:
        burst_rate = rel_burst_rate * s.max_arrivals / s.window
    if quiet_rate is None:
        quiet_rate = rel_quiet_rate * s.max_arrivals / s.window
    if mean_burst_duration is None:
        mean_burst_duration = s.window
    if mean_quiet_duration is None:
        mean_quiet_duration = s.window
    return MMPPUAMArrivals(
        s,
        burst_rate,
        quiet_rate=quiet_rate,
        mean_burst_duration=mean_burst_duration,
        mean_quiet_duration=mean_quiet_duration,
    )


@register_arrival_generator("nhpp-diurnal")
def _make_nhpp_diurnal(
    spec: Optional[UAMSpec],
    base_rate: Optional[float] = None,
    peak_rate: Optional[float] = None,
    cycle: Optional[float] = None,
    peak_frac: float = 0.5,
    peak_width: float = 0.1,
    rel_base_rate: float = 0.5,
    rel_peak_rate: float = 4.0,
    cycle_windows: float = 8.0,
) -> NHPPArrivals:
    s = _require_spec(spec, "nhpp-diurnal")
    if peak_rate is None:
        peak_rate = rel_peak_rate * s.max_arrivals / s.window
    if base_rate is None:
        base_rate = rel_base_rate * s.max_arrivals / s.window
    if cycle is None:
        cycle = cycle_windows * s.window
    return NHPPArrivals(
        s,
        base_rate,
        peak_rate,
        cycle,
        peak_frac=peak_frac,
        peak_width=peak_width,
    )


@register_arrival_generator("flash-crowd")
def _make_flash_crowd(
    spec: Optional[UAMSpec],
    base_rate: Optional[float] = None,
    burst_factor: float = 8.0,
    burst_duration: Optional[float] = None,
    mean_time_between: Optional[float] = None,
    rel_base_rate: float = 0.5,
    burst_windows: float = 1.0,
    gap_windows: float = 6.0,
) -> FlashCrowdArrivals:
    s = _require_spec(spec, "flash-crowd")
    if base_rate is None:
        base_rate = rel_base_rate * s.max_arrivals / s.window
    if burst_duration is None:
        burst_duration = burst_windows * s.window
    if mean_time_between is None:
        mean_time_between = gap_windows * s.window
    return FlashCrowdArrivals(
        s,
        base_rate,
        burst_factor=burst_factor,
        burst_duration=burst_duration,
        mean_time_between=mean_time_between,
    )


@register_arrival_generator("pareto")
def _make_pareto(
    spec: Optional[UAMSpec],
    alpha: float = 1.5,
    x_min: Optional[float] = None,
    rel_rate: float = 2.0,
) -> ParetoArrivals:
    s = _require_spec(spec, "pareto")
    if x_min is None:
        if alpha <= 1.0:
            raise UAMError(
                "the default rate-matched scale needs alpha > 1 "
                "(infinite-mean tails require an explicit x_min)"
            )
        # Match the mean arrival rate of the poisson shape:
        # E[gap] = x_min · alpha / (alpha − 1) = 1 / (rel_rate · a / P).
        mean_gap = s.window / (rel_rate * s.max_arrivals)
        x_min = mean_gap * (alpha - 1.0) / alpha
    return ParetoArrivals(s, alpha=alpha, x_min=x_min)


@register_arrival_generator("trace", from_spec=False)
def _make_trace(
    spec: Optional[UAMSpec],
    times: Optional[List[float]] = None,
) -> TraceArrivals:
    if times is None:
        raise UAMError("arrival shape 'trace' needs a times=[...] list")
    return TraceArrivals(times, spec=spec)


@register_arrival_generator("trace-loop", from_spec=False)
def _make_trace_loop(
    spec: Optional[UAMSpec],
    times: Optional[List[float]] = None,
    cycle: Optional[float] = None,
) -> LoopedTraceArrivals:
    if times is None or cycle is None:
        raise UAMError("arrival shape 'trace-loop' needs times=[...] and cycle=...")
    return LoopedTraceArrivals(times, cycle, spec=spec)
