"""Arrival models — the unimodal arbitrary arrival model (UAM) and generators."""

from .generators import (
    ArrivalGenerator,
    BurstUAMArrivals,
    JitteredPeriodicArrivals,
    MMPPUAMArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    SporadicArrivals,
    TraceArrivals,
)
from .uam import (
    UAMError,
    UAMSpec,
    UAMTracker,
    first_violation,
    is_uam_compliant,
    max_count_in_any_window,
    thin_to_uam,
)

__all__ = [
    "UAMSpec",
    "UAMError",
    "UAMTracker",
    "max_count_in_any_window",
    "is_uam_compliant",
    "first_violation",
    "thin_to_uam",
    "ArrivalGenerator",
    "PeriodicArrivals",
    "JitteredPeriodicArrivals",
    "SporadicArrivals",
    "BurstUAMArrivals",
    "ScatteredUAMArrivals",
    "PoissonUAMArrivals",
    "MMPPUAMArrivals",
    "TraceArrivals",
]
