"""Arrival models — the unimodal arbitrary arrival model (UAM) and generators."""

from .generators import (
    ArrivalGenerator,
    BurstUAMArrivals,
    JitteredPeriodicArrivals,
    MMPPUAMArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    SporadicArrivals,
    TraceArrivals,
)
from .uam import (
    UAMError,
    UAMSpec,
    UAMTracker,
    effective_window,
    first_violation,
    is_uam_compliant,
    max_count_in_any_window,
    next_admissible_time,
    thin_to_uam,
)

__all__ = [
    "UAMSpec",
    "UAMError",
    "UAMTracker",
    "effective_window",
    "max_count_in_any_window",
    "is_uam_compliant",
    "first_violation",
    "next_admissible_time",
    "thin_to_uam",
    "ArrivalGenerator",
    "PeriodicArrivals",
    "JitteredPeriodicArrivals",
    "SporadicArrivals",
    "BurstUAMArrivals",
    "ScatteredUAMArrivals",
    "PoissonUAMArrivals",
    "MMPPUAMArrivals",
    "TraceArrivals",
]
