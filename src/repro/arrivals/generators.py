"""Arrival-time generators.

Every generator produces a sorted list of absolute arrival times over
``[0, horizon)`` and declares the :class:`~repro.arrivals.uam.UAMSpec` it
honours, so simulations can assert compliance.  All randomness flows
through an explicit :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from .uam import UAMSpec, UAMError, is_uam_compliant, thin_to_uam

__all__ = [
    "ArrivalGenerator",
    "PeriodicArrivals",
    "JitteredPeriodicArrivals",
    "SporadicArrivals",
    "BurstUAMArrivals",
    "ScatteredUAMArrivals",
    "PoissonUAMArrivals",
    "MMPPUAMArrivals",
    "TraceArrivals",
]


class ArrivalGenerator(ABC):
    """Produces arrival times for one task and knows its UAM envelope."""

    #: The UAM specification all generated sequences satisfy.
    spec: UAMSpec

    @abstractmethod
    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        """Sorted arrival times in ``[0, horizon)``."""

    def generate_checked(
        self, horizon: float, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """Generate and assert UAM compliance (defence in depth)."""
        times = self.generate(horizon, rng)
        if not is_uam_compliant(times, self.spec):
            raise UAMError(f"{type(self).__name__} produced a non-compliant sequence")
        return times

    @staticmethod
    def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng()


class PeriodicArrivals(ArrivalGenerator):
    """Strictly periodic arrivals — the UAM special case ``⟨1, P⟩``."""

    def __init__(self, period: float, phase: float = 0.0):
        if period <= 0.0:
            raise UAMError(f"period must be > 0, got {period!r}")
        if phase < 0.0:
            raise UAMError(f"phase must be >= 0, got {phase!r}")
        self.period = float(period)
        self.phase = float(phase)
        self.spec = UAMSpec(1, self.period)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        if horizon <= self.phase:
            return []
        n = int(np.ceil((horizon - self.phase) / self.period))
        times = self.phase + self.period * np.arange(n)
        return [float(t) for t in times if t < horizon]


class JitteredPeriodicArrivals(ArrivalGenerator):
    """Periodic releases delayed by bounded random jitter.

    With jitter bound ``J < P`` the stream satisfies ``⟨1, P - J⟩``:
    consecutive arrivals are at least ``P - J`` apart.
    """

    def __init__(self, period: float, jitter: float, phase: float = 0.0):
        if period <= 0.0:
            raise UAMError(f"period must be > 0, got {period!r}")
        if not (0.0 <= jitter < period):
            raise UAMError(f"jitter must lie in [0, period), got {jitter!r}")
        self.period = float(period)
        self.jitter = float(jitter)
        self.phase = float(phase)
        self.spec = UAMSpec(1, self.period - self.jitter) if jitter > 0 else UAMSpec(1, self.period)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        k = 0
        while True:
            base = self.phase + k * self.period
            if base >= horizon:
                break
            t = base + (rng.uniform(0.0, self.jitter) if self.jitter > 0.0 else 0.0)
            if t < horizon:
                times.append(float(t))
            k += 1
        return sorted(times)


class SporadicArrivals(ArrivalGenerator):
    """Sporadic arrivals: exponential gaps floored at a minimum separation.

    Satisfies ``⟨1, min_interarrival⟩``.
    """

    def __init__(self, min_interarrival: float, mean_interarrival: float):
        if min_interarrival <= 0.0:
            raise UAMError(f"min interarrival must be > 0, got {min_interarrival!r}")
        if mean_interarrival < min_interarrival:
            raise UAMError("mean interarrival must be >= the minimum separation")
        self.min_interarrival = float(min_interarrival)
        self.mean_interarrival = float(mean_interarrival)
        self.spec = UAMSpec(1, self.min_interarrival)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        extra_mean = self.mean_interarrival - self.min_interarrival
        times: List[float] = []
        t = 0.0
        while t < horizon:
            times.append(t)
            gap = self.min_interarrival
            if extra_mean > 0.0:
                gap += float(rng.exponential(extra_mean))
            t += gap
        return times


class BurstUAMArrivals(ArrivalGenerator):
    """The UAM adversary: bursts of up to ``a`` simultaneous arrivals.

    Each window ``[kP, (k+1)P)`` opens with a burst of ``burst_size``
    simultaneous arrivals at its start (``burst_size = a`` by default, or
    drawn uniformly from ``[1, a]`` when ``randomize=True``).  Placing
    bursts exactly ``P`` apart is the densest pattern ``⟨a, P⟩`` admits —
    this is the "stronger adversary" the paper stresses and the pattern
    used for the Figure 3 study.
    """

    def __init__(self, spec: UAMSpec, randomize: bool = False, phase: float = 0.0):
        self.spec = spec
        self.randomize = bool(randomize)
        self.phase = float(phase)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        a, P = self.spec.max_arrivals, self.spec.window
        times: List[float] = []
        k = 0
        while True:
            t = self.phase + k * P
            if t >= horizon:
                break
            size = int(rng.integers(1, a + 1)) if self.randomize else a
            times.extend([float(t)] * size)
            k += 1
        return times


class ScatteredUAMArrivals(ArrivalGenerator):
    """Up to ``a`` arrivals per window at *unpredictable* instants.

    For each window ``[kP, (k+1)P)`` draws ``a`` offsets uniformly over
    ``[0, spread·P)`` and then thins the merged stream to ``⟨a, P⟩``
    compliance (adjacent windows' draws can otherwise cluster across the
    boundary).  Unlike :class:`BurstUAMArrivals` — whose synchronised
    bursts a scheduler can fully anticipate — scattered arrivals defeat
    slack estimation, which is the mechanism behind the paper's Figure 3
    (energy rises with ``a`` during underloads).
    """

    def __init__(self, spec: UAMSpec, spread: float = 1.0, phase: float = 0.0):
        if not (0.0 < spread <= 1.0):
            raise UAMError(f"spread must lie in (0, 1], got {spread!r}")
        self.spec = spec
        self.spread = float(spread)
        self.phase = float(phase)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        a, P = self.spec.max_arrivals, self.spec.window
        candidates: List[float] = []
        k = 0
        while True:
            start = self.phase + k * P
            if start >= horizon:
                break
            offsets = rng.uniform(0.0, self.spread * P, size=a)
            candidates.extend(float(start + o) for o in offsets if start + o < horizon)
            k += 1
        candidates.sort()
        return thin_to_uam(candidates, self.spec)


class PoissonUAMArrivals(ArrivalGenerator):
    """Poisson arrivals thinned to satisfy a UAM envelope.

    Models an uncontrolled aperiodic source passed through UAM admission
    control: arrivals are Poisson with the given rate; any arrival that
    would overflow ``⟨a, P⟩`` is dropped (see
    :func:`repro.arrivals.uam.thin_to_uam`).
    """

    def __init__(self, spec: UAMSpec, rate: float):
        if rate <= 0.0:
            raise UAMError(f"rate must be > 0, got {rate!r}")
        self.spec = spec
        self.rate = float(rate)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        n_expected = self.rate * horizon
        # Draw gaps until the horizon is passed.
        times: List[float] = []
        t = 0.0
        # Pre-draw in blocks for efficiency.
        block = max(16, int(n_expected * 1.5) + 8)
        while t < horizon:
            for gap in rng.exponential(1.0 / self.rate, size=block):
                t += float(gap)
                if t >= horizon:
                    break
                times.append(t)
        return thin_to_uam(times, self.spec)


class MMPPUAMArrivals(ArrivalGenerator):
    """Markov-modulated Poisson arrivals admitted through a UAM envelope.

    A two-state on/off source: in the *burst* state arrivals are Poisson
    at ``burst_rate``; in the *quiet* state at ``quiet_rate`` (often 0).
    State holding times are exponential.  The merged stream is thinned
    to the declared ``⟨a, P⟩`` spec, producing realistic correlated
    burstiness (alarm showers, interrupt storms) *within* the envelope —
    a sharper stress for slack estimation than memoryless Poisson.
    """

    def __init__(
        self,
        spec: UAMSpec,
        burst_rate: float,
        quiet_rate: float = 0.0,
        mean_burst_duration: float = 1.0,
        mean_quiet_duration: float = 1.0,
    ):
        if burst_rate <= 0.0:
            raise UAMError(f"burst rate must be > 0, got {burst_rate!r}")
        if quiet_rate < 0.0:
            raise UAMError(f"quiet rate must be >= 0, got {quiet_rate!r}")
        if mean_burst_duration <= 0.0 or mean_quiet_duration <= 0.0:
            raise UAMError("state durations must be > 0")
        self.spec = spec
        self.burst_rate = float(burst_rate)
        self.quiet_rate = float(quiet_rate)
        self.mean_burst_duration = float(mean_burst_duration)
        self.mean_quiet_duration = float(mean_quiet_duration)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        t = 0.0
        bursting = bool(rng.integers(0, 2))
        while t < horizon:
            duration = float(
                rng.exponential(
                    self.mean_burst_duration if bursting else self.mean_quiet_duration
                )
            )
            end = min(horizon, t + duration)
            rate = self.burst_rate if bursting else self.quiet_rate
            if rate > 0.0:
                s = t
                while True:
                    s += float(rng.exponential(1.0 / rate))
                    if s >= end:
                        break
                    times.append(s)
            t = end
            bursting = not bursting
        return thin_to_uam(times, self.spec)


class TraceArrivals(ArrivalGenerator):
    """Replay a recorded arrival trace.

    The declared spec is the *tightest* window for the trace's observed
    burst size unless an explicit spec is provided (which is then checked).
    """

    def __init__(self, times: Sequence[float], spec: Optional[UAMSpec] = None):
        ts = sorted(float(t) for t in times)
        if ts and ts[0] < 0.0:
            raise UAMError("trace times must be >= 0")
        self._times = ts
        if spec is None:
            spec = self._infer_spec(ts)
        elif not is_uam_compliant(ts, spec):
            raise UAMError("trace violates the declared UAM spec")
        self.spec = spec

    @staticmethod
    def _infer_spec(ts: List[float]) -> UAMSpec:
        if len(ts) < 2:
            return UAMSpec(1, 1.0)
        # Use the maximum simultaneity as a and the smallest gap between
        # groups of a as P (a conservative compliant envelope).
        from collections import Counter

        a = max(Counter(ts).values())
        gaps = [b - a_ for a_, b in zip(ts, ts[a:]) if b > a_]
        window = min(gaps) if gaps else 1.0
        return UAMSpec(a, window)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        return [t for t in self._times if t < horizon]
