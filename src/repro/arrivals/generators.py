"""Arrival-time generators.

Every generator produces a sorted list of absolute arrival times over
``[0, horizon)`` and declares the :class:`~repro.arrivals.uam.UAMSpec` it
honours, so simulations can assert compliance.  All randomness flows
through an explicit :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import math
import sys
import warnings
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from .uam import UAMSpec, UAMError, is_uam_compliant, thin_to_uam

__all__ = [
    "ArrivalGenerator",
    "UnseededRNGWarning",
    "PeriodicArrivals",
    "JitteredPeriodicArrivals",
    "SporadicArrivals",
    "BurstUAMArrivals",
    "ScatteredUAMArrivals",
    "PoissonUAMArrivals",
    "MMPPUAMArrivals",
    "NHPPArrivals",
    "FlashCrowdArrivals",
    "ParetoArrivals",
    "TraceArrivals",
    "LoopedTraceArrivals",
]


class UnseededRNGWarning(UserWarning):
    """A stochastic generator ran without an explicit ``Generator``.

    The fallback ``np.random.default_rng()`` is seeded from OS entropy,
    so the resulting stream can never be reproduced.  That is fine for
    interactive exploration but silently breaks the campaign
    determinism contract (bit-identical replications under a fixed
    seed), which is why every library path — ``WorkloadSpec.build``,
    ``materialize``, the fuzzer — passes an explicit rng and this
    warning only ever fires on direct interactive use.
    """


class ArrivalGenerator(ABC):
    """Produces arrival times for one task and knows its UAM envelope."""

    #: The UAM specification all generated sequences satisfy.
    spec: UAMSpec

    @abstractmethod
    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        """Sorted arrival times in ``[0, horizon)``."""

    def generate_checked(
        self, horizon: float, rng: Optional[np.random.Generator] = None
    ) -> List[float]:
        """Generate and assert UAM compliance (defence in depth)."""
        times = self.generate(horizon, rng)
        if not is_uam_compliant(times, self.spec):
            raise UAMError(f"{type(self).__name__} produced a non-compliant sequence")
        return times

    def to_config(self) -> Dict[str, object]:
        """JSON-ready constructor config, round-trippable through
        :func:`repro.arrivals.create_arrival_generator`.

        The returned dict carries the registry ``name`` plus absolute
        parameters (never spec-relative defaults), so
        ``create_arrival_generator(**cfg)`` rebuilds a generator whose
        streams are bit-identical under the same rng — this is what
        lets arrival shapes participate in ``RunCache`` identity.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement to_config()"
        )

    @staticmethod
    def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
        if rng is None:
            warnings.warn(
                "arrival generation without an explicit rng is not "
                "reproducible; pass np.random.default_rng(seed) "
                "(campaign paths always do)",
                UnseededRNGWarning,
                stacklevel=_external_stacklevel(),
            )
            return np.random.default_rng()
        return rng


def _external_stacklevel() -> int:
    """Stacklevel (relative to the caller of this helper) of the first
    frame *outside* ``repro.arrivals``.

    ``_rng`` is reached through a varying number of in-package wrappers
    — ``generate`` directly, but also ``generate_checked`` and the
    shape-registry constructors — so a fixed ``stacklevel`` attributes
    the :class:`UnseededRNGWarning` to library internals on all but one
    path.  Walking the stack keeps the warning pointing at the caller
    that actually forgot the rng, whichever entry point it used.
    """
    level = 2  # warn()'s caller, i.e. whoever called _rng
    frame = sys._getframe(2)  # the same frame, seen from here
    while frame is not None and frame.f_globals.get("__name__", "").startswith(
        "repro.arrivals"
    ):
        level += 1
        frame = frame.f_back
    return level


class PeriodicArrivals(ArrivalGenerator):
    """Strictly periodic arrivals — the UAM special case ``⟨1, P⟩``."""

    def __init__(self, period: float, phase: float = 0.0):
        if period <= 0.0:
            raise UAMError(f"period must be > 0, got {period!r}")
        if phase < 0.0:
            raise UAMError(f"phase must be >= 0, got {phase!r}")
        self.period = float(period)
        self.phase = float(phase)
        self.spec = UAMSpec(1, self.period)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        if horizon <= self.phase:
            return []
        n = int(np.ceil((horizon - self.phase) / self.period))
        times = self.phase + self.period * np.arange(n)
        return [float(t) for t in times if t < horizon]

    def to_config(self) -> Dict[str, object]:
        return {"name": "periodic", "period": self.period, "phase": self.phase}


class JitteredPeriodicArrivals(ArrivalGenerator):
    """Periodic releases delayed by bounded random jitter.

    With jitter bound ``J < P`` the stream satisfies ``⟨1, P - J⟩``:
    consecutive arrivals are at least ``P - J`` apart.
    """

    def __init__(self, period: float, jitter: float, phase: float = 0.0):
        if period <= 0.0:
            raise UAMError(f"period must be > 0, got {period!r}")
        if not (0.0 <= jitter < period):
            raise UAMError(f"jitter must lie in [0, period), got {jitter!r}")
        self.period = float(period)
        self.jitter = float(jitter)
        self.phase = float(phase)
        self.spec = UAMSpec(1, self.period - self.jitter) if jitter > 0 else UAMSpec(1, self.period)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        k = 0
        while True:
            base = self.phase + k * self.period
            if base >= horizon:
                break
            t = base + (rng.uniform(0.0, self.jitter) if self.jitter > 0.0 else 0.0)
            if t < horizon:
                times.append(float(t))
            k += 1
        return sorted(times)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "jittered",
            "period": self.period,
            "jitter": self.jitter,
            "phase": self.phase,
        }


class SporadicArrivals(ArrivalGenerator):
    """Sporadic arrivals: exponential gaps floored at a minimum separation.

    Satisfies ``⟨1, min_interarrival⟩``.
    """

    def __init__(self, min_interarrival: float, mean_interarrival: float):
        if min_interarrival <= 0.0:
            raise UAMError(f"min interarrival must be > 0, got {min_interarrival!r}")
        if mean_interarrival < min_interarrival:
            raise UAMError("mean interarrival must be >= the minimum separation")
        self.min_interarrival = float(min_interarrival)
        self.mean_interarrival = float(mean_interarrival)
        self.spec = UAMSpec(1, self.min_interarrival)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        extra_mean = self.mean_interarrival - self.min_interarrival
        times: List[float] = []
        t = 0.0
        while t < horizon:
            times.append(t)
            gap = self.min_interarrival
            if extra_mean > 0.0:
                gap += float(rng.exponential(extra_mean))
            t += gap
        return times

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "sporadic",
            "min_interarrival": self.min_interarrival,
            "mean_interarrival": self.mean_interarrival,
        }


class BurstUAMArrivals(ArrivalGenerator):
    """The UAM adversary: bursts of up to ``a`` simultaneous arrivals.

    Each window ``[kP, (k+1)P)`` opens with a burst of ``burst_size``
    simultaneous arrivals at its start (``burst_size = a`` by default, or
    drawn uniformly from ``[1, a]`` when ``randomize=True``).  Placing
    bursts exactly ``P`` apart is the densest pattern ``⟨a, P⟩`` admits —
    this is the "stronger adversary" the paper stresses and the pattern
    used for the Figure 3 study.
    """

    def __init__(self, spec: UAMSpec, randomize: bool = False, phase: float = 0.0):
        self.spec = spec
        self.randomize = bool(randomize)
        self.phase = float(phase)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        a, P = self.spec.max_arrivals, self.spec.window
        times: List[float] = []
        k = 0
        while True:
            t = self.phase + k * P
            if t >= horizon:
                break
            size = int(rng.integers(1, a + 1)) if self.randomize else a
            times.extend([float(t)] * size)
            k += 1
        return times

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "burst",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "randomize": self.randomize,
            "phase": self.phase,
        }


class ScatteredUAMArrivals(ArrivalGenerator):
    """Up to ``a`` arrivals per window at *unpredictable* instants.

    For each window ``[kP, (k+1)P)`` draws ``a`` offsets uniformly over
    ``[0, spread·P)`` and then thins the merged stream to ``⟨a, P⟩``
    compliance (adjacent windows' draws can otherwise cluster across the
    boundary).  Unlike :class:`BurstUAMArrivals` — whose synchronised
    bursts a scheduler can fully anticipate — scattered arrivals defeat
    slack estimation, which is the mechanism behind the paper's Figure 3
    (energy rises with ``a`` during underloads).
    """

    def __init__(self, spec: UAMSpec, spread: float = 1.0, phase: float = 0.0):
        if not (0.0 < spread <= 1.0):
            raise UAMError(f"spread must lie in (0, 1], got {spread!r}")
        self.spec = spec
        self.spread = float(spread)
        self.phase = float(phase)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        a, P = self.spec.max_arrivals, self.spec.window
        candidates: List[float] = []
        k = 0
        while True:
            start = self.phase + k * P
            if start >= horizon:
                break
            offsets = rng.uniform(0.0, self.spread * P, size=a)
            candidates.extend(float(start + o) for o in offsets if start + o < horizon)
            k += 1
        candidates.sort()
        return thin_to_uam(candidates, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "scattered",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "spread": self.spread,
            "phase": self.phase,
        }


class PoissonUAMArrivals(ArrivalGenerator):
    """Poisson arrivals thinned to satisfy a UAM envelope.

    Models an uncontrolled aperiodic source passed through UAM admission
    control: arrivals are Poisson with the given rate; any arrival that
    would overflow ``⟨a, P⟩`` is dropped (see
    :func:`repro.arrivals.uam.thin_to_uam`).
    """

    def __init__(self, spec: UAMSpec, rate: float):
        if rate <= 0.0:
            raise UAMError(f"rate must be > 0, got {rate!r}")
        self.spec = spec
        self.rate = float(rate)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        n_expected = self.rate * horizon
        # Draw gaps until the horizon is passed.
        times: List[float] = []
        t = 0.0
        # Pre-draw in blocks for efficiency.
        block = max(16, int(n_expected * 1.5) + 8)
        while t < horizon:
            for gap in rng.exponential(1.0 / self.rate, size=block):
                t += float(gap)
                if t >= horizon:
                    break
                times.append(t)
        return thin_to_uam(times, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "poisson",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "rate": self.rate,
        }


class MMPPUAMArrivals(ArrivalGenerator):
    """Markov-modulated Poisson arrivals admitted through a UAM envelope.

    A two-state on/off source: in the *burst* state arrivals are Poisson
    at ``burst_rate``; in the *quiet* state at ``quiet_rate`` (often 0).
    State holding times are exponential.  The merged stream is thinned
    to the declared ``⟨a, P⟩`` spec, producing realistic correlated
    burstiness (alarm showers, interrupt storms) *within* the envelope —
    a sharper stress for slack estimation than memoryless Poisson.
    """

    def __init__(
        self,
        spec: UAMSpec,
        burst_rate: float,
        quiet_rate: float = 0.0,
        mean_burst_duration: float = 1.0,
        mean_quiet_duration: float = 1.0,
    ):
        if burst_rate <= 0.0:
            raise UAMError(f"burst rate must be > 0, got {burst_rate!r}")
        if quiet_rate < 0.0:
            raise UAMError(f"quiet rate must be >= 0, got {quiet_rate!r}")
        if mean_burst_duration <= 0.0 or mean_quiet_duration <= 0.0:
            raise UAMError("state durations must be > 0")
        self.spec = spec
        self.burst_rate = float(burst_rate)
        self.quiet_rate = float(quiet_rate)
        self.mean_burst_duration = float(mean_burst_duration)
        self.mean_quiet_duration = float(mean_quiet_duration)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        t = 0.0
        bursting = bool(rng.integers(0, 2))
        while t < horizon:
            duration = float(
                rng.exponential(
                    self.mean_burst_duration if bursting else self.mean_quiet_duration
                )
            )
            end = min(horizon, t + duration)
            rate = self.burst_rate if bursting else self.quiet_rate
            if rate > 0.0:
                s = t
                while True:
                    s += float(rng.exponential(1.0 / rate))
                    if s >= end:
                        break
                    times.append(s)
            t = end
            bursting = not bursting
        return thin_to_uam(times, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "mmpp",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "burst_rate": self.burst_rate,
            "quiet_rate": self.quiet_rate,
            "mean_burst_duration": self.mean_burst_duration,
            "mean_quiet_duration": self.mean_quiet_duration,
        }


class NHPPArrivals(ArrivalGenerator):
    """Non-homogeneous Poisson arrivals with diurnal peaks, admitted
    through a UAM envelope.

    The intensity is a periodic rate function with a Gaussian bump once
    per ``cycle`` (the "day"): ``λ(t) = base_rate + (peak_rate −
    base_rate) · exp(−d(t)² / 2w²)`` where ``d(t)`` is the circular
    distance of ``t mod cycle`` from the peak position ``peak_frac ·
    cycle`` and ``w = peak_width · cycle``.  Sampling uses the
    Lewis–Shedler thinning algorithm: homogeneous candidates at
    ``peak_rate`` are accepted with probability ``λ(t) / peak_rate``,
    then the stream passes :func:`~repro.arrivals.uam.thin_to_uam` so
    the declared ``⟨a, P⟩`` spec — and hence the paper's assurances —
    still holds.  With ``peak_rate`` above the envelope's ``a / P`` the
    diurnal crest saturates the UAM budget while troughs run far below
    it, which is exactly the internet-facing load shape (request waves
    following the day) the threshold study sweeps.
    """

    def __init__(
        self,
        spec: UAMSpec,
        base_rate: float,
        peak_rate: float,
        cycle: float,
        peak_frac: float = 0.5,
        peak_width: float = 0.1,
    ):
        if not (peak_rate > 0.0):
            raise UAMError(f"peak rate must be > 0, got {peak_rate!r}")
        if not (0.0 <= base_rate <= peak_rate):
            raise UAMError(
                f"base rate must lie in [0, peak_rate], got {base_rate!r}"
            )
        if not (cycle > 0.0):
            raise UAMError(f"cycle must be > 0, got {cycle!r}")
        if not (0.0 <= peak_frac <= 1.0):
            raise UAMError(f"peak_frac must lie in [0, 1], got {peak_frac!r}")
        if not (0.0 < peak_width <= 1.0):
            raise UAMError(f"peak_width must lie in (0, 1], got {peak_width!r}")
        self.spec = spec
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.cycle = float(cycle)
        self.peak_frac = float(peak_frac)
        self.peak_width = float(peak_width)

    def rate(self, t: float) -> float:
        """The diurnal intensity ``λ(t)`` (jobs per second)."""
        phase = (t / self.cycle) % 1.0
        d = abs(phase - self.peak_frac)
        d = min(d, 1.0 - d)  # circular distance in cycle fractions
        bump = math.exp(-0.5 * (d / self.peak_width) ** 2)
        return self.base_rate + (self.peak_rate - self.base_rate) * bump

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        t = 0.0
        # Lewis–Shedler: candidate process at the majorant peak_rate,
        # accept each candidate with probability rate(t) / peak_rate.
        while True:
            t += float(rng.exponential(1.0 / self.peak_rate))
            if t >= horizon:
                break
            if float(rng.random()) * self.peak_rate <= self.rate(t):
                times.append(t)
        return thin_to_uam(times, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "nhpp-diurnal",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "base_rate": self.base_rate,
            "peak_rate": self.peak_rate,
            "cycle": self.cycle,
            "peak_frac": self.peak_frac,
            "peak_width": self.peak_width,
        }


class FlashCrowdArrivals(ArrivalGenerator):
    """Flash-crowd traffic: a Poisson baseline with superimposed burst
    windows, admitted through a UAM envelope.

    Quiet stretches (exponential with mean ``mean_time_between``) carry
    Poisson arrivals at ``base_rate``; each is followed by a burst
    window of fixed length ``burst_duration`` during which the rate
    jumps to ``base_rate · burst_factor`` (the "slashdotting").  Unlike
    :class:`MMPPUAMArrivals` the burst episodes have deterministic
    length and a multiplicative intensity, matching the flash-crowd
    models used for CDN/load-balancer studies.  The merged stream is
    thinned to ``⟨a, P⟩``, so bursts saturate the UAM budget for their
    duration — the hardest admissible pattern short of the synchronised
    :class:`BurstUAMArrivals` adversary, but at *unpredictable* epochs.
    """

    def __init__(
        self,
        spec: UAMSpec,
        base_rate: float,
        burst_factor: float = 8.0,
        burst_duration: float = 1.0,
        mean_time_between: float = 4.0,
    ):
        if not (base_rate > 0.0):
            raise UAMError(f"base rate must be > 0, got {base_rate!r}")
        if not (burst_factor >= 1.0):
            raise UAMError(f"burst factor must be >= 1, got {burst_factor!r}")
        if not (burst_duration > 0.0):
            raise UAMError(f"burst duration must be > 0, got {burst_duration!r}")
        if not (mean_time_between > 0.0):
            raise UAMError(
                f"mean time between bursts must be > 0, got {mean_time_between!r}"
            )
        self.spec = spec
        self.base_rate = float(base_rate)
        self.burst_factor = float(burst_factor)
        self.burst_duration = float(burst_duration)
        self.mean_time_between = float(mean_time_between)

    @staticmethod
    def _poisson_segment(
        times: List[float],
        rng: np.random.Generator,
        start: float,
        end: float,
        rate: float,
    ) -> None:
        s = start
        while True:
            s += float(rng.exponential(1.0 / rate))
            if s >= end:
                break
            times.append(s)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        t = 0.0
        while t < horizon:
            quiet_end = min(horizon, t + float(rng.exponential(self.mean_time_between)))
            self._poisson_segment(times, rng, t, quiet_end, self.base_rate)
            t = quiet_end
            if t >= horizon:
                break
            burst_end = min(horizon, t + self.burst_duration)
            self._poisson_segment(
                times, rng, t, burst_end, self.base_rate * self.burst_factor
            )
            t = burst_end
        return thin_to_uam(times, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "flash-crowd",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "base_rate": self.base_rate,
            "burst_factor": self.burst_factor,
            "burst_duration": self.burst_duration,
            "mean_time_between": self.mean_time_between,
        }


class ParetoArrivals(ArrivalGenerator):
    """Heavy-tailed (Pareto) inter-arrival gaps admitted through a UAM
    envelope.

    Gaps follow a Pareto Type I law with tail index ``alpha`` and scale
    ``x_min`` (``gap = x_min · U^{-1/alpha}``): most gaps sit near
    ``x_min`` — so the thinner clips local pile-ups against ``⟨a, P⟩``
    — while occasional enormous gaps produce the long silent stretches
    characteristic of self-similar internet traffic (for ``alpha < 2``
    the gap variance is infinite).  The mean gap is ``x_min · alpha /
    (alpha − 1)`` for ``alpha > 1`` and infinite otherwise.
    """

    def __init__(self, spec: UAMSpec, alpha: float = 1.5, x_min: float = 1.0):
        if not (alpha > 0.0):
            raise UAMError(f"alpha must be > 0, got {alpha!r}")
        if not (x_min > 0.0):
            raise UAMError(f"x_min must be > 0, got {x_min!r}")
        self.spec = spec
        self.alpha = float(alpha)
        self.x_min = float(x_min)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        rng = self._rng(rng)
        times: List[float] = []
        t = 0.0
        while True:
            # numpy's pareto() samples the Lomax law (Pareto minus 1).
            t += self.x_min * (1.0 + float(rng.pareto(self.alpha)))
            if t >= horizon:
                break
            times.append(t)
        return thin_to_uam(times, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "pareto",
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
            "alpha": self.alpha,
            "x_min": self.x_min,
        }


class TraceArrivals(ArrivalGenerator):
    """Replay a recorded arrival trace.

    The declared spec is the *tightest* window for the trace's observed
    burst size unless an explicit spec is provided (which is then checked).
    """

    def __init__(self, times: Sequence[float], spec: Optional[UAMSpec] = None):
        ts = sorted(float(t) for t in times)
        if ts and ts[0] < 0.0:
            raise UAMError("trace times must be >= 0")
        self._times = ts
        if spec is None:
            spec = self._infer_spec(ts)
        elif not is_uam_compliant(ts, spec):
            raise UAMError("trace violates the declared UAM spec")
        self.spec = spec

    @staticmethod
    def _infer_spec(ts: List[float]) -> UAMSpec:
        if len(ts) < 2:
            return UAMSpec(1, 1.0)
        # Use the maximum simultaneity as a and the smallest gap between
        # groups of a as P (a conservative compliant envelope).
        from collections import Counter

        a = max(Counter(ts).values())
        gaps = [b - a_ for a_, b in zip(ts, ts[a:]) if b > a_]
        window = min(gaps) if gaps else 1.0
        return UAMSpec(a, window)

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        return [t for t in self._times if t < horizon]

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "trace",
            "times": list(self._times),
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
        }


class LoopedTraceArrivals(ArrivalGenerator):
    """Replay a recorded trace *tiled periodically* over the horizon.

    The base trace must live inside ``[0, cycle)``; copy ``k`` is the
    base shifted by ``k · cycle``.  The tiled stream is thinned to the
    declared ``⟨a, P⟩`` spec (wrap-around can cluster the tail of one
    copy against the head of the next), so a short measured trace —
    e.g. one recorded day of request timestamps — drives arbitrarily
    long campaigns while the paper's assurances keep applying.
    """

    def __init__(self, times: Sequence[float], cycle: float, spec: Optional[UAMSpec] = None):
        if not (cycle > 0.0):
            raise UAMError(f"cycle must be > 0, got {cycle!r}")
        ts = sorted(float(t) for t in times)
        if ts and (ts[0] < 0.0 or ts[-1] >= cycle):
            raise UAMError("looped trace times must lie in [0, cycle)")
        self._times = ts
        self.cycle = float(cycle)
        if spec is None:
            # Infer from two tiled copies so the wrap-around seam is
            # part of the observed envelope.
            doubled = ts + [t + self.cycle for t in ts]
            spec = TraceArrivals._infer_spec(doubled)
        self.spec = spec

    def generate(self, horizon: float, rng: Optional[np.random.Generator] = None) -> List[float]:
        if not self._times or horizon <= 0.0:
            return []
        n_cycles = int(np.ceil(horizon / self.cycle))
        tiled = [
            k * self.cycle + t
            for k in range(n_cycles)
            for t in self._times
            if k * self.cycle + t < horizon
        ]
        return thin_to_uam(tiled, self.spec)

    def to_config(self) -> Dict[str, object]:
        return {
            "name": "trace-loop",
            "times": list(self._times),
            "cycle": self.cycle,
            "a": self.spec.max_arrivals,
            "window": self.spec.window,
        }
