"""The unimodal arbitrary arrival model (UAM).

A UAM specification ``⟨a, P⟩`` (Hermant & Le Lann, ICDCS'98; paper
Section 2.1) bounds a task's arrival process: **at most ``a`` job arrivals
occur during any sliding time window of length ``P``**.  Arrivals may be
simultaneous.  The periodic model is the special case ``⟨1, P⟩`` with the
bound tight both ways.

Window semantics: we use half-open windows ``[t, t + P)``.  A sorted
arrival sequence ``t_1 <= t_2 <= ...`` is compliant iff
``t_{k+a} - t_k >= P`` for every ``k`` — i.e. the (a+1)-th next arrival
falls outside the window opened by the k-th.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "UAMSpec",
    "UAMError",
    "effective_window",
    "max_count_in_any_window",
    "is_uam_compliant",
    "first_violation",
    "next_admissible_time",
    "thin_to_uam",
    "UAMTracker",
]


class UAMError(ValueError):
    """Raised for ill-formed UAM specifications or sequences."""


#: Relative tolerance for window comparisons: gaps produced by float
#: arithmetic (e.g. ``k * P`` accumulation) may undershoot ``P`` by a few
#: ulps; such gaps are treated as spanning the full window.
_TOL_REL = 1e-9


def effective_window(window: float) -> float:
    """The window shrunk by the comparison tolerance.

    This is the **single source of truth for the boundary**: a gap of
    exactly ``P`` (or undershooting it by at most a few ulps of float
    accumulation) spans the full window, so an arrival landing exactly
    at the trailing edge ``t = t_prev + P`` opens a *new* window and
    never counts against the old one.  Every consumer — the compliance
    checks below, :class:`UAMTracker`, the runtime's compliance monitor
    and the generators' thinning — compares gaps against this shrunk
    window so their notions of "inside the window" can never diverge.
    """
    return window - _TOL_REL * max(1.0, abs(window))


#: Backwards-compatible private alias (pre-1.1 internal name).
_effective_window = effective_window


@dataclass(frozen=True)
class UAMSpec:
    """Unimodal arbitrary arrival specification ``⟨a, P⟩``.

    Attributes
    ----------
    max_arrivals:
        ``a`` — the maximum number of arrivals in any sliding window.
    window:
        ``P`` — the sliding window length (seconds).
    """

    max_arrivals: int
    window: float

    def __post_init__(self) -> None:
        if self.max_arrivals < 1:
            raise UAMError(f"max_arrivals must be >= 1, got {self.max_arrivals!r}")
        if not (self.window > 0.0) or not math.isfinite(self.window):
            raise UAMError(f"window must be finite and > 0, got {self.window!r}")

    @property
    def is_periodic_equivalent(self) -> bool:
        """``⟨1, P⟩`` — the periodic model as a UAM special case."""
        return self.max_arrivals == 1

    @property
    def peak_rate(self) -> float:
        """Worst-case long-run arrival rate ``a / P`` (jobs per second)."""
        return self.max_arrivals / self.window

    def admits(self, times: Sequence[float]) -> bool:
        """Whether the sorted arrival sequence complies with this spec."""
        return is_uam_compliant(times, self)

    def scaled(self, time_factor: float) -> "UAMSpec":
        """Return the spec with its window stretched by ``time_factor``."""
        if time_factor <= 0.0:
            raise UAMError(f"time factor must be > 0, got {time_factor!r}")
        return UAMSpec(self.max_arrivals, self.window * time_factor)


def _check_sorted(times: Sequence[float]) -> None:
    for a, b in zip(times, times[1:]):
        if b < a:
            raise UAMError("arrival times must be sorted non-decreasingly")


def max_count_in_any_window(times: Sequence[float], window: float) -> int:
    """Maximum number of arrivals in any sliding half-open window.

    Runs in O(n) over the sorted sequence with a two-pointer sweep; the
    worst window always starts at an arrival instant.
    """
    if window <= 0.0:
        raise UAMError(f"window must be > 0, got {window!r}")
    _check_sorted(times)
    w = _effective_window(window)
    best = 0
    lo = 0
    for hi, t in enumerate(times):
        while t - times[lo] >= w:
            lo += 1
        best = max(best, hi - lo + 1)
    return best


def is_uam_compliant(times: Sequence[float], spec: UAMSpec) -> bool:
    """Whether the sorted sequence satisfies ``⟨a, P⟩``."""
    return first_violation(times, spec) is None


def first_violation(times: Sequence[float], spec: UAMSpec):
    """Index of the first arrival that overflows a window, or ``None``.

    If ``times[k + a] - times[k] < P`` for some ``k``, arrival ``k + a`` is
    the (a+1)-th within the window opened at ``times[k]``; the smallest
    such ``k + a`` is returned.
    """
    _check_sorted(times)
    a = spec.max_arrivals
    w = _effective_window(spec.window)
    for k in range(len(times) - a):
        if times[k + a] - times[k] < w:
            return k + a
    return None


def next_admissible_time(recent: Sequence[float], spec: UAMSpec, t: float) -> float:
    """Earliest instant ``>= t`` at which one more arrival keeps the
    stream ``⟨a, P⟩``-compliant, given the sorted arrivals already
    accepted (only the last ``a`` matter).

    With fewer than ``a`` prior arrivals — or with the a-th most recent
    at least the (tolerance-shrunk) window before ``t`` — the answer is
    ``t`` itself; otherwise the window opened by the a-th most recent
    arrival must close first: ``recent[-a] + P``.  Shares
    :func:`effective_window` with the compliance checks, so an arrival
    admitted at the returned instant always passes
    :func:`is_uam_compliant`.
    """
    a = spec.max_arrivals
    if len(recent) < a:
        return t
    anchor = recent[-a]
    if t - anchor >= effective_window(spec.window):
        return t
    return anchor + spec.window


def thin_to_uam(times: Sequence[float], spec: UAMSpec) -> List[float]:
    """Greedily drop arrivals so the sequence satisfies ``⟨a, P⟩``.

    Keeps every arrival that does not overflow the window opened by the
    a-th previous *kept* arrival.  Used to derive UAM-compliant traces
    from unconstrained processes (e.g. Poisson).
    """
    _check_sorted(times)
    kept: List[float] = []
    a = spec.max_arrivals
    w = _effective_window(spec.window)
    for t in times:
        if len(kept) < a or t - kept[-a] >= w:
            kept.append(t)
    return kept


class UAMTracker:
    """Online UAM admission control.

    Feed arrivals one at a time; :meth:`admit` reports whether accepting
    the arrival keeps the stream ``⟨a, P⟩``-compliant, and records it if
    so.  Useful both for enforcing UAM at simulation boundaries and for
    checking generator output incrementally.
    """

    def __init__(self, spec: UAMSpec):
        self.spec = spec
        self._recent: List[float] = []  # kept arrivals within the last window

    def would_admit(self, t: float) -> bool:
        """Whether an arrival at ``t`` would keep the stream compliant."""
        if self._recent and t < self._recent[-1]:
            raise UAMError(f"arrivals must be fed in order (got {t} after {self._recent[-1]})")
        w = _effective_window(self.spec.window)
        recent = [x for x in self._recent if t - x < w]
        return len(recent) < self.spec.max_arrivals

    def admit(self, t: float) -> bool:
        """Record the arrival if admissible; return the admission verdict."""
        ok = self.would_admit(t)
        if ok:
            w = _effective_window(self.spec.window)
            self._recent = [x for x in self._recent if t - x < w]
            self._recent.append(t)
        return ok

    @property
    def arrivals_in_current_window(self) -> int:
        """How many admitted arrivals remain inside the trailing window."""
        return len(self._recent)

    def remaining_budget(self, t: float) -> int:
        """How many more arrivals could be admitted at time ``t``."""
        w = _effective_window(self.spec.window)
        recent = [x for x in self._recent if t - x < w]
        return self.spec.max_arrivals - len(recent)
