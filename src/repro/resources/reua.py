"""REUA — resource-aware EUA* (after the EMSOFT'04 companion [17]).

EUA* extended with dependency-aware dispatching over shared resources:

1. Build the feasible UER-ordered schedule σ exactly as EUA* does,
   except that a *blocked* job's predicted completion must also wait
   for its blocker, so the blocker's remaining budget is charged ahead
   of it during feasibility checks.
2. Dispatch the head of σ — **or, when the head is blocked, dispatch
   its blocker instead** (transitively).  Executing the dependency
   chain's end is the GUS/DASA rule: it is the only way to make
   progress toward the blocked high-UER job, and it bounds priority
   inversion the way priority inheritance does.
3. decideFreq as in EUA* (the blocker inherits the urgency of the
   chain it unblocks).

Mutual exclusion is enforced here (never dispatch a job whose resource
is held by another started job); :mod:`repro.resources.audit` verifies
it post hoc from the trace.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..core.decide_freq import decide_freq
from ..core.eua import job_uer
from ..core.feasibility import insert_by_critical_time, job_feasible
from ..core.offline import TaskParams, offline_computing
from ..cpu import EnergyModel, FrequencyScale
from ..obs import EventKind
from ..sim.job import Job
from ..sim.scheduler import Decision, Scheduler, SchedulerView
from ..sim.task import TaskSet
from .model import ResourceMap

__all__ = ["REUA"]

_EPS = 1e-12


class REUA(Scheduler):
    """Resource-aware EUA*."""

    def __init__(
        self,
        resources: ResourceMap,
        name: str = "REUA",
        use_dvs: bool = True,
        use_fopt_bound: bool = True,
        dvs_method: str = "lookahead",
    ):
        self.name = name
        self.resources = resources
        self.use_dvs = bool(use_dvs)
        self.use_fopt_bound = bool(use_fopt_bound)
        self.dvs_method = dvs_method
        self._params: Dict[str, TaskParams] = {}
        #: Diagnostics: dispatches redirected to a blocker.
        self.inherited_dispatches = 0

    def setup(self, taskset: TaskSet, scale: FrequencyScale, energy_model: EnergyModel) -> None:
        self._params = offline_computing(taskset, scale, energy_model)
        self.inherited_dispatches = 0

    # ------------------------------------------------------------------
    def _chain_feasible(
        self, sigma: List[Job], candidate: Job, view: SchedulerView, f_max: float
    ) -> bool:
        """Feasibility of σ + candidate, charging each blocked job its
        blocker's remaining budget ahead of it (the blocker must finish
        first even though it sits elsewhere in σ)."""
        t = view.time
        tentative = insert_by_critical_time(sigma, candidate)
        clock = t
        charged: set = set()
        for job in tentative:
            blocker = self.resources.blocker_of(job, view)
            if blocker is not None and id(blocker) not in charged:
                if blocker not in tentative:
                    clock += blocker.remaining_budget / f_max
                    charged.add(id(blocker))
            clock += job.remaining_budget / f_max
            if clock >= job.termination - _EPS * max(1.0, abs(job.termination)):
                return False
        return True

    # ------------------------------------------------------------------
    def decide(self, view: SchedulerView) -> Decision:
        t = view.time
        f_m = view.scale.f_max
        model = view.energy_model
        obs = self.observer
        profiling = obs is not None and obs.profiler is not None
        t0 = perf_counter() if profiling else 0.0

        aborts: List[Job] = []
        ranked: List[Tuple[float, Job]] = []
        for job in view.ready:
            blocker = self.resources.blocker_of(job, view)
            slack_cost = blocker.remaining_budget if blocker is not None else 0.0
            # Individual feasibility must absorb the blocking delay.
            predicted = t + (job.remaining_budget + slack_cost) / f_m
            if predicted >= job.termination or not job_feasible(job, t, f_m):
                if job.task.abortable and blocker is None:
                    # A blocked job may become feasible when its blocker
                    # finishes early; only unblocked-infeasible jobs are
                    # safely hopeless.
                    if not job_feasible(job, t, f_m):
                        aborts.append(job)
                        continue
                if predicted >= job.termination:
                    continue
            ranked.append((job_uer(job, t, f_m, model), job))

        ranked.sort(key=lambda e: (-e[0], e[1].critical_time, e[1].release, e[1].index))

        # Every abort is now decided: resolve blocking against the
        # post-abort ready set.  An aborted holder releases its resources
        # the instant the engine applies the decision, so treating it as
        # a live blocker would dispatch a job the engine no longer holds
        # in its ready list.
        working = view.without(aborts) if aborts else view

        sigma: List[Job] = []
        for uer, job in ranked:
            if uer <= 0.0:
                break
            if self._chain_feasible(sigma, job, working, f_m):
                sigma = insert_by_critical_time(sigma, job)
                if obs is not None:
                    obs.emit(t, EventKind.INSERT, job.key, source=self.name,
                             uer=uer, sigma_len=len(sigma))
                    obs.inc("sigma_insertions")
            elif obs is not None:
                obs.emit(t, EventKind.REJECT, job.key, source=self.name,
                         reason="chain-infeasible", uer=uer)
                obs.inc("sigma_rejections", reason="chain-infeasible")
        if profiling:
            obs.record(f"{self.name}.construct", perf_counter() - t0)

        if not sigma:
            return Decision(job=None, frequency=f_m, aborts=tuple(aborts))

        # Dependency dispatch: follow the head's blocking chain.
        head = sigma[0]
        exec_job = head
        guard = 0
        while True:
            blocker = self.resources.blocker_of(exec_job, working)
            if blocker is None:
                break
            exec_job = blocker
            guard += 1
            if guard > len(working.ready) + 1:
                raise RuntimeError("blocking cycle detected (should be impossible "
                                   "with whole-job critical sections)")
        if exec_job is not head:
            self.inherited_dispatches += 1
            if obs is not None:
                obs.emit(t, EventKind.INHERIT, exec_job.key, source=self.name,
                         blocked_head=head.key, chain_depth=guard)
                obs.inc("inherited_dispatches")

        if self.use_dvs and view.dvs:
            if profiling:
                t1 = perf_counter()
            f_exe = decide_freq(
                working, exec_job, self._params,
                use_fopt_bound=self.use_fopt_bound, method=self.dvs_method,
                observer=obs, source=self.name,
            )
            if profiling:
                obs.record("decide_freq", perf_counter() - t1)
        else:
            f_exe = f_m
        return Decision(job=exec_job, frequency=f_exe, aborts=tuple(aborts))

    def decide_frequency(self, view, job):
        """Per-core ``decideFreq()`` for the global multicore engine
        (same contract as :meth:`repro.core.eua.EUAStar.decide_frequency`)."""
        if not self.use_dvs:
            return None
        return decide_freq(
            view, job, self._params,
            use_fopt_bound=self.use_fopt_bound, method=self.dvs_method,
            observer=self.observer, source=self.name,
        )
