"""Mutual-exclusion auditing from recorded execution traces.

Since the engine is resource-agnostic, a resource-aware policy's
correctness is verified *post hoc*: replay the trace and check that,
for every resource, the execution segments of distinct holding jobs
never interleave inside their holding spans.

With whole-job critical sections a job holds its resources from its
first executed instant to its completion/abort instant; interleaving
means another job of the same resource executed inside that span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.engine import SimulationResult
from ..sim.job import JobStatus
from .model import ResourceMap

__all__ = ["ExclusionViolation", "audit_mutual_exclusion"]

_EPS = 1e-9


@dataclass(frozen=True)
class ExclusionViolation:
    """One detected overlap on a resource."""

    resource: str
    holder: str
    intruder: str
    time: float


def _holding_spans(result: SimulationResult, resources: ResourceMap) -> Dict[str, List[Tuple[float, float, str]]]:
    """Per resource: (start, end, job_key) holding intervals."""
    trace = result.trace
    if trace is None:
        raise ValueError("audit requires a run with record_trace=True")
    first_exec: Dict[str, float] = {}
    for seg in trace.busy_segments():
        if seg.job_key not in first_exec:
            first_exec[seg.job_key] = seg.start
    spans: Dict[str, List[Tuple[float, float, str]]] = {}
    for job in result.jobs:
        if job.key not in first_exec:
            continue  # never ran: never held anything
        needs = resources.resources_of(job.task.name)
        if not needs:
            continue
        start = first_exec[job.key]
        if job.status is JobStatus.COMPLETED:
            end = job.completion_time
        elif job.abort_time is not None:
            end = job.abort_time
        else:  # still pending at the horizon: held to the end
            end = result.horizon
        for r in needs:
            spans.setdefault(r, []).append((start, end, job.key))
    return spans


def audit_mutual_exclusion(
    result: SimulationResult, resources: ResourceMap
) -> List[ExclusionViolation]:
    """All mutual-exclusion violations in a recorded run (empty = clean).

    A violation is an execution segment of job B inside job A's holding
    span of a resource both need.
    """
    trace = result.trace
    spans = _holding_spans(result, resources)
    violations: List[ExclusionViolation] = []
    job_resources = {j.key: resources.resources_of(j.task.name) for j in result.jobs}
    for resource, intervals in spans.items():
        for start, end, holder in intervals:
            for seg in trace.busy_segments():
                if seg.job_key == holder:
                    continue
                if resource not in job_resources.get(seg.job_key, frozenset()):
                    continue
                overlap_start = max(seg.start, start)
                overlap_end = min(seg.end, end)
                if overlap_end > overlap_start + _EPS:
                    violations.append(
                        ExclusionViolation(
                            resource=resource,
                            holder=holder,
                            intruder=seg.job_key,
                            time=overlap_start,
                        )
                    )
    return violations
