"""Shared-resource scheduling (the EMSOFT'04 companion dimension)."""

from .audit import ExclusionViolation, audit_mutual_exclusion
from .model import Resource, ResourceError, ResourceMap
from .reua import REUA

__all__ = [
    "Resource",
    "ResourceMap",
    "ResourceError",
    "REUA",
    "ExclusionViolation",
    "audit_mutual_exclusion",
]
