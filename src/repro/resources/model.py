"""Shared-resource model (after the paper's companion, EMSOFT'04 [17]).

The DATE'05 paper cites its resource-constrained companion for the
Theorem 2–5 proofs ("Energy-Efficient, Utility Accrual Scheduling under
Resource Constraints").  This package implements that dimension in its
clean single-unit form:

* a :class:`Resource` is a serially reusable, single-unit, non-
  preemptable resource (a lock, a DMA channel, a radio);
* a task declares the set of resources each of its jobs holds for the
  *whole* of its execution (whole-job critical sections — acquisition
  when the job first runs, release when it completes or is aborted).
  Whole-job sections make acquisition atomic, so deadlock is impossible
  by construction and the interesting problem — *who to run when the
  best job is blocked* — stays front and centre;
* :class:`ResourceMap` binds task names to resource sets and answers
  blocking queries against a scheduler view.

Mutual exclusion is a **scheduler obligation**, deliberately not an
engine feature: the engine stays policy-neutral and the
:mod:`repro.resources.audit` module verifies, from the recorded trace,
that no two holders of a resource ever interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from ..sim.job import Job
from ..sim.scheduler import SchedulerView

__all__ = ["Resource", "ResourceMap", "ResourceError"]


class ResourceError(ValueError):
    """Raised for ill-formed resource declarations."""


@dataclass(frozen=True)
class Resource:
    """A serially reusable, single-unit resource."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise ResourceError("resource name must be non-empty")


class ResourceMap:
    """Task-name → resource-set bindings plus blocking queries.

    A job *holds* its task's resources from its first executed cycle
    until it leaves the pending set (completion, abortion, expiry) —
    the engine removes finished jobs from the ready list, so "pending
    with ``executed > 0``" is exactly the holder condition.
    """

    def __init__(self, requirements: Mapping[str, Iterable[str]]):
        self._req: Dict[str, FrozenSet[str]] = {}
        for task_name, resources in requirements.items():
            rs = frozenset(str(r) for r in resources)
            for r in rs:
                if not r:
                    raise ResourceError(f"empty resource name for task {task_name!r}")
            self._req[task_name] = rs

    # ------------------------------------------------------------------
    def resources_of(self, task_name: str) -> FrozenSet[str]:
        return self._req.get(task_name, frozenset())

    def uses_resources(self, task_name: str) -> bool:
        return bool(self.resources_of(task_name))

    @property
    def all_resources(self) -> Set[str]:
        out: Set[str] = set()
        for rs in self._req.values():
            out |= rs
        return out

    # ------------------------------------------------------------------
    def holders(self, view: SchedulerView) -> Dict[str, Job]:
        """Current holder of each held resource.

        With whole-job sections and atomic acquisition there is at most
        one started unfinished job per resource.
        """
        held: Dict[str, Job] = {}
        for job in view.ready:
            if job.executed <= 0.0:
                continue
            for r in self.resources_of(job.task.name):
                held[r] = job
        return held

    def blocker_of(self, job: Job, view: SchedulerView) -> Optional[Job]:
        """The job currently blocking ``job``, if any.

        ``job`` is blocked when some resource it needs is held by a
        *different* started unfinished job.
        """
        needs = self.resources_of(job.task.name)
        if not needs:
            return None
        for holder_resource, holder in self.holders(view).items():
            if holder_resource in needs and holder is not job:
                return holder
        return None

    def is_blocked(self, job: Job, view: SchedulerView) -> bool:
        return self.blocker_of(job, view) is not None

    def blocked_jobs(self, view: SchedulerView) -> List[Job]:
        return [j for j in view.ready if self.is_blocked(j, view)]
