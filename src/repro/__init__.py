"""repro — Energy-Efficient, Utility Accrual Real-Time Scheduling under UAM.

A full reproduction of the DATE 2005 paper by Wu, Ravindran and Jensen:
the EUA* scheduler, the unimodal arbitrary arrival model, time/utility
functions, Martin's system-level energy model, a discrete-event DVS
uniprocessor simulator, the Pillai–Shin RT-DVS baselines, and the
paper's complete experimental evaluation.

Quickstart::

    from repro import (
        Task, TaskSet, StepTUF, NormalDemand, UAMSpec,
        EUAStar, EDFStatic, Platform, compare,
    )

    task = Task("control", StepTUF(height=10.0, deadline=0.05),
                NormalDemand(mean=5.0), UAMSpec(1, 0.05))
    results = compare([EUAStar(), EDFStatic()], TaskSet([task]),
                      platform=Platform.powernow_k6(), horizon=10.0, seed=1)
"""

from .arrivals import (
    ArrivalGenerator,
    BurstUAMArrivals,
    JitteredPeriodicArrivals,
    PeriodicArrivals,
    PoissonUAMArrivals,
    ScatteredUAMArrivals,
    SporadicArrivals,
    TraceArrivals,
    UAMSpec,
)
from .core import EUAStar, offline_computing, uer_optimal_frequency
from .cpu import EnergyModel, FrequencyScale, Processor
from .demand import (
    DemandDistribution,
    DeterministicDemand,
    EmpiricalDemand,
    ExponentialDemand,
    GammaDemand,
    NormalDemand,
    UniformDemand,
    chebyshev_allocation,
)
from .runtime import AdaptiveRuntime, RuntimeConfig, ViolationPolicy
from .sched import (
    CCEDF,
    LAEDF,
    Decision,
    EDFStatic,
    Scheduler,
    SchedulerView,
    StaticEDF,
    available_schedulers,
    make_scheduler,
)
from .sim import (
    Job,
    JobStatus,
    Metrics,
    Platform,
    SimulationResult,
    Task,
    TaskSet,
    WorkloadTrace,
    compare,
    materialize,
    simulate,
)
from .tuf import (
    TUF,
    ExponentialDecayTUF,
    LinearTUF,
    MultiStepTUF,
    PiecewiseLinearTUF,
    QuadraticDecayTUF,
    StepTUF,
    TabulatedTUF,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # tuf
    "TUF",
    "StepTUF",
    "LinearTUF",
    "PiecewiseLinearTUF",
    "MultiStepTUF",
    "ExponentialDecayTUF",
    "QuadraticDecayTUF",
    "TabulatedTUF",
    # arrivals
    "UAMSpec",
    "ArrivalGenerator",
    "PeriodicArrivals",
    "JitteredPeriodicArrivals",
    "SporadicArrivals",
    "BurstUAMArrivals",
    "ScatteredUAMArrivals",
    "PoissonUAMArrivals",
    "TraceArrivals",
    # demand
    "DemandDistribution",
    "DeterministicDemand",
    "NormalDemand",
    "UniformDemand",
    "ExponentialDemand",
    "GammaDemand",
    "EmpiricalDemand",
    "chebyshev_allocation",
    # cpu
    "FrequencyScale",
    "EnergyModel",
    "Processor",
    # sim
    "Task",
    "TaskSet",
    "Job",
    "JobStatus",
    "WorkloadTrace",
    "materialize",
    "Metrics",
    "SimulationResult",
    "Platform",
    "simulate",
    "compare",
    # sched / core
    "Scheduler",
    "SchedulerView",
    "Decision",
    "EDFStatic",
    "StaticEDF",
    "CCEDF",
    "LAEDF",
    "EUAStar",
    "make_scheduler",
    "available_schedulers",
    "offline_computing",
    "uer_optimal_frequency",
    # runtime
    "AdaptiveRuntime",
    "RuntimeConfig",
    "ViolationPolicy",
]
