"""Seed-parallel Monte-Carlo assurance campaigns.

One campaign answers the question the paper's requirement model poses
but a single simulation cannot: *does the scheduler actually deliver*
``Pr[accrued utility ≥ ν_i·U_max] ≥ ρ_i`` *for every task* — over the
distribution of workloads, not one lucky trace?  It runs ``n``
independently-materialised replications (seed, seed+1, …), each a fresh
Table-1-style synthesis + arrival materialisation, streams the
per-replication scalar summaries into Welford accumulators, pools the
per-task binomial outcomes, and reports two-sided Wilson intervals with
a pass / fail / inconclusive verdict per scheduler.

Determinism contract (pinned by ``tests/stats/test_campaign.py``):

* every replication is a pure function of its picklable specs, so the
  campaign aggregate is **bit-identical** at any ``workers`` setting —
  folding always happens in the main process, in seed order;
* a :class:`~repro.stats.cache.RunCache` hit replaces the simulation
  with a JSON round-trip that preserves floats exactly, so cache-warm
  re-runs reproduce cache-cold aggregates bit-for-bit while simulating
  nothing.

The optional :class:`~repro.stats.estimators.EarlyStopRule` stops a
campaign at a batch boundary once every (scheduler, task) requirement
is decided at a stricter-than-reporting confidence.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.assurance import wilson_interval
from ..analysis.stats import SummaryStat
from ..experiments.config import TABLE1, AppSetting
from ..experiments.parallel import (
    PlatformSpec,
    SchedulerSpec,
    WorkloadSpec,
    run_chunked,
    run_sweep,
)
from ..obs import Telemetry
from .cache import RunCache, run_cache_key
from .estimators import EarlyStopRule, MetricAccumulator, assurance_verdict

__all__ = [
    "CampaignConfig",
    "ReplicationSpec",
    "ReplicationSummary",
    "TaskAssurance",
    "SchedulerStats",
    "CampaignResult",
    "run_campaign",
    "run_campaign_reference",
]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign (and its cache identity).

    The workload fields mirror
    :class:`~repro.experiments.parallel.WorkloadSpec`; replication
    ``k`` uses seed ``base_seed + k`` so campaigns with overlapping
    seed ranges share cache entries.
    """

    load: float = 0.8
    horizon: float = 2.0
    schedulers: Tuple[str, ...] = ("EUA*",)
    n_replications: int = 200
    base_seed: int = 11
    confidence: float = 0.95
    tuf_shape: str = "step"
    nu: float = 1.0
    rho: float = 0.96
    arrival_mode: str = "periodic"
    burst_override: Optional[int] = None
    apps: Tuple[AppSetting, ...] = TABLE1
    energy: str = "E1"
    f_max: float = 1000.0
    early_stop: Optional[EarlyStopRule] = None
    #: Multicore dimension: ``cores > 1`` runs every replication through
    #: :func:`repro.mp.simulate_mp` in ``mp_mode``, with the workload
    #: sized to ``load · cores`` (``load`` stays the per-core knob).
    cores: int = 1
    mp_mode: str = "partitioned"
    partition_strategy: str = "wfd"
    active_power: float = 0.0
    #: Arrival-shape dimension: extra ``(key, value)`` factory params
    #: for ``arrival_mode`` (see ``repro.arrivals``).  Part of the
    #: cache identity via :meth:`workload_spec`.
    arrival_params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.n_replications < 1:
            raise ValueError("n_replications must be >= 1")
        if not self.schedulers:
            raise ValueError("at least one scheduler is required")
        if not (0.0 < self.confidence < 1.0):
            raise ValueError("confidence must lie in (0, 1)")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.mp_mode not in ("partitioned", "global"):
            raise ValueError(f"unknown mp mode {self.mp_mode!r}")

    # -- picklable spec builders ---------------------------------------
    def scheduler_specs(self) -> Tuple[SchedulerSpec, ...]:
        return tuple(SchedulerSpec.registry(name) for name in self.schedulers)

    def platform_spec(self) -> PlatformSpec:
        return PlatformSpec(
            energy=self.energy,
            f_max=self.f_max,
            cores=self.cores,
            mp_mode=self.mp_mode,
            partition_strategy=self.partition_strategy,
            active_power=self.active_power,
        )

    def workload_spec(self, seed: int) -> WorkloadSpec:
        return WorkloadSpec(
            load=self.load,
            seed=seed,
            horizon=self.horizon,
            tuf_shape=self.tuf_shape,
            nu=self.nu,
            rho=self.rho,
            arrival_mode=self.arrival_mode,
            burst_override=self.burst_override,
            apps=self.apps,
            f_max=self.f_max,
            cores=self.cores,
            arrival_params=self.arrival_params,
        )

    @property
    def seeds(self) -> Tuple[int, ...]:
        return tuple(range(self.base_seed, self.base_seed + self.n_replications))


# ----------------------------------------------------------------------
# One replication
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicationSpec:
    """Picklable work item: one workload through every scheduler."""

    workload: WorkloadSpec
    platform: PlatformSpec
    schedulers: Tuple[SchedulerSpec, ...]


@dataclass
class ReplicationSummary:
    """The streamed record of one replication.

    Scalar metrics come from :meth:`repro.sim.Metrics.summary`;
    ``assurance`` pools per task as ``[satisfied, decided]`` where
    *decided* excludes jobs still pending at the horizon (censored,
    not failed).  The record is JSON-round-trip exact, which is what
    lets the cache substitute for the simulation.
    """

    seed: int
    metrics: Dict[str, Dict[str, float]]
    assurance: Dict[str, Dict[str, List[int]]]
    requirements: Dict[str, List[float]]

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "ReplicationSummary":
        return cls(
            seed=int(payload["seed"]),
            metrics={
                sched: {k: float(v) for k, v in summary.items()}
                for sched, summary in payload["metrics"].items()
            },
            assurance={
                sched: {task: [int(c[0]), int(c[1])] for task, c in counts.items()}
                for sched, counts in payload["assurance"].items()
            },
            requirements={
                task: [float(v[0]), float(v[1])]
                for task, v in payload["requirements"].items()
            },
        )


def _run_replication(spec: ReplicationSpec) -> ReplicationSummary:
    """Simulate one replication (top-level so it pickles under spawn).

    ``spec.platform.cores > 1`` routes each scheduler arm through the
    multicore engine; the summary then carries the extra ``migrations``
    scalar (0 in partitioned mode, so the field is still comparable
    across modes).
    """
    taskset, trace = spec.workload.build()
    metrics: Dict[str, Dict[str, float]] = {}
    assurance: Dict[str, Dict[str, List[int]]] = {}
    if spec.platform.cores > 1:
        from ..mp import simulate_mp

        mp_platform = spec.platform.build_mp()
        for sched_spec in spec.schedulers:
            name = sched_spec.display_name
            if name in metrics:
                raise ValueError(f"duplicate scheduler name {name!r}")
            result = simulate_mp(
                trace,
                sched_spec.build,
                mp_platform,
                mode=spec.platform.mp_mode,
                strategy=spec.platform.partition_strategy,
            )
            m = result.metrics
            metrics[name] = m.summary()
            metrics[name]["migrations"] = float(result.migrations)
            assurance[name] = {
                task: [tm.met_requirement, tm.released - tm.unfinished]
                for task, tm in m.per_task.items()
            }
        return ReplicationSummary(
            seed=spec.workload.seed,
            metrics=metrics,
            assurance=assurance,
            requirements={t.name: [t.nu, t.rho] for t in taskset},
        )
    from ..sim.runner import simulate

    platform = spec.platform.build()
    for sched_spec in spec.schedulers:
        scheduler = sched_spec.build()
        if scheduler.name in metrics:
            raise ValueError(f"duplicate scheduler name {scheduler.name!r}")
        result = simulate(trace, scheduler, platform)
        m = result.metrics
        metrics[scheduler.name] = m.summary()
        assurance[scheduler.name] = {
            name: [tm.met_requirement, tm.released - tm.unfinished]
            for name, tm in m.per_task.items()
        }
    return ReplicationSummary(
        seed=spec.workload.seed,
        metrics=metrics,
        assurance=assurance,
        requirements={t.name: [t.nu, t.rho] for t in taskset},
    )


def _run_replication_batch(
    config: "CampaignConfig", seeds: Sequence[int]
) -> Tuple[List[ReplicationSummary], Dict[str, Dict[str, List[object]]]]:
    """One chunked pool task: simulate ``seeds`` against the shared
    campaign config, folding the pooled assurance counts worker-side.

    The config is the :func:`~repro.experiments.parallel.run_chunked`
    shared payload — deserialised once per worker — so the only
    per-chunk traffic is a list of ints out and the summaries back.
    Pooled counts are exact integers (order-independent under
    addition), so folding them here is safe; the Welford metric fold
    stays in the main process, in seed order, to keep aggregates
    bit-identical at any chunking (see the determinism contract above).
    """
    platform = config.platform_spec()
    scheduler_specs = config.scheduler_specs()
    summaries = [
        _run_replication(
            ReplicationSpec(
                workload=config.workload_spec(seed),
                platform=platform,
                schedulers=scheduler_specs,
            )
        )
        for seed in seeds
    ]
    return summaries, _pooled_counts(summaries)


# ----------------------------------------------------------------------
# Aggregated result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskAssurance:
    """Pooled empirical attainment of one task's ``{ν, ρ}``."""

    task: str
    nu: float
    rho: float
    decided: int
    satisfied: int
    attainment: float
    ci_low: float
    ci_high: float
    verdict: str


@dataclass
class SchedulerStats:
    """One scheduler's campaign aggregate."""

    name: str
    metrics: Dict[str, SummaryStat]
    assurance: List[TaskAssurance]
    #: Replication-level Bernoulli outcome for the threshold study: a
    #: replication *succeeds* when every task with at least one decided
    #: job attains its ``ρ_i`` empirically within that replication.
    #: ``replication_decided`` counts replications contributing an
    #: outcome (at least one decided job anywhere).
    replication_successes: int = 0
    replication_decided: int = 0

    @property
    def assurance_probability(self) -> float:
        """Empirical ``Pr[assurance met]`` over replications (1.0 when
        no replication decided anything — vacuous success)."""
        if self.replication_decided == 0:
            return 1.0
        return self.replication_successes / self.replication_decided

    def assurance_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Wilson interval for :attr:`assurance_probability`."""
        if self.replication_decided == 0:
            return (0.0, 1.0)
        return wilson_interval(
            self.replication_successes, self.replication_decided, confidence
        )

    @property
    def verdict(self) -> str:
        """``fail`` dominates ``inconclusive`` dominates ``pass``."""
        verdicts = {a.verdict for a in self.assurance}
        if "fail" in verdicts:
            return "fail"
        if "inconclusive" in verdicts or not verdicts:
            return "inconclusive"
        return "pass"


@dataclass
class CampaignResult:
    """A completed (possibly early-stopped) campaign."""

    config: CampaignConfig
    n_planned: int
    n_completed: int
    n_simulated: int
    n_cached: int
    stopped_early: bool
    schedulers: Dict[str, SchedulerStats] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        verdicts = {s.verdict for s in self.schedulers.values()}
        if "fail" in verdicts:
            return "fail"
        if "inconclusive" in verdicts or not verdicts:
            return "inconclusive"
        return "pass"

    @property
    def ok(self) -> bool:
        return self.verdict != "fail"

    def assurance_rows(self) -> List[Dict[str, object]]:
        """Flat rows (scheduler × task) for reporting."""
        out: List[Dict[str, object]] = []
        for stats in self.schedulers.values():
            for a in stats.assurance:
                out.append(
                    {
                        "scheduler": stats.name,
                        "task": a.task,
                        "nu": a.nu,
                        "rho": a.rho,
                        "decided": a.decided,
                        "attainment": a.attainment,
                        "ci_low": a.ci_low,
                        "ci_high": a.ci_high,
                        "verdict": a.verdict,
                    }
                )
        return out

    def metric_rows(self, names: Sequence[str]) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for stats in self.schedulers.values():
            row: Dict[str, object] = {"scheduler": stats.name}
            for name in names:
                stat = stats.metrics.get(name)
                row[name] = f"{stat}" if stat is not None else "-"
            out.append(row)
        return out


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def _pooled_counts(
    summaries: Sequence[ReplicationSummary],
) -> Dict[str, Dict[str, List[object]]]:
    """``scheduler → task → [satisfied, decided, rho]`` over summaries."""
    pooled: Dict[str, Dict[str, List[object]]] = {}
    for summary in summaries:
        for sched, counts in summary.assurance.items():
            bucket = pooled.setdefault(sched, {})
            for task, (satisfied, decided) in counts.items():
                rho = summary.requirements[task][1]
                entry = bucket.setdefault(task, [0, 0, rho])
                entry[0] += satisfied
                entry[1] += decided
    return pooled


#: Slop for the per-replication attainment comparison — matches the
#: Wilson machinery's tolerance in ``assurance_verdict``.
_RHO_SLOP = 1e-12


def _replication_success(summary: ReplicationSummary, sched: str) -> Optional[bool]:
    """One replication's Bernoulli assurance outcome for ``sched``.

    ``True`` iff every task with at least one decided job attained its
    ``ρ_i`` within this replication; ``None`` when nothing was decided
    (censored replication — contributes no outcome).
    """
    counts = summary.assurance.get(sched)
    if not counts:
        return None
    decided_any = False
    for task, (satisfied, decided) in counts.items():
        if decided == 0:
            continue
        decided_any = True
        rho = summary.requirements[task][1]
        if satisfied < rho * decided - _RHO_SLOP:
            return False
    return True if decided_any else None


def _aggregate(
    config: CampaignConfig,
    summaries: Sequence[ReplicationSummary],
    n_simulated: int,
    n_cached: int,
    stopped_early: bool,
) -> CampaignResult:
    accumulators: Dict[str, MetricAccumulator] = {
        name: MetricAccumulator() for name in config.schedulers
    }
    for summary in summaries:
        for sched, metrics in summary.metrics.items():
            accumulators[sched].fold(metrics)
    pooled = _pooled_counts(summaries)
    result = CampaignResult(
        config=config,
        n_planned=config.n_replications,
        n_completed=len(summaries),
        n_simulated=n_simulated,
        n_cached=n_cached,
        stopped_early=stopped_early,
    )
    nu_by_task = {}
    for summary in summaries:
        for task, (nu, _rho) in summary.requirements.items():
            nu_by_task.setdefault(task, nu)
    for sched in config.schedulers:
        assurance: List[TaskAssurance] = []
        for task in sorted(pooled.get(sched, {})):
            satisfied, decided, rho = pooled[sched][task]
            attainment = satisfied / decided if decided else 1.0
            if decided:
                low, high = wilson_interval(satisfied, decided, config.confidence)
            else:
                low, high = 0.0, 1.0
            assurance.append(
                TaskAssurance(
                    task=task,
                    nu=nu_by_task.get(task, config.nu),
                    rho=rho,
                    decided=decided,
                    satisfied=satisfied,
                    attainment=attainment,
                    ci_low=low,
                    ci_high=high,
                    verdict=assurance_verdict(satisfied, decided, rho, config.confidence),
                )
            )
        successes = 0
        decided_reps = 0
        for summary in summaries:
            outcome = _replication_success(summary, sched)
            if outcome is None:
                continue
            decided_reps += 1
            if outcome:
                successes += 1
        result.schedulers[sched] = SchedulerStats(
            name=sched,
            metrics=accumulators[sched].stats(config.confidence),
            assurance=assurance,
            replication_successes=successes,
            replication_decided=decided_reps,
        )
    return result


def _merge_pooled(
    into: Dict[str, Dict[str, List[object]]],
    partial: Dict[str, Dict[str, List[object]]],
) -> None:
    """Fold a worker-side partial pool into the running pool.

    Counts are exact integers, so the merge is order-independent and
    the running pool equals :func:`_pooled_counts` over all folded
    summaries bit-for-bit — which is what keeps chunked early-stop
    decisions identical to the reference's re-pool-everything pass.
    """
    for sched, counts in partial.items():
        bucket = into.setdefault(sched, {})
        for task, (satisfied, decided, rho) in counts.items():
            entry = bucket.get(task)
            if entry is None:
                bucket[task] = [satisfied, decided, rho]
            else:
                entry[0] += satisfied
                entry[1] += decided


def _span(telemetry: Optional[Telemetry], name: str):
    """``telemetry.tracer.span(name)`` or a no-op context manager."""
    return telemetry.tracer.span(name) if telemetry is not None else nullcontext()


def run_campaign(
    config: CampaignConfig,
    workers: int = 1,
    cache: Optional[RunCache] = None,
    telemetry: Optional[Telemetry] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Run (or resume) a Monte-Carlo campaign.

    Cached replications are loaded first; the remainder runs through
    :func:`~repro.experiments.parallel.run_chunked` — each pool task
    simulates a *chunk* of seeds against the campaign config, which is
    shipped once per worker as the pool's shared payload instead of
    once per replication.  ``chunk_size`` pins the seeds-per-task
    grain; the default auto-sizes from ``workers`` and the batch
    budget (~4 chunks per worker, never crossing an early-stop batch
    boundary).  With a stopping rule the batches follow
    ``early_stop.check_every`` and the rule is also consulted *before*
    the first batch, so a warm cache can satisfy an early-stopped
    campaign with zero simulations.

    Chunking is an execution detail, not an identity: per-replication
    summaries return to the calling process and are folded in seed
    order, so the aggregate is bit-identical at any ``workers`` /
    ``chunk_size`` setting (and to :func:`run_campaign_reference`, the
    retained per-replication dispatch oracle) — only the pooled
    assurance *counts* (exact ints, order-independent) are pre-folded
    worker-side.  Cache keys never see the chunking either.

    ``telemetry`` (optional) records the campaign's phase spans
    (``campaign.plan`` / ``campaign.cache`` / ``campaign.stop_check`` /
    ``campaign.simulate`` / ``campaign.fold`` under a ``campaign``
    root), the per-chunk ``pool.chunk`` spans (serial) or worker-lane
    busy intervals (pool), and the hit/miss/replication/worker-fold
    counters a :class:`~repro.obs.PhaseReport` turns into reps/sec and
    cache hit rate.  The aggregate is bit-identical with and without
    it.
    """
    with _span(telemetry, "campaign"):
        keys: Dict[int, str] = {}
        summaries: Dict[int, ReplicationSummary] = {}
        todo: List[int] = []
        with _span(telemetry, "campaign.plan"):
            platform = config.platform_spec()
            scheduler_specs = config.scheduler_specs()
        n_cached = 0
        with _span(telemetry, "campaign.cache"):
            for seed in config.seeds:
                if cache is not None:
                    keys[seed] = run_cache_key(
                        config.workload_spec(seed), platform, scheduler_specs
                    )
                    payload = cache.get(keys[seed])
                    if payload is not None:
                        summaries[seed] = ReplicationSummary.from_dict(payload)
                        n_cached += 1
                        if telemetry is not None:
                            telemetry.count("campaign.cache_hits")
                        continue
                    if telemetry is not None:
                        telemetry.count("campaign.cache_misses")
                todo.append(seed)

        rule = config.early_stop
        batch = rule.check_every if rule is not None else max(1, len(todo))
        # Running pool for the stop checks: cached summaries up front,
        # worker-side partials folded in as chunks complete.
        pooled: Dict[str, Dict[str, List[object]]] = _pooled_counts(
            [summaries[s] for s in sorted(summaries)]
        )
        stopped_early = False
        n_simulated = 0
        index = 0
        while index < len(todo):
            if rule is not None:
                with _span(telemetry, "campaign.stop_check"):
                    counts = [
                        tuple(entry)
                        for sched in config.schedulers
                        for _, entry in sorted(pooled.get(sched, {}).items())
                    ]
                    stop = rule.should_stop(len(summaries), counts)
                if stop:
                    stopped_early = True
                    break
            seeds_batch = todo[index : index + batch]
            with _span(telemetry, "campaign.simulate"):
                for chunk_summaries, partial_pool in run_chunked(
                    _run_replication_batch,
                    seeds_batch,
                    shared=config,
                    max_workers=workers,
                    chunk_size=chunk_size,
                    telemetry=telemetry,
                ):
                    _merge_pooled(pooled, partial_pool)
                    if telemetry is not None:
                        telemetry.count("campaign.worker_folds", len(chunk_summaries))
                    for summary in chunk_summaries:
                        summaries[summary.seed] = summary
                        n_simulated += 1
                        if telemetry is not None:
                            telemetry.count("campaign.reps_simulated")
                        if cache is not None:
                            cache.put(keys[summary.seed], summary.to_dict())
            index += len(seeds_batch)

        with _span(telemetry, "campaign.fold"):
            ordered = [summaries[s] for s in sorted(summaries)]
            # Cached-but-unused entries beyond an early stop still count
            # toward the aggregate: free evidence, already paid for.
            return _aggregate(config, ordered, n_simulated, n_cached, stopped_early)


def run_campaign_reference(
    config: CampaignConfig,
    workers: int = 1,
    cache: Optional[RunCache] = None,
    telemetry: Optional[Telemetry] = None,
) -> CampaignResult:
    """The pre-chunking campaign driver: one pool task per replication,
    full spec pickled per task, stop checks re-pooling every summary.

    Retained as the equivalence oracle for :func:`run_campaign` — the
    chunk-equivalence property suite pins folded aggregates, verdicts,
    and cache interaction as bit-identical across the two drivers at
    any ``workers`` / ``chunk_size`` setting.
    """
    with _span(telemetry, "campaign"):
        specs: Dict[int, ReplicationSpec] = {}
        keys: Dict[int, str] = {}
        summaries: Dict[int, ReplicationSummary] = {}
        todo: List[ReplicationSpec] = []
        with _span(telemetry, "campaign.plan"):
            platform = config.platform_spec()
            scheduler_specs = config.scheduler_specs()
            for seed in config.seeds:
                specs[seed] = ReplicationSpec(
                    workload=config.workload_spec(seed),
                    platform=platform,
                    schedulers=scheduler_specs,
                )
        n_cached = 0
        with _span(telemetry, "campaign.cache"):
            for seed in config.seeds:
                spec = specs[seed]
                if cache is not None:
                    keys[seed] = run_cache_key(spec.workload, platform, scheduler_specs)
                    payload = cache.get(keys[seed])
                    if payload is not None:
                        summaries[seed] = ReplicationSummary.from_dict(payload)
                        n_cached += 1
                        if telemetry is not None:
                            telemetry.count("campaign.cache_hits")
                        continue
                    if telemetry is not None:
                        telemetry.count("campaign.cache_misses")
                todo.append(spec)

        rule = config.early_stop
        batch = rule.check_every if rule is not None else max(1, len(todo))
        stopped_early = False
        n_simulated = 0
        index = 0
        while index < len(todo):
            if rule is not None:
                with _span(telemetry, "campaign.stop_check"):
                    done = [summaries[s] for s in sorted(summaries)]
                    pooled = _pooled_counts(done)
                    counts = [
                        tuple(entry)
                        for sched in config.schedulers
                        for _, entry in sorted(pooled.get(sched, {}).items())
                    ]
                    stop = rule.should_stop(len(done), counts)
                if stop:
                    stopped_early = True
                    break
            chunk = todo[index : index + batch]
            with _span(telemetry, "campaign.simulate"):
                for summary in run_sweep(
                    _run_replication, chunk, max_workers=workers, telemetry=telemetry
                ):
                    summaries[summary.seed] = summary
                    n_simulated += 1
                    if telemetry is not None:
                        telemetry.count("campaign.reps_simulated")
                    if cache is not None:
                        cache.put(keys[summary.seed], summary.to_dict())
            index += len(chunk)

        with _span(telemetry, "campaign.fold"):
            ordered = [summaries[s] for s in sorted(summaries)]
            return _aggregate(config, ordered, n_simulated, n_cached, stopped_early)
