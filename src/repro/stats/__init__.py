"""Monte-Carlo assurance verification (``repro.stats``).

Seed-parallel replication campaigns over independently-materialised
workloads: Welford-streamed metric aggregates with confidence
half-widths, pooled per-task ``{ν, ρ}`` attainment with two-sided
Wilson intervals and a pass/fail/inconclusive verdict, an optional
sequential early-stopping rule, and a content-addressed run cache so
interrupted campaigns resume instead of recompute.  See
``docs/statistics.md`` for the estimator choices and worked examples.
"""

from .cache import CACHE_RECORD_VERSION, RunCache, run_cache_key
from .campaign import (
    CampaignConfig,
    CampaignResult,
    ReplicationSpec,
    ReplicationSummary,
    SchedulerStats,
    TaskAssurance,
    run_campaign,
    run_campaign_reference,
)
from .estimators import EarlyStopRule, MetricAccumulator, assurance_verdict
from .report import HEADLINE_METRICS, render_campaign

__all__ = [
    "CACHE_RECORD_VERSION",
    "RunCache",
    "run_cache_key",
    "CampaignConfig",
    "CampaignResult",
    "ReplicationSpec",
    "ReplicationSummary",
    "SchedulerStats",
    "TaskAssurance",
    "run_campaign",
    "run_campaign_reference",
    "EarlyStopRule",
    "MetricAccumulator",
    "assurance_verdict",
    "HEADLINE_METRICS",
    "render_campaign",
]
