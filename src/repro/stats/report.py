"""Human-readable rendering of campaign results."""

from __future__ import annotations

from typing import Sequence

from ..experiments.reporting import ascii_table
from .campaign import CampaignResult

__all__ = ["render_campaign", "HEADLINE_METRICS"]

#: The scalar metrics worth a row in the default report (the full
#: :meth:`repro.sim.Metrics.summary` set stays available on the result).
HEADLINE_METRICS = (
    "normalized_utility",
    "energy",
    "avg_frequency",
    "completed",
    "expired",
    "aborted",
)


def render_campaign(
    result: CampaignResult, metrics: Sequence[str] = HEADLINE_METRICS
) -> str:
    """Multi-section ASCII report: header, metric means ± CI half-widths,
    per-task Wilson intervals, and the verdict line."""
    config = result.config
    lines = [
        f"Monte-Carlo campaign: load={config.load} energy={config.energy} "
        f"horizon={config.horizon}s schedulers={', '.join(config.schedulers)}",
        f"replications: {result.n_completed}/{result.n_planned} "
        f"(simulated {result.n_simulated}, cached {result.n_cached}"
        f"{', stopped early' if result.stopped_early else ''})",
        "",
        f"metric means ± {config.confidence:.0%} CI half-widths over replications:",
        ascii_table(result.metric_rows(metrics), ["scheduler", *metrics]),
        "",
        f"per-task assurance Pr[utility >= nu*Umax] with {config.confidence:.0%} "
        "Wilson intervals:",
        ascii_table(
            result.assurance_rows(),
            ["scheduler", "task", "nu", "rho", "decided", "attainment",
             "ci_low", "ci_high", "verdict"],
        ),
        "",
    ]
    for stats in result.schedulers.values():
        lines.append(f"{stats.name}: assurance verdict {stats.verdict.upper()}")
    lines.append(f"campaign verdict: {result.verdict.upper()}")
    return "\n".join(lines)
