"""Content-addressed cache of Monte-Carlo replication results.

A replication is fully determined by its picklable specs — the
:class:`~repro.experiments.parallel.WorkloadSpec` (which embeds the
seed), the :class:`~repro.experiments.parallel.PlatformSpec`, and the
ordered scheduler recipes — because ``WorkloadSpec.build()`` derives
every random draw from one ``default_rng(seed)`` and the simulator is
deterministic.  Hashing a canonical JSON rendering of those specs (plus
a record-format version) therefore gives a safe content address: a
cache hit *is* the simulation, to the last bit.

The store is one JSON file per key under the cache root, written via a
temp-file + ``os.replace`` so concurrent campaign processes can share a
directory without torn reads.  Floats survive the JSON round-trip
exactly (``repr``-based shortest round-trip encoding), so a cache-warm
campaign aggregates bit-identically to a cache-cold one — the
determinism suite pins this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence

from ..experiments.parallel import PlatformSpec, SchedulerSpec, WorkloadSpec

__all__ = ["RunCache", "run_cache_key", "CACHE_RECORD_VERSION"]

#: Bump when the :class:`~repro.stats.campaign.ReplicationSummary`
#: record layout (or the semantics of a cached simulation) changes —
#: stale entries then simply miss instead of deserialising garbage.
#: v2: ``WorkloadSpec`` gained the ``arrival_params`` registry
#: dimension, changing the canonical spec rendering below.
CACHE_RECORD_VERSION = 2


def run_cache_key(
    workload: WorkloadSpec,
    platform: PlatformSpec,
    schedulers: Sequence[SchedulerSpec],
) -> str:
    """SHA-256 content address of one replication.

    Spec dataclasses are rendered to canonical JSON (sorted keys,
    compact separators); the scheduler list is order-sensitive because
    summaries store results keyed by scheduler name in run order.
    """
    record = {
        "version": CACHE_RECORD_VERSION,
        "workload": dataclasses.asdict(workload),
        "platform": dataclasses.asdict(platform),
        "schedulers": [dataclasses.asdict(s) for s in schedulers],
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"), default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class RunCache:
    """Directory-backed ``key → JSON payload`` store."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` on a miss or corrupt entry."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: Dict) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
