"""Streaming estimators and decision rules for Monte-Carlo campaigns.

A campaign (:mod:`repro.stats.campaign`) folds one
:class:`~repro.stats.campaign.ReplicationSummary` per seed into

* :class:`MetricAccumulator` — one Welford stream per scalar metric,
  yielding :class:`~repro.analysis.stats.SummaryStat` values whose
  half-widths become the error bars on figure-2-style plots; and
* pooled per-task binomial counts (jobs that met their ``{ν, ρ}``
  requirement out of jobs decided), judged by :func:`assurance_verdict`
  with a two-sided Wilson score interval.

:class:`EarlyStopRule` implements the optional sequential stopping
rule: keep replicating until every task's requirement is *decided* —
its Wilson interval lies entirely above or entirely below ρ — at a
confidence strictly tighter than the reporting confidence, so peeking
at batch boundaries does not inflate the false-verdict rate beyond the
final report's nominal level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from ..analysis.assurance import normal_quantile, wilson_interval
from ..analysis.stats import SummaryStat
from ..demand import WelfordEstimator

__all__ = [
    "MetricAccumulator",
    "EarlyStopRule",
    "assurance_verdict",
]


class MetricAccumulator:
    """Welford mean/variance streams keyed by metric name.

    Replication summaries are folded one at a time (seed order — the
    campaign fixes the order so aggregates are bit-identical however
    the replications were scheduled); :meth:`stat` renders any stream
    as a :class:`~repro.analysis.stats.SummaryStat` with a normal
    half-width at the requested two-sided confidence.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, WelfordEstimator] = {}

    def fold(self, metrics: Mapping[str, float]) -> None:
        """Fold one replication's flat ``{metric: value}`` summary."""
        for name, value in metrics.items():
            self._streams.setdefault(name, WelfordEstimator()).update(float(value))

    @property
    def count(self) -> int:
        if not self._streams:
            return 0
        return next(iter(self._streams.values())).count

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._streams))

    def stat(self, name: str, confidence: float = 0.95) -> SummaryStat:
        """Mean ± z·s/√n for one metric stream."""
        est = self._streams[name]
        n = est.count
        mean = est.mean
        if n < 2:
            return SummaryStat(mean, 0.0, n, 0.0)
        std = math.sqrt(est.sample_variance)
        z = normal_quantile(0.5 * (1.0 + confidence))
        return SummaryStat(mean, std, n, z * std / math.sqrt(n))

    def stats(self, confidence: float = 0.95) -> Dict[str, SummaryStat]:
        return {name: self.stat(name, confidence) for name in self.names()}


def assurance_verdict(
    satisfied: int, decided: int, rho: float, confidence: float = 0.95
) -> str:
    """Judge pooled binomial counts against the requirement ``ρ``.

    ``"pass"`` when the two-sided Wilson interval lies entirely at or
    above ρ, ``"fail"`` when entirely below, ``"inconclusive"`` when it
    straddles ρ (or nothing was decided).
    """
    if decided <= 0:
        return "inconclusive"
    low, high = wilson_interval(satisfied, decided, confidence)
    if low >= rho - 1e-12:
        return "pass"
    if high < rho - 1e-12:
        return "fail"
    return "inconclusive"


@dataclass(frozen=True)
class EarlyStopRule:
    """Sequential stopping rule for an assurance campaign.

    ``confidence`` is the (stricter) decision confidence used while
    peeking; ``min_replications`` guards against stopping on a lucky
    early streak, and ``check_every`` is the batch size between peeks.
    """

    min_replications: int = 50
    confidence: float = 0.999
    check_every: int = 25

    def __post_init__(self) -> None:
        if self.min_replications < 1:
            raise ValueError("min_replications must be >= 1")
        if not (0.0 < self.confidence < 1.0):
            raise ValueError("confidence must lie in (0, 1)")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")

    def should_stop(
        self,
        n_replications: int,
        counts: Iterable[Tuple[int, int, float]],
    ) -> bool:
        """Whether the campaign may stop after ``n_replications``.

        ``counts`` yields pooled ``(satisfied, decided, rho)`` triples —
        one per (scheduler, task).  Stops only when *every* triple is
        decided (pass or fail) at the rule's confidence.
        """
        if n_replications < self.min_replications:
            return False
        decided_all = True
        empty = True
        for satisfied, decided, rho in counts:
            empty = False
            if assurance_verdict(satisfied, decided, rho, self.confidence) == "inconclusive":
                decided_all = False
                break
        return decided_all and not empty
