"""Programmatic ablation drivers (DESIGN.md AB1–AB8).

The benchmark files print and assert; these functions *compute*, so
ablations can be run from notebooks, the CLI, or scripts.  Each returns
plain row dictionaries compatible with
:func:`~repro.experiments.reporting.ascii_table`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core import EUAStar
from ..sched import DASA, EDFStatic
from ..sim import Platform, SimulationResult, compare, materialize
from .config import DEFAULT_HORIZON, DEFAULT_SEEDS, energy_setting
from .parallel import CompareUnit, PlatformSpec, SchedulerSpec, WorkloadSpec, run_units
from .workload import synthesize_taskset

__all__ = [
    "run_policy_grid",
    "ablate_dvs",
    "ablate_fopt",
    "ablate_dvs_method",
    "ablate_dasa",
]

#: A grid arm: a picklable spec (parallelisable) or a bare factory
#: callable (legacy; serial only).
PolicyArm = Union[SchedulerSpec, Callable[[], object]]


def run_policy_grid(
    factories: Sequence[PolicyArm],
    load: float,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    energy: str = "E1",
    tuf_shape: str = "step",
    nu: float = 1.0,
    rho: float = 0.96,
    arrival_mode: str = "periodic",
    burst_override: Optional[int] = None,
    idle_power: float = 0.0,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> Dict[str, List[SimulationResult]]:
    """Run scheduler arms over shared per-seed workloads.

    Returns ``{scheduler name: [result per seed]}`` — the primitive
    behind every ablation bench.  Arms given as :class:`SchedulerSpec`
    shard across a process pool with ``workers > 1`` (results merged in
    seed order, identical to serial); bare factory callables are
    supported for backwards compatibility but run serially.
    """
    if all(isinstance(f, SchedulerSpec) for f in factories):
        units = [
            CompareUnit(
                key=(seed,),
                schedulers=tuple(factories),
                workload=WorkloadSpec(
                    load=load,
                    seed=seed,
                    horizon=horizon,
                    tuf_shape=tuf_shape,
                    nu=nu,
                    rho=rho,
                    arrival_mode=arrival_mode,
                    burst_override=burst_override,
                ),
                platform=PlatformSpec(energy=energy, idle_power=idle_power),
            )
            for seed in seeds
        ]
        outcomes = run_units(units, max_workers=workers, chunksize=chunksize)
        out: Dict[str, List[SimulationResult]] = {}
        for outcome in outcomes:
            for name, result in outcome.results.items():
                out.setdefault(name, []).append(result)
        return out
    if workers > 1:
        raise ValueError(
            "workers > 1 requires every arm to be a SchedulerSpec "
            "(bare factory callables cannot be pickled to worker processes)"
        )
    platform = Platform(energy_model=energy_setting(energy), idle_power=idle_power)
    out = {}
    for seed in seeds:
        rng = np.random.default_rng(seed)
        taskset = synthesize_taskset(
            load,
            rng,
            tuf_shape=tuf_shape,
            nu=nu,
            rho=rho,
            arrival_mode=arrival_mode,
            burst_override=burst_override,
        )
        trace = materialize(taskset, horizon, rng)
        results = compare([f() for f in factories], trace, platform=platform)
        for name, result in results.items():
            out.setdefault(name, []).append(result)
    return out


def _mean(results: List[SimulationResult], fn) -> float:
    return sum(fn(r) for r in results) / len(results)


def ablate_dvs(
    loads: Sequence[float] = (0.4, 0.8),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
) -> List[Dict[str, float]]:
    """AB2: decideFreq on vs pinned f_max."""
    rows = []
    for load in loads:
        out = run_policy_grid(
            [SchedulerSpec.of(EUAStar, name="EUA*"),
             SchedulerSpec.of(EUAStar, name="noDVS", use_dvs=False)],
            load=load, seeds=seeds, horizon=horizon, workers=workers,
        )
        rows.append(
            {
                "load": load,
                "energy_ratio": _mean(out["EUA*"], lambda r: r.energy)
                / _mean(out["noDVS"], lambda r: r.energy),
                "utility_dvs": _mean(out["EUA*"], lambda r: r.metrics.normalized_utility),
                "utility_fmax": _mean(out["noDVS"], lambda r: r.metrics.normalized_utility),
            }
        )
    return rows


def ablate_fopt(
    load: float = 0.5,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
) -> List[Dict[str, float]]:
    """AB3: the f° lower bound per energy setting."""
    rows = []
    for energy in ("E1", "E2", "E3"):
        out = run_policy_grid(
            [
                SchedulerSpec.of(EUAStar, name="EUA*"),
                SchedulerSpec.of(EUAStar, name="noFopt", use_fopt_bound=False),
                SchedulerSpec.of(EUAStar, name="fmax", use_dvs=False),
            ],
            load=load, seeds=seeds, horizon=horizon, energy=energy, workers=workers,
        )
        base = _mean(out["fmax"], lambda r: r.energy)
        rows.append(
            {
                "energy_setting": energy,
                "with_fopt": _mean(out["EUA*"], lambda r: r.energy) / base,
                "without_fopt": _mean(out["noFopt"], lambda r: r.energy) / base,
            }
        )
    return rows


def ablate_dvs_method(
    load: float = 0.8,
    bursts: Sequence[int] = (1, 3),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
) -> List[Dict[str, float]]:
    """AB7: Algorithm-2 look-ahead vs the safe processor-demand rate."""
    rows = []
    for a in bursts:
        out = run_policy_grid(
            [
                SchedulerSpec.of(EUAStar, name="LA", dvs_method="lookahead"),
                SchedulerSpec.of(EUAStar, name="PD", dvs_method="demand"),
                SchedulerSpec.of(EUAStar, name="noDVS", use_dvs=False),
            ],
            load=load, seeds=seeds, horizon=horizon,
            tuf_shape="linear", nu=0.3, rho=0.9,
            arrival_mode="poisson", burst_override=a, workers=workers,
        )
        base = _mean(out["noDVS"], lambda r: r.energy)
        rows.append(
            {
                "a": a,
                "lookahead_energy": _mean(out["LA"], lambda r: r.energy) / base,
                "demand_energy": _mean(out["PD"], lambda r: r.energy) / base,
                "lookahead_utility": _mean(out["LA"], lambda r: r.metrics.normalized_utility),
                "demand_utility": _mean(out["PD"], lambda r: r.metrics.normalized_utility),
            }
        )
    return rows


def ablate_dasa(
    loads: Sequence[float] = (0.6, 1.5),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
) -> List[Dict[str, float]]:
    """AB8: EUA* vs the energy-oblivious DASA baseline."""
    rows = []
    for load in loads:
        out = run_policy_grid(
            [SchedulerSpec.of(EUAStar, name="EUA*"),
             SchedulerSpec.of(DASA, name="DASA"),
             SchedulerSpec.of(EDFStatic, name="EDF")],
            load=load, seeds=seeds, horizon=horizon, workers=workers,
        )
        rows.append(
            {
                "load": load,
                "eua_utility": _mean(out["EUA*"], lambda r: r.metrics.normalized_utility),
                "dasa_utility": _mean(out["DASA"], lambda r: r.metrics.normalized_utility),
                "edf_utility": _mean(out["EDF"], lambda r: r.metrics.normalized_utility),
                "energy_ratio": _mean(out["EUA*"], lambda r: r.energy)
                / _mean(out["DASA"], lambda r: r.energy),
            }
        )
    return rows
