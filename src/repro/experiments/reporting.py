"""Plain-text and CSV reporting for experiment results.

The benchmarks print the same rows/series the paper's figures plot, so
a reader can eyeball the reproduction without a plotting stack.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["ascii_table", "series_chart", "rows_to_csv", "render_obs_summary"]


def ascii_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Fixed-width table from dict rows."""
    if not rows:
        return "(no rows)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            text = f"{v:.3f}" if isinstance(v, float) else str(v)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        for cells in rendered
    )
    return f"{header}\n{rule}\n{body}"


def series_chart(
    series: Mapping[str, Sequence[tuple]],
    width: int = 48,
    y_max: float = None,
    title: str = "",
) -> str:
    """Minimal horizontal-bar chart: one block per (x, y) sample.

    Suits the figures' normalised metrics (0..~1.2); bars are scaled to
    ``y_max`` (auto when omitted).
    """
    if y_max is None:
        y_max = max(
            (y for points in series.values() for _, y in points), default=1.0
        )
        y_max = max(y_max, 1e-9)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for name, points in series.items():
        out.write(f"[{name}]\n")
        for x, y in points:
            bar = "#" * max(0, int(round(width * min(y, y_max) / y_max)))
            out.write(f"  x={x:<6g} {y:7.3f} |{bar}\n")
    return out.getvalue().rstrip("\n")


def render_obs_summary(metrics=None, profiler=None) -> str:
    """Human-readable summary of an observability capture.

    ``metrics`` is a :class:`repro.obs.MetricsRegistry` (or ``None``),
    ``profiler`` a :class:`repro.obs.Profiler` (or ``None``).  Sections:
    per-frequency CPU residency, decision/outcome counters, gauges,
    histogram percentiles, and hot-path timer latencies.
    """
    out = io.StringIO()

    if metrics is not None:
        residency = metrics.family("cpu_residency_seconds")
        if residency:
            total = sum(c.value for c in residency.values())
            rows = []
            for (_, labels), c in sorted(residency.items()):
                row: Dict[str, object] = dict(labels)
                row["seconds"] = c.value
                row["share"] = c.value / total if total > 0.0 else 0.0
                rows.append(row)
            out.write("per-frequency residency\n")
            out.write(ascii_table(rows, ["mhz", "state", "seconds", "share"]))
            out.write("\n\n")

        counters = [
            (name, labels, c.value)
            for (name, labels), c in sorted(metrics.counters().items())
            if name != "cpu_residency_seconds"
        ]
        if counters:
            rows = [
                {"counter": name,
                 "labels": ",".join(f"{k}={v}" for k, v in labels) or "-",
                 "value": value}
                for name, labels, value in counters
            ]
            out.write("counters\n")
            out.write(ascii_table(rows, ["counter", "labels", "value"]))
            out.write("\n\n")

        gauges = sorted(metrics.gauges().items())
        if gauges:
            rows = [
                {"gauge": name,
                 "labels": ",".join(f"{k}={v}" for k, v in labels) or "-",
                 "last": g.value, "mean": g.mean, "n": g.n}
                for (name, labels), g in gauges
            ]
            out.write("gauges\n")
            out.write(ascii_table(rows, ["gauge", "labels", "last", "mean", "n"]))
            out.write("\n\n")

        histograms = sorted(metrics.histograms().items())
        if histograms:
            rows = [
                {"histogram": name,
                 "labels": ",".join(f"{k}={v}" for k, v in labels) or "-",
                 "count": h.count, "mean": h.mean,
                 "p50": h.percentile(50.0), "p90": h.percentile(90.0),
                 "p99": h.percentile(99.0), "max": h.max}
                for (name, labels), h in histograms
            ]
            out.write("histograms\n")
            out.write(ascii_table(
                rows,
                ["histogram", "labels", "count", "mean", "p50", "p90", "p99", "max"],
            ))
            out.write("\n\n")

    if profiler is not None and len(profiler):
        rows = []
        for name, stat in profiler.stats().items():
            rows.append({
                "timer": name,
                "count": int(stat["count"]),
                "total_ms": stat["total"] * 1e3,
                "mean_us": stat["mean"] * 1e6,
                "p50_us": stat["p50"] * 1e6,
                "p90_us": stat["p90"] * 1e6,
                "p99_us": stat["p99"] * 1e6,
                "max_us": stat["max"] * 1e6,
            })
        out.write("timers (decideFreq & friends)\n")
        out.write(ascii_table(
            rows,
            ["timer", "count", "total_ms", "mean_us", "p50_us", "p90_us",
             "p99_us", "max_us"],
        ))
        out.write("\n")

    text = out.getvalue().rstrip("\n")
    return text if text else "(no observability data captured)"


def rows_to_csv(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """CSV text from dict rows (no file side effects)."""
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            cells.append(f"{v:.6g}" if isinstance(v, float) else str(v))
        out.write(",".join(cells) + "\n")
    return out.getvalue()
