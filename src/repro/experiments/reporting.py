"""Plain-text and CSV reporting for experiment results.

The benchmarks print the same rows/series the paper's figures plot, so
a reader can eyeball the reproduction without a plotting stack.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["ascii_table", "series_chart", "rows_to_csv"]


def ascii_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Fixed-width table from dict rows."""
    if not rows:
        return "(no rows)"
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            text = f"{v:.3f}" if isinstance(v, float) else str(v)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        for cells in rendered
    )
    return f"{header}\n{rule}\n{body}"


def series_chart(
    series: Mapping[str, Sequence[tuple]],
    width: int = 48,
    y_max: float = None,
    title: str = "",
) -> str:
    """Minimal horizontal-bar chart: one block per (x, y) sample.

    Suits the figures' normalised metrics (0..~1.2); bars are scaled to
    ``y_max`` (auto when omitted).
    """
    if y_max is None:
        y_max = max(
            (y for points in series.values() for _, y in points), default=1.0
        )
        y_max = max(y_max, 1e-9)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    for name, points in series.items():
        out.write(f"[{name}]\n")
        for x, y in points:
            bar = "#" * max(0, int(round(width * min(y, y_max) / y_max)))
            out.write(f"  x={x:<6g} {y:7.3f} |{bar}\n")
    return out.getvalue().rstrip("\n")


def rows_to_csv(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """CSV text from dict rows (no file side effects)."""
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            cells.append(f"{v:.6g}" if isinstance(v, float) else str(v))
        out.write(",".join(cells) + "\n")
    return out.getvalue()
