"""Multicore frontiers — figure-2-style utility/energy vs load at m cores.

The multiprocessor analogue of :mod:`repro.experiments.figure2`: the
same periodic step-TUF workloads and the same EDF-at-``f_max``
normaliser, swept over core counts m ∈ {1, 2, 4, 8} and both execution
models (partitioned and global EUA*).  The workload knob stays the
*per-core* load ϱ — the synthesised task set targets ``ϱ·m`` total
demand, so every m-point stresses its platform equally and the curves
are comparable across core counts.

The normaliser runs *in-cell*: EDF at ``f_max`` under the same mode and
core count, so "normalised energy 0.6 at m=4 partitioned" means "60 %
of what a no-DVS m=4 partitioned system would burn on the identical
jobs" — the exact analogue of the paper's uniprocessor convention.

The m=1 column is the anchoring oracle: both modes reduce bit-
identically to the uniprocessor engine, so the m=1 frontier *is* the
Figure 2 frontier (pinned by ``tests/properties/test_mp_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import SummaryStat, normalized_series
from .config import DEFAULT_HORIZON, DEFAULT_SEEDS, FIGURE2_REQUIREMENT, TABLE1
from .parallel import CompareUnit, PlatformSpec, SchedulerSpec, WorkloadSpec, run_units

__all__ = [
    "MULTICORE_CORES",
    "MULTICORE_LOADS",
    "MULTICORE_SCHEDULERS",
    "MulticorePoint",
    "MulticoreResult",
    "multicore_units",
    "run_multicore",
]

#: Core counts of the frontier sweep (m=1 is the uniprocessor anchor).
MULTICORE_CORES: Tuple[int, ...] = (1, 2, 4, 8)
#: Per-core loads — a light/nominal/saturated/overloaded slice of the
#: Figure 2 ladder (the full ladder × m × modes would be ~9× the
#: uniprocessor sweep for little extra signal).
MULTICORE_LOADS: Tuple[float, ...] = (0.4, 0.8, 1.2, 1.6)
#: Series: EUA* against the EDF@f_max normaliser (the two-scheduler
#: core of the figure; the CLI accepts any registry subset).
MULTICORE_SCHEDULERS: Tuple[str, ...] = ("EUA*", "EDF")

BASELINE = "EDF"


@dataclass
class MulticorePoint:
    """One (mode, m, load) cell: per-scheduler normalised U and E."""

    mode: str
    cores: int
    load: float
    utility: Dict[str, SummaryStat]
    energy: Dict[str, SummaryStat]
    #: Mean migrations per run per scheduler (always 0 for partitioned).
    migrations: Dict[str, float] = field(default_factory=dict)


@dataclass
class MulticoreResult:
    """A full multicore frontier sweep for one energy setting."""

    energy_setting: str
    points: List[MulticorePoint] = field(default_factory=list)

    def frontier(
        self, mode: str, cores: int, metric: str, scheduler: str
    ) -> List[Tuple[float, float]]:
        """(load, mean) pairs for one (mode, m) curve."""
        table = {"utility": lambda p: p.utility, "energy": lambda p: p.energy}[metric]
        return [
            (p.load, table(p)[scheduler].mean)
            for p in self.points
            if p.mode == mode and p.cores == cores
        ]

    def rows(self) -> List[Dict[str, object]]:
        """Flat rows (one per mode × m × load × scheduler) for reporting."""
        out: List[Dict[str, object]] = []
        for p in self.points:
            for name in p.utility:
                out.append(
                    {
                        "energy_setting": self.energy_setting,
                        "mode": p.mode,
                        "cores": p.cores,
                        "load": p.load,
                        "scheduler": name,
                        "norm_utility": p.utility[name].mean,
                        "norm_energy": p.energy[name].mean,
                        "migrations": p.migrations.get(name, 0.0),
                    }
                )
        return out


def multicore_units(
    energy_setting_name: str = "E1",
    cores: Sequence[int] = MULTICORE_CORES,
    modes: Sequence[str] = ("partitioned", "global"),
    loads: Sequence[float] = MULTICORE_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    scheduler_names: Sequence[str] = MULTICORE_SCHEDULERS,
    apps=TABLE1,
    f_max: float = 1000.0,
    partition_strategy: str = "wfd",
    active_power: float = 0.0,
) -> List[CompareUnit]:
    """The sweep decomposed into (mode, m, load, seed) units.

    At ``m = 1`` both modes collapse to the uniprocessor engine, so only
    "partitioned" is emitted for that column (one anchor, not two
    duplicates).
    """
    nu, rho = FIGURE2_REQUIREMENT
    schedulers = tuple(SchedulerSpec.registry(n) for n in scheduler_names)
    units: List[CompareUnit] = []
    for mode in modes:
        for m in cores:
            if m == 1 and mode != "partitioned" and "partitioned" in modes:
                continue
            platform = PlatformSpec(
                energy=energy_setting_name,
                f_max=f_max,
                cores=m,
                mp_mode=mode,
                partition_strategy=partition_strategy,
                active_power=active_power,
            )
            for load in loads:
                for seed in seeds:
                    units.append(
                        CompareUnit(
                            key=(mode, m, load, seed),
                            schedulers=schedulers,
                            workload=WorkloadSpec(
                                load=load,
                                seed=seed,
                                horizon=horizon,
                                tuf_shape="step",
                                nu=nu,
                                rho=rho,
                                arrival_mode="periodic",
                                apps=tuple(apps),
                                f_max=f_max,
                                cores=m,
                            ),
                            platform=platform,
                        )
                    )
    return units


def run_multicore(
    energy_setting_name: str = "E1",
    cores: Sequence[int] = MULTICORE_CORES,
    modes: Sequence[str] = ("partitioned", "global"),
    loads: Sequence[float] = MULTICORE_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    scheduler_names: Sequence[str] = MULTICORE_SCHEDULERS,
    apps=TABLE1,
    f_max: float = 1000.0,
    partition_strategy: str = "wfd",
    active_power: float = 0.0,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> MulticoreResult:
    """Run the multicore frontier sweep for one energy setting.

    Each (mode, m, load, seed) cell materialises one m-scaled workload
    and runs every scheduler on it under that cell's engine; utility
    and energy are normalised against the in-cell EDF run.  ``workers``
    shards cells over a process pool with the usual deterministic
    merge.
    """
    if BASELINE not in scheduler_names:
        raise ValueError(f"scheduler list must include the {BASELINE!r} normaliser")
    for mode in modes:
        if mode not in ("partitioned", "global"):
            raise ValueError(f"unknown mp mode {mode!r}")
    units = multicore_units(
        energy_setting_name,
        cores,
        modes,
        loads,
        seeds,
        horizon,
        scheduler_names,
        apps,
        f_max,
        partition_strategy,
        active_power,
    )
    outcomes = run_units(units, max_workers=workers, chunksize=chunksize)
    cells: Dict[Tuple[str, int, float], List] = {}
    for outcome in outcomes:
        mode, m, load, _seed = outcome.key
        cells.setdefault((mode, m, load), []).append(outcome.results)
    result = MulticoreResult(energy_setting=energy_setting_name)
    for mode in modes:
        for m in cores:
            for load in loads:
                runs = cells.get((mode, m, load))
                if runs is None:  # m=1 de-duplicated column
                    runs = cells[("partitioned", m, load)]
                migrations = {
                    name: sum(r[name].migrations for r in runs) / len(runs)
                    if hasattr(runs[0][name], "migrations")
                    else 0.0
                    for name in runs[0]
                }
                result.points.append(
                    MulticorePoint(
                        mode=mode,
                        cores=m,
                        load=load,
                        utility=normalized_series(runs, BASELINE, "utility"),
                        energy=normalized_series(runs, BASELINE, "energy"),
                        migrations=migrations,
                    )
                )
    return result
