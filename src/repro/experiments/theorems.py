"""Experimental verification of the paper's timeliness theorems (§4).

* **Theorem 2 / Corollaries 3–4**: for periodic tasks with step TUFs
  and no overload, EUA* produces an EDF (critical-time-ordered)
  schedule, accrues equal total utility, meets all critical times, and
  minimises maximum lateness.
* **Theorem 5**: under the same conditions the statistical performance
  requirements are met.
* **Theorem 6**: for non-increasing TUFs (critical time < termination)
  the requirements hold under the Baruah–Rosier–Howell condition.

These drivers run paired simulations and return structured evidence;
the corresponding benches print it, and integration tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis import brh_schedulable, is_underload_regime, verify_assurances
from ..core import EUAStar
from ..sched import EDFStatic
from ..sim import JobStatus, Platform, compare, materialize
from .config import DEFAULT_HORIZON, TABLE1, energy_setting
from .workload import synthesize_taskset

__all__ = ["TheoremEvidence", "check_edf_equivalence", "check_assurances"]


@dataclass
class TheoremEvidence:
    """Outcome of one theorem-verification run."""

    load: float
    underload: bool
    equal_utility: bool
    same_completion_order: bool
    all_critical_times_met: bool
    max_lateness_eua: float
    max_lateness_edf: float
    assurances_met: bool
    details: Dict[str, object]


def _max_lateness(result) -> float:
    """max over completed jobs of (completion − critical time)."""
    worst = float("-inf")
    for job in result.jobs:
        if job.status is JobStatus.COMPLETED:
            worst = max(worst, job.completion_time - job.critical_time)
    return worst


def check_edf_equivalence(
    load: float = 0.6,
    seed: int = 101,
    horizon: float = DEFAULT_HORIZON,
    f_max: float = 1000.0,
    energy_setting_name: str = "E1",
) -> TheoremEvidence:
    """Theorem 2 / Corollaries 3–4 evidence at one underload point.

    Runs EUA* and EDF@f_max... both pinned to ``f_max`` so schedules are
    directly comparable (DVS changes timing but not EDF-equivalence of
    the *ordering*; we compare the job completion order).
    """
    rng = np.random.default_rng(seed)
    taskset = synthesize_taskset(
        target_load=load,
        rng=rng,
        apps=TABLE1,
        tuf_shape="step",
        nu=1.0,
        rho=0.96,
        f_max=f_max,
        arrival_mode="periodic",
    )
    trace = materialize(taskset, horizon, rng)
    platform = Platform.powernow_k6(energy_setting(energy_setting_name, f_max))
    runs = compare(
        [EUAStar(name="EUA*", use_dvs=False), EDFStatic(name="EDF")],
        trace,
        platform=platform,
        record_trace=True,
    )
    eua, edf = runs["EUA*"], runs["EDF"]

    def completion_order(result) -> List[str]:
        done = [j for j in result.jobs if j.status is JobStatus.COMPLETED]
        done.sort(key=lambda j: j.completion_time)
        return [j.key for j in done]

    all_met = all(
        job.completion_time <= job.critical_time + 1e-9
        for job in eua.jobs
        if job.status is JobStatus.COMPLETED
    ) and all(j.status is JobStatus.COMPLETED for j in eua.jobs if j.release + 1.0 < horizon)

    assurance = verify_assurances(eua, taskset)
    return TheoremEvidence(
        load=load,
        underload=is_underload_regime(taskset, f_max),
        equal_utility=abs(eua.metrics.accrued_utility - edf.metrics.accrued_utility) <= 1e-6,
        same_completion_order=completion_order(eua) == completion_order(edf),
        all_critical_times_met=all_met,
        max_lateness_eua=_max_lateness(eua),
        max_lateness_edf=_max_lateness(edf),
        assurances_met=all(r.satisfied_point for r in assurance.values()),
        details={
            "eua_utility": eua.metrics.accrued_utility,
            "edf_utility": edf.metrics.accrued_utility,
            "jobs": len(eua.jobs),
        },
    )


def check_assurances(
    load: float = 0.6,
    seed: int = 202,
    horizon: float = DEFAULT_HORIZON,
    tuf_shape: str = "linear",
    nu: float = 0.3,
    rho: float = 0.9,
    f_max: float = 1000.0,
) -> Dict[str, object]:
    """Theorem 5/6 evidence: per-task empirical {ν, ρ} attainment.

    With ``tuf_shape='linear'`` the critical times precede termination
    times, exercising the Theorem 6 (BRH-condition) case.
    """
    rng = np.random.default_rng(seed)
    taskset = synthesize_taskset(
        target_load=load,
        rng=rng,
        apps=TABLE1,
        tuf_shape=tuf_shape,
        nu=nu,
        rho=rho,
        f_max=f_max,
        arrival_mode="periodic",
    )
    trace = materialize(taskset, horizon, rng)
    platform = Platform.powernow_k6(energy_setting("E1", f_max))
    from ..sim import simulate

    result = simulate(trace, EUAStar(), platform=platform)
    reports = verify_assurances(result, taskset)
    return {
        "brh_schedulable": brh_schedulable(taskset, f_max),
        "reports": reports,
        "all_satisfied": all(r.satisfied_point for r in reports.values()),
        "min_attainment": min(r.attainment for r in reports.values()),
    }
