"""JSON persistence for experiment results.

Figure sweeps are minutes of compute; these helpers serialise their
results so analysis/plotting can iterate without re-running, and so CI
can archive the reproduced curves next to ``bench_output.txt``.
"""

from __future__ import annotations

import json
from typing import Dict, Union

from ..analysis.stats import SummaryStat
from .figure2 import Figure2Point, Figure2Result
from .figure3 import Figure3Result

__all__ = ["to_json", "from_json", "save_result", "load_result"]


def _stat_to_dict(stat: SummaryStat) -> Dict[str, float]:
    return {"mean": stat.mean, "std": stat.std, "n": stat.n,
            "half_width": stat.half_width}


def _stat_from_dict(d: Dict[str, float]) -> SummaryStat:
    return SummaryStat(d["mean"], d["std"], int(d["n"]), d["half_width"])


def to_json(result: Union[Figure2Result, Figure3Result]) -> str:
    """Serialise a figure result to a JSON string."""
    if isinstance(result, Figure2Result):
        payload = {
            "kind": "figure2",
            "energy_setting": result.energy_setting,
            "points": [
                {
                    "load": p.load,
                    "utility": {k: _stat_to_dict(v) for k, v in p.utility.items()},
                    "energy": {k: _stat_to_dict(v) for k, v in p.energy.items()},
                }
                for p in result.points
            ],
        }
    elif isinstance(result, Figure3Result):
        payload = {
            "kind": "figure3",
            "energy": {
                str(a): {str(load): _stat_to_dict(stat) for load, stat in by_load.items()}
                for a, by_load in result.energy.items()
            },
        }
    else:
        raise TypeError(f"unsupported result type {type(result).__name__}")
    return json.dumps(payload, indent=2)


def from_json(text: str) -> Union[Figure2Result, Figure3Result]:
    """Deserialise a figure result from :func:`to_json` output."""
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "figure2":
        result = Figure2Result(energy_setting=payload["energy_setting"])
        for p in payload["points"]:
            result.points.append(
                Figure2Point(
                    load=float(p["load"]),
                    utility={k: _stat_from_dict(v) for k, v in p["utility"].items()},
                    energy={k: _stat_from_dict(v) for k, v in p["energy"].items()},
                )
            )
        return result
    if kind == "figure3":
        result = Figure3Result()
        for a, by_load in payload["energy"].items():
            result.energy[int(a)] = {
                float(load): _stat_from_dict(stat) for load, stat in by_load.items()
            }
        return result
    raise ValueError(f"unknown result kind {kind!r}")


def save_result(result: Union[Figure2Result, Figure3Result], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(result))


def load_result(path: str) -> Union[Figure2Result, Figure3Result]:
    with open(path, "r", encoding="utf-8") as fh:
        return from_json(fh.read())
