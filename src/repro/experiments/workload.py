"""Workload synthesis (paper §5).

Builds randomized task sets from the Table 1 application settings:
windows and ``U_max`` drawn uniformly from per-application ranges, TUF
shape per experiment (step for Figure 2, linear for Figure 3), demands
normally distributed with ``Var(Y) ≈ E(Y)`` *in raw cycles* (in the
library's Mcycle unit that is ``variance = mean × 1e-6``), and finally
a single scale constant ``k`` applied to all means (``k²`` to all
variances) so the system load ``ϱ = (1/f_m) Σ C_i/D_i`` matches the
requested sweep point — exactly the paper's procedure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arrivals import UAMSpec, create_arrival_generator, workload_shape_names
from ..demand import NormalDemand
from ..sim.task import Task, TaskSet
from ..tuf import TUF, LinearTUF, StepTUF
from .config import TABLE1, AppSetting

__all__ = ["synthesize_taskset", "VAR_PER_MEAN"]

#: ``Var(Y) = E(Y)`` in raw cycles ⇒ this factor in Mcycles².
VAR_PER_MEAN = 1e-6


def _make_tuf(shape: str, umax: float, window: float) -> TUF:
    if shape == "step":
        return StepTUF(height=umax, deadline=window)
    if shape == "linear":
        # Section 5.2: slope = U_max / P, decaying to zero at the window.
        return LinearTUF(max_utility=umax, termination=window)
    raise ValueError(f"unknown TUF shape {shape!r} (expected 'step' or 'linear')")


def synthesize_taskset(
    target_load: float,
    rng: np.random.Generator,
    apps: Sequence[AppSetting] = TABLE1,
    tuf_shape: str = "step",
    nu: float = 1.0,
    rho: float = 0.96,
    f_max: float = 1000.0,
    arrival_mode: str = "periodic",
    burst_override: Optional[int] = None,
    arrival_params: Sequence[Tuple[str, object]] = (),
) -> TaskSet:
    """One randomized task set at system load ``target_load``.

    Parameters
    ----------
    arrival_mode:
        Any spec-constructible shape from the arrival registry (see
        :func:`repro.arrivals.workload_shape_names`).  The paper's four
        historical modes keep their exact semantics: ``"periodic"``
        releases one job per window (Figure 2's periodic task sets —
        the UAM special case ``⟨1, P⟩``); ``"burst"`` releases
        UAM-adversarial bursts of ``a`` simultaneous jobs at window
        starts (predictable worst case); ``"scattered"`` places up to
        ``a`` arrivals per window at uniform random instants;
        ``"poisson"`` admits a Poisson stream through the UAM envelope
        (maximally unpredictable — used for Figure 3, whose effect is
        precisely that unpredictable UAM arrivals spoil slack
        estimation).  The internet-scale shapes (``"nhpp-diurnal"``,
        ``"flash-crowd"``, ``"pareto"``, ``"mmpp"``, …) stress the
        threshold study; all honour the task's declared ``⟨a, P⟩``.
    burst_override:
        Replace every application's ``a`` with this value (Figure 3
        sweeps ``a ∈ {1, 2, 3}`` over the same task set shape).
    arrival_params:
        Extra ``(key, value)`` pairs forwarded to the registry factory
        (e.g. ``(("burst_factor", 12.0),)`` for ``"flash-crowd"``) —
        kept as a pair sequence so workload specs stay hashable.
    """
    if arrival_mode not in workload_shape_names():
        raise ValueError(
            f"unknown arrival mode {arrival_mode!r} "
            f"(registered: {', '.join(workload_shape_names())})"
        )
    params = dict(arrival_params)
    tasks: List[Task] = []
    for app in apps:
        for j in range(app.n_tasks):
            window = float(rng.uniform(*app.window_range))
            umax = float(rng.uniform(*app.umax_range))
            a = burst_override if burst_override is not None else app.max_arrivals
            # Periodic keeps its historical ⟨1, P⟩ envelope; every other
            # shape is admitted through the application's ⟨a, P⟩.
            spec = UAMSpec(1, window) if arrival_mode == "periodic" else UAMSpec(a, window)
            arrivals = create_arrival_generator(arrival_mode, spec=spec, **params)
            # Base mean before load scaling: equal per-task load shares
            # (the common k rescales everything afterwards).
            mean = 0.2 * window * f_max / spec.max_arrivals
            demand = NormalDemand(mean, mean * VAR_PER_MEAN)
            tasks.append(
                Task(
                    name=f"{app.name}.{j}",
                    tuf=_make_tuf(tuf_shape, umax, window),
                    demand=demand,
                    uam=spec,
                    arrivals=arrivals,
                    nu=nu,
                    rho=rho,
                )
            )
    return TaskSet(tasks).scaled_to_load(target_load, f_max)
