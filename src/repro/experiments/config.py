"""Experimental configuration — the paper's Tables 1 and 2.

The scanned tables are OCR-damaged (trailing digits lost); DESIGN.md
records the reconstruction.  What the text does state unambiguously:

* three applications A1/A2/A3 whose windows "simulate the varied mix of
  short and long time windows", with ``U_max`` uniform in (per-app)
  ranges and UAM parameters ``⟨a, P⟩`` per app;
* the AMD K6-2+ PowerNow! frequency ladder;
* three energy settings E1–E3, E1 being the conventional CPU-only cubic
  model;
* Figure 2: loads ϱ from 0.2 to 1.8, ``{ν=1, ρ=0.96}``, periodic task
  sets, step TUFs;
* Figure 3: linear TUFs, ``{ν=0.3, ρ=0.9}``, E1, ``a ∈ {1, 2, 3}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..cpu import EnergyModel, FrequencyScale

__all__ = [
    "AppSetting",
    "TABLE1",
    "energy_setting",
    "TABLE2_NAMES",
    "FIGURE2_LOADS",
    "FIGURE2_REQUIREMENT",
    "FIGURE3_LOADS",
    "FIGURE3_REQUIREMENT",
    "FIGURE3_BURSTS",
    "DEFAULT_SEEDS",
    "DEFAULT_HORIZON",
]


@dataclass(frozen=True)
class AppSetting:
    """One application row of Table 1.

    ``window_range`` bounds the uniformly drawn UAM window ``P``
    (seconds); ``umax_range`` bounds the uniformly drawn TUF maximum
    utility; ``max_arrivals`` is the UAM ``a``.
    """

    name: str
    n_tasks: int
    max_arrivals: int
    window_range: Tuple[float, float]
    umax_range: Tuple[float, float]


#: Table 1 reconstruction (see DESIGN.md): a short-window bursty
#: application, a long-window modest one, and a wide-spread one.
TABLE1: Tuple[AppSetting, ...] = (
    AppSetting("A1", n_tasks=4, max_arrivals=5, window_range=(0.050, 0.100), umax_range=(50.0, 70.0)),
    AppSetting("A2", n_tasks=6, max_arrivals=2, window_range=(0.500, 0.700), umax_range=(30.0, 40.0)),
    AppSetting("A3", n_tasks=8, max_arrivals=3, window_range=(0.100, 1.000), umax_range=(10.0, 100.0)),
)

TABLE2_NAMES: Tuple[str, ...] = ("E1", "E2", "E3")


def energy_setting(name: str, f_max: float = 1000.0) -> EnergyModel:
    """Instantiate a Table 2 energy setting for the given ``f_max``."""
    key = name.upper()
    if key == "E1":
        return EnergyModel.e1()
    if key == "E2":
        return EnergyModel.e2(f_max)
    if key == "E3":
        return EnergyModel.e3(f_max)
    raise KeyError(f"unknown energy setting {name!r}; expected one of {TABLE2_NAMES}")


#: Figure 2 sweeps the load from 0.2 to 1.8 in steps of 0.2.
FIGURE2_LOADS: Tuple[float, ...] = tuple(round(0.2 * k, 1) for k in range(1, 10))

#: Figure 2 statistical requirement {ν=1, ρ=0.96} (step TUFs).
FIGURE2_REQUIREMENT: Tuple[float, float] = (1.0, 0.96)

#: Figure 3 uses the same load axis.
FIGURE3_LOADS: Tuple[float, ...] = FIGURE2_LOADS

#: Figure 3 statistical requirement {ν=0.3, ρ=0.9} (linear TUFs).
FIGURE3_REQUIREMENT: Tuple[float, float] = (0.3, 0.9)

#: Figure 3 varies the UAM burst parameter a from 1 to 3.
FIGURE3_BURSTS: Tuple[int, ...] = (1, 2, 3)

#: Default replication seeds for every experiment driver.
DEFAULT_SEEDS: Tuple[int, ...] = (11, 13, 17)

#: Default simulated horizon (seconds) — a few hundred jobs per task
#: for the shortest Table 1 windows.
DEFAULT_HORIZON: float = 8.0
