"""Process-pool sweep execution for the experiment drivers.

Every figure/ablation/sensitivity sweep in this package decomposes into
independent *units* — one ``compare()`` over one materialised workload
(a seed × setting × scheduler-list cell).  This module makes those
units picklable and runs them over a :class:`~concurrent.futures.\
ProcessPoolExecutor` with chunked dispatch and a **deterministic
merge**: results come back in submission order regardless of worker
interleaving, so a sweep at ``max_workers=4`` is value-identical to the
same sweep at ``max_workers=1`` (the determinism suite asserts it).

Building blocks
---------------
:class:`SchedulerSpec`
    A picklable scheduler recipe — a registry name, or a class plus
    constructor kwargs (policies themselves are stateful and must be
    built fresh inside each worker).
:class:`WorkloadSpec` / :class:`PlatformSpec`
    Everything a worker needs to resynthesise the unit's task set,
    materialise its trace, and rebuild its platform, reproducing the
    serial drivers' RNG discipline exactly (one ``default_rng(seed)``
    shared by synthesis and materialisation).
:class:`CompareUnit` → :func:`run_units` → :class:`CompareOutcome`
    The sweep primitive.  ``collect_metrics=True`` attaches a
    metrics-only :class:`~repro.obs.Observer` per scheduler; merge the
    registries across outcomes with :func:`merged_metrics` (merge order
    = unit order = repetition order, matching the serial convention in
    ``docs/observability.md``).
:func:`run_sweep`
    The generic order-preserving pool map used by :func:`run_units` and
    by :func:`repro.sim.runner.compare`'s ``workers`` argument.

``max_workers=1`` (the default everywhere) never touches
``multiprocessing`` — sweeps degrade gracefully to the serial path, and
pool construction failures (restricted environments without ``fork``/
semaphores) fall back to serial with a warning rather than aborting the
experiment.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from importlib import import_module
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..cpu import FrequencyScale
from ..obs import MetricsRegistry, Observer, Telemetry
from ..sim.engine import SimulationResult
from ..sim.runner import Platform, simulate
from ..sim.task import TaskSet
from ..sim.workload import materialize
from .config import TABLE1, AppSetting, energy_setting
from .workload import synthesize_taskset

__all__ = [
    "SchedulerSpec",
    "WorkloadSpec",
    "PlatformSpec",
    "CompareUnit",
    "CompareOutcome",
    "run_units",
    "run_sweep",
    "run_chunked",
    "merged_metrics",
    "default_chunksize",
    "auto_chunk_size",
    "usable_cpus",
    "speedup_gate",
    "SpeedupRegression",
]

T = TypeVar("T")
R = TypeVar("R")


# ----------------------------------------------------------------------
# Picklable specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerSpec:
    """A picklable recipe for one scheduler instance.

    Either a registry name (``SchedulerSpec.registry("EUA*")``) or a
    scheduler class plus constructor kwargs
    (``SchedulerSpec.of(EUAStar, name="PD", dvs_method="demand")``).
    ``build()`` returns a fresh instance — never share one policy
    object across runs.
    """

    registry_name: Optional[str] = None
    module: Optional[str] = None
    qualname: Optional[str] = None
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def registry(cls, name: str) -> "SchedulerSpec":
        return cls(registry_name=name)

    @classmethod
    def of(cls, scheduler_cls: type, **kwargs: object) -> "SchedulerSpec":
        return cls(
            module=scheduler_cls.__module__,
            qualname=scheduler_cls.__qualname__,
            kwargs=tuple(sorted(kwargs.items())),
        )

    def build(self):
        if self.registry_name is not None:
            from ..sched import make_scheduler

            return make_scheduler(self.registry_name)
        if self.module is None or self.qualname is None:
            raise ValueError("empty SchedulerSpec: use .registry() or .of()")
        obj = import_module(self.module)
        for part in self.qualname.split("."):
            obj = getattr(obj, part)
        return obj(**dict(self.kwargs))

    @property
    def display_name(self) -> str:
        if self.registry_name is not None:
            return self.registry_name
        for k, v in self.kwargs:
            if k == "name":
                return str(v)
        return self.qualname or "<scheduler>"


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthesised workload: the ``synthesize_taskset`` +
    ``materialize`` arguments plus the seed that fixes every draw.

    The worker reproduces the serial drivers' discipline exactly: a
    single ``np.random.default_rng(seed)`` feeds task-set synthesis and
    then trace materialisation, so a unit's workload is bit-identical
    however (and wherever) it runs.
    """

    load: float
    seed: int
    horizon: float
    tuf_shape: str = "step"
    nu: float = 1.0
    rho: float = 0.96
    arrival_mode: str = "periodic"
    burst_override: Optional[int] = None
    apps: Tuple[AppSetting, ...] = TABLE1
    f_max: float = 1000.0
    #: Core count the workload is sized for: the synthesised task set
    #: targets ``load · cores`` total demand (``load`` stays the
    #: *per-core* load knob the paper's figures sweep).  ``cores=1``
    #: multiplies by exactly 1 and reproduces the uniprocessor workload
    #: bit-identically.
    cores: int = 1
    #: Extra ``(key, value)`` pairs for the arrival registry factory
    #: (``repro.arrivals.create_arrival_generator``).  A pair tuple —
    #: not a dict — so the spec stays hashable and its canonical-JSON
    #: rendering (the ``RunCache`` identity) is order-stable.
    arrival_params: Tuple[Tuple[str, object], ...] = ()

    def build(self):
        rng = np.random.default_rng(self.seed)
        taskset = synthesize_taskset(
            target_load=self.load * self.cores,
            rng=rng,
            apps=self.apps,
            tuf_shape=self.tuf_shape,
            nu=self.nu,
            rho=self.rho,
            f_max=self.f_max,
            arrival_mode=self.arrival_mode,
            burst_override=self.burst_override,
            arrival_params=self.arrival_params,
        )
        trace = materialize(taskset, self.horizon, rng)
        return taskset, trace


@dataclass(frozen=True)
class PlatformSpec:
    """A picklable :class:`~repro.sim.Platform` recipe.

    ``scale_levels=None`` selects the paper's PowerNow! ladder; the
    energy model comes from the Table 2 setting name evaluated at
    ``f_max``.
    """

    energy: str = "E1"
    f_max: float = 1000.0
    scale_levels: Optional[Tuple[float, ...]] = None
    idle_power: float = 0.0
    switch_time: float = 0.0
    switch_energy: float = 0.0
    #: Multicore dimension: ``cores > 1`` routes the unit through
    #: :func:`repro.mp.simulate_mp` in ``mp_mode`` ("partitioned" or
    #: "global"); ``partition_strategy``/``active_power`` parameterise
    #: the partitioner and the uncore power term.
    cores: int = 1
    mp_mode: str = "partitioned"
    partition_strategy: str = "wfd"
    active_power: float = 0.0

    def build(self) -> Platform:
        scale = (
            FrequencyScale(self.scale_levels)
            if self.scale_levels is not None
            else FrequencyScale.powernow_k6()
        )
        return Platform(
            scale=scale,
            energy_model=energy_setting(self.energy, self.f_max),
            idle_power=self.idle_power,
            switch_time=self.switch_time,
            switch_energy=self.switch_energy,
        )

    def build_mp(self):
        """The :class:`~repro.mp.MulticorePlatform` for this spec."""
        from ..mp import MulticorePlatform

        base = self.build()
        return MulticorePlatform.from_platform(
            base, cores=self.cores, active_power=self.active_power
        )


@dataclass(frozen=True)
class CompareUnit:
    """One sweep cell: run every scheduler on one materialised workload."""

    key: Tuple
    schedulers: Tuple[SchedulerSpec, ...]
    workload: WorkloadSpec
    platform: PlatformSpec = PlatformSpec()
    record_trace: bool = False
    collect_metrics: bool = False


@dataclass
class CompareOutcome:
    """What one :class:`CompareUnit` produced.

    ``results`` preserves the unit's scheduler order; ``metrics`` (one
    registry per scheduler, same order) is populated only when the unit
    asked for ``collect_metrics``.  ``taskset`` is the synthesised task
    set the workload ran on — analyses like ``verify_assurances`` need
    it next to the results.
    """

    key: Tuple
    results: Dict[str, SimulationResult]
    taskset: TaskSet
    metrics: Dict[str, MetricsRegistry] = field(default_factory=dict)


def _run_compare_unit(unit: CompareUnit) -> CompareOutcome:
    """Execute one unit (top-level so it pickles under ``spawn``).

    ``unit.platform.cores > 1`` routes every scheduler arm through the
    multicore engine (:func:`repro.mp.simulate_mp`); the resulting
    :class:`~repro.mp.MPSimulationResult` satisfies the same
    ``metrics``/``energy``/``normalized_utility`` consumer contract as
    :class:`~repro.sim.engine.SimulationResult`, so the outcome shape
    is identical either way.
    """
    taskset, trace = unit.workload.build()
    use_mp = unit.platform.cores > 1
    results: Dict[str, SimulationResult] = {}
    metrics: Dict[str, MetricsRegistry] = {}
    if use_mp:
        from ..mp import simulate_mp

        mp_platform = unit.platform.build_mp()
        for spec in unit.schedulers:
            name = spec.display_name
            if name in results:
                raise ValueError(f"duplicate scheduler name {name!r}")
            observer = Observer(events=False, metrics=True) if unit.collect_metrics else None
            results[name] = simulate_mp(
                trace,
                spec.build,
                mp_platform,
                mode=unit.platform.mp_mode,
                strategy=unit.platform.partition_strategy,
                observer=observer,
                record_trace=unit.record_trace,
            )
            if observer is not None:
                metrics[name] = observer.metrics
        return CompareOutcome(key=unit.key, results=results, taskset=taskset, metrics=metrics)
    platform = unit.platform.build()
    for spec in unit.schedulers:
        scheduler = spec.build()
        if scheduler.name in results:
            raise ValueError(f"duplicate scheduler name {scheduler.name!r}")
        observer = Observer(events=False, metrics=True) if unit.collect_metrics else None
        results[scheduler.name] = simulate(
            trace,
            scheduler,
            platform,
            record_trace=unit.record_trace,
            observer=observer,
        )
        if observer is not None:
            metrics[scheduler.name] = observer.metrics
    return CompareOutcome(key=unit.key, results=results, taskset=taskset, metrics=metrics)


# ----------------------------------------------------------------------
# Scaling gate
# ----------------------------------------------------------------------
def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


class SpeedupRegression(AssertionError):
    """A pool speedup gate failed on a host capable of passing it."""


def speedup_gate(
    speedup: float,
    workers: int,
    min_speedup: float = 2.0,
    cpus: Optional[int] = None,
) -> str:
    """Adjudicate a measured pool speedup: ``"pass"`` or ``"skipped"``.

    The three-way outcome is the point — a host with fewer than
    ``workers`` usable CPUs *cannot* demonstrate pool scaling, so the
    gate reports ``"skipped"`` (distinct from ``"pass"``: a benchmark
    must surface the skip, never silently green-light an unmeasurable
    claim).  On a capable host a speedup below ``min_speedup`` raises
    :class:`SpeedupRegression`.

    ``cpus`` defaults to :func:`usable_cpus`; pass it explicitly to
    make the verdict testable independent of the running host.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    if cpus is None:
        cpus = usable_cpus()
    if cpus < workers:
        return "skipped"
    if speedup < min_speedup:
        raise SpeedupRegression(
            f"expected >= {min_speedup:.2f}x speedup at {workers} workers "
            f"on {cpus} CPUs, measured {speedup:.2f}x"
        )
    return "pass"


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def default_chunksize(n_items: int, max_workers: int) -> int:
    """Chunk so each worker sees ~4 chunks — large enough to amortise
    pickling, small enough to keep the pool load-balanced."""
    return max(1, n_items // (4 * max_workers) or 1)


def auto_chunk_size(n_items: int, max_workers: int) -> int:
    """Chunk size for :func:`run_chunked` when the caller does not pin
    one: ~4 chunks per worker (ceiling division, so every item lands in
    a chunk and small batches still parallelise).

    Degenerate shapes are well-defined: ``n_items == 0`` returns 1 (a
    harmless placeholder — :func:`run_chunked` short-circuits empty
    item lists before chunking); ``max_workers <= 1`` (including 0 and
    negatives, both meaning "no pool") returns one all-items chunk; and
    ``n_items < max_workers`` yields chunk size 1 so every item can
    still land on its own worker.  A negative ``n_items`` is a caller
    bug and raises ``ValueError``.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items!r}")
    if n_items == 0:
        return 1
    if max_workers <= 1:
        return n_items
    return max(1, -(-n_items // (4 * max_workers)))


class _TracedCall:
    """Picklable wrapper around the sweep function for traced pools.

    The worker stamps its busy interval with raw ``perf_counter``
    values — ``CLOCK_MONOTONIC`` is system-wide on Linux, so the main
    process converts them onto its tracer timeline with
    :meth:`~repro.obs.SpanTracer.rel` when folding results back in.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, item: T) -> "_TracedOutcome":
        start = perf_counter()
        value = self.fn(item)
        return _TracedOutcome(value, f"pid-{os.getpid()}", start, perf_counter())


@dataclass
class _TracedOutcome:
    """A sweep result plus the worker busy interval that produced it."""

    value: object
    worker: str
    start: float
    end: float


def _run_serial_traced(
    fn: Callable[[T], R], items: Sequence[T], telemetry: Telemetry
) -> List[R]:
    """Serial map with per-item ``pool.execute`` spans.

    In-process execution does *not* overlap the caller, so it belongs in
    the span tree (charged to the enclosing phase) as well as on the
    ``main`` worker lane.
    """
    tr = telemetry.tracer
    out: List[R] = []
    for item in items:
        t0 = tr.now()
        with tr.span("pool.execute"):
            out.append(fn(item))
        telemetry.interval("main", t0, tr.now())
        telemetry.count("pool.items")
    return out


def run_sweep(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 1,
    chunksize: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[R]:
    """Order-preserving map of ``fn`` over ``items``.

    ``max_workers <= 1`` runs serially in-process.  Otherwise the items
    are dispatched in chunks to a process pool; results are returned in
    input order (deterministic merge).  ``fn`` and every item must be
    picklable.  If the pool cannot be created — sandboxed environments
    without working semaphores, for instance — the sweep falls back to
    the serial path with a warning instead of failing.

    ``telemetry`` (optional) attributes the pipeline's wall-clock:
    serial execution records per-item ``pool.execute`` spans; pool
    execution records a ``pool.serialize`` span (explicit pickle probe
    of the dispatched payload, counted in ``pool.pickled_bytes``), a
    ``pool.submit``/``pool.fold`` span pair around dispatch and the
    order-preserving merge, and one busy interval per item on the
    executing worker's lane.  Results are identical with and without it.
    """
    items = list(items)
    if telemetry is None:
        if max_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if chunksize is None:
            chunksize = default_chunksize(len(items), max_workers)
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(fn, items, chunksize=chunksize))
        except (OSError, PermissionError, ImportError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running sweep serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]

    tr = telemetry.tracer
    if max_workers <= 1 or len(items) <= 1:
        return _run_serial_traced(fn, items, telemetry)
    if chunksize is None:
        chunksize = default_chunksize(len(items), max_workers)
    with tr.span("pool.serialize"):
        payload = sum(len(pickle.dumps(item)) for item in items)
    telemetry.count("pool.pickled_bytes", payload)
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            with tr.span("pool.submit"):
                outcomes = pool.map(_TracedCall(fn), items, chunksize=chunksize)
            out: List[R] = []
            # The fold span also absorbs time spent *waiting* on workers
            # — that is honestly what the main process does here, and the
            # overlapped execution shows up on the worker lanes instead.
            with tr.span("pool.fold"):
                for outcome in outcomes:
                    telemetry.interval(
                        outcome.worker, tr.rel(outcome.start), tr.rel(outcome.end)
                    )
                    telemetry.count("pool.items")
                    out.append(outcome.value)
            return out
    except (OSError, PermissionError, ImportError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running sweep serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_serial_traced(fn, items, telemetry)


# ----------------------------------------------------------------------
# Chunked dispatch with a worker-shared payload
# ----------------------------------------------------------------------
#: Worker-global one-shot payload, installed by the pool initializer so
#: each worker deserialises it exactly once instead of per task.
_SHARED: object = None


def _install_shared(payload: object) -> None:
    global _SHARED
    _SHARED = payload


class _ChunkCall:
    """Picklable chunk executor: applies the batch function to the
    worker-installed shared payload plus one chunk of items, stamping
    the worker busy interval like :class:`_TracedCall`."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[object, Sequence[T]], R]):
        self.fn = fn

    def __call__(self, chunk: Sequence[T]) -> "_ChunkOutcome":
        start = perf_counter()
        value = self.fn(_SHARED, chunk)
        return _ChunkOutcome(value, len(chunk), f"pid-{os.getpid()}", start, perf_counter())


@dataclass
class _ChunkOutcome:
    """One chunk's result plus the worker busy interval that produced it."""

    value: object
    n_items: int
    worker: str
    start: float
    end: float


def _iter_chunks(items: Sequence[T], chunk_size: int) -> List[Sequence[T]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _run_chunked_serial(
    fn: Callable[[object, Sequence[T]], R],
    chunks: Sequence[Sequence[T]],
    shared: object,
    telemetry: Optional[Telemetry],
) -> List[R]:
    if telemetry is None:
        return [fn(shared, chunk) for chunk in chunks]
    tr = telemetry.tracer
    out: List[R] = []
    for chunk in chunks:
        t0 = tr.now()
        with tr.span("pool.chunk"):
            out.append(fn(shared, chunk))
        telemetry.interval("main", t0, tr.now())
        telemetry.count("pool.chunks")
        telemetry.count("pool.items", len(chunk))
    return out


def run_chunked(
    fn: Callable[[object, Sequence[T]], R],
    items: Sequence[T],
    shared: object,
    max_workers: int = 1,
    chunk_size: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[R]:
    """Order-preserving chunked map: ``fn(shared, chunk)`` per chunk.

    The batch-dispatch primitive behind
    :func:`repro.stats.run_campaign`.  ``items`` is split into
    contiguous chunks (``chunk_size``, or :func:`auto_chunk_size`), and
    each pool task executes one *chunk* through ``fn`` — so per-task
    dispatch overhead (pickling, future bookkeeping, result transport)
    amortises over the whole chunk, and ``fn`` can fold partial
    aggregates worker-side before anything crosses the process
    boundary.  The one-shot ``shared`` payload is serialised once per
    worker via the pool initializer, never per chunk, and ``fn`` must
    treat it as read-only (worker-side mutations are invisible to other
    chunks and to the caller).

    Results come back in chunk submission order whatever the worker
    interleaving, so any per-item ordering the caller needs is exactly
    the concatenation order of ``items`` — chunking is an execution
    detail, not an identity.  ``max_workers <= 1`` (or a single chunk)
    never touches ``multiprocessing``; pool-construction failures fall
    back to the serial path with a warning, like :func:`run_sweep`.

    With ``telemetry``, serial execution records one ``pool.chunk``
    span per chunk; pool execution records ``pool.serialize`` (one
    probe of the shared payload + every chunk), ``pool.submit`` /
    ``pool.fold`` spans, one busy interval per chunk on the executing
    worker's lane, and the ``pool.chunks`` / ``pool.items`` /
    ``pool.pickled_bytes`` counters.  Results are identical with and
    without it.
    """
    items = list(items)
    if not items:
        return []
    if chunk_size is None:
        chunk_size = auto_chunk_size(len(items), max_workers)
    elif chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
    chunks = _iter_chunks(items, chunk_size)
    if max_workers <= 1 or len(chunks) <= 1:
        return _run_chunked_serial(fn, chunks, shared, telemetry)

    if telemetry is None:
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_install_shared,
                initargs=(shared,),
            ) as pool:
                outcomes = pool.map(_ChunkCall(fn), chunks)
                return [outcome.value for outcome in outcomes]
        except (OSError, PermissionError, ImportError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); running chunked sweep serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return _run_chunked_serial(fn, chunks, shared, None)

    tr = telemetry.tracer
    with tr.span("pool.serialize"):
        payload = len(pickle.dumps(shared)) + sum(len(pickle.dumps(c)) for c in chunks)
    telemetry.count("pool.pickled_bytes", payload)
    try:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_install_shared,
            initargs=(shared,),
        ) as pool:
            with tr.span("pool.submit"):
                outcomes = pool.map(_ChunkCall(fn), chunks)
            out: List[R] = []
            with tr.span("pool.fold"):
                for outcome in outcomes:
                    telemetry.interval(
                        outcome.worker, tr.rel(outcome.start), tr.rel(outcome.end)
                    )
                    telemetry.count("pool.chunks")
                    telemetry.count("pool.items", outcome.n_items)
                    out.append(outcome.value)
            return out
    except (OSError, PermissionError, ImportError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc!r}); running chunked sweep serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_chunked_serial(fn, chunks, shared, telemetry)


def run_units(
    units: Sequence[CompareUnit],
    max_workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[CompareOutcome]:
    """Run sweep units, serially or on a process pool.

    Outcomes are returned in unit order whatever the worker
    interleaving, so downstream aggregation (summary statistics, merged
    metrics registries) is independent of ``max_workers``.
    """
    return run_sweep(_run_compare_unit, units, max_workers=max_workers, chunksize=chunksize)


def merged_metrics(outcomes: Iterable[CompareOutcome]) -> Dict[str, MetricsRegistry]:
    """Fold per-unit registries into one registry per scheduler.

    Merge order is outcome order × the unit's scheduler order — i.e.
    repetition order, exactly what a serial loop calling
    ``MetricsRegistry.merge`` per run would produce.
    """
    out: Dict[str, MetricsRegistry] = {}
    for outcome in outcomes:
        for name, registry in outcome.metrics.items():
            out.setdefault(name, MetricsRegistry()).merge(registry)
    return out
