"""Static vs adaptive EUA* under demand drift and UAM violation.

The paper evaluates EUA* on workloads that honour their declared
parameters.  This experiment measures what the :mod:`repro.runtime`
layer buys when they don't:

* :func:`drifting_trace` materialises a workload whose true per-job
  demands are rescaled mid-run while the *declared* distributions keep
  their original moments — exactly the mismatch the drift detectors
  watch for;
* :func:`uam_violating_trace` injects burst arrivals past the declared
  ``⟨a, P⟩`` envelope (the trace is deliberately non-compliant, so its
  construction skips ``verify_uam``);
* :func:`compare_adaptive` runs static EUA* and EUA* + adaptive runtime
  over the *identical* trace and reports both outcomes side by side.

Under upward drift (the default, ``drift_factor = 2``) the static
budgets under-provision: feasible-looking schedules silently miss
terminations, and every missed job burned cycles for zero utility.  The
adaptive arm inflates ``c_i`` from observed completions, so
``decideFreq`` provisions honestly and infeasibility is discovered at
insertion time instead of at the deadline — strictly more utility,
typically at *lower* energy (cycles stop being wasted on jobs that
expire).  ``tests/experiments/test_adaptive.py`` pins the headline
claim at a fixed seed: the adaptive arm accrues at least the static
utility and strictly improves the utility-or-energy frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from ..core import EUAStar
from ..runtime import AdaptiveRuntime, RuntimeConfig
from ..sim import Platform, SimulationResult, simulate
from ..sim.workload import JobSpec, WorkloadTrace, materialize
from .workload import synthesize_taskset

__all__ = [
    "drifting_trace",
    "uam_violating_trace",
    "AdaptiveComparison",
    "compare_adaptive",
]


def drifting_trace(
    seed: int = 11,
    load: float = 0.9,
    horizon: float = 2.0,
    drift_at: float = 0.3,
    drift_factor: float = 2.0,
    platform: Optional[Platform] = None,
) -> WorkloadTrace:
    """A workload whose true demands drift mid-run.

    Jobs released at or after ``drift_at · horizon`` have their true
    cycle demand scaled by ``drift_factor``; the task set's *declared*
    distributions are untouched, so every scheduler parameter derived
    offline (``c_i``, ``f°_i``) describes the pre-drift regime only.
    ``drift_factor > 1`` (default) models demand growth
    (under-provisioned budgets → missed terminations); ``< 1`` models
    demand collapse (over-provisioned budgets).
    """
    platform = platform if platform is not None else Platform.powernow_k6()
    rng = np.random.default_rng(seed)
    taskset = synthesize_taskset(load, rng, f_max=platform.scale.f_max)
    base = materialize(taskset, horizon, rng)
    onset = drift_at * horizon
    specs: List[JobSpec] = [
        replace(spec, demand=spec.demand * drift_factor)
        if spec.release >= onset
        else spec
        for spec in base
    ]
    return WorkloadTrace(taskset, horizon, specs)


def uam_violating_trace(
    seed: int = 11,
    load: float = 0.8,
    horizon: float = 2.0,
    burst_factor: int = 2,
    platform: Optional[Platform] = None,
) -> WorkloadTrace:
    """A workload that bursts past every task's declared ``⟨a, P⟩``.

    Each materialised (compliant) arrival is duplicated into
    ``burst_factor`` simultaneous releases with independent demands, so
    any window that held ``a`` arrivals now holds ``a · burst_factor`` —
    a deliberate envelope violation (construction skips ``verify_uam``).
    """
    if burst_factor < 2:
        raise ValueError(f"burst_factor must be >= 2, got {burst_factor!r}")
    platform = platform if platform is not None else Platform.powernow_k6()
    rng = np.random.default_rng(seed)
    taskset = synthesize_taskset(load, rng, f_max=platform.scale.f_max)
    base = materialize(taskset, horizon, rng)
    specs: List[JobSpec] = []
    counters: Dict[str, int] = {t.name: 0 for t in taskset}
    for spec in base:
        name = spec.task.name
        for _ in range(burst_factor):
            extra = float(spec.task.demand.sample(rng))
            specs.append(
                JobSpec(
                    task=spec.task,
                    index=counters[name],
                    release=spec.release,
                    demand=extra,
                )
            )
            counters[name] += 1
    return WorkloadTrace(taskset, horizon, specs)


@dataclass(frozen=True)
class AdaptiveComparison:
    """Static vs adaptive EUA* on one identical trace."""

    static: SimulationResult
    adaptive: SimulationResult
    #: The adaptive arm's runtime counters (see ``AdaptiveRuntime.summary``).
    runtime_summary: Dict[str, float]

    @property
    def utility_gain(self) -> float:
        """Adaptive − static accrued utility (absolute)."""
        return self.adaptive.metrics.accrued_utility - self.static.metrics.accrued_utility

    @property
    def energy_saving(self) -> float:
        """Static − adaptive energy (positive = adaptive cheaper)."""
        return self.static.metrics.energy - self.adaptive.metrics.energy

    @property
    def improves_frontier(self) -> bool:
        """The headline claim: strictly more utility, or at least as
        much utility at strictly lower energy."""
        eps_u = 1e-9 * max(1.0, abs(self.static.metrics.accrued_utility))
        eps_e = 1e-9 * max(1.0, abs(self.static.metrics.energy))
        if self.utility_gain > eps_u:
            return True
        return self.utility_gain >= -eps_u and self.energy_saving > eps_e

    def rows(self) -> List[Dict[str, object]]:
        """Table rows for the CLI / reporting helpers."""
        out = []
        for label, result in (("static", self.static), ("adaptive", self.adaptive)):
            m = result.metrics
            out.append(
                {
                    "arm": label,
                    "utility": f"{m.accrued_utility:.3f}",
                    "norm_utility": f"{m.normalized_utility:.4f}",
                    "energy": f"{m.energy:.3f}",
                    "completed": int(m.completed),
                    "expired": int(m.expired),
                    "aborted": int(m.aborted),
                    "shed": int(m.shed),
                }
            )
        return out


def compare_adaptive(
    trace: Optional[WorkloadTrace] = None,
    seed: int = 11,
    load: float = 0.9,
    horizon: float = 2.0,
    drift_at: float = 0.3,
    drift_factor: float = 2.0,
    config: Optional[RuntimeConfig] = None,
    platform: Optional[Platform] = None,
) -> AdaptiveComparison:
    """Run static EUA* and EUA* + adaptive runtime on the same trace.

    With no ``trace`` given, a :func:`drifting_trace` is synthesised
    from the remaining parameters.  Fresh scheduler instances per arm;
    the runtime's ``finalize()`` guarantees the shared task set leaves
    the adaptive arm with its original allocations, so arm order cannot
    matter.
    """
    platform = platform if platform is not None else Platform.powernow_k6()
    if trace is None:
        trace = drifting_trace(
            seed=seed,
            load=load,
            horizon=horizon,
            drift_at=drift_at,
            drift_factor=drift_factor,
            platform=platform,
        )
    static = simulate(trace, EUAStar(), platform)
    runtime = AdaptiveRuntime(config or RuntimeConfig())
    adaptive = simulate(trace, EUAStar(), platform, runtime=runtime)
    return AdaptiveComparison(
        static=static, adaptive=adaptive, runtime_summary=runtime.summary()
    )
