"""Parameter-sensitivity sweeps.

Beyond the paper's two figures, these drivers answer the questions a
deployment engineer asks before trusting the numbers: how do the
results move with the assurance level ρ, the task-set size, the window
spread, and the frequency-ladder granularity?  Each returns plain row
dicts for :func:`~repro.experiments.reporting.ascii_table`.

Every sweep decomposes into independent (setting, seed)
:class:`~repro.experiments.parallel.CompareUnit` cells, so ``workers >
1`` shards it across a process pool with a deterministic, seed-ordered
merge — values are identical to the serial sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import verify_assurances
from ..core import EUAStar
from ..cpu import FrequencyScale
from ..sched import EDFStatic
from .config import DEFAULT_HORIZON, DEFAULT_SEEDS, AppSetting, TABLE1
from .parallel import (
    CompareOutcome,
    CompareUnit,
    PlatformSpec,
    SchedulerSpec,
    WorkloadSpec,
    run_units,
)

__all__ = [
    "sweep_rho",
    "sweep_taskset_size",
    "sweep_ladder_granularity",
]

#: Every sensitivity sweep compares EUA* against the EDF normaliser.
_ARMS: Tuple[SchedulerSpec, ...] = (
    SchedulerSpec.of(EUAStar),
    SchedulerSpec.of(EDFStatic),
)


def _summarise(outcomes: Sequence[CompareOutcome]) -> Tuple[float, float, float]:
    """Mean normalised energy, utility, and worst-case attainment of
    EUA* over a group of per-seed outcomes."""
    energies, utils, attain = [], [], []
    for outcome in outcomes:
        runs = outcome.results
        energies.append(runs["EUA*"].energy / runs["EDF"].energy)
        utils.append(runs["EUA*"].metrics.normalized_utility)
        reports = verify_assurances(runs["EUA*"], outcome.taskset)
        attain.append(min(r.attainment for r in reports.values()))
    return (
        float(np.mean(energies)),
        float(np.mean(utils)),
        float(np.mean(attain)),
    )


def _grouped(
    units: Sequence[CompareUnit],
    workers: int,
    chunksize: Optional[int],
) -> Dict[object, List[CompareOutcome]]:
    """Run units and group outcomes by ``key[0]`` (the swept setting)."""
    groups: Dict[object, List[CompareOutcome]] = {}
    for outcome in run_units(units, max_workers=workers, chunksize=chunksize):
        groups.setdefault(outcome.key[0], []).append(outcome)
    return groups


def sweep_rho(
    rhos: Sequence[float] = (0.5, 0.9, 0.96, 0.99),
    load: float = 0.7,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Assurance level vs energy: stronger ρ ⇒ fatter budgets ⇒ higher
    frequencies.  (The workload keeps significant demand variance so ρ
    actually moves the allocation.)"""
    units = [
        CompareUnit(
            key=(rho, seed),
            schedulers=_ARMS,
            workload=WorkloadSpec(
                load=load,
                seed=seed,
                horizon=horizon,
                tuf_shape="linear",
                nu=0.3,
                rho=rho,
            ),
            platform=PlatformSpec(energy="E1"),
        )
        for rho in rhos
        for seed in seeds
    ]
    groups = _grouped(units, workers, chunksize)
    rows = []
    for rho in rhos:
        energy, util, attain = _summarise(groups[rho])
        rows.append({"rho": rho, "norm_energy": energy, "utility": util,
                     "min_attainment": attain})
    return rows


def sweep_taskset_size(
    multipliers: Sequence[int] = (1, 2, 3),
    load: float = 0.7,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Task-set size at constant load: more, smaller tasks give the
    deferral more interleaving opportunities but cost more scheduling
    events."""
    apps_by_mult = {
        mult: tuple(
            AppSetting(a.name, a.n_tasks * mult, a.max_arrivals,
                       a.window_range, a.umax_range)
            for a in TABLE1
        )
        for mult in multipliers
    }
    units = [
        CompareUnit(
            key=(mult, seed),
            schedulers=_ARMS,
            workload=WorkloadSpec(
                load=load,
                seed=seed,
                horizon=horizon,
                apps=apps_by_mult[mult],
            ),
            platform=PlatformSpec(energy="E1"),
        )
        for mult in multipliers
        for seed in seeds
    ]
    groups = _grouped(units, workers, chunksize)
    rows = []
    for mult in multipliers:
        energy, util, attain = _summarise(groups[mult])
        rows.append({
            "n_tasks": sum(a.n_tasks for a in apps_by_mult[mult]),
            "norm_energy": energy,
            "utility": util,
            "min_attainment": attain,
        })
    return rows


def sweep_ladder_granularity(
    level_counts: Sequence[int] = (2, 4, 7, 14),
    load: float = 0.6,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Frequency-ladder granularity: with only {f_min, f_max} DVS can
    barely modulate; finer ladders approach the continuous optimum.
    The 7-level row is the PowerNow! part itself."""
    def _levels(m: int) -> Tuple[float, ...]:
        if m == 7:
            return tuple(FrequencyScale.powernow_k6().levels)
        return tuple(FrequencyScale.uniform(360.0, 1000.0, m).levels)

    units = [
        CompareUnit(
            key=(m, seed),
            schedulers=_ARMS,
            workload=WorkloadSpec(load=load, seed=seed, horizon=horizon),
            platform=PlatformSpec(energy="E1", scale_levels=_levels(m)),
        )
        for m in level_counts
        for seed in seeds
    ]
    groups = _grouped(units, workers, chunksize)
    rows = []
    for m in level_counts:
        energy, util, attain = _summarise(groups[m])
        rows.append({"levels": m, "norm_energy": energy, "utility": util,
                     "min_attainment": attain})
    return rows
