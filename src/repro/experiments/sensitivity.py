"""Parameter-sensitivity sweeps.

Beyond the paper's two figures, these drivers answer the questions a
deployment engineer asks before trusting the numbers: how do the
results move with the assurance level ρ, the task-set size, the window
spread, and the frequency-ladder granularity?  Each returns plain row
dicts for :func:`~repro.experiments.reporting.ascii_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis import verify_assurances
from ..core import EUAStar
from ..cpu import FrequencyScale
from ..sched import EDFStatic
from ..sim import Platform, compare, materialize
from .config import DEFAULT_HORIZON, DEFAULT_SEEDS, AppSetting, TABLE1, energy_setting
from .workload import synthesize_taskset

__all__ = [
    "sweep_rho",
    "sweep_taskset_size",
    "sweep_ladder_granularity",
]


def _normalised_energy(
    taskset_factory,
    seeds: Sequence[int],
    horizon: float,
    platform: Platform,
):
    energies, utils, attain = [], [], []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        taskset = taskset_factory(rng)
        trace = materialize(taskset, horizon, rng)
        runs = compare([EUAStar(), EDFStatic()], trace, platform=platform)
        energies.append(runs["EUA*"].energy / runs["EDF"].energy)
        utils.append(runs["EUA*"].metrics.normalized_utility)
        reports = verify_assurances(runs["EUA*"], taskset)
        attain.append(min(r.attainment for r in reports.values()))
    return (
        float(np.mean(energies)),
        float(np.mean(utils)),
        float(np.mean(attain)),
    )


def sweep_rho(
    rhos: Sequence[float] = (0.5, 0.9, 0.96, 0.99),
    load: float = 0.7,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
) -> List[Dict[str, float]]:
    """Assurance level vs energy: stronger ρ ⇒ fatter budgets ⇒ higher
    frequencies.  (The workload keeps significant demand variance so ρ
    actually moves the allocation.)"""
    platform = Platform(energy_model=energy_setting("E1"))
    rows = []
    for rho in rhos:
        def factory(rng, rho=rho):
            ts = synthesize_taskset(load, rng, tuf_shape="linear", nu=0.3, rho=rho)
            return ts

        energy, util, attain = _normalised_energy(factory, seeds, horizon, platform)
        rows.append({"rho": rho, "norm_energy": energy, "utility": util,
                     "min_attainment": attain})
    return rows


def sweep_taskset_size(
    multipliers: Sequence[int] = (1, 2, 3),
    load: float = 0.7,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
) -> List[Dict[str, float]]:
    """Task-set size at constant load: more, smaller tasks give the
    deferral more interleaving opportunities but cost more scheduling
    events."""
    platform = Platform(energy_model=energy_setting("E1"))
    rows = []
    for mult in multipliers:
        apps = tuple(
            AppSetting(a.name, a.n_tasks * mult, a.max_arrivals,
                       a.window_range, a.umax_range)
            for a in TABLE1
        )

        def factory(rng, apps=apps):
            return synthesize_taskset(load, rng, apps=apps)

        energy, util, attain = _normalised_energy(factory, seeds, horizon, platform)
        rows.append({
            "n_tasks": sum(a.n_tasks for a in apps),
            "norm_energy": energy,
            "utility": util,
            "min_attainment": attain,
        })
    return rows


def sweep_ladder_granularity(
    level_counts: Sequence[int] = (2, 4, 7, 14),
    load: float = 0.6,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
) -> List[Dict[str, float]]:
    """Frequency-ladder granularity: with only {f_min, f_max} DVS can
    barely modulate; finer ladders approach the continuous optimum.
    The 7-level row is the PowerNow! part itself."""
    rows = []
    for m in level_counts:
        if m == 7:
            scale = FrequencyScale.powernow_k6()
        else:
            scale = FrequencyScale.uniform(360.0, 1000.0, m)
        platform = Platform(scale=scale, energy_model=energy_setting("E1"))

        def factory(rng):
            return synthesize_taskset(load, rng)

        energy, util, attain = _normalised_energy(factory, seeds, horizon, platform)
        rows.append({"levels": m, "norm_energy": energy, "utility": util,
                     "min_attainment": attain})
    return rows
