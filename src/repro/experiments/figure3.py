"""Figure 3 — EUA*'s energy vs load under different UAM burst sizes.

Section 5.2: every task gets a **linear** TUF (slope ``U_max / P``),
requirement ``{ν=0.3, ρ=0.9}``, energy setting E1.  The UAM parameter
``a`` sweeps 1→3 while the load ϱ sweeps 0.2→1.8; reported energy is
normalised to **EUA\\* without DVS** (always ``f_m``) on the same
workload.

Expected shape (paper): during overloads energy is insensitive to
``a``; during underloads energy *rises* with ``a`` because burstier
arrivals spoil slack estimation (at ϱ=0.5 the paper reads ≈0.26 for
⟨1,P⟩ and ≈0.61 for ⟨3,P⟩).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import SummaryStat, summarize
from ..core import EUAStar
from .config import (
    DEFAULT_HORIZON,
    DEFAULT_SEEDS,
    FIGURE3_BURSTS,
    FIGURE3_LOADS,
    FIGURE3_REQUIREMENT,
    TABLE1,
)
from .parallel import CompareUnit, PlatformSpec, SchedulerSpec, WorkloadSpec, run_units

__all__ = ["Figure3Result", "run_figure3", "figure3_units"]


@dataclass
class Figure3Result:
    """Normalised EUA* energy per (burst size, load)."""

    #: energy[a][load] = normalised energy (vs EUA* pinned at f_max).
    energy: Dict[int, Dict[float, SummaryStat]] = field(default_factory=dict)

    def series(self, a: int) -> List[Tuple[float, float]]:
        return [(load, stat.mean) for load, stat in sorted(self.energy[a].items())]

    def rows(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for a, by_load in sorted(self.energy.items()):
            for load, stat in sorted(by_load.items()):
                out.append({"a": a, "load": load, "norm_energy": stat.mean})
        return out


def figure3_units(
    bursts: Sequence[int] = FIGURE3_BURSTS,
    loads: Sequence[float] = FIGURE3_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    apps=TABLE1,
    f_max: float = 1000.0,
    energy_setting_name: str = "E1",
) -> List[CompareUnit]:
    """The sweep decomposed into independent (a, load, seed) units."""
    nu, rho = FIGURE3_REQUIREMENT
    schedulers = (
        SchedulerSpec.of(EUAStar, name="EUA*"),
        SchedulerSpec.of(EUAStar, name="EUA*-noDVS", use_dvs=False),
    )
    platform = PlatformSpec(energy=energy_setting_name, f_max=f_max)
    return [
        CompareUnit(
            key=(a, load, seed),
            schedulers=schedulers,
            workload=WorkloadSpec(
                load=load,
                seed=seed,
                horizon=horizon,
                tuf_shape="linear",
                nu=nu,
                rho=rho,
                arrival_mode="poisson",
                burst_override=a,
                apps=tuple(apps),
                f_max=f_max,
            ),
            platform=platform,
        )
        for a in bursts
        for load in loads
        for seed in seeds
    ]


def run_figure3(
    bursts: Sequence[int] = FIGURE3_BURSTS,
    loads: Sequence[float] = FIGURE3_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    apps=TABLE1,
    f_max: float = 1000.0,
    energy_setting_name: str = "E1",
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> Figure3Result:
    """Run the Figure 3 experiment.

    ``workers > 1`` shards the (a, load, seed) units across a process
    pool with a seed-order-preserving merge — values are identical to
    the serial sweep.
    """
    units = figure3_units(
        bursts, loads, seeds, horizon, apps, f_max, energy_setting_name
    )
    outcomes = run_units(units, max_workers=workers, chunksize=chunksize)
    ratios: Dict[Tuple[int, float], List[float]] = {}
    for outcome in outcomes:
        a, load, _ = outcome.key
        denom = outcome.results["EUA*-noDVS"].energy
        ratio = outcome.results["EUA*"].energy / denom if denom > 0 else 1.0
        ratios.setdefault((a, load), []).append(ratio)
    result = Figure3Result()
    for a in bursts:
        result.energy[a] = {load: summarize(ratios[(a, load)]) for load in loads}
    return result
