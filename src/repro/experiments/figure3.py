"""Figure 3 — EUA*'s energy vs load under different UAM burst sizes.

Section 5.2: every task gets a **linear** TUF (slope ``U_max / P``),
requirement ``{ν=0.3, ρ=0.9}``, energy setting E1.  The UAM parameter
``a`` sweeps 1→3 while the load ϱ sweeps 0.2→1.8; reported energy is
normalised to **EUA\\* without DVS** (always ``f_m``) on the same
workload.

Expected shape (paper): during overloads energy is insensitive to
``a``; during underloads energy *rises* with ``a`` because burstier
arrivals spoil slack estimation (at ϱ=0.5 the paper reads ≈0.26 for
⟨1,P⟩ and ≈0.61 for ⟨3,P⟩).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.stats import SummaryStat, summarize
from ..core import EUAStar
from ..sim import Platform, compare, materialize
from .config import (
    DEFAULT_HORIZON,
    DEFAULT_SEEDS,
    FIGURE3_BURSTS,
    FIGURE3_LOADS,
    FIGURE3_REQUIREMENT,
    TABLE1,
    energy_setting,
)
from .workload import synthesize_taskset

__all__ = ["Figure3Result", "run_figure3"]


@dataclass
class Figure3Result:
    """Normalised EUA* energy per (burst size, load)."""

    #: energy[a][load] = normalised energy (vs EUA* pinned at f_max).
    energy: Dict[int, Dict[float, SummaryStat]] = field(default_factory=dict)

    def series(self, a: int) -> List[Tuple[float, float]]:
        return [(load, stat.mean) for load, stat in sorted(self.energy[a].items())]

    def rows(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for a, by_load in sorted(self.energy.items()):
            for load, stat in sorted(by_load.items()):
                out.append({"a": a, "load": load, "norm_energy": stat.mean})
        return out


def run_figure3(
    bursts: Sequence[int] = FIGURE3_BURSTS,
    loads: Sequence[float] = FIGURE3_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    apps=TABLE1,
    f_max: float = 1000.0,
    energy_setting_name: str = "E1",
) -> Figure3Result:
    """Run the Figure 3 experiment."""
    nu, rho = FIGURE3_REQUIREMENT
    platform = Platform.powernow_k6(energy_setting(energy_setting_name, f_max))
    result = Figure3Result()
    for a in bursts:
        by_load: Dict[float, SummaryStat] = {}
        for load in loads:
            ratios: List[float] = []
            for seed in seeds:
                rng = np.random.default_rng(seed)
                taskset = synthesize_taskset(
                    target_load=load,
                    rng=rng,
                    apps=apps,
                    tuf_shape="linear",
                    nu=nu,
                    rho=rho,
                    f_max=f_max,
                    arrival_mode="poisson",
                    burst_override=a,
                )
                trace = materialize(taskset, horizon, rng)
                runs = compare(
                    [
                        EUAStar(name="EUA*"),
                        EUAStar(name="EUA*-noDVS", use_dvs=False),
                    ],
                    trace,
                    platform=platform,
                )
                denom = runs["EUA*-noDVS"].energy
                ratios.append(runs["EUA*"].energy / denom if denom > 0 else 1.0)
            by_load[load] = summarize(ratios)
        result.energy[a] = by_load
    return result
