"""Figure 2 — normalised utility and energy vs system load.

The paper's headline comparison (Section 5.1): periodic task sets with
step TUFs, ``{ν=1, ρ=0.96}``, loads ϱ from 0.2 to 1.8, energy settings
E1/E2/E3; every scheme's accrued utility and consumed energy divided by
the EDF-at-``f_max`` (no-DVS) run on the identical workload.

Panels: 2(a) utility under E1, 2(b) energy under E1, 2(c) utility under
E3, 2(d) energy under E3 (the text notes E2 is "similar" — the driver
accepts any setting, and a dedicated bench covers E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import SummaryStat, normalized_series
from .config import (
    DEFAULT_HORIZON,
    DEFAULT_SEEDS,
    FIGURE2_LOADS,
    FIGURE2_REQUIREMENT,
    TABLE1,
)
from .parallel import CompareUnit, PlatformSpec, SchedulerSpec, WorkloadSpec, run_units

__all__ = [
    "Figure2Point",
    "Figure2Result",
    "run_figure2",
    "figure2_units",
    "FIGURE2_SCHEDULERS",
]

#: The figure's series: EUA*, the strongest RT-DVS baseline with
#: abortion, its no-abort variant, and the EDF@f_max normaliser.
FIGURE2_SCHEDULERS: Tuple[str, ...] = ("EUA*", "LA-EDF", "LA-EDF-NA", "EDF")

BASELINE = "EDF"


@dataclass
class Figure2Point:
    """One load point: per-scheduler normalised utility and energy."""

    load: float
    utility: Dict[str, SummaryStat]
    energy: Dict[str, SummaryStat]


@dataclass
class Figure2Result:
    """A full sweep for one energy setting."""

    energy_setting: str
    points: List[Figure2Point] = field(default_factory=list)

    def series(self, metric: str, scheduler: str) -> List[Tuple[float, float]]:
        """(load, mean) pairs for one curve of the figure."""
        table = {"utility": lambda p: p.utility, "energy": lambda p: p.energy}[metric]
        return [(p.load, table(p)[scheduler].mean) for p in self.points]

    def series_error(self, metric: str, scheduler: str) -> List[float]:
        """Per-point confidence half-widths (error bars) for one curve,
        aligned with :meth:`series`."""
        table = {"utility": lambda p: p.utility, "energy": lambda p: p.energy}[metric]
        return [table(p)[scheduler].half_width for p in self.points]

    def rows(self) -> List[Dict[str, object]]:
        """Flat rows (one per load × scheduler) for reporting."""
        out: List[Dict[str, object]] = []
        for p in self.points:
            for name in p.utility:
                out.append(
                    {
                        "energy_setting": self.energy_setting,
                        "load": p.load,
                        "scheduler": name,
                        "norm_utility": p.utility[name].mean,
                        "norm_energy": p.energy[name].mean,
                    }
                )
        return out


def figure2_units(
    energy_setting_name: str = "E1",
    loads: Sequence[float] = FIGURE2_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    scheduler_names: Sequence[str] = FIGURE2_SCHEDULERS,
    apps=TABLE1,
    f_max: float = 1000.0,
) -> List[CompareUnit]:
    """The sweep decomposed into independent (load, seed) units."""
    nu, rho = FIGURE2_REQUIREMENT
    schedulers = tuple(SchedulerSpec.registry(n) for n in scheduler_names)
    platform = PlatformSpec(energy=energy_setting_name, f_max=f_max)
    return [
        CompareUnit(
            key=(load, seed),
            schedulers=schedulers,
            workload=WorkloadSpec(
                load=load,
                seed=seed,
                horizon=horizon,
                tuf_shape="step",
                nu=nu,
                rho=rho,
                arrival_mode="periodic",
                apps=tuple(apps),
                f_max=f_max,
            ),
            platform=platform,
        )
        for load in loads
        for seed in seeds
    ]


def run_figure2(
    energy_setting_name: str = "E1",
    loads: Sequence[float] = FIGURE2_LOADS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    scheduler_names: Sequence[str] = FIGURE2_SCHEDULERS,
    apps=TABLE1,
    f_max: float = 1000.0,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> Figure2Result:
    """Run the Figure 2 experiment for one energy setting.

    Every (load, seed) pair synthesises a fresh periodic step-TUF task
    set and materialises one workload trace; all schedulers then run on
    that identical trace.  ``workers > 1`` shards the (load, seed)
    units across a process pool; the merge preserves (load, seed)
    order, so the result is identical to the serial sweep.
    """
    if BASELINE not in scheduler_names:
        raise ValueError(f"scheduler list must include the {BASELINE!r} normaliser")
    units = figure2_units(
        energy_setting_name, loads, seeds, horizon, scheduler_names, apps, f_max
    )
    outcomes = run_units(units, max_workers=workers, chunksize=chunksize)
    by_load: Dict[float, List[Dict[str, object]]] = {}
    for outcome in outcomes:
        by_load.setdefault(outcome.key[0], []).append(outcome.results)
    result = Figure2Result(energy_setting=energy_setting_name)
    for load in loads:
        runs = by_load[load]
        result.points.append(
            Figure2Point(
                load=load,
                utility=normalized_series(runs, BASELINE, "utility"),
                energy=normalized_series(runs, BASELINE, "energy"),
            )
        )
    return result
